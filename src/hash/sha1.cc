#include "hash/sha1.hh"

#include <cstring>

namespace zombie
{

namespace
{

std::uint32_t
rotl32(std::uint32_t x, int c)
{
    return (x << c) | (x >> (32 - c));
}

} // namespace

Sha1::Sha1() : totalLen(0), bufferLen(0)
{
    h[0] = 0x67452301;
    h[1] = 0xefcdab89;
    h[2] = 0x98badcfe;
    h[3] = 0x10325476;
    h[4] = 0xc3d2e1f0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t(block[4 * i]) << 24) |
               (std::uint32_t(block[4 * i + 1]) << 16) |
               (std::uint32_t(block[4 * i + 2]) << 8) |
               std::uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdc;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
}

void
Sha1::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    totalLen += len;

    if (bufferLen > 0) {
        const std::size_t take = std::min<std::size_t>(64 - bufferLen, len);
        std::memcpy(buffer + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == 64) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer, bytes, len);
        bufferLen = len;
    }
}

std::array<std::uint8_t, 20>
Sha1::finishFull()
{
    const std::uint64_t bit_len = totalLen * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen != 56)
        update(&zero, 1);

    // Length is appended big-endian per FIPS 180-1.
    for (int i = 0; i < 8; ++i)
        buffer[56 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    processBlock(buffer);
    bufferLen = 0;

    std::array<std::uint8_t, 20> digest;
    for (int i = 0; i < 5; ++i) {
        digest[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
        digest[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
        digest[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
        digest[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return digest;
}

Fingerprint
Sha1::finish()
{
    const auto full = finishFull();
    Fingerprint fp;
    std::memcpy(fp.bytes.data(), full.data(), 16);
    return fp;
}

Fingerprint
Sha1::digest(const void *data, std::size_t len)
{
    Sha1 ctx;
    ctx.update(data, len);
    return ctx.finish();
}

} // namespace zombie
