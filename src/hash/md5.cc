#include "hash/md5.hh"

#include <cstring>

namespace zombie
{

namespace
{

constexpr std::uint32_t kK[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
    0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
    0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
    0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

std::uint32_t
rotl32(std::uint32_t x, int c)
{
    return (x << c) | (x >> (32 - c));
}

} // namespace

Md5::Md5()
    : a0(0x67452301), b0(0xefcdab89), c0(0x98badcfe), d0(0x10325476),
      totalLen(0), bufferLen(0)
{
}

void
Md5::processBlock(const std::uint8_t *block)
{
    std::uint32_t m[16];
    std::memcpy(m, block, 64);

    std::uint32_t a = a0, b = b0, c = c0, d = d0;
    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        f += a + kK[i] + m[g];
        a = d;
        d = c;
        c = b;
        b += rotl32(f, kShift[i]);
    }
    a0 += a;
    b0 += b;
    c0 += c;
    d0 += d;
}

void
Md5::update(const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    totalLen += len;

    if (bufferLen > 0) {
        const std::size_t take = std::min<std::size_t>(64 - bufferLen, len);
        std::memcpy(buffer + bufferLen, bytes, take);
        bufferLen += take;
        bytes += take;
        len -= take;
        if (bufferLen == 64) {
            processBlock(buffer);
            bufferLen = 0;
        }
    }
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer, bytes, len);
        bufferLen = len;
    }
}

Fingerprint
Md5::finish()
{
    const std::uint64_t bit_len = totalLen * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen != 56)
        update(&zero, 1);

    // Length is appended little-endian, bypassing totalLen accounting.
    std::memcpy(buffer + 56, &bit_len, 8);
    processBlock(buffer);
    bufferLen = 0;

    Fingerprint fp;
    std::memcpy(fp.bytes.data() + 0, &a0, 4);
    std::memcpy(fp.bytes.data() + 4, &b0, 4);
    std::memcpy(fp.bytes.data() + 8, &c0, 4);
    std::memcpy(fp.bytes.data() + 12, &d0, 4);
    return fp;
}

Fingerprint
Md5::digest(const void *data, std::size_t len)
{
    Md5 ctx;
    ctx.update(data, len);
    return ctx.finish();
}

} // namespace zombie
