/**
 * @file
 * MD5 message digest (RFC 1321).
 *
 * The FIU traces carry MD5 fingerprints of each 4KB chunk; this is a
 * from-scratch implementation so trace files written by external tools
 * (hashed with real MD5) interoperate with the simulator.
 */

#ifndef ZOMBIE_HASH_MD5_HH
#define ZOMBIE_HASH_MD5_HH

#include <cstddef>
#include <cstdint>

#include "hash/fingerprint.hh"

namespace zombie
{

/** Incremental MD5 context; also exposes a one-shot helper. */
class Md5
{
  public:
    Md5();

    void update(const void *data, std::size_t len);

    /** Finalize and return the 16-byte digest; context becomes stale. */
    Fingerprint finish();

    /** One-shot digest of a buffer. */
    static Fingerprint digest(const void *data, std::size_t len);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t a0, b0, c0, d0;
    std::uint64_t totalLen;
    std::uint8_t buffer[64];
    std::size_t bufferLen;
};

} // namespace zombie

#endif // ZOMBIE_HASH_MD5_HH
