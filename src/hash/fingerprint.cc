#include "hash/fingerprint.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace zombie
{

std::string
Fingerprint::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (std::uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

Fingerprint
Fingerprint::fromHex(std::string_view hex)
{
    if (hex.size() != 32)
        zombie_fatal("fingerprint hex must be 32 chars, got ", hex.size());
    auto nibble = [&](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return static_cast<std::uint8_t>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<std::uint8_t>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F')
            return static_cast<std::uint8_t>(c - 'A' + 10);
        zombie_fatal("bad hex character '", c, "' in fingerprint");
    };
    Fingerprint fp;
    for (std::size_t i = 0; i < 16; ++i) {
        fp.bytes[i] = static_cast<std::uint8_t>(
            (nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
    }
    return fp;
}

Fingerprint
Fingerprint::fromValueId(std::uint64_t value_id)
{
    SplitMix64 sm(value_id ^ 0xdeadbeefcafef00dULL);
    const std::uint64_t w0 = sm.next();
    const std::uint64_t w1 = sm.next();
    Fingerprint fp;
    std::memcpy(fp.bytes.data(), &w0, 8);
    std::memcpy(fp.bytes.data() + 8, &w1, 8);
    return fp;
}

} // namespace zombie
