/**
 * @file
 * Content-hasher facade.
 *
 * The SSD controller's hash engine (paper Table I: 12us per 4KB chunk)
 * can be backed by MD5 (FIU traces), truncated SHA-1 (OSU traces) or
 * the fast synthetic mixer used when content is named by value id.
 */

#ifndef ZOMBIE_HASH_HASHER_HH
#define ZOMBIE_HASH_HASHER_HH

#include <cstddef>
#include <string>

#include "hash/fingerprint.hh"

namespace zombie
{

/** Digest algorithm selector. */
enum class HashAlgo
{
    Md5,
    Sha1,
    Synthetic,
};

/** Parse "md5" / "sha1" / "synthetic"; fatal otherwise. */
HashAlgo hashAlgoFromString(const std::string &name);
std::string toString(HashAlgo algo);

/** Stateless facade dispatching to the selected digest. */
class ContentHasher
{
  public:
    explicit ContentHasher(HashAlgo algo = HashAlgo::Md5) : algo_(algo) {}

    HashAlgo algo() const { return algo_; }

    /** Digest an arbitrary buffer. */
    Fingerprint hash(const void *data, std::size_t len) const;

    /**
     * Digest a synthetic value id. For Md5/Sha1 the 8-byte id is
     * digested as the content stand-in; Synthetic uses the fast mixer.
     */
    Fingerprint hashValueId(std::uint64_t value_id) const;

  private:
    HashAlgo algo_;
};

} // namespace zombie

#endif // ZOMBIE_HASH_HASHER_HH
