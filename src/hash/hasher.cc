#include "hash/hasher.hh"

#include "hash/md5.hh"
#include "hash/sha1.hh"
#include "util/logging.hh"

namespace zombie
{

HashAlgo
hashAlgoFromString(const std::string &name)
{
    if (name == "md5")
        return HashAlgo::Md5;
    if (name == "sha1")
        return HashAlgo::Sha1;
    if (name == "synthetic")
        return HashAlgo::Synthetic;
    zombie_fatal("unknown hash algorithm '", name,
                 "' (expected md5 | sha1 | synthetic)");
}

std::string
toString(HashAlgo algo)
{
    switch (algo) {
      case HashAlgo::Md5:
        return "md5";
      case HashAlgo::Sha1:
        return "sha1";
      case HashAlgo::Synthetic:
        return "synthetic";
    }
    zombie_panic("unreachable hash algo");
}

Fingerprint
ContentHasher::hash(const void *data, std::size_t len) const
{
    switch (algo_) {
      case HashAlgo::Md5:
        return Md5::digest(data, len);
      case HashAlgo::Sha1:
        return Sha1::digest(data, len);
      case HashAlgo::Synthetic: {
        // Fold the buffer to a 64-bit word, then expand; adequate for
        // synthetic content whose buffers are themselves id-derived.
        std::uint64_t acc = 0xcbf29ce484222325ULL;
        const auto *bytes = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            acc ^= bytes[i];
            acc *= 0x100000001b3ULL;
        }
        return Fingerprint::fromValueId(acc);
      }
    }
    zombie_panic("unreachable hash algo");
}

Fingerprint
ContentHasher::hashValueId(std::uint64_t value_id) const
{
    switch (algo_) {
      case HashAlgo::Md5:
        return Md5::digest(&value_id, sizeof(value_id));
      case HashAlgo::Sha1:
        return Sha1::digest(&value_id, sizeof(value_id));
      case HashAlgo::Synthetic:
        return Fingerprint::fromValueId(value_id);
    }
    zombie_panic("unreachable hash algo");
}

} // namespace zombie
