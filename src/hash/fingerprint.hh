/**
 * @file
 * 16-byte content fingerprints.
 *
 * The FIU traces the paper analyzes carry a 16B hash (MD5) of each 4KB
 * request's content; the dead-value pool and the dedup engine both key
 * their lookups on this fingerprint. SHA-1 digests (the OSU traces) are
 * truncated to the same 16 bytes.
 */

#ifndef ZOMBIE_HASH_FINGERPRINT_HH
#define ZOMBIE_HASH_FINGERPRINT_HH

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace zombie
{

/** Immutable 128-bit content fingerprint. */
struct Fingerprint
{
    std::array<std::uint8_t, 16> bytes{};

    auto operator<=>(const Fingerprint &) const = default;

    /** First 8 bytes as a little-endian word, for hashing/bucketing. */
    std::uint64_t
    word0() const
    {
        std::uint64_t w;
        std::memcpy(&w, bytes.data(), sizeof(w));
        return w;
    }

    std::uint64_t
    word1() const
    {
        std::uint64_t w;
        std::memcpy(&w, bytes.data() + 8, sizeof(w));
        return w;
    }

    /** Lower-case hex rendering, e.g. for trace text format. */
    std::string hex() const;

    /** Parse 32 hex characters; fatal on malformed input. */
    static Fingerprint fromHex(std::string_view hex);

    /**
     * Deterministically expand a synthetic value id into a fingerprint.
     * The trace generator names content by dense ids; this mixes them
     * through SplitMix64 twice so fingerprints are uniformly spread,
     * exactly as a cryptographic digest of distinct contents would be.
     */
    static Fingerprint fromValueId(std::uint64_t value_id);
};

/** Hash functor for unordered containers. */
struct FingerprintHash
{
    std::size_t
    operator()(const Fingerprint &fp) const
    {
        // The fingerprint is already uniform; fold the two words.
        return static_cast<std::size_t>(fp.word0() ^
                                        (fp.word1() * 0x9e3779b97f4a7c15ULL));
    }
};

} // namespace zombie

#endif // ZOMBIE_HASH_FINGERPRINT_HH
