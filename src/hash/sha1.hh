/**
 * @file
 * SHA-1 message digest (FIPS 180-1).
 *
 * The OSU traces in the paper's workload set (hadoop, trans, desktop)
 * carry SHA-1 content hashes; like those traces' 16B hash field, the
 * digest is truncated to a 16-byte Fingerprint.
 */

#ifndef ZOMBIE_HASH_SHA1_HH
#define ZOMBIE_HASH_SHA1_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "hash/fingerprint.hh"

namespace zombie
{

/** Incremental SHA-1 context. */
class Sha1
{
  public:
    Sha1();

    void update(const void *data, std::size_t len);

    /** Finalize, returning the full 20-byte digest. */
    std::array<std::uint8_t, 20> finishFull();

    /** Finalize, truncated to the trace format's 16 bytes. */
    Fingerprint finish();

    /** One-shot truncated digest of a buffer. */
    static Fingerprint digest(const void *data, std::size_t len);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h[5];
    std::uint64_t totalLen;
    std::uint8_t buffer[64];
    std::size_t bufferLen;
};

} // namespace zombie

#endif // ZOMBIE_HASH_SHA1_HH
