/**
 * @file
 * Host-side submission queue feeding the controller pipeline.
 *
 * Models the NCQ-style boundary between host and device: the host
 * submits commands in arrival order; the device admits a command as
 * soon as one of its `queueDepth` command tags is free (see
 * Controller). Commands that arrive while every tag is busy wait
 * here, and the queue tracks how often and for how long admission
 * blocked — the backlog signal deep host queues are about.
 *
 * The queue itself is unbounded (the trace is open-loop: the host
 * never drops requests); `queueDepth` bounds what is *in* the
 * controller, not what is waiting to enter it.
 */

#ifndef ZOMBIE_SIM_HOST_QUEUE_HH
#define ZOMBIE_SIM_HOST_QUEUE_HH

#include <cstdint>

#include "trace/record.hh"
#include "util/ring.hh"
#include "util/types.hh"

namespace zombie
{

/** One host command in flight through the controller. */
struct HostCommand
{
    TraceRecord rec;

    /** Submission index: position in the host's request stream. */
    std::uint64_t idx = 0;
};

/** Admission counters exposed through SimResult. */
struct HostQueueStats
{
    std::uint64_t submitted = 0;

    /** Commands that found every controller tag busy on arrival. */
    std::uint64_t blockedAdmissions = 0;

    /** Total ticks commands spent waiting for a free tag. */
    Tick admissionWait = 0;

    /** High-water mark of commands waiting for admission. */
    std::uint64_t maxWaiting = 0;

    /** Mean per-command wait for a tag, in microseconds. */
    double meanAdmissionWaitUs() const;
};

/**
 * FIFO of submitted-but-not-yet-admitted commands. Ring-backed so
 * the steady-state push/pop cycle stays off the heap (the ring grows
 * only to the backlog's high-water mark).
 */
class HostQueue
{
  public:
    /** Host submits one command (arrival order). */
    void push(const HostCommand &cmd);

    /** Admit the head command at @p now; charges blocked-wait stats. */
    HostCommand pop(Tick now);

    bool empty() const { return fifo.empty(); }
    std::size_t waiting() const { return fifo.size(); }
    const HostCommand &front() const { return fifo.front(); }

    const HostQueueStats &stats() const { return qstats; }

  private:
    RingBuffer<HostCommand> fifo;
    HostQueueStats qstats;
};

} // namespace zombie

#endif // ZOMBIE_SIM_HOST_QUEUE_HH
