/**
 * @file
 * Scan-once grid sweeps over a single external trace.
 *
 * Replaying a parameter grid (system x queue depth x GC policy x
 * engine x pool size) over one block trace used to re-run the whole
 * parse/adapter chain — file decode, 4KB split, fingerprint
 * synthesis, LBA compaction — once per cell. TraceSpool runs that
 * chain exactly once and spools the post-adapter record stream into
 * the compact native binary form: in memory while the trace fits a
 * byte budget, spilling to a temporary binary trace file otherwise.
 * Every grid cell then replays from the spool through the ordinary
 * runSystemOnScannedTrace() path, fanned across worker threads by
 * util/thread_pool.hh.
 *
 * The binary record form round-trips every TraceRecord field exactly
 * (trace/io.hh), so a cell's result is byte-identical to a
 * standalone run of the same configuration — the spool is a pure
 * decode cache, never a semantic change (DESIGN.md section 7.17).
 */

#ifndef ZOMBIE_SIM_GRID_HH
#define ZOMBIE_SIM_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "trace/adapters.hh"

namespace zombie
{

/**
 * Axis values for a grid sweep. An empty axis means "inherit the
 * base configuration" and contributes nothing to cell labels.
 */
struct GridSpec
{
    std::vector<std::string> systems;   //!< "dvp", "dedup", ...
    std::vector<std::uint32_t> depths;  //!< host queue depths
    std::vector<std::string> gcPolicies; //!< "auto|greedy|popularity"
    std::vector<std::string> engines;   //!< "serial|epoch"
    std::vector<std::uint64_t> pools;   //!< DVP/MQ pool entries

    /** Total cell count (product of non-empty axes). */
    std::uint64_t cells() const;
};

/**
 * Parse "system=dvp,dedup;depth=1,32;gc=greedy;engine=epoch;
 * pool=5000" into a GridSpec. Unknown keys, empty value lists and
 * unparseable numbers are fatal (user error).
 */
GridSpec parseGridSpec(const std::string &text);

/** One expanded grid cell: a labelled (system, options) pair. */
struct GridCell
{
    std::string label;   //!< "system=dvp depth=32", spec axes only
    SystemKind system;
    ExperimentOptions opts;
};

/**
 * Expand @p spec against @p base (which supplies every unlisted
 * knob) in deterministic axis-major order: system outermost, then
 * depth, gc, engine, pool. Per-cell telemetry outputs are cleared —
 * cells would race on shared output paths.
 */
std::vector<GridCell> expandGrid(const GridSpec &spec,
                                 SystemKind base_system,
                                 const ExperimentOptions &base);

/**
 * The post-adapter record stream of one scan, decoded exactly once.
 * Holds the records in memory while `records * sizeof(TraceRecord)`
 * fits @p mem_budget_bytes; otherwise spools them to a temporary
 * native binary trace under @p spool_dir (removed on destruction).
 * factory() hands out independent replay sources, so any number of
 * grid cells (across threads) can consume the spool concurrently.
 */
class TraceSpool
{
  public:
    TraceSpool(const ScannedTrace &scan,
               std::uint64_t mem_budget_bytes,
               const std::string &spool_dir = "/tmp");
    ~TraceSpool();

    TraceSpool(const TraceSpool &) = delete;
    TraceSpool &operator=(const TraceSpool &) = delete;

    /** Rebuilds a fresh source over the spooled records. */
    TraceSourceFactory factory() const;

    std::uint64_t records() const { return count; }
    bool onDisk() const { return !path.empty(); }

  private:
    std::shared_ptr<const std::vector<TraceRecord>> mem;
    std::string path; //!< temp binary trace; empty = in memory
    std::uint64_t count = 0;
};

/** One cell's outcome, in expandGrid() order. */
struct GridCellResult
{
    std::string label;
    SystemKind system;
    SimResult result;
};

/**
 * Sweep @p spec over @p scan: spool the record stream once, then
 * replay every cell from the spool, @p jobs cells concurrently
 * (util/thread_pool.hh semantics: 0 = one per hardware thread).
 * Results come back in expandGrid() order regardless of @p jobs, and
 * each cell's SimResult is byte-identical to a standalone
 * runSystemOnScannedTrace() of the same configuration.
 */
std::vector<GridCellResult>
runGridOnScannedTrace(const ScannedTrace &scan, const GridSpec &spec,
                      SystemKind base_system,
                      const ExperimentOptions &base,
                      unsigned jobs = 1,
                      std::uint64_t mem_budget_bytes = 512ull << 20,
                      const std::string &spool_dir = "/tmp");

} // namespace zombie

#endif // ZOMBIE_SIM_GRID_HH
