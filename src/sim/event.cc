#include "sim/event.hh"

#include <algorithm>
#include <limits>

namespace zombie
{

void
EventEngine::heapPush(std::vector<Event> &h, const Event &ev)
{
    h.push_back(ev);
    std::size_t i = h.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!before(h[i], h[parent]))
            break;
        std::swap(h[i], h[parent]);
        i = parent;
    }
}

void
EventEngine::heapPopMin(std::vector<Event> &h)
{
    const Event last = h.back();
    h.pop_back();
    if (h.empty())
        return;
    const std::size_t n = h.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t stop = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < stop; ++c) {
            if (before(h[c], h[best]))
                best = c;
        }
        if (!before(h[best], last))
            break;
        h[i] = h[best];
        i = best;
    }
    h[i] = last;
}

const EventEngine::Event *
EventEngine::peekGlobal(int &lane_out) const
{
    lane_out = -1;
    const Event *best = heap.empty() ? nullptr : &heap[0];
    for (std::uint32_t l = 0; l < kMonotoneLanes; ++l) {
        if (lanes[l].empty())
            continue;
        const Event &front = lanes[l].front();
        if (!best || before(front, *best)) {
            best = &front;
            lane_out = static_cast<int>(l);
        }
    }
    return best;
}

const EventEngine::Event *
EventEngine::peekNext(int &lane_out) const
{
    const Event *best = peekGlobal(lane_out);
    for (std::size_t c = 0; c < chanLanes.size(); ++c) {
        if (chanLanes[c].empty())
            continue;
        const Event &top = chanLanes[c][0];
        if (!best || before(top, *best)) {
            best = &top;
            lane_out = static_cast<int>(kMonotoneLanes + c);
        }
    }
    return best;
}

void
EventEngine::dispatch(const Event &ev_ref, int lane)
{
    // Copy before popping: ev_ref points into the storage being
    // popped, and the handler may grow the heap (reallocation).
    const Event ev = ev_ref;
    if (lane < 0) {
        heapPopMin(heap);
    } else if (lane < static_cast<int>(kMonotoneLanes)) {
        lanes[lane].pop_front();
    } else {
        const std::uint32_t c =
            static_cast<std::uint32_t>(lane) - kMonotoneLanes;
        heapPopMin(chanLanes[c]);
        --localPending;
        if (chanLanes[c].empty())
            laneMask &= ~(1ull << c);
    }
    current = ev.when;
    ++fired;
    ++kindFired[static_cast<std::uint32_t>(ev.kind)];
    target->event(ev.when, ev.kind, ev.ctx, ev.arg);
}

void
EventEngine::step()
{
    zombie_assert(target, "step() with no event sink attached");
    int lane = -1;
    const Event *next = peekNext(lane);
    zombie_assert(next, "step() on an empty event queue");
    dispatch(*next, lane);
}

void
EventEngine::run()
{
    constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();
    constexpr auto kMaxSeq = std::numeric_limits<std::uint64_t>::max();
    if (epochMode()) {
        runEpochs(kMaxTick, kMaxSeq);
        return;
    }
    runSerial(kMaxTick, kMaxSeq);
}

void
EventEngine::runBefore(Tick when)
{
    // The bound is the (when, seq) the next arrival-lane push will
    // receive: everything that sorts before it fires, everything at
    // or after it stays pending until that arrival is submitted.
    if (epochMode()) {
        runEpochs(when, arrivalSeq);
        return;
    }
    runSerial(when, arrivalSeq);
}

void
EventEngine::runSerial(Tick bound_when, std::uint64_t bound_seq)
{
    zombie_assert(target, "run() with no event sink attached");
    const Event bound{bound_when, bound_seq, 0, 0,
                      EventKind::HostArrival};
    for (;;) {
        int lane = -1;
        const Event *next = peekNext(lane);
        if (!next || !before(*next, bound))
            return;
        dispatch(*next, lane);
    }
}

void
EventEngine::runUntil(Tick until)
{
    for (;;) {
        int lane = -1;
        const Event *next = peekNext(lane);
        if (!next || next->when > until)
            break;
        step();
    }
    current = std::max(current, until);
}

Tick
EventEngine::nextAt() const
{
    int lane = -1;
    const Event *next = peekNext(lane);
    zombie_assert(next, "nextAt() on an empty event queue");
    return next->when;
}

void
EventEngine::configureEpoch(std::uint32_t channels,
                            WorkerBand *worker_band,
                            std::uint32_t shard_count)
{
    zombie_assert(channels > 0, "epoch mode needs >= 1 channel");
    zombie_assert(channels <= 64,
                  "epoch mode lane mask caps channels at 64");
    zombie_assert(empty() && nextSeq == kNormalSeqBase &&
                      arrivalSeq == 0,
                  "configureEpoch on a live engine");
    chanLanes.assign(channels, {});
    chanLog.assign(channels, {});
    logHead.assign(channels, 0);
    activeCh.reserve(channels);
    laneMask = 0;
    band = worker_band;
    drainShards = std::max<std::uint32_t>(1, shard_count);
}

void
EventEngine::drainChannel(std::uint32_t c)
{
    // Horizon as a pseudo-event: drain everything that dispatches
    // strictly before the next global event.
    const Event horizon{hWhen, hSeq, 0, 0, EventKind::HostArrival};
    auto &lane = chanLanes[c];
    auto &log = chanLog[c];
    log.clear();
    while (!lane.empty() && before(lane[0], horizon)) {
        log.push_back(lane[0]);
        heapPopMin(lane);
    }
}

void
EventEngine::drainThunk(void *ctx, unsigned shard)
{
    auto *self = static_cast<EventEngine *>(ctx);
    const std::uint32_t n =
        static_cast<std::uint32_t>(self->chanLanes.size());
    for (std::uint32_t c = shard; c < n; c += self->drainShards)
        self->drainChannel(c);
}

bool
EventEngine::pendingBefore(const Event &ev) const
{
    if (!heap.empty() && before(heap[0], ev))
        return true;
    for (std::uint32_t l = 0; l < kMonotoneLanes; ++l) {
        if (!lanes[l].empty() && before(lanes[l].front(), ev))
            return true;
    }
    for (const auto &lane : chanLanes) {
        if (!lane.empty() && before(lane[0], ev))
            return true;
    }
    return false;
}

void
EventEngine::commitLogs()
{
    for (const std::uint32_t c : activeCh)
        logHead[c] = 0;
    // Set once a committed handler schedules anything. Handlers only
    // ever allocate from the normal band (arrival-lane pushes come
    // from submit(), outside the engine), so watching nextSeq alone
    // is sufficient. Every event
    // that existed when the epoch was drained sorts at or after the
    // horizon, which itself sorts after every log entry — so until a
    // handler schedules, no pending event can precede an uncommitted
    // entry and the merge needs no checks at all. Afterwards every
    // commit must first prove the newly scheduled work still sorts
    // behind it, or the speculation has diverged from serial order.
    bool speculation_dirty = false;
    for (;;) {
        // K-way merge head: the uncommitted entry with the least
        // (when, seq). The active-channel list is short (most
        // epochs touch a lane or two), so a linear scan beats a
        // merge heap here.
        const Event *next = nullptr;
        std::uint32_t next_ch = 0;
        for (const std::uint32_t c : activeCh) {
            if (logHead[c] >= chanLog[c].size())
                continue;
            const Event &head = chanLog[c][logHead[c]];
            if (!next || before(head, *next)) {
                next = &head;
                next_ch = c;
            }
        }
        if (!next) {
            // Fully committed: leave the logs empty for the next
            // epoch's occupancy scan (only drained channels get a
            // fresh clear).
            for (const std::uint32_t c : activeCh)
                chanLog[c].clear();
            return;
        }
        if (speculation_dirty && pendingBefore(*next)) {
            // Conflict: a newly scheduled event dispatches before
            // the rest of the log. Roll the uncommitted suffix back
            // into its lanes (original sequence numbers, so nothing
            // is reordered) and let the next epoch replay it against
            // the new horizon. The first commit of a pass is always
            // clean, so every rollback retires at least one event
            // and the loop makes progress.
            ++nRolledBack;
            for (const std::uint32_t c : activeCh) {
                if (logHead[c] < chanLog[c].size())
                    laneMask |= 1ull << c;
                for (std::size_t i = logHead[c];
                     i < chanLog[c].size(); ++i) {
                    heapPush(chanLanes[c], chanLog[c][i]);
                    ++localPending;
                }
                chanLog[c].clear();
            }
            return;
        }
        const Event ev = *next;
        ++logHead[next_ch];
        current = ev.when;
        ++fired;
        ++kindFired[static_cast<std::uint32_t>(ev.kind)];
        const std::uint64_t seq_before = nextSeq;
        target->event(ev.when, ev.kind, ev.ctx, ev.arg);
        if (nextSeq != seq_before)
            speculation_dirty = true;
    }
}

void
EventEngine::runEpochs(Tick bound_when, std::uint64_t bound_seq)
{
    zombie_assert(target, "run() with no event sink attached");
    const Event bound{bound_when, bound_seq, 0, 0,
                      EventKind::HostArrival};
    while (!empty()) {
        int glane = -1;
        const Event *g = peekGlobal(glane);
        // A global event at or past the bound is not dispatchable
        // this call; the horizon logic below still speculates local
        // work up to the bound, exactly as it would up to g.
        if (g && !before(*g, bound))
            g = nullptr;
        if (localPending == 0) {
            // Nothing to speculate over: serial spine event.
            if (!g)
                return;
            dispatch(*g, glane);
            continue;
        }
        if ((laneMask & (laneMask - 1)) == 0) {
            // One active lane: the merge is trivial, so dispatch
            // straight from the lane — exact serial stepping, no
            // drain, no log, no rollback exposure. (localPending >
            // 0 and the mask is a superset, so the single set bit
            // is the non-empty lane.) Counted as a span-1 epoch:
            // the event still dispatches off the serial spine.
            const auto c = static_cast<std::uint32_t>(
                __builtin_ctzll(laneMask));
            const auto &lane = chanLanes[c];
            if ((!g || before(lane[0], *g)) &&
                before(lane[0], bound)) {
                ++nEpochs;
                ++nSpeculated;
                epochSpanMax =
                    std::max<std::uint64_t>(epochSpanMax, 1);
                dispatch(lane[0],
                         static_cast<int>(kMonotoneLanes + c));
            } else if (g) {
                dispatch(*g, glane);
            } else {
                return; // everything pending is at/past the bound
            }
            continue;
        }
        if (g) {
            hWhen = g->when;
            hSeq = g->seq;
        } else {
            hWhen = bound_when;
            hSeq = bound_seq;
        }
        if (band && drainShards > 1 &&
            localPending >= kMinSpecEvents) {
            // The workers never touch laneMask; stale set bits over
            // the lanes they empty are cleared by later passes.
            band->run(&drainThunk, this, drainShards);
        } else {
            std::uint64_t scan = laneMask;
            while (scan) {
                const auto c = static_cast<std::uint32_t>(
                    __builtin_ctzll(scan));
                scan &= scan - 1;
                drainChannel(c);
                if (chanLanes[c].empty())
                    laneMask &= ~(1ull << c);
            }
        }
        std::size_t total = 0;
        activeCh.clear();
        const std::uint32_t n =
            static_cast<std::uint32_t>(chanLog.size());
        for (std::uint32_t c = 0; c < n; ++c) {
            if (chanLog[c].empty())
                continue;
            total += chanLog[c].size();
            activeCh.push_back(c);
        }
        if (total == 0) {
            // Every local event sits at or past the horizon. Fire
            // the global event when one is in bounds; otherwise the
            // horizon was the bound itself and nothing else may run
            // this call.
            if (!g)
                return;
            dispatch(*g, glane);
            continue;
        }
        localPending -= total;
        nSpeculated += total;
        ++nEpochs;
        epochSpanMax = std::max<std::uint64_t>(epochSpanMax, total);
        commitLogs();
    }
}

void
EventEngine::registerStats(StatRegistry &registry) const
{
    registry.addCounter("engine.epochs", &nEpochs);
    registry.addCounter("engine.rolled_back_epochs", &nRolledBack);
    registry.addCounter("engine.speculated_events", &nSpeculated);
    registry.addCounter("engine.max_epoch_span", &epochSpanMax);
}

} // namespace zombie
