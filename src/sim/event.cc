#include "sim/event.hh"

#include <utility>

#include "util/logging.hh"

namespace zombie
{

void
EventEngine::schedule(Tick when, Handler handler)
{
    zombie_assert(when >= current,
                  "event scheduled in the past (", when, " < ",
                  current, ")");
    heap.push(Item{when, nextSeq++, std::move(handler)});
}

void
EventEngine::step()
{
    zombie_assert(!heap.empty(), "step() on an empty event queue");
    // priority_queue::top() is const; the handler is moved out before
    // pop, which is safe because the heap is not reordered by reads.
    Item item = std::move(const_cast<Item &>(heap.top()));
    heap.pop();
    current = item.when;
    ++fired;
    item.fn(item.when);
}

void
EventEngine::run()
{
    while (!heap.empty())
        step();
}

void
EventEngine::runUntil(Tick until)
{
    while (!heap.empty() && heap.top().when <= until)
        step();
    current = std::max(current, until);
}

Tick
EventEngine::nextAt() const
{
    zombie_assert(!heap.empty(), "nextAt() on an empty event queue");
    return heap.top().when;
}

} // namespace zombie
