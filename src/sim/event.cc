#include "sim/event.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

void
EventEngine::schedule(Tick when, EventKind kind, std::uint32_t ctx,
                      std::uint64_t arg)
{
    zombie_assert(when >= current,
                  "event scheduled in the past (", when, " < ",
                  current, ")");
    heap.push_back(Event{when, nextSeq++, arg, ctx, kind});
    std::push_heap(heap.begin(), heap.end(), later);
}

void
EventEngine::step()
{
    zombie_assert(!heap.empty(), "step() on an empty event queue");
    zombie_assert(target, "step() with no event sink attached");
    std::pop_heap(heap.begin(), heap.end(), later);
    const Event ev = heap.back();
    heap.pop_back();
    current = ev.when;
    ++fired;
    target->event(ev.when, ev.kind, ev.ctx, ev.arg);
}

void
EventEngine::run()
{
    while (!heap.empty())
        step();
}

void
EventEngine::runUntil(Tick until)
{
    while (!heap.empty() && heap.front().when <= until)
        step();
    current = std::max(current, until);
}

Tick
EventEngine::nextAt() const
{
    zombie_assert(!heap.empty(), "nextAt() on an empty event queue");
    return heap.front().when;
}

} // namespace zombie
