#include "sim/event.hh"

#include <algorithm>

namespace zombie
{

void
EventEngine::heapPush(const Event &ev)
{
    heap.push_back(ev);
    std::size_t i = heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!before(heap[i], heap[parent]))
            break;
        std::swap(heap[i], heap[parent]);
        i = parent;
    }
}

void
EventEngine::heapPopMin()
{
    const Event last = heap.back();
    heap.pop_back();
    if (heap.empty())
        return;
    const std::size_t n = heap.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t stop = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < stop; ++c) {
            if (before(heap[c], heap[best]))
                best = c;
        }
        if (!before(heap[best], last))
            break;
        heap[i] = heap[best];
        i = best;
    }
    heap[i] = last;
}

const EventEngine::Event *
EventEngine::peekNext(int &lane_out) const
{
    lane_out = -1;
    const Event *best = heap.empty() ? nullptr : &heap[0];
    for (std::uint32_t l = 0; l < kMonotoneLanes; ++l) {
        if (lanes[l].empty())
            continue;
        const Event &front = lanes[l].front();
        if (!best || before(front, *best)) {
            best = &front;
            lane_out = static_cast<int>(l);
        }
    }
    return best;
}

void
EventEngine::step()
{
    zombie_assert(target, "step() with no event sink attached");
    int lane = -1;
    const Event *next = peekNext(lane);
    zombie_assert(next, "step() on an empty event queue");
    const Event ev = *next;
    if (lane < 0)
        heapPopMin();
    else
        lanes[lane].pop_front();
    current = ev.when;
    ++fired;
    target->event(ev.when, ev.kind, ev.ctx, ev.arg);
}

void
EventEngine::run()
{
    while (!empty())
        step();
}

void
EventEngine::runUntil(Tick until)
{
    for (;;) {
        int lane = -1;
        const Event *next = peekNext(lane);
        if (!next || next->when > until)
            break;
        step();
    }
    current = std::max(current, until);
}

Tick
EventEngine::nextAt() const
{
    int lane = -1;
    const Event *next = peekNext(lane);
    zombie_assert(next, "nextAt() on an empty event queue");
    return next->when;
}

} // namespace zombie
