/**
 * @file
 * Experiment runner: generate a workload trace, simulate it on one or
 * more systems, and compare against the Baseline — the shape every
 * evaluation figure (9-12, 14, 15) follows.
 */

#ifndef ZOMBIE_SIM_EXPERIMENT_HH
#define ZOMBIE_SIM_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ssd.hh"
#include "trace/adapters.hh"
#include "trace/profile.hh"

namespace zombie
{

/** Shared knobs for one experiment run. */
struct ExperimentOptions
{
    std::uint64_t requests = 300'000;
    std::uint64_t seed = 42;
    int day = 1;

    /** Pool entries for DVP/LRU/LX systems. */
    std::uint64_t poolCapacity = 200'000;

    /** "auto" | "greedy" | "popularity". */
    std::string gcPolicy = "auto";
    std::uint32_t mqQueues = 8;

    /** Host-interface queue depth (SsdConfig::queueDepth). */
    std::uint32_t queueDepth = 1;

    /** Flash-phase shards (SsdConfig::shards); 1 = serial issue. */
    std::uint32_t shards = 1;

    /** Event-engine strategy: "serial" | "epoch" (SsdConfig). */
    std::string engine = "serial";

    /**
     * Multi-tenant frontend. tenants > 1 splits the workload into
     * that many per-tenant streams (equal request shares, distinct
     * seeds) merged deterministically by arrival; 1 — the default —
     * keeps the historical single-stream path byte-identical.
     */
    std::uint32_t tenants = 1;

    /** Arbiter spec: "rr" or "wrr:<w0,w1,..>" (sim/arbiter.hh). */
    std::string arbiter = "rr";

    /**
     * Decode-ahead batch size for streamed trace replay
     * (trace/prefetch.hh): the parse/adapter chain runs on a
     * producer thread handing the engine batches of this many
     * records. 0 pulls inline on the simulation thread (the
     * differential-testing reference). Either way the record stream
     * is byte-identical — the prefetch ring preserves order exactly.
     */
    std::uint64_t prefetchBatch = 4096;

    /** Dead-value pool tenancy: "shared" | "partitioned". */
    std::string dvpScope = "shared";

    /**
     * Telemetry (src/telemetry): all off by default, so standard
     * experiment runs stay byte-identical and allocation-free. The
     * epoch sampler runs when statsInterval > 0; the op trace records
     * when traceOut is non-empty. Output paths are written after the
     * run completes.
     */
    Tick statsInterval = 0;          //!< epoch length in ticks
    std::uint64_t traceLimit = 1'000'000; //!< spans kept in memory
    std::string statsCsv;            //!< epoch series as CSV
    std::string statsJson;           //!< epoch series as JSON
    std::string traceOut;            //!< Perfetto trace JSON
    std::string statsDump;           //!< end-of-run registry dump

    /** Optional hook to tweak the SsdConfig before construction. */
    std::function<void(SsdConfig &)> tweak;
};

/** Simulate @p system on the given workload; trace is regenerated
 *  deterministically from (workload, day, requests, seed) so every
 *  system sees the identical request stream. */
SimResult runSystem(Workload workload, SystemKind system,
                    const ExperimentOptions &opts = {});

/** Same, from an explicit profile. opts.tenants > 1 splits the
 *  profile into per-tenant streams (see splitProfileAcrossTenants)
 *  before simulating. */
SimResult runSystemOnProfile(const WorkloadProfile &profile,
                             SystemKind system,
                             const ExperimentOptions &opts = {});

/**
 * Replay a scanned external trace (trace/adapters.hh) on @p system,
 * sizing the drive from the scan's footprint. @p streamed admits
 * each record only once the engine has serviced everything ordered
 * before its arrival — bounded memory at 10-100M requests — and is
 * byte-identical to the materialized replay (streamed == false),
 * which submits the whole trace up front and exists as the
 * differential-testing reference.
 */
SimResult runSystemOnScannedTrace(const ScannedTrace &scan,
                                  SystemKind system,
                                  const ExperimentOptions &opts = {},
                                  bool streamed = true);

/**
 * Simulate one drive shared by explicitly-profiled tenants (one
 * namespace per profile, in order). The QoS-scenario entry point:
 * each tenant brings its own workload shape, and opts.arbiter /
 * opts.dvpScope pick the isolation mechanisms. opts.tenants is
 * ignored — the profile list defines the tenant count.
 */
SimResult runTenantProfiles(const std::vector<WorkloadProfile> &profiles,
                            SystemKind system,
                            const ExperimentOptions &opts = {});

/** Baseline + the listed systems over one workload. */
struct Comparison
{
    SimResult baseline;
    std::vector<SimResult> systems;
};

Comparison compareSystems(Workload workload,
                          const std::vector<SystemKind> &systems,
                          const ExperimentOptions &opts = {});

} // namespace zombie

#endif // ZOMBIE_SIM_EXPERIMENT_HH
