#include "sim/read_cache.hh"

namespace zombie
{

bool
ReadCache::access(Ppn ppn)
{
    if (!enabled())
        return false;

    auto it = index.find(ppn);
    if (it != index.end()) {
        ++cstats.hits;
        lru.splice(lru.end(), lru, it->second);
        return true;
    }

    ++cstats.misses;
    if (index.size() >= cap) {
        index.erase(lru.front());
        lru.pop_front();
    }
    lru.push_back(ppn);
    index[ppn] = std::prev(lru.end());
    return false;
}

void
ReadCache::invalidate(Ppn ppn)
{
    auto it = index.find(ppn);
    if (it == index.end())
        return;
    ++cstats.invalidations;
    lru.erase(it->second);
    index.erase(it);
}

} // namespace zombie
