#include "sim/read_cache.hh"

#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Fibonacci multiplier spreads sequential PPNs across the table. */
constexpr std::uint64_t kHashMul = 0x9E3779B97F4A7C15ULL;

} // namespace

ReadCache::ReadCache(std::uint64_t capacity) : cap(capacity)
{
    if (!enabled())
        return;
    nodes.resize(cap);
    freeNodes.reserve(cap);
    for (std::uint64_t i = cap; i-- > 0;)
        freeNodes.push_back(static_cast<std::uint32_t>(i));

    // Power-of-two table at <= 50% load keeps probe chains short.
    std::uint64_t table_size = 16;
    while (table_size < cap * 2)
        table_size *= 2;
    table.assign(table_size, kNil);
    mask = table_size - 1;
    shift = 64;
    for (std::uint64_t s = table_size; s > 1; s /= 2)
        --shift;
}

std::uint64_t
ReadCache::slotOf(Ppn ppn) const
{
    return (ppn * kHashMul) >> shift;
}

std::uint32_t
ReadCache::findSlot(Ppn ppn) const
{
    std::uint64_t slot = slotOf(ppn);
    while (table[slot] != kNil) {
        if (nodes[table[slot]].ppn == ppn)
            return static_cast<std::uint32_t>(slot);
        slot = (slot + 1) & mask;
    }
    return kNil;
}

void
ReadCache::tableInsert(Ppn ppn, std::uint32_t node)
{
    std::uint64_t slot = slotOf(ppn);
    while (table[slot] != kNil)
        slot = (slot + 1) & mask;
    table[slot] = node;
}

void
ReadCache::tableErase(std::uint32_t slot)
{
    // Backward-shift deletion: pull displaced entries of the probe
    // chain back over the hole so lookups never need tombstones.
    std::uint64_t hole = slot;
    table[hole] = kNil;
    std::uint64_t probe = hole;
    while (true) {
        probe = (probe + 1) & mask;
        if (table[probe] == kNil)
            return;
        const std::uint64_t home = slotOf(nodes[table[probe]].ppn);
        if (((probe - home) & mask) >= ((probe - hole) & mask)) {
            table[hole] = table[probe];
            table[probe] = kNil;
            hole = probe;
        }
    }
}

void
ReadCache::listDetach(std::uint32_t node)
{
    Node &n = nodes[node];
    if (n.prev != kNil)
        nodes[n.prev].next = n.next;
    else
        head = n.next;
    if (n.next != kNil)
        nodes[n.next].prev = n.prev;
    else
        tail = n.prev;
    n.prev = n.next = kNil;
}

void
ReadCache::listPushBack(std::uint32_t node)
{
    Node &n = nodes[node];
    n.prev = tail;
    n.next = kNil;
    if (tail != kNil)
        nodes[tail].next = node;
    else
        head = node;
    tail = node;
}

bool
ReadCache::access(Ppn ppn)
{
    if (!enabled())
        return false;

    const std::uint32_t slot = findSlot(ppn);
    if (slot != kNil) {
        ++cstats.hits;
        const std::uint32_t node = table[slot];
        listDetach(node);
        listPushBack(node);
        return true;
    }

    ++cstats.misses;
    std::uint32_t node;
    if (used >= cap) {
        // Evict the LRU entry and recycle its node in place.
        node = head;
        zombie_assert(node != kNil, "full cache with no LRU entry");
        listDetach(node);
        tableErase(findSlot(nodes[node].ppn));
    } else {
        node = freeNodes.back();
        freeNodes.pop_back();
        ++used;
    }
    nodes[node].ppn = ppn;
    listPushBack(node);
    tableInsert(ppn, node);
    return false;
}

void
ReadCache::invalidate(Ppn ppn)
{
    if (!enabled())
        return;
    const std::uint32_t slot = findSlot(ppn);
    if (slot == kNil)
        return;
    ++cstats.invalidations;
    const std::uint32_t node = table[slot];
    tableErase(slot);
    listDetach(node);
    freeNodes.push_back(node);
    --used;
}

void
ReadCache::registerStats(StatRegistry &registry) const
{
    registry.addCounter("cache.hits", &cstats.hits);
    registry.addCounter("cache.misses", &cstats.misses);
    registry.addCounter("cache.invalidations", &cstats.invalidations);
    registry.addGauge("cache.occupancy", [this] {
        return static_cast<double>(used);
    });
}

} // namespace zombie
