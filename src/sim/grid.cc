#include "sim/grid.hh"

#include <charconv>
#include <cstdlib>
#include <unistd.h>

#include "trace/io.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace zombie
{

namespace
{

/** Replay a shared, immutable record vector (no copy per cell). */
class SharedVectorSource : public TraceSource
{
  public:
    explicit SharedVectorSource(
        std::shared_ptr<const std::vector<TraceRecord>> records)
        : recs(std::move(records))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (pos >= recs->size())
            return false;
        out = (*recs)[pos++];
        return true;
    }

  private:
    std::shared_ptr<const std::vector<TraceRecord>> recs;
    std::size_t pos = 0;
};

std::uint64_t
parseAxisUint(std::string_view field, const std::string &spec)
{
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size())
        zombie_fatal("bad number '", std::string(field),
                     "' in grid spec '", spec, "'");
    return value;
}

} // namespace

std::uint64_t
GridSpec::cells() const
{
    const auto axis = [](std::size_t n) {
        return static_cast<std::uint64_t>(n > 0 ? n : 1);
    };
    return axis(systems.size()) * axis(depths.size()) *
           axis(gcPolicies.size()) * axis(engines.size()) *
           axis(pools.size());
}

GridSpec
parseGridSpec(const std::string &text)
{
    GridSpec spec;
    std::string_view rest = text;
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        std::string_view clause = rest.substr(0, semi);
        rest = semi == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(semi + 1);
        if (clause.empty())
            continue;
        const std::size_t eq = clause.find('=');
        if (eq == std::string_view::npos)
            zombie_fatal("grid clause '", std::string(clause),
                         "' has no '=' (want key=v1,v2,..)");
        const std::string_view key = clause.substr(0, eq);
        std::string_view values = clause.substr(eq + 1);

        std::vector<std::string_view> fields;
        while (!values.empty()) {
            const std::size_t comma = values.find(',');
            fields.push_back(values.substr(0, comma));
            values = comma == std::string_view::npos
                         ? std::string_view{}
                         : values.substr(comma + 1);
        }
        if (fields.empty() ||
            (fields.size() == 1 && fields[0].empty()))
            zombie_fatal("grid axis '", std::string(key),
                         "' has no values");

        for (const std::string_view f : fields) {
            const std::string value(f);
            if (key == "system") {
                systemKindFromString(value); // validate, fatal on typo
                spec.systems.push_back(value);
            } else if (key == "depth") {
                spec.depths.push_back(static_cast<std::uint32_t>(
                    parseAxisUint(f, text)));
            } else if (key == "gc") {
                if (value != "auto" && value != "greedy" &&
                    value != "popularity" &&
                    value != "wear:greedy" &&
                    value != "wear:popularity")
                    zombie_fatal("unknown gc policy '", value,
                                 "' in grid spec (auto|greedy|"
                                 "popularity|wear:greedy|"
                                 "wear:popularity)");
                spec.gcPolicies.push_back(value);
            } else if (key == "engine") {
                engineModeFromString(value); // validate
                spec.engines.push_back(value);
            } else if (key == "pool") {
                spec.pools.push_back(parseAxisUint(f, text));
            } else {
                zombie_fatal("unknown grid axis '", std::string(key),
                             "' (system|depth|gc|engine|pool)");
            }
        }
    }
    return spec;
}

std::vector<GridCell>
expandGrid(const GridSpec &spec, SystemKind base_system,
           const ExperimentOptions &base)
{
    // Telemetry paths are per-run artifacts; concurrent cells
    // writing one file would interleave, so the sweep drops them.
    ExperimentOptions cell_base = base;
    cell_base.statsCsv.clear();
    cell_base.statsJson.clear();
    cell_base.traceOut.clear();
    cell_base.statsDump.clear();

    const auto appendAxis = [](std::string &label,
                               const std::string &key,
                               const std::string &value) {
        if (!label.empty())
            label += ' ';
        label += key + '=' + value;
    };

    std::vector<GridCell> cells;
    const std::vector<std::string> one{std::string()};
    const auto &systems =
        spec.systems.empty() ? one : spec.systems;
    const auto &gcs =
        spec.gcPolicies.empty() ? one : spec.gcPolicies;
    const auto &engines =
        spec.engines.empty() ? one : spec.engines;
    const std::vector<std::uint64_t> no_u64{0};
    const auto depths64 = [&] {
        std::vector<std::uint64_t> v;
        for (const auto d : spec.depths)
            v.push_back(d);
        return v;
    }();
    const auto &depths = spec.depths.empty() ? no_u64 : depths64;
    const auto &pools = spec.pools.empty() ? no_u64 : spec.pools;

    for (const auto &system : systems) {
        for (const auto depth : depths) {
            for (const auto &gc : gcs) {
                for (const auto &engine : engines) {
                    for (const auto pool : pools) {
                        GridCell cell;
                        cell.system = system.empty()
                                          ? base_system
                                          : systemKindFromString(
                                                system);
                        cell.opts = cell_base;
                        if (!system.empty())
                            appendAxis(cell.label, "system", system);
                        if (!spec.depths.empty()) {
                            cell.opts.queueDepth =
                                static_cast<std::uint32_t>(depth);
                            appendAxis(cell.label, "depth",
                                       std::to_string(depth));
                        }
                        if (!gc.empty()) {
                            cell.opts.gcPolicy = gc;
                            appendAxis(cell.label, "gc", gc);
                        }
                        if (!engine.empty()) {
                            cell.opts.engine = engine;
                            appendAxis(cell.label, "engine", engine);
                        }
                        if (!spec.pools.empty()) {
                            cell.opts.poolCapacity = pool;
                            appendAxis(cell.label, "pool",
                                       std::to_string(pool));
                        }
                        if (cell.label.empty())
                            cell.label = "base";
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

TraceSpool::TraceSpool(const ScannedTrace &scan,
                       std::uint64_t mem_budget_bytes,
                       const std::string &spool_dir)
{
    const auto src = scan.factory();
    const std::uint64_t budget_records =
        mem_budget_bytes / sizeof(TraceRecord);

    auto records = std::make_shared<std::vector<TraceRecord>>();
    std::unique_ptr<TraceWriter> writer;
    TraceRecord rec;
    while (src->next(rec)) {
        if (!writer && records->size() >= budget_records) {
            // Budget exceeded: spill everything buffered so far to
            // a temporary binary trace and stream the rest there.
            std::string name =
                spool_dir + "/zombie_spool_XXXXXX";
            const int fd = mkstemp(name.data());
            if (fd < 0)
                zombie_fatal("cannot create spool file in ",
                             spool_dir);
            ::close(fd);
            path = name;
            writer = std::make_unique<TraceWriter>(
                path, TraceFormat::Binary);
            for (const auto &buffered : *records)
                writer->write(buffered);
            records->clear();
            records->shrink_to_fit();
        }
        if (writer)
            writer->write(rec);
        else
            records->push_back(rec);
        ++count;
    }
    if (writer)
        writer->close();
    else
        mem = std::move(records);
}

TraceSpool::~TraceSpool()
{
    if (!path.empty())
        std::remove(path.c_str());
}

TraceSourceFactory
TraceSpool::factory() const
{
    if (!path.empty()) {
        const std::string spool_path = path;
        return [spool_path] {
            return std::make_unique<TraceReader>(spool_path);
        };
    }
    const auto records = mem;
    return [records]() -> std::unique_ptr<TraceSource> {
        return std::make_unique<SharedVectorSource>(records);
    };
}

std::vector<GridCellResult>
runGridOnScannedTrace(const ScannedTrace &scan, const GridSpec &spec,
                      SystemKind base_system,
                      const ExperimentOptions &base, unsigned jobs,
                      std::uint64_t mem_budget_bytes,
                      const std::string &spool_dir)
{
    const TraceSpool spool(scan, mem_budget_bytes, spool_dir);
    const std::vector<GridCell> cells =
        expandGrid(spec, base_system, base);

    ScannedTrace spooled;
    spooled.factory = spool.factory();
    spooled.records = scan.records;
    spooled.footprintPages = scan.footprintPages;
    spooled.summary = scan.summary;
    spooled.tenantPages = scan.tenantPages;

    auto results = parallelMap(
        ThreadPool::resolveJobs(jobs), cells.size(),
        [&](std::size_t i) {
            return runSystemOnScannedTrace(spooled, cells[i].system,
                                           cells[i].opts);
        });

    std::vector<GridCellResult> out;
    out.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        out.push_back({cells[i].label, cells[i].system,
                       std::move(results[i])});
    return out;
}

} // namespace zombie
