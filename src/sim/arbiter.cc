#include "sim/arbiter.hh"

#include "util/logging.hh"

namespace zombie
{

ArbiterKind
arbiterKindFromString(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return ArbiterKind::RoundRobin;
    if (name == "wrr" || name == "weighted-round-robin")
        return ArbiterKind::WeightedRoundRobin;
    zombie_fatal("unknown arbiter '", name, "' (rr | wrr)");
}

std::string
toString(ArbiterKind kind)
{
    switch (kind) {
      case ArbiterKind::RoundRobin:
        return "rr";
      case ArbiterKind::WeightedRoundRobin:
        return "wrr";
    }
    zombie_panic("unreachable arbiter kind");
}

ArbiterSpec
parseArbiterSpec(const std::string &text)
{
    ArbiterSpec spec;
    const std::size_t colon = text.find(':');
    spec.kind = arbiterKindFromString(text.substr(0, colon));
    if (colon == std::string::npos)
        return spec;
    if (spec.kind != ArbiterKind::WeightedRoundRobin)
        zombie_fatal("arbiter '", text, "': only wrr takes weights");

    // Comma-separated positive weights, e.g. "wrr:3,1".
    std::size_t pos = colon + 1;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string field = text.substr(pos, comma - pos);
        if (field.empty() ||
            field.find_first_not_of("0123456789") !=
                std::string::npos) {
            zombie_fatal("arbiter '", text,
                         "': weights must be positive integers");
        }
        const unsigned long w = std::stoul(field);
        if (w == 0 || w > 65536)
            zombie_fatal("arbiter '", text, "': weight ", w,
                         " outside [1, 65536]");
        spec.weights.push_back(static_cast<std::uint32_t>(w));
        pos = comma + 1;
    }
    if (spec.weights.empty())
        zombie_fatal("arbiter '", text, "': no weights after ':'");
    return spec;
}

QueueArbiter::QueueArbiter(ArbiterKind kind, std::uint32_t tenants,
                           const std::vector<std::uint32_t> &weights)
    : arbKind(kind)
{
    if (tenants == 0)
        zombie_fatal("arbiter needs at least one tenant");
    if (kind == ArbiterKind::WeightedRoundRobin && !weights.empty()) {
        if (weights.size() != tenants) {
            zombie_fatal("arbiter got ", weights.size(),
                         " weights for ", tenants, " tenants");
        }
        for (const std::uint32_t w : weights) {
            if (w == 0)
                zombie_fatal("arbiter weights must be positive");
        }
        turnWeights = weights;
    } else {
        // Round-robin, or weighted with no explicit weights: strict
        // turns, one command each.
        turnWeights.assign(tenants, 1);
    }
}

} // namespace zombie
