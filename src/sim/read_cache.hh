/**
 * @file
 * Controller read cache.
 *
 * SSD controllers keep recently read pages in on-board RAM; without
 * it, deduplication's many-to-one mapping (section VII) funnels every
 * read of a popular value onto the single die holding its one
 * physical copy, and the resulting hotspot can swamp the latency
 * benefit of the removed writes. The cache is keyed by PPN — valid
 * flash pages are immutable (no write-in-place), so an entry only
 * needs invalidating when its page is reprogrammed after an erase.
 *
 * Exact LRU over flat storage: an intrusive doubly-linked list
 * threaded through a fixed node array, indexed by an open-addressed
 * (linear probe, backward-shift delete) hash table. Everything is
 * sized at construction, so the per-access path — on the controller
 * hot loop for every read and every program — never touches the
 * heap. Hit/miss/eviction order is identical to the classic
 * list+map formulation: it depends only on the access sequence,
 * never on hash layout.
 */

#ifndef ZOMBIE_SIM_READ_CACHE_HH
#define ZOMBIE_SIM_READ_CACHE_HH

#include <cstdint>
#include <vector>

#include "telemetry/stat_registry.hh"
#include "util/types.hh"

namespace zombie
{

/** Cache hit/miss counters. */
struct ReadCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** LRU page cache keyed by physical page number. */
class ReadCache
{
  public:
    /** @param capacity entries (pages); 0 disables the cache. */
    explicit ReadCache(std::uint64_t capacity);

    bool enabled() const { return cap > 0; }

    /**
     * Look up @p ppn, counting a hit or miss; on a miss the page is
     * inserted (evicting the LRU entry if full).
     * @return true on a hit.
     */
    bool access(Ppn ppn);

    /** Drop @p ppn (its flash page was reprogrammed). */
    void invalidate(Ppn ppn);

    std::uint64_t size() const { return used; }
    std::uint64_t capacity() const { return cap; }
    const ReadCacheStats &stats() const { return cstats; }

    /**
     * Register hit/miss/invalidation counters and the occupancy
     * gauge under "cache.". Counter storage lives in this cache;
     * registrations stay valid for its lifetime.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    /** One cache entry; list links are node-array indices. */
    struct Node
    {
        Ppn ppn = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    std::uint64_t slotOf(Ppn ppn) const;

    /** Table slot holding @p ppn, or kNil. */
    std::uint32_t findSlot(Ppn ppn) const;

    void tableInsert(Ppn ppn, std::uint32_t node);
    void tableErase(std::uint32_t slot);

    void listDetach(std::uint32_t node);
    void listPushBack(std::uint32_t node);

    std::uint64_t cap;
    std::uint64_t used = 0;

    std::vector<Node> nodes;              //!< cap entries
    std::vector<std::uint32_t> freeNodes; //!< unused node indices
    std::uint32_t head = kNil;            //!< LRU victim
    std::uint32_t tail = kNil;            //!< most recently used

    std::vector<std::uint32_t> table; //!< slot -> node index or kNil
    std::uint64_t mask = 0;
    unsigned shift = 0;

    ReadCacheStats cstats;
};

} // namespace zombie

#endif // ZOMBIE_SIM_READ_CACHE_HH
