/**
 * @file
 * Controller read cache.
 *
 * SSD controllers keep recently read pages in on-board RAM; without
 * it, deduplication's many-to-one mapping (section VII) funnels every
 * read of a popular value onto the single die holding its one
 * physical copy, and the resulting hotspot can swamp the latency
 * benefit of the removed writes. The cache is keyed by PPN — valid
 * flash pages are immutable (no write-in-place), so an entry only
 * needs invalidating when its page is reprogrammed after an erase.
 */

#ifndef ZOMBIE_SIM_READ_CACHE_HH
#define ZOMBIE_SIM_READ_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/types.hh"

namespace zombie
{

/** Cache hit/miss counters. */
struct ReadCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** LRU page cache keyed by physical page number. */
class ReadCache
{
  public:
    /** @param capacity entries (pages); 0 disables the cache. */
    explicit ReadCache(std::uint64_t capacity) : cap(capacity) {}

    bool enabled() const { return cap > 0; }

    /**
     * Look up @p ppn, counting a hit or miss; on a miss the page is
     * inserted (evicting the LRU entry if full).
     * @return true on a hit.
     */
    bool access(Ppn ppn);

    /** Drop @p ppn (its flash page was reprogrammed). */
    void invalidate(Ppn ppn);

    std::uint64_t size() const { return index.size(); }
    std::uint64_t capacity() const { return cap; }
    const ReadCacheStats &stats() const { return cstats; }

  private:
    std::uint64_t cap;
    std::list<Ppn> lru; //!< front = LRU victim, back = most recent
    std::unordered_map<Ppn, std::list<Ppn>::iterator> index;
    ReadCacheStats cstats;
};

} // namespace zombie

#endif // ZOMBIE_SIM_READ_CACHE_HH
