#include "sim/ssd.hh"

#include <algorithm>

#include "dvp/lru_dvp.hh"
#include "dvp/lx_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "dvp/partitioned_dvp.hh"
#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Prefill content ids live far above any trace value id. */
constexpr std::uint64_t kPrefillIdBase = 0xF000'0000'0000'0000ULL;

double
reduction(std::uint64_t sys, std::uint64_t base)
{
    if (base == 0)
        return 0.0;
    return 1.0 - static_cast<double>(sys) / static_cast<double>(base);
}

double
improvement(double sys, double base)
{
    if (base <= 0.0)
        return 0.0;
    return 1.0 - sys / base;
}

} // namespace

StatSet
SimResult::toStatSet() const
{
    StatSet s;
    s.set("requests", static_cast<double>(requests));
    s.set("reads", static_cast<double>(reads));
    s.set("reads.unmapped", static_cast<double>(unmappedReads));
    s.set("writes", static_cast<double>(writes));
    s.set("flash.programs", static_cast<double>(flashPrograms));
    s.set("flash.host_programs", static_cast<double>(hostPrograms));
    s.set("flash.reads", static_cast<double>(flashReads));
    s.set("flash.erases", static_cast<double>(flashErases));
    s.set("flash.revivals", static_cast<double>(revivals));
    s.set("gc.invocations", static_cast<double>(gcInvocations));
    s.set("gc.relocations", static_cast<double>(gcRelocations));
    s.set("dvp.revivals", static_cast<double>(dvpRevivals));
    s.set("dedup.hits", static_cast<double>(dedupHits));
    s.set("latency.read.mean_us", readLatency.mean() / 1000.0);
    s.set("latency.write.mean_us", writeLatency.mean() / 1000.0);
    s.set("latency.all.mean_us", allLatency.mean() / 1000.0);
    s.set("latency.all.p99_us",
          static_cast<double>(allLatency.percentile(0.99)) / 1000.0);
    s.set("makespan_ms", static_cast<double>(makespan) / 1e6);
    s.set("ctrl.queue_depth", static_cast<double>(queueDepth));
    s.set("ctrl.blocked_admissions",
          static_cast<double>(hostQueue.blockedAdmissions));
    s.set("ctrl.admission_wait_mean_us",
          hostQueue.meanAdmissionWaitUs());
    s.set("ctrl.max_waiting", static_cast<double>(hostQueue.maxWaiting));
    s.set("ctrl.ooo_completions", static_cast<double>(oooCompletions));
    s.set("nand.max_die_backlog", static_cast<double>(maxDieBacklog));
    s.set("wear.max_erase", static_cast<double>(wear.maxErase));
    s.set("wear.mean_erase", wear.meanErase);
    s.set("wear.skew", static_cast<double>(wear.skew()));
    s.set("cache.hit_rate", readCache.hitRate());
    s.set("cache.hits", static_cast<double>(readCache.hits));
    if (hasDvp) {
        s.set("dvp.hit_rate", dvpStats.hitRate());
        s.set("dvp.capacity_evictions",
              static_cast<double>(dvpStats.capacityEvictions));
        s.set("dvp.gc_evictions",
              static_cast<double>(dvpStats.gcEvictions));
    }
    if (hasDedup)
        s.set("dedup.hit_rate", dedupStats.hitRate());
    for (std::size_t t = 0; t < tenantResults.size(); ++t) {
        const TenantResult &tr = tenantResults[t];
        const std::string p = "tenant." + std::to_string(t) + ".";
        s.set(p + "submitted", static_cast<double>(tr.submitted));
        s.set(p + "reads", static_cast<double>(tr.reads));
        s.set(p + "writes", static_cast<double>(tr.writes));
        s.set(p + "blocked_admissions",
              static_cast<double>(tr.blockedAdmissions));
        s.set(p + "gc_collateral_ticks",
              static_cast<double>(tr.gcCollateralTicks));
        s.set(p + "latency.read.p99_us",
              static_cast<double>(tr.readLatency.percentile(0.99)) /
                  1000.0);
        s.set(p + "latency.write.p99_us",
              static_cast<double>(tr.writeLatency.percentile(0.99)) /
                  1000.0);
    }
    return s;
}

double
writeReduction(const SimResult &sys, const SimResult &base)
{
    return reduction(sys.flashPrograms, base.flashPrograms);
}

double
eraseReduction(const SimResult &sys, const SimResult &base)
{
    return reduction(sys.flashErases, base.flashErases);
}

double
meanLatencyImprovement(const SimResult &sys, const SimResult &base)
{
    return improvement(sys.allLatency.mean(), base.allLatency.mean());
}

double
tailLatencyImprovement(const SimResult &sys, const SimResult &base)
{
    return improvement(
        static_cast<double>(sys.allLatency.percentile(0.99)),
        static_cast<double>(base.allLatency.percentile(0.99)));
}

namespace
{

/** One pool of the configured scheme with @p entries capacity. */
std::unique_ptr<DeadValuePool>
makeSinglePool(const SsdConfig &cfg, std::uint64_t entries)
{
    switch (cfg.system) {
      case SystemKind::MqDvp:
      case SystemKind::DvpDedup: {
        MqDvpConfig mq = cfg.mq;
        mq.capacity = entries;
        return std::make_unique<MqDvp>(mq);
      }
      case SystemKind::LruDvp:
        return std::make_unique<LruDvp>(entries);
      case SystemKind::LxSsd:
        return std::make_unique<LxDvp>(entries);
      case SystemKind::Ideal:
        return std::make_unique<InfiniteDvp>();
      default:
        return nullptr;
    }
}

} // namespace

std::unique_ptr<DeadValuePool>
Ssd::makePool(const SsdConfig &cfg)
{
    if (cfg.tenants > 1 && cfg.dvpScope == DvpScope::Partitioned &&
        usesDvp(cfg.system)) {
        // Private per-tenant pools over equal slices of the shared
        // budget (the last tenant absorbs the remainder), routed by
        // namespace LPN range.
        std::vector<std::unique_ptr<DeadValuePool>> pools;
        pools.reserve(cfg.tenants);
        const std::uint64_t share =
            std::max<std::uint64_t>(1, cfg.mq.capacity / cfg.tenants);
        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            const bool last = t + 1 == cfg.tenants;
            const std::uint64_t entries =
                last ? std::max<std::uint64_t>(
                           share, cfg.mq.capacity - share * t)
                     : share;
            pools.push_back(makeSinglePool(cfg, entries));
        }
        return std::make_unique<PartitionedDvp>(std::move(pools),
                                                cfg.namespaceBases());
    }
    return makeSinglePool(cfg, cfg.mq.capacity);
}

Ssd::Ssd(SsdConfig config)
    : cfg((config.validate(), std::move(config))),
      flashArray(cfg.geom),
      pool(makePool(cfg)),
      store(usesDedup(cfg.system)
                ? std::make_unique<FingerprintStore>(cfg.logicalPages)
                : nullptr),
      ftl_(flashArray,
           FtlConfig{.logicalPages = cfg.logicalPages,
                     .gcSoftWater = cfg.gcSoftWater,
                     .gcLowWater = cfg.gcLowWater,
                     .gcPagesPerStep = cfg.gcPagesPerStep,
                     .gcPolicy = cfg.resolvedGcPolicy(),
                     .gcPopWeight = cfg.gcPopWeight,
                     .hotColdSeparation = cfg.hotColdSeparation,
                     .hotThreshold = cfg.hotThreshold}),
      resources(cfg.geom, cfg.timing),
      cache(cfg.readCacheEntries),
      controller_(cfg, ftl_, resources, cache, engine)
{
    if (pool)
        ftl_.attachDvp(pool.get());
    if (store)
        ftl_.attachDedup(store.get());

    // Dynamic write allocation: steer host writes toward idle dies.
    // The raw busy-until view avoids a std::function probe call per
    // plane per write; it reads the same table dieFreeAtIndex serves.
    ftl_.setDieLoadView(resources.dieBusyTable(),
                        cfg.geom.planesPerDie());
    // Group-min accelerator over the same table: the least-busy scan
    // reads (dies / group) entries instead of every die, with the
    // model keeping the minima current per scheduled op.
    ftl_.setDieLoadGroups(
        resources.dieGroupMinTable(),
        static_cast<std::uint32_t>(resources.dieGroupDies()));

    // Telemetry root: every component publishes its counters into
    // one registry. Registration happens once here; nothing on the
    // request path ever calls into the registry.
    flashArray.registerStats(registry_);
    resources.registerStats(registry_);
    ftl_.registerStats(registry_);
    cache.registerStats(registry_);
    controller_.registerStats(registry_);
    if (pool)
        pool->registerStats(registry_);
    if (store)
        store->registerStats(registry_);

    if (cfg.shards > 1) {
        band_ = std::make_unique<WorkerBand>(cfg.shards - 1);
        controller_.configureFlashShards(cfg.shards, band_.get());
    }
    if (cfg.engineMode == EngineMode::Epoch) {
        // Per-channel completion lanes with epoch barriers. The
        // flash-phase band doubles as the drain band (both uses are
        // sequential); with shards == 1 the epochs drain inline —
        // same commit order, no threads. Counters register before
        // the sampler exists so epoch runs can be sampled too.
        engine.configureEpoch(cfg.geom.channels(), band_.get(),
                              cfg.shards);
        engine.registerStats(registry_);
    }
    if (cfg.statsInterval > 0) {
        sampler_ = std::make_unique<EpochSampler>(registry_,
                                                  cfg.statsInterval);
        controller_.attachSampler(sampler_.get());
    }
    if (cfg.opTrace) {
        tracer_ = std::make_unique<PerfettoTraceWriter>(cfg.traceLimit);
        resources.setTraceSink(tracer_.get());
    }
}

void
Ssd::prefill()
{
    zombie_assert(!prefilled && !measuring,
                  "prefill must run once, before any request");
    const auto target = static_cast<std::uint64_t>(
        cfg.prefillFraction * static_cast<double>(cfg.logicalPages));
    FlashStepBuffer scratch; // untimed: the steps are discarded
    for (std::uint64_t lpn = 0; lpn < target; ++lpn) {
        const Fingerprint fp =
            Fingerprint::fromValueId(kPrefillIdBase | lpn);
        ftl_.write(lpn, fp, scratch);
    }
    prefilled = true;
}

void
Ssd::beginMeasurement(Tick first_arrival)
{
    measuring = true;
    flashBase = flashArray.counters();
    ftlBase = ftl_.stats();
    // The sampler baselines here too, so prefill activity is excluded
    // and per-epoch delta sums match the SimResult's base-subtracted
    // counters exactly.
    if (sampler_)
        sampler_->begin(first_arrival);
}

void
Ssd::process(const TraceRecord &rec)
{
    if (!measuring)
        beginMeasurement(rec.arrival);
    controller_.submit(rec);
}

void
Ssd::drain()
{
    controller_.drain();
}

void
Ssd::run(const std::vector<TraceRecord> &records)
{
    if (!prefilled && cfg.prefillFraction > 0.0)
        prefill();
    controller_.reserveSubmissions(records.size());
    for (const auto &rec : records)
        process(rec);
    drain();
}

void
Ssd::run(TraceSource &source)
{
    if (!prefilled && cfg.prefillFraction > 0.0)
        prefill();
    TraceRecord rec;
    while (source.next(rec)) {
        // Service the past before admitting the future: everything
        // ordered strictly before this arrival's (when, seq) key has
        // fired, so the arrivals ring holds only in-flight commands.
        engine.runBefore(rec.arrival);
        process(rec);
    }
    drain();
}

SimResult
Ssd::result()
{
    drain();

    const ControllerStats &cs = controller_.stats();
    if (sampler_)
        sampler_->finish(std::max(cs.lastCompletion, engine.now()));
    SimResult r;
    r.system = toString(cfg.system);
    r.requests = cs.reads + cs.writes;
    r.reads = cs.reads;
    r.writes = cs.writes;

    const FlashCounters &fc = flashArray.counters();
    const FtlStats &fs = ftl_.stats();
    r.flashPrograms = fc.programs - flashBase.programs;
    r.flashReads = fc.reads - flashBase.reads;
    r.flashErases = fc.erases - flashBase.erases;
    r.revivals = fc.revivals - flashBase.revivals;
    r.hostPrograms = fs.programs - ftlBase.programs;
    r.gcInvocations = fs.gcInvocations - ftlBase.gcInvocations;
    r.gcRelocations = fs.gcRelocations - ftlBase.gcRelocations;
    r.dvpRevivals = fs.dvpRevivals - ftlBase.dvpRevivals;
    r.dedupHits = fs.dedupHits - ftlBase.dedupHits;
    r.unmappedReads = fs.unmappedReads - ftlBase.unmappedReads;

    r.readLatency = cs.readLatency;
    r.writeLatency = cs.writeLatency;
    r.allLatency = cs.allLatency;
    r.makespan = cs.lastCompletion > cs.firstArrival
                     ? cs.lastCompletion - cs.firstArrival
                     : 0;

    r.queueDepth = controller_.queueDepth();
    r.hostQueue = controller_.hostStats();
    r.tenants = controller_.tenants();
    if (r.tenants > 1) {
        r.tenantResults.reserve(r.tenants);
        for (std::uint32_t t = 0; t < r.tenants; ++t)
            r.tenantResults.push_back(controller_.tenantResult(t));
    }
    r.oooCompletions = cs.oooCompletions;
    r.maxDieBacklog = resources.maxDieBacklog();
    r.events = engine.dispatched();
    r.epochs = engine.epochs();
    r.rolledBackEpochs = engine.rolledBackEpochs();
    r.speculatedEvents = engine.speculatedEvents();
    r.shardedBursts = controller_.shardedBursts();
    r.serialForcedBursts = controller_.serialForcedBursts();

    r.wear = ftl_.wearSummary();
    r.readCache = cache.stats();

    if (pool) {
        r.hasDvp = true;
        r.dvpStats = pool->stats();
    }
    if (store) {
        r.hasDedup = true;
        r.dedupStats = store->stats();
    }
    return r;
}

} // namespace zombie
