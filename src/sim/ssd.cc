#include "sim/ssd.hh"

#include <algorithm>

#include "dvp/lru_dvp.hh"
#include "dvp/lx_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Prefill content ids live far above any trace value id. */
constexpr std::uint64_t kPrefillIdBase = 0xF000'0000'0000'0000ULL;

double
reduction(std::uint64_t sys, std::uint64_t base)
{
    if (base == 0)
        return 0.0;
    return 1.0 - static_cast<double>(sys) / static_cast<double>(base);
}

double
improvement(double sys, double base)
{
    if (base <= 0.0)
        return 0.0;
    return 1.0 - sys / base;
}

} // namespace

StatSet
SimResult::toStatSet() const
{
    StatSet s;
    s.set("requests", static_cast<double>(requests));
    s.set("reads", static_cast<double>(reads));
    s.set("reads.unmapped", static_cast<double>(unmappedReads));
    s.set("writes", static_cast<double>(writes));
    s.set("flash.programs", static_cast<double>(flashPrograms));
    s.set("flash.host_programs", static_cast<double>(hostPrograms));
    s.set("flash.reads", static_cast<double>(flashReads));
    s.set("flash.erases", static_cast<double>(flashErases));
    s.set("flash.revivals", static_cast<double>(revivals));
    s.set("gc.invocations", static_cast<double>(gcInvocations));
    s.set("gc.relocations", static_cast<double>(gcRelocations));
    s.set("dvp.revivals", static_cast<double>(dvpRevivals));
    s.set("dedup.hits", static_cast<double>(dedupHits));
    s.set("latency.read.mean_us", readLatency.mean() / 1000.0);
    s.set("latency.write.mean_us", writeLatency.mean() / 1000.0);
    s.set("latency.all.mean_us", allLatency.mean() / 1000.0);
    s.set("latency.all.p99_us",
          static_cast<double>(allLatency.percentile(0.99)) / 1000.0);
    s.set("makespan_ms", static_cast<double>(makespan) / 1e6);
    s.set("ctrl.queue_depth", static_cast<double>(queueDepth));
    s.set("ctrl.blocked_admissions",
          static_cast<double>(hostQueue.blockedAdmissions));
    s.set("ctrl.admission_wait_mean_us",
          hostQueue.meanAdmissionWaitUs());
    s.set("ctrl.max_waiting", static_cast<double>(hostQueue.maxWaiting));
    s.set("ctrl.ooo_completions", static_cast<double>(oooCompletions));
    s.set("nand.max_die_backlog", static_cast<double>(maxDieBacklog));
    s.set("wear.max_erase", static_cast<double>(wear.maxErase));
    s.set("wear.mean_erase", wear.meanErase);
    s.set("wear.skew", static_cast<double>(wear.skew()));
    s.set("cache.hit_rate", readCache.hitRate());
    s.set("cache.hits", static_cast<double>(readCache.hits));
    if (hasDvp) {
        s.set("dvp.hit_rate", dvpStats.hitRate());
        s.set("dvp.capacity_evictions",
              static_cast<double>(dvpStats.capacityEvictions));
        s.set("dvp.gc_evictions",
              static_cast<double>(dvpStats.gcEvictions));
    }
    if (hasDedup)
        s.set("dedup.hit_rate", dedupStats.hitRate());
    return s;
}

double
writeReduction(const SimResult &sys, const SimResult &base)
{
    return reduction(sys.flashPrograms, base.flashPrograms);
}

double
eraseReduction(const SimResult &sys, const SimResult &base)
{
    return reduction(sys.flashErases, base.flashErases);
}

double
meanLatencyImprovement(const SimResult &sys, const SimResult &base)
{
    return improvement(sys.allLatency.mean(), base.allLatency.mean());
}

double
tailLatencyImprovement(const SimResult &sys, const SimResult &base)
{
    return improvement(
        static_cast<double>(sys.allLatency.percentile(0.99)),
        static_cast<double>(base.allLatency.percentile(0.99)));
}

std::unique_ptr<DeadValuePool>
Ssd::makePool(const SsdConfig &cfg)
{
    switch (cfg.system) {
      case SystemKind::MqDvp:
      case SystemKind::DvpDedup:
        return std::make_unique<MqDvp>(cfg.mq);
      case SystemKind::LruDvp:
        return std::make_unique<LruDvp>(cfg.mq.capacity);
      case SystemKind::LxSsd:
        return std::make_unique<LxDvp>(cfg.mq.capacity);
      case SystemKind::Ideal:
        return std::make_unique<InfiniteDvp>();
      default:
        return nullptr;
    }
}

Ssd::Ssd(SsdConfig config)
    : cfg((config.validate(), std::move(config))),
      flashArray(cfg.geom),
      pool(makePool(cfg)),
      store(usesDedup(cfg.system)
                ? std::make_unique<FingerprintStore>(cfg.logicalPages)
                : nullptr),
      ftl_(flashArray,
           FtlConfig{.logicalPages = cfg.logicalPages,
                     .gcSoftWater = cfg.gcSoftWater,
                     .gcLowWater = cfg.gcLowWater,
                     .gcPagesPerStep = cfg.gcPagesPerStep,
                     .gcPolicy = cfg.resolvedGcPolicy(),
                     .gcPopWeight = cfg.gcPopWeight,
                     .hotColdSeparation = cfg.hotColdSeparation,
                     .hotThreshold = cfg.hotThreshold}),
      resources(cfg.geom, cfg.timing),
      cache(cfg.readCacheEntries),
      controller_(cfg, ftl_, resources, cache, engine)
{
    if (pool)
        ftl_.attachDvp(pool.get());
    if (store)
        ftl_.attachDedup(store.get());

    // Dynamic write allocation: steer host writes toward idle dies.
    // The raw busy-until view avoids a std::function probe call per
    // plane per write; it reads the same table dieFreeAtIndex serves.
    ftl_.setDieLoadView(resources.dieBusyTable(),
                        cfg.geom.planesPerDie());

    // Telemetry root: every component publishes its counters into
    // one registry. Registration happens once here; nothing on the
    // request path ever calls into the registry.
    flashArray.registerStats(registry_);
    resources.registerStats(registry_);
    ftl_.registerStats(registry_);
    cache.registerStats(registry_);
    controller_.registerStats(registry_);
    if (pool)
        pool->registerStats(registry_);
    if (store)
        store->registerStats(registry_);

    if (cfg.statsInterval > 0) {
        sampler_ = std::make_unique<EpochSampler>(registry_,
                                                  cfg.statsInterval);
        controller_.attachSampler(sampler_.get());
    }
    if (cfg.opTrace) {
        tracer_ = std::make_unique<PerfettoTraceWriter>(cfg.traceLimit);
        resources.setTraceSink(tracer_.get());
    }
}

void
Ssd::prefill()
{
    zombie_assert(!prefilled && !measuring,
                  "prefill must run once, before any request");
    const auto target = static_cast<std::uint64_t>(
        cfg.prefillFraction * static_cast<double>(cfg.logicalPages));
    FlashStepBuffer scratch; // untimed: the steps are discarded
    for (std::uint64_t lpn = 0; lpn < target; ++lpn) {
        const Fingerprint fp =
            Fingerprint::fromValueId(kPrefillIdBase | lpn);
        ftl_.write(lpn, fp, scratch);
    }
    prefilled = true;
}

void
Ssd::beginMeasurement(Tick first_arrival)
{
    measuring = true;
    flashBase = flashArray.counters();
    ftlBase = ftl_.stats();
    // The sampler baselines here too, so prefill activity is excluded
    // and per-epoch delta sums match the SimResult's base-subtracted
    // counters exactly.
    if (sampler_)
        sampler_->begin(first_arrival);
}

void
Ssd::process(const TraceRecord &rec)
{
    if (!measuring)
        beginMeasurement(rec.arrival);
    controller_.submit(rec);
}

void
Ssd::drain()
{
    controller_.drain();
}

void
Ssd::run(const std::vector<TraceRecord> &records)
{
    if (!prefilled && cfg.prefillFraction > 0.0)
        prefill();
    for (const auto &rec : records)
        process(rec);
    drain();
}

SimResult
Ssd::result()
{
    drain();

    const ControllerStats &cs = controller_.stats();
    if (sampler_)
        sampler_->finish(std::max(cs.lastCompletion, engine.now()));
    SimResult r;
    r.system = toString(cfg.system);
    r.requests = cs.reads + cs.writes;
    r.reads = cs.reads;
    r.writes = cs.writes;

    const FlashCounters &fc = flashArray.counters();
    const FtlStats &fs = ftl_.stats();
    r.flashPrograms = fc.programs - flashBase.programs;
    r.flashReads = fc.reads - flashBase.reads;
    r.flashErases = fc.erases - flashBase.erases;
    r.revivals = fc.revivals - flashBase.revivals;
    r.hostPrograms = fs.programs - ftlBase.programs;
    r.gcInvocations = fs.gcInvocations - ftlBase.gcInvocations;
    r.gcRelocations = fs.gcRelocations - ftlBase.gcRelocations;
    r.dvpRevivals = fs.dvpRevivals - ftlBase.dvpRevivals;
    r.dedupHits = fs.dedupHits - ftlBase.dedupHits;
    r.unmappedReads = fs.unmappedReads - ftlBase.unmappedReads;

    r.readLatency = cs.readLatency;
    r.writeLatency = cs.writeLatency;
    r.allLatency = cs.allLatency;
    r.makespan = cs.lastCompletion > cs.firstArrival
                     ? cs.lastCompletion - cs.firstArrival
                     : 0;

    r.queueDepth = controller_.queueDepth();
    r.hostQueue = controller_.hostStats();
    r.oooCompletions = cs.oooCompletions;
    r.maxDieBacklog = resources.maxDieBacklog();
    r.events = engine.dispatched();

    r.wear = ftl_.wearSummary();
    r.readCache = cache.stats();

    if (pool) {
        r.hasDvp = true;
        r.dvpStats = pool->stats();
    }
    if (store) {
        r.hasDedup = true;
        r.dedupStats = store->stats();
    }
    return r;
}

} // namespace zombie
