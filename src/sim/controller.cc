#include "sim/controller.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace zombie
{

FlashIssue
FlashScheduler::issue(const FlashStepBuffer &steps, Tick t)
{
    // User steps chain: a command's next step starts no earlier than
    // the previous step's completion, including completions served
    // from controller RAM.
    Tick step_start = t;
    Tick completion = t;
    for (const FlashStep &step : steps.userSteps) {
        if (step.op == FlashOp::Read && readCache.access(step.ppn)) {
            completion = step_start + res.timing().cacheHit;
        } else {
            if (step.op == FlashOp::Program)
                readCache.invalidate(step.ppn);
            completion = res.scheduleOp(step.op, step.ppn, step_start);
        }
        step_start = completion;
    }

    // GC work starts when the FTL triggers it (issue time) and piles
    // onto its dies/channels; later arrivals to those dies queue
    // behind the collection. Steps on one die serialize through its
    // busy-until in issue order; planes collect in parallel.
    Tick gc_tail = completion;
    if (shards > 1 && !res.hasTracer() &&
        steps.gcSteps.size() >= kMinShardSteps) {
        ++nShardedBursts;
        gc_tail = std::max(gc_tail, issueGcSharded(steps, t));
    } else {
        if (shards > 1 && !steps.gcSteps.empty())
            ++nSerialForced;
        for (const FlashStep &step : steps.gcSteps) {
            if (step.op == FlashOp::Program)
                readCache.invalidate(step.ppn);
            gc_tail = std::max(
                gc_tail, res.scheduleOp(step.op, step.ppn, t, true));
        }
    }
    // Completion-lane affinity: the channel the user work ended on.
    const std::uint32_t channel =
        steps.userSteps.empty()
            ? 0
            : res.geometry().channelOfPpn(steps.userSteps.back().ppn);
    return FlashIssue{completion, gc_tail, channel};
}

void
FlashScheduler::registerStats(StatRegistry &registry) const
{
    registry.addCounter("ctrl.sharded_bursts", &nShardedBursts);
    registry.addCounter("ctrl.serial_forced", &nSerialForced);
}

void
FlashScheduler::configureShards(std::uint32_t shard_count,
                                WorkerBand *worker_band)
{
    if (shard_count <= 1 || !worker_band) {
        shards = 1;
        band = nullptr;
        return;
    }
    shards = shard_count;
    band = worker_band;
    const Geometry &geom = res.geometry();
    chanSteps.resize(geom.channels());
    // One victim block of relocation pairs per collecting plane is
    // the natural burst; reserving that up front keeps the partition
    // pass allocation-free in steady state (DESIGN.md section 7.10).
    for (std::vector<FlashStep> &c : chanSteps)
        c.reserve(2ul * geom.pagesPerBlock());
    shardTails.assign(shards, 0);
}

Tick
FlashScheduler::issueGcSharded(const FlashStepBuffer &steps, Tick t)
{
    // Serial pre-pass: read-cache invalidations stay on the calling
    // thread (the cache is shared across channels). GC steps never
    // *read* the cache and the command's user steps were charged
    // above, so hoisting the invalidations ahead of the resource
    // charging cannot change any outcome.
    const Geometry &geom = res.geometry();
    for (const FlashStep &step : steps.gcSteps) {
        if (step.op == FlashOp::Program)
            readCache.invalidate(step.ppn);
        chanSteps[geom.channelOfPpn(step.ppn)].push_back(step);
    }
    // Each channel's subsequence preserves the burst's issue order,
    // so per-channel busy-until/backlog state evolves exactly as the
    // serial loop would leave it; shards touch disjoint channels and
    // the band joins before any later command issues.
    burstStart = t;
    std::fill(shardTails.begin(), shardTails.end(), 0);
    band->run(&shardThunk, this, shards);
    Tick gc_tail = 0;
    for (const Tick tail : shardTails)
        gc_tail = std::max(gc_tail, tail);
    for (std::vector<FlashStep> &c : chanSteps)
        c.clear();
    return gc_tail;
}

void
FlashScheduler::shardThunk(void *ctx, unsigned shard)
{
    auto *self = static_cast<FlashScheduler *>(ctx);
    Tick tail = 0;
    const std::size_t channels = self->chanSteps.size();
    for (std::size_t c = shard; c < channels; c += self->shards) {
        for (const FlashStep &step : self->chanSteps[c])
            tail = std::max(tail,
                            self->res.scheduleOp(step.op, step.ppn,
                                                 self->burstStart,
                                                 true));
    }
    self->shardTails[shard] = tail;
}

/** Static span-category literals, one per possible tenant (the
 *  TraceSink contract requires static storage). */
static const char *
tenantSpanCategory(std::uint32_t tenant)
{
    static const char *const kNames[kMaxTenants] = {
        "tenant0",  "tenant1",  "tenant2",  "tenant3",
        "tenant4",  "tenant5",  "tenant6",  "tenant7",
        "tenant8",  "tenant9",  "tenant10", "tenant11",
        "tenant12", "tenant13", "tenant14", "tenant15"};
    return tenant < kMaxTenants ? kNames[tenant] : "host";
}

Controller::Controller(const SsdConfig &config, Ftl &ftl_,
                       ResourceModel &resources, ReadCache &cache,
                       EventEngine &events)
    : cfg(config), ftl(ftl_), engine(events),
      queues(std::max<std::uint32_t>(1, config.tenants)),
      arbiter(config.arbiter,
              std::max<std::uint32_t>(1, config.tenants),
              config.arbiterWeights),
      flash(resources, cache), depth(config.queueDepth),
      numTenants(std::max<std::uint32_t>(1, config.tenants)),
      ctxFreeAt(std::max<std::uint32_t>(1, config.queueDepth), 0)
{
    zombie_assert(depth >= 1, "controller needs at least one tag");
    engine.setSink(this);
    inDispatch.reserve(depth);
    tenantTags.assign(numTenants, 0);
    // Weight-proportional tag budgets, at least one tag each. With
    // one tenant the budget equals the depth, which tryDispatch
    // treats as "no constraint" — admission is then gated purely by
    // context availability, exactly the historical behaviour.
    tagBudget.assign(numTenants, depth);
    if (numTenants > 1) {
        const auto &w = arbiter.weights();
        std::uint64_t weight_sum = 0;
        for (const std::uint32_t wt : w)
            weight_sum += wt;
        for (std::uint32_t t = 0; t < numTenants; ++t) {
            tagBudget[t] = std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(
                       (std::uint64_t(depth) * w[t]) / weight_sum));
        }
        tstats.resize(numTenants);
    }
    // Completion tags free at dispatch, so flash completions stream
    // out-of-order without a queue-depth bound: the reorder window
    // is limited only by how much work the dies can hold. Reserve
    // for a GC-heavy backlog up front (a deeper window would merely
    // regrow the heap, costing an allocation, not correctness).
    completedAhead.reserve(std::max<std::size_t>(
        8192, 2ul * depth));
    // At most one DispatchDone per tag is ever pending.
    engine.reserveLane(EventEngine::kDispatchLane, depth + 4);
    // Scratch high-water: one user step plus, in the worst (survival
    // mode) case, a whole victim block of relocation reads/programs
    // and the closing erase — per plane that drained this command.
    steps.reserve(2, 2 * cfg.geom.pagesPerBlock() + 8);
}

void
Controller::reserveSubmissions(std::uint64_t count)
{
    // One up-front reservation for a trace of known length: the
    // arrival ring and lane never regrow mid-run (each regrow copies
    // the full ring). The heap only ever carries the in-flight
    // events, so it keeps its small reservation.
    const std::size_t need = count + 4ul * depth + 16;
    if (need <= eventReserve)
        return;
    eventReserve = need;
    arrivals.reserve(count);
    engine.reserveLane(EventEngine::kArrivalLane, need);
    engine.reserve(4ul * depth + 64);
}

void
Controller::submit(const TraceRecord &rec)
{
    if (rec.tenant >= numTenants) {
        zombie_fatal("record for tenant ", rec.tenant,
                     " on a drive configured for ", numTenants,
                     " tenant(s)");
    }
    if (submitted == 0)
        cstats.firstArrival = rec.arrival;
    arrivals.push_back(HostCommand{rec, submitted++});
    // Keep the event storages ahead of their worst-case occupancy:
    // one HostArrival per outstanding submission in the arrival lane
    // plus a few in-flight events (flash, GC tail) per tag on the
    // heap. Growing by doubling here — where occupancy actually
    // grows — makes each capacity a function of the submission
    // high-water mark alone, so replaying an identical trace never
    // regrows them mid-run.
    const std::size_t need = arrivals.size() + 4ul * depth + 16;
    if (need > eventReserve) {
        eventReserve = std::max(need, 2 * eventReserve);
        engine.reserve(eventReserve);
        engine.reserveLane(EventEngine::kArrivalLane, eventReserve);
    }
    // Arrivals are nondecreasing by the submit() contract, so the
    // whole trace rides the O(1) arrival lane instead of the heap.
    engine.scheduleMonotone(EventEngine::kArrivalLane, rec.arrival,
                            EventKind::HostArrival);

    // First submission after an idle period re-arms the sampler at
    // the next absolute epoch boundary (boundaries are multiples of
    // the interval, so the grid survives idle gaps unshifted).
    if (sampler && !samplerArmed) {
        samplerArmed = true;
        const Tick from = std::max(engine.now(), rec.arrival);
        engine.scheduleLocal(sampler->nextBoundary(from),
                             EventKind::StatsSample, 0, 0, 0);
    }
}

void
Controller::event(Tick now, EventKind kind, std::uint32_t ctx,
                  std::uint64_t arg)
{
    switch (kind) {
      case EventKind::HostArrival: {
        // Arrivals fire in submission order: route the next command
        // to its tenant's submission queue and mirror the admission
        // counters drive-wide (hqTotal backs the "ctrl.queue.*"
        // stats across any tenant count).
        const HostCommand &cmd = arrivals.front();
        queues[cmd.rec.tenant].push(cmd);
        arrivals.pop_front();
        ++hqTotal.submitted;
        ++waitingNow;
        if (waitingNow > hqTotal.maxWaiting)
            hqTotal.maxWaiting = waitingNow;
        tryDispatch(now);
        break;
      }
      case EventKind::Admit:
        // Explicit admission retry; the pipeline itself retries at
        // each dispatch-done, so only external nudges schedule this.
        tryDispatch(now);
        break;
      case EventKind::DispatchDone: {
        const HostCommand cmd = inDispatch[ctx];
        inDispatch.release(ctx);
        --tenantTags[cmd.rec.tenant];
        onDispatched(cmd, now);
        break;
      }
      case EventKind::FlashDone:
        onCompletion(arg);
        break;
      case EventKind::GcTail:
        // Background GC chain drained. Its completion was already
        // folded into lastCompletion when the steps were issued; the
        // event marks the drain point in the schedule.
        break;
      case EventKind::StatsSample:
        // Epoch boundary: snapshot the registry, then re-arm one
        // interval ahead while commands remain in flight. With the
        // pipeline idle the chain stops (the engine must drain) and
        // the next submission re-arms it.
        sampler->sample(now);
        if (outstanding() > 0)
            engine.scheduleLocal(now + sampler->interval(),
                                 EventKind::StatsSample, 0, 0, 0);
        else
            samplerArmed = false;
        break;
      default:
        zombie_panic("controller received unknown event kind");
    }
}

void
Controller::tryDispatch(Tick now)
{
    while (waitingNow > 0) {
        // Earliest-free context; stable lowest-index tie-break.
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < depth; ++k) {
            if (ctxFreeAt[k] < ctxFreeAt[best])
                best = k;
        }
        if (ctxFreeAt[best] > now)
            return; // every tag busy; retried at next dispatch-done

        // The arbiter names the queue this tag serves. A tenant is
        // eligible while it has work and tags under its budget; a
        // full-depth budget (the single-tenant case) never gates, so
        // admission degenerates to the historical context-only check.
        const std::uint32_t t = arbiter.pick([this](std::uint32_t q) {
            return !queues[q].empty() &&
                   (tagBudget[q] >= depth ||
                    tenantTags[q] < tagBudget[q]);
        });
        if (t == QueueArbiter::kNone)
            return; // every non-empty queue is over budget

        const HostCommand cmd = queues[t].pop(now);
        --waitingNow;
        if (now > cmd.rec.arrival) {
            ++hqTotal.blockedAdmissions;
            hqTotal.admissionWait += now - cmd.rec.arrival;
        }
        ++tenantTags[t];
        ctxFreeAt[best] = now + cfg.timing.ftlOverhead;
        const std::uint32_t slot = inDispatch.acquire();
        inDispatch[slot] = cmd;
        // Dispatch-done ticks are `now + ftlOverhead` with `now`
        // monotone, so they ride the second O(1) lane.
        engine.scheduleMonotone(EventEngine::kDispatchLane,
                                ctxFreeAt[best],
                                EventKind::DispatchDone, slot);
    }
}

void
Controller::onDispatched(const HostCommand &cmd, Tick now)
{
    // The hash engine (12us, Table I) is pipelined hardware: it adds
    // latency to each write's path without limiting throughput.
    Tick t = now;
    if (cmd.rec.isWrite() && usesHashEngine(cfg.system))
        t += cfg.timing.hashLatency;

    // Dispatch-done events preserve submission order, so the FTL's
    // state transitions stay in trace order at every queue depth.
    // The step scratch is reused across commands (cleared by the
    // FTL, capacity kept).
    const HostOpResult result =
        cmd.rec.isWrite() ? ftl.write(cmd.rec.lpn, cmd.rec.fp, steps)
                          : ftl.read(cmd.rec.lpn, steps);
    (void)result;
    // Tag host-op trace spans with the issuing tenant; with one
    // tenant the category stays the historical "host" literal.
    if (numTenants > 1)
        flash.setHostSpanCategory(tenantSpanCategory(cmd.rec.tenant));
    const FlashIssue issued = flash.issue(steps, t);

    cstats.lastCompletion =
        std::max(cstats.lastCompletion,
                 std::max(issued.completion, issued.gcTail));

    const Tick latency = issued.completion - cmd.rec.arrival;
    if (cmd.rec.isWrite()) {
        ++cstats.writes;
        cstats.writeLatency.record(latency);
    } else {
        ++cstats.reads;
        cstats.readLatency.record(latency);
    }
    cstats.allLatency.record(latency);

    if (numTenants > 1) {
        TenantResult &ts = tstats[cmd.rec.tenant];
        if (cmd.rec.isWrite()) {
            ++ts.writes;
            ts.writeLatency.record(latency);
        } else {
            ++ts.reads;
            ts.readLatency.record(latency);
        }
        if (issued.gcTail > issued.completion)
            ts.gcCollateralTicks += issued.gcTail - issued.completion;
    }

    // Completions and GC tails are channel-local work: in epoch mode
    // they ride the per-channel speculative lanes; in serial mode
    // scheduleLocal forwards straight to schedule().
    engine.scheduleLocal(issued.completion, EventKind::FlashDone, 0,
                         cmd.idx, issued.channel);
    if (issued.gcTail > issued.completion) {
        cstats.gcTailTicks += issued.gcTail - issued.completion;
        engine.scheduleLocal(issued.gcTail, EventKind::GcTail, 0, 0,
                             issued.channel);
    }

    // This command's tag is free again: admit the next waiter.
    tryDispatch(now);
}

void
Controller::onCompletion(std::uint64_t idx)
{
    ++completed;
    if (idx == nextInOrder) {
        ++nextInOrder;
        while (!completedAhead.empty() &&
               completedAhead.front() == nextInOrder) {
            ++nextInOrder;
            std::pop_heap(completedAhead.begin(),
                          completedAhead.end(),
                          std::greater<std::uint64_t>());
            completedAhead.pop_back();
        }
    } else {
        // An earlier-submitted command is still in flight on a
        // slower die: this completion overtook it.
        ++cstats.oooCompletions;
        completedAhead.push_back(idx);
        std::push_heap(completedAhead.begin(), completedAhead.end(),
                       std::greater<std::uint64_t>());
    }
}

void
Controller::registerStats(StatRegistry &registry) const
{
    registry.addCounter("ctrl.reads", &cstats.reads);
    registry.addCounter("ctrl.writes", &cstats.writes);
    registry.addCounter("ctrl.ooo_completions",
                        &cstats.oooCompletions);
    registry.addCounter("ctrl.gc_tail_ticks", &cstats.gcTailTicks);
    registry.addHistogram("ctrl.latency.read", &cstats.readLatency);
    registry.addHistogram("ctrl.latency.write", &cstats.writeLatency);
    registry.addHistogram("ctrl.latency.all", &cstats.allLatency);

    registry.addCounter("ctrl.queue.submitted", &hqTotal.submitted);
    registry.addCounter("ctrl.queue.blocked_admissions",
                        &hqTotal.blockedAdmissions);
    registry.addCounter("ctrl.queue.admission_wait_ticks",
                        &hqTotal.admissionWait);
    registry.addGauge("ctrl.queue.waiting", [this] {
        return static_cast<double>(waitingNow);
    });
    registry.addGauge("ctrl.outstanding", [this] {
        return static_cast<double>(outstanding());
    });

    // Sharded-issue visibility only when sharding is configured, so
    // single-shard registry dumps stay byte-identical to historical
    // output (the flash scheduler is configured after construction;
    // the config is the authoritative gate).
    if (cfg.shards > 1)
        flash.registerStats(registry);

    // Per-tenant slices exist only on a multi-tenant drive, so the
    // single-tenant registry dump stays byte-identical. Storage lives
    // in `queues` / `tstats`, both sized once at construction.
    if (numTenants <= 1)
        return;
    for (std::uint32_t t = 0; t < numTenants; ++t) {
        const std::string p = "tenant." + std::to_string(t) + ".";
        const HostQueueStats &hq = queues[t].stats();
        registry.addCounter(p + "submitted", &hq.submitted);
        registry.addCounter(p + "blocked_admissions",
                            &hq.blockedAdmissions);
        registry.addCounter(p + "admission_wait_ticks",
                            &hq.admissionWait);
        registry.addGauge(p + "waiting", [this, t] {
            return static_cast<double>(queues[t].waiting());
        });
        const TenantResult &ts = tstats[t];
        registry.addCounter(p + "reads", &ts.reads);
        registry.addCounter(p + "writes", &ts.writes);
        registry.addCounter(p + "gc_collateral_ticks",
                            &ts.gcCollateralTicks);
        registry.addHistogram(p + "latency.read", &ts.readLatency);
        registry.addHistogram(p + "latency.write", &ts.writeLatency);
    }
}

TenantResult
Controller::tenantResult(std::uint32_t t) const
{
    zombie_assert(t < numTenants, "tenant index out of range");
    TenantResult out;
    if (numTenants > 1) {
        out = tstats[t];
    } else {
        // One tenant owns the whole pipeline: its slice is the
        // drive-wide view (tstats is not maintained on this path).
        out.reads = cstats.reads;
        out.writes = cstats.writes;
        out.readLatency = cstats.readLatency;
        out.writeLatency = cstats.writeLatency;
        out.gcCollateralTicks = cstats.gcTailTicks;
    }
    const HostQueueStats &hq = queues[t].stats();
    out.submitted = hq.submitted;
    out.blockedAdmissions = hq.blockedAdmissions;
    out.admissionWait = hq.admissionWait;
    return out;
}

void
Controller::drain()
{
    engine.run();
    zombie_assert(outstanding() == 0,
                  "drained engine left commands in flight");
}

} // namespace zombie
