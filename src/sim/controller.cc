#include "sim/controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

FlashIssue
FlashScheduler::issue(const HostOpResult &result, Tick t)
{
    // User steps chain: a command's next step starts no earlier than
    // the previous step's completion, including completions served
    // from controller RAM.
    Tick step_start = t;
    Tick completion = t;
    for (const FlashStep &step : result.userSteps) {
        if (step.op == FlashOp::Read && readCache.access(step.ppn)) {
            completion = step_start + res.timing().cacheHit;
        } else {
            if (step.op == FlashOp::Program)
                readCache.invalidate(step.ppn);
            completion = res.scheduleOp(step.op, step.ppn, step_start);
        }
        step_start = completion;
    }

    // GC work starts when the FTL triggers it (issue time) and piles
    // onto its dies/channels; later arrivals to those dies queue
    // behind the collection. Steps on one die serialize through its
    // busy-until in issue order; planes collect in parallel.
    Tick gc_tail = completion;
    for (const FlashStep &step : result.gcSteps) {
        if (step.op == FlashOp::Program)
            readCache.invalidate(step.ppn);
        gc_tail = std::max(gc_tail,
                           res.scheduleOp(step.op, step.ppn, t));
    }
    return FlashIssue{completion, gc_tail};
}

Controller::Controller(const SsdConfig &config, Ftl &ftl_,
                       ResourceModel &resources, ReadCache &cache,
                       EventEngine &events)
    : cfg(config), ftl(ftl_), engine(events),
      flash(resources, cache), depth(config.queueDepth),
      ctxFreeAt(std::max<std::uint32_t>(1, config.queueDepth), 0)
{
    zombie_assert(depth >= 1, "controller needs at least one tag");
}

void
Controller::submit(const TraceRecord &rec)
{
    if (submitted == 0)
        cstats.firstArrival = rec.arrival;
    const HostCommand cmd{rec, submitted++};
    engine.schedule(rec.arrival, [this, cmd](Tick now) {
        queue.push(cmd);
        tryDispatch(now);
    });
}

void
Controller::tryDispatch(Tick now)
{
    while (!queue.empty()) {
        // Earliest-free context; stable lowest-index tie-break.
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < depth; ++k) {
            if (ctxFreeAt[k] < ctxFreeAt[best])
                best = k;
        }
        if (ctxFreeAt[best] > now)
            return; // every tag busy; retried at next dispatch-done
        const HostCommand cmd = queue.pop(now);
        ctxFreeAt[best] = now + cfg.timing.ftlOverhead;
        engine.schedule(ctxFreeAt[best], [this, cmd](Tick when) {
            onDispatched(cmd, when);
        });
    }
}

void
Controller::onDispatched(const HostCommand &cmd, Tick now)
{
    // The hash engine (12us, Table I) is pipelined hardware: it adds
    // latency to each write's path without limiting throughput.
    Tick t = now;
    if (cmd.rec.isWrite() && usesHashEngine(cfg.system))
        t += cfg.timing.hashLatency;

    // Dispatch-done events preserve submission order, so the FTL's
    // state transitions stay in trace order at every queue depth.
    const HostOpResult result = cmd.rec.isWrite()
                                    ? ftl.write(cmd.rec.lpn, cmd.rec.fp)
                                    : ftl.read(cmd.rec.lpn);
    const FlashIssue issued = flash.issue(result, t);

    cstats.lastCompletion =
        std::max(cstats.lastCompletion,
                 std::max(issued.completion, issued.gcTail));

    const Tick latency = issued.completion - cmd.rec.arrival;
    if (cmd.rec.isWrite()) {
        ++cstats.writes;
        cstats.writeLatency.record(latency);
    } else {
        ++cstats.reads;
        cstats.readLatency.record(latency);
    }
    cstats.allLatency.record(latency);

    const std::uint64_t idx = cmd.idx;
    engine.schedule(issued.completion,
                    [this, idx](Tick) { onCompletion(idx); });

    // This command's tag is free again: admit the next waiter.
    tryDispatch(now);
}

void
Controller::onCompletion(std::uint64_t idx)
{
    ++completed;
    if (idx == nextInOrder) {
        ++nextInOrder;
        while (!completedAhead.empty() &&
               completedAhead.top() == nextInOrder) {
            ++nextInOrder;
            completedAhead.pop();
        }
    } else {
        // An earlier-submitted command is still in flight on a
        // slower die: this completion overtook it.
        ++cstats.oooCompletions;
        completedAhead.push(idx);
    }
}

void
Controller::drain()
{
    engine.run();
    zombie_assert(outstanding() == 0,
                  "drained engine left commands in flight");
}

} // namespace zombie
