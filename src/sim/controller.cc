#include "sim/controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

FlashIssue
FlashScheduler::issue(const FlashStepBuffer &steps, Tick t)
{
    // User steps chain: a command's next step starts no earlier than
    // the previous step's completion, including completions served
    // from controller RAM.
    Tick step_start = t;
    Tick completion = t;
    for (const FlashStep &step : steps.userSteps) {
        if (step.op == FlashOp::Read && readCache.access(step.ppn)) {
            completion = step_start + res.timing().cacheHit;
        } else {
            if (step.op == FlashOp::Program)
                readCache.invalidate(step.ppn);
            completion = res.scheduleOp(step.op, step.ppn, step_start);
        }
        step_start = completion;
    }

    // GC work starts when the FTL triggers it (issue time) and piles
    // onto its dies/channels; later arrivals to those dies queue
    // behind the collection. Steps on one die serialize through its
    // busy-until in issue order; planes collect in parallel.
    Tick gc_tail = completion;
    for (const FlashStep &step : steps.gcSteps) {
        if (step.op == FlashOp::Program)
            readCache.invalidate(step.ppn);
        gc_tail = std::max(gc_tail,
                           res.scheduleOp(step.op, step.ppn, t, true));
    }
    return FlashIssue{completion, gc_tail};
}

Controller::Controller(const SsdConfig &config, Ftl &ftl_,
                       ResourceModel &resources, ReadCache &cache,
                       EventEngine &events)
    : cfg(config), ftl(ftl_), engine(events),
      flash(resources, cache), depth(config.queueDepth),
      ctxFreeAt(std::max<std::uint32_t>(1, config.queueDepth), 0)
{
    zombie_assert(depth >= 1, "controller needs at least one tag");
    engine.setSink(this);
    inDispatch.reserve(depth);
    // Completion tags free at dispatch, so flash completions stream
    // out-of-order without a queue-depth bound: the reorder window
    // is limited only by how much work the dies can hold. Reserve
    // for a GC-heavy backlog up front (a deeper window would merely
    // regrow the heap, costing an allocation, not correctness).
    completedAhead.reserve(std::max<std::size_t>(
        8192, 2ul * depth));
    // Scratch high-water: one user step plus, in the worst (survival
    // mode) case, a whole victim block of relocation reads/programs
    // and the closing erase — per plane that drained this command.
    steps.reserve(2, 2 * cfg.geom.pagesPerBlock() + 8);
}

void
Controller::submit(const TraceRecord &rec)
{
    if (submitted == 0)
        cstats.firstArrival = rec.arrival;
    arrivals.push_back(HostCommand{rec, submitted++});
    // Keep the event heap ahead of its worst-case occupancy: one
    // HostArrival per outstanding submission plus a few in-flight
    // events (dispatch, flash, GC tail) per tag. Growing by doubling
    // here — where occupancy actually grows — makes the heap's
    // capacity a function of the submission high-water mark alone,
    // so replaying an identical trace never regrows it mid-run.
    const std::size_t need = arrivals.size() + 4ul * depth + 16;
    if (need > eventReserve) {
        eventReserve = std::max(need, 2 * eventReserve);
        engine.reserve(eventReserve);
    }
    engine.schedule(rec.arrival, EventKind::HostArrival);

    // First submission after an idle period re-arms the sampler at
    // the next absolute epoch boundary (boundaries are multiples of
    // the interval, so the grid survives idle gaps unshifted).
    if (sampler && !samplerArmed) {
        samplerArmed = true;
        const Tick from = std::max(engine.now(), rec.arrival);
        engine.schedule(sampler->nextBoundary(from),
                        EventKind::StatsSample);
    }
}

void
Controller::event(Tick now, EventKind kind, std::uint32_t ctx,
                  std::uint64_t arg)
{
    switch (kind) {
      case EventKind::HostArrival: {
        // Arrivals fire in submission order: pull the next command.
        queue.push(arrivals.front());
        arrivals.pop_front();
        tryDispatch(now);
        break;
      }
      case EventKind::Admit:
        // Explicit admission retry; the pipeline itself retries at
        // each dispatch-done, so only external nudges schedule this.
        tryDispatch(now);
        break;
      case EventKind::DispatchDone: {
        const HostCommand cmd = inDispatch[ctx];
        inDispatch.release(ctx);
        onDispatched(cmd, now);
        break;
      }
      case EventKind::FlashDone:
        onCompletion(arg);
        break;
      case EventKind::GcTail:
        // Background GC chain drained. Its completion was already
        // folded into lastCompletion when the steps were issued; the
        // event marks the drain point in the schedule.
        break;
      case EventKind::StatsSample:
        // Epoch boundary: snapshot the registry, then re-arm one
        // interval ahead while commands remain in flight. With the
        // pipeline idle the chain stops (the engine must drain) and
        // the next submission re-arms it.
        sampler->sample(now);
        if (outstanding() > 0)
            engine.schedule(now + sampler->interval(),
                            EventKind::StatsSample);
        else
            samplerArmed = false;
        break;
      default:
        zombie_panic("controller received unknown event kind");
    }
}

void
Controller::tryDispatch(Tick now)
{
    while (!queue.empty()) {
        // Earliest-free context; stable lowest-index tie-break.
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < depth; ++k) {
            if (ctxFreeAt[k] < ctxFreeAt[best])
                best = k;
        }
        if (ctxFreeAt[best] > now)
            return; // every tag busy; retried at next dispatch-done
        const HostCommand cmd = queue.pop(now);
        ctxFreeAt[best] = now + cfg.timing.ftlOverhead;
        const std::uint32_t slot = inDispatch.acquire();
        inDispatch[slot] = cmd;
        engine.schedule(ctxFreeAt[best], EventKind::DispatchDone,
                        slot);
    }
}

void
Controller::onDispatched(const HostCommand &cmd, Tick now)
{
    // The hash engine (12us, Table I) is pipelined hardware: it adds
    // latency to each write's path without limiting throughput.
    Tick t = now;
    if (cmd.rec.isWrite() && usesHashEngine(cfg.system))
        t += cfg.timing.hashLatency;

    // Dispatch-done events preserve submission order, so the FTL's
    // state transitions stay in trace order at every queue depth.
    // The step scratch is reused across commands (cleared by the
    // FTL, capacity kept).
    const HostOpResult result =
        cmd.rec.isWrite() ? ftl.write(cmd.rec.lpn, cmd.rec.fp, steps)
                          : ftl.read(cmd.rec.lpn, steps);
    (void)result;
    const FlashIssue issued = flash.issue(steps, t);

    cstats.lastCompletion =
        std::max(cstats.lastCompletion,
                 std::max(issued.completion, issued.gcTail));

    const Tick latency = issued.completion - cmd.rec.arrival;
    if (cmd.rec.isWrite()) {
        ++cstats.writes;
        cstats.writeLatency.record(latency);
    } else {
        ++cstats.reads;
        cstats.readLatency.record(latency);
    }
    cstats.allLatency.record(latency);

    engine.schedule(issued.completion, EventKind::FlashDone, 0,
                    cmd.idx);
    if (issued.gcTail > issued.completion) {
        cstats.gcTailTicks += issued.gcTail - issued.completion;
        engine.schedule(issued.gcTail, EventKind::GcTail);
    }

    // This command's tag is free again: admit the next waiter.
    tryDispatch(now);
}

void
Controller::onCompletion(std::uint64_t idx)
{
    ++completed;
    if (idx == nextInOrder) {
        ++nextInOrder;
        while (!completedAhead.empty() &&
               completedAhead.front() == nextInOrder) {
            ++nextInOrder;
            std::pop_heap(completedAhead.begin(),
                          completedAhead.end(),
                          std::greater<std::uint64_t>());
            completedAhead.pop_back();
        }
    } else {
        // An earlier-submitted command is still in flight on a
        // slower die: this completion overtook it.
        ++cstats.oooCompletions;
        completedAhead.push_back(idx);
        std::push_heap(completedAhead.begin(), completedAhead.end(),
                       std::greater<std::uint64_t>());
    }
}

void
Controller::registerStats(StatRegistry &registry) const
{
    registry.addCounter("ctrl.reads", &cstats.reads);
    registry.addCounter("ctrl.writes", &cstats.writes);
    registry.addCounter("ctrl.ooo_completions",
                        &cstats.oooCompletions);
    registry.addCounter("ctrl.gc_tail_ticks", &cstats.gcTailTicks);
    registry.addHistogram("ctrl.latency.read", &cstats.readLatency);
    registry.addHistogram("ctrl.latency.write", &cstats.writeLatency);
    registry.addHistogram("ctrl.latency.all", &cstats.allLatency);

    const HostQueueStats &hq = queue.stats();
    registry.addCounter("ctrl.queue.submitted", &hq.submitted);
    registry.addCounter("ctrl.queue.blocked_admissions",
                        &hq.blockedAdmissions);
    registry.addCounter("ctrl.queue.admission_wait_ticks",
                        &hq.admissionWait);
    registry.addGauge("ctrl.queue.waiting", [this] {
        return static_cast<double>(queue.waiting());
    });
    registry.addGauge("ctrl.outstanding", [this] {
        return static_cast<double>(outstanding());
    });
}

void
Controller::drain()
{
    engine.run();
    zombie_assert(outstanding() == 0,
                  "drained engine left commands in flight");
}

} // namespace zombie
