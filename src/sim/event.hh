/**
 * @file
 * Deterministic discrete-event engine for the controller pipeline.
 *
 * The simulator's timing layer is event-driven: host arrivals,
 * dispatch completions and flash completions are handlers scheduled
 * at absolute ticks. Events fire in tick order; events that share a
 * tick fire in the order they were scheduled (a stable FIFO
 * tie-break via a monotone sequence number), so a run is a pure
 * function of the inputs and same-seed runs stay byte-identical.
 *
 * Handlers may schedule further events at or after the tick being
 * dispatched; scheduling strictly in the past is a model bug and
 * panics.
 */

#ifndef ZOMBIE_SIM_EVENT_HH
#define ZOMBIE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace zombie
{

/** Tick-ordered event queue with stable FIFO tie-breaking. */
class EventEngine
{
  public:
    using Handler = std::function<void(Tick)>;

    /** Enqueue @p handler to fire at @p when (>= now()). */
    void schedule(Tick when, Handler handler);

    /** Fire the earliest pending event. Panics when empty. */
    void step();

    /** Fire events until none remain. */
    void run();

    /** Fire events up to and including @p until. */
    void runUntil(Tick until);

    bool empty() const { return heap.empty(); }
    std::size_t pending() const { return heap.size(); }

    /** Tick of the event currently or most recently dispatched. */
    Tick now() const { return current; }

    /** Tick of the earliest pending event. Panics when empty. */
    Tick nextAt() const;

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return fired; }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Handler fn;
    };

    /** Min-heap order: earliest tick first, then schedule order. */
    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace zombie

#endif // ZOMBIE_SIM_EVENT_HH
