/**
 * @file
 * Deterministic discrete-event engine for the controller pipeline.
 *
 * The simulator's timing layer is event-driven: host arrivals,
 * dispatch completions and flash completions are events scheduled at
 * absolute ticks. Events fire in tick order; events that share a
 * tick fire in the order they were scheduled (a stable FIFO
 * tie-break via a monotone sequence number), so a run is a pure
 * function of the inputs and same-seed runs stay byte-identical.
 *
 * Events are typed and POD-sized: a tagged EventKind plus a small
 * fixed payload (context index, argument), dispatched to a single
 * EventSink. The heap is a flat vector of these records, so the
 * engine performs zero heap allocations once the queue has reached
 * its high-water mark — no std::function captures, no per-event
 * nodes (DESIGN.md section 7.10).
 *
 * Handlers may schedule further events at or after the tick being
 * dispatched; scheduling strictly in the past is a model bug and
 * panics.
 */

#ifndef ZOMBIE_SIM_EVENT_HH
#define ZOMBIE_SIM_EVENT_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace zombie
{

/** What a scheduled event means to the sink that receives it. */
enum class EventKind : std::uint8_t
{
    HostArrival,  //!< A trace record reaches the host queue.
    Admit,        //!< Retry admission from the host queue.
    DispatchDone, //!< FTL overhead elapsed; issue to flash.
    FlashDone,    //!< User-visible flash completion.
    GcTail,       //!< Background GC chain drains (bookkeeping only).
    StatsSample,  //!< Epoch-sampler boundary (telemetry only).
};

/** Receiver of dispatched events (the controller, or a test). */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Handle one event at @p now with its fixed payload. */
    virtual void event(Tick now, EventKind kind, std::uint32_t ctx,
                       std::uint64_t arg) = 0;
};

/** Tick-ordered typed event queue with stable FIFO tie-breaking. */
class EventEngine
{
  public:
    /** Route all dispatched events to @p sink (not owned). */
    void setSink(EventSink *sink) { target = sink; }

    /** Enqueue @p kind at @p when (>= now()) with its payload. */
    void schedule(Tick when, EventKind kind, std::uint32_t ctx = 0,
                  std::uint64_t arg = 0);

    /** Fire the earliest pending event. Panics when empty. */
    void step();

    /** Fire events until none remain. */
    void run();

    /** Fire events up to and including @p until. */
    void runUntil(Tick until);

    /** Pre-size the heap so steady state never reallocates. */
    void reserve(std::size_t n) { heap.reserve(n); }

    bool empty() const { return heap.empty(); }
    std::size_t pending() const { return heap.size(); }

    /** Tick of the event currently or most recently dispatched. */
    Tick now() const { return current; }

    /** Tick of the earliest pending event. Panics when empty. */
    Tick nextAt() const;

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return fired; }

  private:
    /** One scheduled event: POD, lives inline in the heap vector. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t arg;
        std::uint32_t ctx;
        EventKind kind;
    };

    /** Min-heap order: earliest tick first, then schedule order. */
    static bool
    later(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    std::vector<Event> heap;
    EventSink *target = nullptr;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace zombie

#endif // ZOMBIE_SIM_EVENT_HH
