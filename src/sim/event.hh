/**
 * @file
 * Deterministic discrete-event engine for the controller pipeline.
 *
 * The simulator's timing layer is event-driven: host arrivals,
 * dispatch completions and flash completions are events scheduled at
 * absolute ticks. Events fire in tick order; events that share a
 * tick fire in the order they were scheduled (a stable FIFO
 * tie-break via a monotone sequence number), so a run is a pure
 * function of the inputs and same-seed runs stay byte-identical.
 *
 * Events are typed and POD-sized: a tagged EventKind plus a small
 * fixed payload (context index, argument), dispatched to a single
 * EventSink. Storage is split by how a stream is scheduled
 * (DESIGN.md section 7.14):
 *
 *  - Monotone lanes: streams whose schedule ticks are nondecreasing
 *    (host arrivals; dispatch-done events, which add a constant
 *    overhead to a monotone clock) are plain FIFO rings. Their front
 *    is their minimum, so insert and extract are O(1) instead of
 *    O(log n) — crucial because a whole trace's arrivals are pending
 *    at once and would otherwise make every heap operation walk a
 *    million-entry heap.
 *  - A 4-ary min-heap for everything that genuinely completes out of
 *    order (flash completions, GC tails, sampler boundaries). This
 *    heap only ever holds the in-flight flash window, so it stays a
 *    few cache lines hot.
 *
 * A dispatch picks the earliest of the heap top and the lane fronts
 * by (when, seq). Sequence numbers are allocated globally at
 * schedule time across all storages, so the dispatch order is
 * exactly the order a single heap would produce: the split is purely
 * an implementation detail and byte-identity is preserved.
 *
 * Everything is flat vectors/rings, so the engine performs zero heap
 * allocations once each storage has reached its high-water mark — no
 * std::function captures, no per-event nodes (DESIGN.md section
 * 7.10).
 *
 * Handlers may schedule further events at or after the tick being
 * dispatched; scheduling strictly in the past is a model bug and
 * panics.
 */

#ifndef ZOMBIE_SIM_EVENT_HH
#define ZOMBIE_SIM_EVENT_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/ring.hh"
#include "util/types.hh"

namespace zombie
{

/** What a scheduled event means to the sink that receives it. */
enum class EventKind : std::uint8_t
{
    HostArrival,  //!< A trace record reaches the host queue.
    Admit,        //!< Retry admission from the host queue.
    DispatchDone, //!< FTL overhead elapsed; issue to flash.
    FlashDone,    //!< User-visible flash completion.
    GcTail,       //!< Background GC chain drains (bookkeeping only).
    StatsSample,  //!< Epoch-sampler boundary (telemetry only).
};

/** Receiver of dispatched events (the controller, or a test). */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Handle one event at @p now with its fixed payload. */
    virtual void event(Tick now, EventKind kind, std::uint32_t ctx,
                       std::uint64_t arg) = 0;
};

/** Tick-ordered typed event queue with stable FIFO tie-breaking. */
class EventEngine
{
  public:
    /**
     * FIFO lanes for monotone event streams. A producer that can
     * prove its schedule ticks are nondecreasing (asserted per push)
     * gets O(1) insert/extract instead of a heap walk.
     */
    static constexpr std::uint32_t kMonotoneLanes = 2;

    /** Lane assignments used by the controller. */
    static constexpr std::uint32_t kArrivalLane = 0;
    static constexpr std::uint32_t kDispatchLane = 1;

    /** Route all dispatched events to @p sink (not owned). */
    void setSink(EventSink *sink) { target = sink; }

    /** Enqueue @p kind at @p when (>= now()) with its payload. */
    void
    schedule(Tick when, EventKind kind, std::uint32_t ctx = 0,
             std::uint64_t arg = 0)
    {
        zombie_assert(when >= current,
                      "event scheduled in the past (", when, " < ",
                      current, ")");
        heapPush(Event{when, nextSeq++, arg, ctx, kind});
    }

    /**
     * Enqueue on monotone lane @p lane: @p when must be >= the
     * lane's previous push (and >= now()). Dispatch order is
     * identical to schedule() — the lane only changes the cost.
     */
    void
    scheduleMonotone(std::uint32_t lane, Tick when, EventKind kind,
                     std::uint32_t ctx = 0, std::uint64_t arg = 0)
    {
        zombie_assert(when >= current,
                      "event scheduled in the past (", when, " < ",
                      current, ")");
        zombie_assert(lane < kMonotoneLanes, "lane out of range");
        zombie_assert(when >= laneTail[lane],
                      "non-monotone push on lane ", lane, " (", when,
                      " < ", laneTail[lane], ")");
        laneTail[lane] = when;
        lanes[lane].push_back(Event{when, nextSeq++, arg, ctx, kind});
    }

    /** Fire the earliest pending event. Panics when empty. */
    void step();

    /** Fire events until none remain. */
    void run();

    /** Fire events up to and including @p until. */
    void runUntil(Tick until);

    /** Pre-size the heap so steady state never reallocates. */
    void reserve(std::size_t n) { heap.reserve(n); }

    /** Pre-size lane @p lane's ring likewise. */
    void
    reserveLane(std::uint32_t lane, std::size_t n)
    {
        zombie_assert(lane < kMonotoneLanes, "lane out of range");
        lanes[lane].reserve(n);
    }

    bool
    empty() const
    {
        if (!heap.empty())
            return false;
        for (const auto &lane : lanes) {
            if (!lane.empty())
                return false;
        }
        return true;
    }

    std::size_t
    pending() const
    {
        std::size_t n = heap.size();
        for (const auto &lane : lanes)
            n += lane.size();
        return n;
    }

    /** Tick of the event currently or most recently dispatched. */
    Tick now() const { return current; }

    /** Tick of the earliest pending event. Panics when empty. */
    Tick nextAt() const;

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return fired; }

  private:
    /** One scheduled event: POD, lives inline in its storage. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t arg;
        std::uint32_t ctx;
        EventKind kind;
    };

    /** Dispatch order: earliest tick first, then schedule order. */
    static bool
    before(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * Earliest pending event across the heap and the lane fronts, or
     * nullptr when idle. Lane fronts are lane minima (pushes are
     * monotone and FIFO breaks same-tick ties by seq), so comparing
     * at most kMonotoneLanes + 1 candidates finds the global min.
     * @p lane_out reports which lane held it (-1 = heap).
     */
    const Event *peekNext(int &lane_out) const;

    void heapPush(const Event &ev);
    void heapPopMin();

    /** 4-ary min-heap: shallower than binary for the same size, so
     *  extract touches fewer cache lines. */
    std::vector<Event> heap;

    RingBuffer<Event> lanes[kMonotoneLanes];

    /** Last tick pushed per lane (monotonicity guard). */
    Tick laneTail[kMonotoneLanes] = {};

    EventSink *target = nullptr;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace zombie

#endif // ZOMBIE_SIM_EVENT_HH
