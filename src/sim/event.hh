/**
 * @file
 * Deterministic discrete-event engine for the controller pipeline.
 *
 * The simulator's timing layer is event-driven: host arrivals,
 * dispatch completions and flash completions are events scheduled at
 * absolute ticks. Events fire in tick order; events that share a
 * tick fire in the order they were scheduled (a stable FIFO
 * tie-break via a monotone sequence number), so a run is a pure
 * function of the inputs and same-seed runs stay byte-identical.
 *
 * Events are typed and POD-sized: a tagged EventKind plus a small
 * fixed payload (context index, argument), dispatched to a single
 * EventSink. Storage is split by how a stream is scheduled
 * (DESIGN.md section 7.14):
 *
 *  - Monotone lanes: streams whose schedule ticks are nondecreasing
 *    (host arrivals; dispatch-done events, which add a constant
 *    overhead to a monotone clock) are plain FIFO rings. Their front
 *    is their minimum, so insert and extract are O(1) instead of
 *    O(log n) — crucial because a whole trace's arrivals are pending
 *    at once and would otherwise make every heap operation walk a
 *    million-entry heap.
 *  - A 4-ary min-heap for everything that genuinely completes out of
 *    order (flash completions, GC tails, sampler boundaries). This
 *    heap only ever holds the in-flight flash window, so it stays a
 *    few cache lines hot.
 *
 * A dispatch picks the earliest of the heap top and the lane fronts
 * by (when, seq). Sequence numbers are allocated at schedule time
 * from two bands: the arrival lane draws from a low band counting
 * from 0, every other storage from a high band starting at
 * kNormalSeqBase. Within a band the numbering is the schedule
 * order, so the dispatch order is exactly the order a single heap
 * would produce for a materialized run — where every arrival is
 * scheduled before the first drain and therefore always carries the
 * smaller seq in a same-tick tie. The banding makes that tie-break
 * independent of *when* the arrival was pushed, which is what lets
 * streamed admission (runBefore + submit, record by record)
 * reproduce the materialized dispatch order byte-for-byte
 * (DESIGN.md section 7.16).
 *
 * Epoch-sharded mode (DESIGN.md section 7.15, configureEpoch): the
 * engine additionally partitions *channel-local* events — flash
 * completions, GC tails, sampler boundaries, anything scheduled via
 * scheduleLocal — into per-channel lanes (small 4-ary heaps). The
 * run loop then proceeds in epochs: it picks the next *global*
 * event's (when, seq) as the horizon, speculatively drains every
 * channel lane's events before that horizon into per-channel commit
 * logs (in parallel on a WorkerBand when the backlog is deep
 * enough), and a serial commit phase replays the logs in global
 * (when, seq) order against the sink. The sink therefore observes
 * exactly the serial dispatch order, and byte-identity holds by
 * construction. If a committed handler schedules a new event that
 * sorts before a not-yet-committed log entry (a cross-affinity
 * dependency the speculation missed — e.g. a sampler re-arm landing
 * mid-epoch), the epoch rolls back: the uncommitted suffix returns
 * to its lanes with original sequence numbers and the loop replays
 * from the top. rolledBackEpochs() counts those.
 *
 * Everything is flat vectors/rings, so the engine performs zero heap
 * allocations once each storage has reached its high-water mark — no
 * std::function captures, no per-event nodes (DESIGN.md section
 * 7.10).
 *
 * Handlers may schedule further events at or after the tick being
 * dispatched; scheduling strictly in the past is a model bug and
 * panics.
 */

#ifndef ZOMBIE_SIM_EVENT_HH
#define ZOMBIE_SIM_EVENT_HH

#include <cstdint>
#include <vector>

#include "telemetry/stat_registry.hh"
#include "util/logging.hh"
#include "util/ring.hh"
#include "util/types.hh"
#include "util/worker_band.hh"

namespace zombie
{

/** What a scheduled event means to the sink that receives it. */
enum class EventKind : std::uint8_t
{
    HostArrival,  //!< A trace record reaches the host queue.
    Admit,        //!< Retry admission from the host queue.
    DispatchDone, //!< FTL overhead elapsed; issue to flash.
    FlashDone,    //!< User-visible flash completion.
    GcTail,       //!< Background GC chain drains (bookkeeping only).
    StatsSample,  //!< Epoch-sampler boundary (telemetry only).
};

/** Number of EventKind values (dispatch-histogram table size). */
inline constexpr std::uint32_t kNumEventKinds = 6;

/** Receiver of dispatched events (the controller, or a test). */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** Handle one event at @p now with its fixed payload. */
    virtual void event(Tick now, EventKind kind, std::uint32_t ctx,
                       std::uint64_t arg) = 0;
};

/** Tick-ordered typed event queue with stable FIFO tie-breaking. */
class EventEngine
{
  public:
    /**
     * FIFO lanes for monotone event streams. A producer that can
     * prove its schedule ticks are nondecreasing (asserted per push)
     * gets O(1) insert/extract instead of a heap walk.
     */
    static constexpr std::uint32_t kMonotoneLanes = 2;

    /** Lane assignments used by the controller. */
    static constexpr std::uint32_t kArrivalLane = 0;
    static constexpr std::uint32_t kDispatchLane = 1;

    /**
     * First sequence number of the non-arrival band. Arrival-lane
     * events count from 0; everything else counts from here, so an
     * arrival wins every same-tick tie against non-arrival events
     * regardless of push order (see the file comment).
     */
    static constexpr std::uint64_t kNormalSeqBase = 1ull << 63;

    /** Route all dispatched events to @p sink (not owned). */
    void setSink(EventSink *sink) { target = sink; }

    /** Enqueue @p kind at @p when (>= now()) with its payload. */
    void
    schedule(Tick when, EventKind kind, std::uint32_t ctx = 0,
             std::uint64_t arg = 0)
    {
        zombie_assert(when >= current,
                      "event scheduled in the past (", when, " < ",
                      current, ")");
        heapPush(heap, Event{when, nextSeq++, arg, ctx, kind});
    }

    /**
     * Enqueue on monotone lane @p lane: @p when must be >= the
     * lane's previous push (and >= now()). Dispatch order is
     * identical to schedule() — the lane only changes the cost.
     */
    void
    scheduleMonotone(std::uint32_t lane, Tick when, EventKind kind,
                     std::uint32_t ctx = 0, std::uint64_t arg = 0)
    {
        zombie_assert(when >= current,
                      "event scheduled in the past (", when, " < ",
                      current, ")");
        zombie_assert(lane < kMonotoneLanes, "lane out of range");
        zombie_assert(when >= laneTail[lane],
                      "non-monotone push on lane ", lane, " (", when,
                      " < ", laneTail[lane], ")");
        laneTail[lane] = when;
        const std::uint64_t seq =
            lane == kArrivalLane ? arrivalSeq++ : nextSeq++;
        lanes[lane].push_back(Event{when, seq, arg, ctx, kind});
    }

    /**
     * Enqueue a channel-local event. Without epoch mode this is
     * exactly schedule() — same storage, same sequence numbering —
     * so the serial path is untouched. In epoch mode the event lands
     * on channel lane @p channel and is drained speculatively; the
     * dispatch order the sink observes is still the global (when,
     * seq) order. The channel is a load-balancing affinity hint
     * only: any value in range is correct.
     */
    void
    scheduleLocal(Tick when, EventKind kind, std::uint32_t ctx,
                  std::uint64_t arg, std::uint32_t channel)
    {
        if (chanLanes.empty()) {
            schedule(when, kind, ctx, arg);
            return;
        }
        zombie_assert(when >= current,
                      "event scheduled in the past (", when, " < ",
                      current, ")");
        zombie_assert(channel < chanLanes.size(),
                      "channel lane out of range");
        heapPush(chanLanes[channel],
                 Event{when, nextSeq++, arg, ctx, kind});
        laneMask |= 1ull << channel;
        ++localPending;
    }

    /**
     * Enable epoch-sharded execution: scheduleLocal events route to
     * @p channels per-channel lanes and run() proceeds in epochs.
     * @p worker_band (not owned, may be null) drains lanes in
     * parallel with @p shard_count shard strides over the channels,
     * exactly like the sharded flash phase; a null band or
     * shard_count <= 1 drains inline (same epochs, same commit
     * order, no threads). Must be called while the engine is empty.
     */
    void configureEpoch(std::uint32_t channels,
                        WorkerBand *worker_band,
                        std::uint32_t shard_count);

    /** Whether epoch-sharded execution is configured. */
    bool epochMode() const { return !chanLanes.empty(); }

    /** Fire the earliest pending event. Panics when empty. */
    void step();

    /** Fire events until none remain (epoch loop in epoch mode). */
    void run();

    /** Fire events up to and including @p until. */
    void runUntil(Tick until);

    /**
     * Fire every event that dispatches before an arrival-lane push
     * at @p when would — i.e. everything sorting before (when,
     * next-arrival-seq). The streamed-admission pump: calling this
     * just before each submit keeps the dispatch order identical to
     * submitting the whole trace first and draining once, while the
     * arrival backlog stays bounded by the in-flight window. Runs
     * the epoch loop in epoch mode, so speculation is preserved.
     */
    void runBefore(Tick when);

    /** Pre-size the heap so steady state never reallocates. */
    void
    reserve(std::size_t n)
    {
        heap.reserve(n);
        // In epoch mode the in-flight events the heap would hold sit
        // on the channel lanes instead (worst case: all on one
        // channel), and each drained lane spills into its commit
        // log, so the same occupancy bound pre-sizes all three.
        for (auto &lane : chanLanes)
            lane.reserve(n);
        for (auto &log : chanLog)
            log.reserve(n);
    }

    /** Pre-size lane @p lane's ring likewise. */
    void
    reserveLane(std::uint32_t lane, std::size_t n)
    {
        zombie_assert(lane < kMonotoneLanes, "lane out of range");
        lanes[lane].reserve(n);
    }

    bool
    empty() const
    {
        if (!heap.empty() || localPending > 0)
            return false;
        for (const auto &lane : lanes) {
            if (!lane.empty())
                return false;
        }
        return true;
    }

    std::size_t
    pending() const
    {
        std::size_t n = heap.size() + localPending;
        for (const auto &lane : lanes)
            n += lane.size();
        return n;
    }

    /** Tick of the event currently or most recently dispatched. */
    Tick now() const { return current; }

    /** Tick of the earliest pending event. Panics when empty. */
    Tick nextAt() const;

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return fired; }

    /** Dispatches of one kind (micro_event_engine histogram). */
    std::uint64_t
    dispatchedOfKind(EventKind kind) const
    {
        return kindFired[static_cast<std::uint32_t>(kind)];
    }

    /** Epochs executed through the speculative commit path. */
    std::uint64_t epochs() const { return nEpochs; }

    /** Epochs that hit a cross-affinity conflict and rolled back. */
    std::uint64_t rolledBackEpochs() const { return nRolledBack; }

    /** Channel-lane events drained speculatively (then committed or
     *  rolled back). */
    std::uint64_t speculatedEvents() const { return nSpeculated; }

    /** Largest single-epoch drain (occupancy high-water mark). */
    std::uint64_t maxEpochSpan() const { return epochSpanMax; }

    /**
     * Register the epoch counters under "engine.". Only meaningful
     * in epoch mode; the owner gates the call so serial-mode registry
     * dumps stay byte-identical to historical output.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    /** One scheduled event: POD, lives inline in its storage. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t arg;
        std::uint32_t ctx;
        EventKind kind;
    };

    /** Dispatch order: earliest tick first, then schedule order. */
    static bool
    before(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * Earliest pending event across every storage, or nullptr when
     * idle. Lane fronts are lane minima (pushes are monotone and
     * FIFO breaks same-tick ties by seq) and channel-lane tops are
     * their heap minima, so comparing one candidate per storage
     * finds the global min. @p lane_out reports which storage held
     * it: -1 = heap, [0, kMonotoneLanes) = monotone lane,
     * kMonotoneLanes + c = channel lane c.
     */
    const Event *peekNext(int &lane_out) const;

    /** Same, over the global spine only (heap + monotone lanes). */
    const Event *peekGlobal(int &lane_out) const;

    /** Pop + dispatch one event found by peekNext. */
    void dispatch(const Event &ev, int lane);

    /** Serial dispatch loop bounded by (bound_when, bound_seq). */
    void runSerial(Tick bound_when, std::uint64_t bound_seq);

    /** The epoch loop behind run(), bounded likewise. */
    void runEpochs(Tick bound_when, std::uint64_t bound_seq);

    /** Drain channel @p c's lane into its commit log up to the
     *  current horizon (hWhen, hSeq). */
    void drainChannel(std::uint32_t c);

    /** WorkerBand thunk: drain every channel of one shard. */
    static void drainThunk(void *ctx, unsigned shard);

    /**
     * Serial commit: replay the drained logs in global (when, seq)
     * order, rolling back the uncommitted suffix on conflict.
     */
    void commitLogs();

    /** Whether any pending event sorts before @p ev. */
    bool pendingBefore(const Event &ev) const;

    static void heapPush(std::vector<Event> &h, const Event &ev);
    static void heapPopMin(std::vector<Event> &h);

    /** 4-ary min-heap: shallower than binary for the same size, so
     *  extract touches fewer cache lines. */
    std::vector<Event> heap;

    RingBuffer<Event> lanes[kMonotoneLanes];

    /** Last tick pushed per lane (monotonicity guard). */
    Tick laneTail[kMonotoneLanes] = {};

    /** Per-channel 4-ary heaps for channel-local events (epoch mode
     *  only; empty otherwise). */
    std::vector<std::vector<Event>> chanLanes;

    /** Per-channel commit logs filled by the drain phase, in each
     *  channel's (when, seq) order. */
    std::vector<std::vector<Event>> chanLog;

    /** Commit cursor per channel (index into chanLog). */
    std::vector<std::size_t> logHead;

    /**
     * Superset mask of channels whose lanes may be non-empty (bit c
     * = lane c; configureEpoch caps channels at 64). Set eagerly on
     * every push, cleared lazily — the parallel drain never touches
     * it, so a set bit over an empty lane is possible, but a
     * non-empty lane always has its bit set. A single set bit lets
     * the epoch loop dispatch that lane serially, skipping the
     * drain/merge machinery entirely.
     */
    std::uint64_t laneMask = 0;

    /** Channels whose commit logs are non-empty this epoch (scratch
     *  for commitLogs; rebuilt by every drain). */
    std::vector<std::uint32_t> activeCh;

    /** Events currently held across all channel lanes. */
    std::size_t localPending = 0;

    /** Drain horizon: the next global event's (when, seq). Shared
     *  with the drain thunk; written only between band runs. */
    Tick hWhen = 0;
    std::uint64_t hSeq = 0;

    /** Epoch drain band (not owned; null = inline drain). */
    WorkerBand *band = nullptr;
    std::uint32_t drainShards = 1;

    /** Backlogs below this drain inline: the band handshake costs
     *  more than the pops it would spread (cf. kMinShardSteps). */
    static constexpr std::size_t kMinSpecEvents = 24;

    EventSink *target = nullptr;
    Tick current = 0;

    /** Band counters: arrival lane low, everything else high. */
    std::uint64_t nextSeq = kNormalSeqBase;
    std::uint64_t arrivalSeq = 0;

    std::uint64_t fired = 0;
    std::uint64_t kindFired[kNumEventKinds] = {};

    // Epoch-mode observability (see the accessors above).
    std::uint64_t nEpochs = 0;
    std::uint64_t nRolledBack = 0;
    std::uint64_t nSpeculated = 0;
    std::uint64_t epochSpanMax = 0;
};

} // namespace zombie

#endif // ZOMBIE_SIM_EVENT_HH
