/**
 * @file
 * NVMe-style submission-queue arbiter.
 *
 * The controller holds one submission queue per tenant; whenever a
 * dispatch context (tag) frees up, the arbiter names the tenant whose
 * queue is served next. Two schemes, mirroring the NVMe arbitration
 * mechanisms:
 *
 *  - round-robin: tenants take strict turns,
 *  - weighted round-robin: tenant t is served up to weight[t]
 *    commands per turn before the cursor advances.
 *
 * The arbiter is work-conserving: an ineligible tenant (empty queue
 * or exhausted tag budget) is skipped — forfeiting the remainder of
 * its turn — so a free tag never idles while any tenant has work.
 * State is two integers; given the same eligibility sequence the
 * pick sequence is a pure function, which keeps multi-tenant runs
 * deterministic.
 */

#ifndef ZOMBIE_SIM_ARBITER_HH
#define ZOMBIE_SIM_ARBITER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zombie
{

/** Arbitration schemes (NVMe round-robin and weighted variants). */
enum class ArbiterKind : std::uint8_t
{
    RoundRobin,
    WeightedRoundRobin,
};

ArbiterKind arbiterKindFromString(const std::string &name);
std::string toString(ArbiterKind kind);

/** Parsed --arbiter specification. */
struct ArbiterSpec
{
    ArbiterKind kind = ArbiterKind::RoundRobin;

    /** Per-tenant weights (wrr only; empty = equal weights). */
    std::vector<std::uint32_t> weights;
};

/**
 * Parse "rr" or "wrr:<w0,w1,..>" ("wrr" alone = equal weights).
 * Fatal (user error) on anything else.
 */
ArbiterSpec parseArbiterSpec(const std::string &text);

/** Weighted-round-robin cursor over per-tenant submission queues. */
class QueueArbiter
{
  public:
    /** Returned by pick() when no tenant is eligible. */
    static constexpr std::uint32_t kNone = ~0u;

    /**
     * @p weights must be empty (equal weights) or hold one positive
     * entry per tenant; round-robin ignores weights entirely.
     */
    QueueArbiter(ArbiterKind kind, std::uint32_t tenants,
                 const std::vector<std::uint32_t> &weights);

    std::uint32_t tenants() const
    {
        return static_cast<std::uint32_t>(turnWeights.size());
    }

    ArbiterKind kind() const { return arbKind; }

    const std::vector<std::uint32_t> &weights() const
    {
        return turnWeights;
    }

    /**
     * Name the next tenant to serve. @p eligible is consulted at
     * most once per tenant; the first eligible tenant in weighted
     * turn order wins and consumes one unit of its turn credit.
     * @return kNone when no tenant is eligible (no state changes).
     */
    template <typename EligibleFn>
    std::uint32_t
    pick(EligibleFn &&eligible)
    {
        const auto n = tenants();
        // Spent turn credit ends the turn before the scan, so every
        // probed tenant holds fresh credit (weights are positive).
        if (served >= turnWeights[cursor]) {
            cursor = cursor + 1 == n ? 0 : cursor + 1;
            served = 0;
        }
        for (std::uint32_t scanned = 0; scanned < n; ++scanned) {
            if (eligible(cursor)) {
                ++served;
                return cursor;
            }
            // Work-conserving skip forfeits the rest of the turn.
            cursor = cursor + 1 == n ? 0 : cursor + 1;
            served = 0;
        }
        return kNone;
    }

  private:
    ArbiterKind arbKind;
    std::vector<std::uint32_t> turnWeights;
    std::uint32_t cursor = 0;

    /** Commands granted to `cursor` in its current turn. */
    std::uint32_t served = 0;
};

} // namespace zombie

#endif // ZOMBIE_SIM_ARBITER_HH
