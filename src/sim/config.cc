#include "sim/config.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace zombie
{

SystemKind
systemKindFromString(const std::string &name)
{
    if (name == "baseline")
        return SystemKind::Baseline;
    if (name == "mq" || name == "dvp" || name == "mq-dvp")
        return SystemKind::MqDvp;
    if (name == "lru")
        return SystemKind::LruDvp;
    if (name == "lx" || name == "lx-ssd")
        return SystemKind::LxSsd;
    if (name == "dedup")
        return SystemKind::Dedup;
    if (name == "dvp+dedup" || name == "dvp-dedup")
        return SystemKind::DvpDedup;
    if (name == "ideal")
        return SystemKind::Ideal;
    zombie_fatal("unknown system '", name,
                 "' (baseline|dvp|lru|lx|dedup|dvp+dedup|ideal)");
}

std::string
toString(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Baseline:
        return "baseline";
      case SystemKind::MqDvp:
        return "dvp";
      case SystemKind::LruDvp:
        return "lru";
      case SystemKind::LxSsd:
        return "lx";
      case SystemKind::Dedup:
        return "dedup";
      case SystemKind::DvpDedup:
        return "dvp+dedup";
      case SystemKind::Ideal:
        return "ideal";
    }
    zombie_panic("unreachable system kind");
}

DvpScope
dvpScopeFromString(const std::string &name)
{
    if (name == "shared")
        return DvpScope::Shared;
    if (name == "partitioned" || name == "part")
        return DvpScope::Partitioned;
    zombie_fatal("unknown DVP scope '", name,
                 "' (shared | partitioned)");
}

std::string
toString(DvpScope scope)
{
    switch (scope) {
      case DvpScope::Shared:
        return "shared";
      case DvpScope::Partitioned:
        return "partitioned";
    }
    zombie_panic("unreachable DVP scope");
}

EngineMode
engineModeFromString(const std::string &name)
{
    if (name == "serial")
        return EngineMode::Serial;
    if (name == "epoch")
        return EngineMode::Epoch;
    zombie_fatal("unknown engine mode '", name, "' (serial | epoch)");
}

std::string
toString(EngineMode mode)
{
    switch (mode) {
      case EngineMode::Serial:
        return "serial";
      case EngineMode::Epoch:
        return "epoch";
    }
    zombie_panic("unreachable engine mode");
}

bool
usesHashEngine(SystemKind kind)
{
    return kind != SystemKind::Baseline;
}

bool
usesDvp(SystemKind kind)
{
    switch (kind) {
      case SystemKind::MqDvp:
      case SystemKind::LruDvp:
      case SystemKind::LxSsd:
      case SystemKind::DvpDedup:
      case SystemKind::Ideal:
        return true;
      default:
        return false;
    }
}

bool
usesDedup(SystemKind kind)
{
    return kind == SystemKind::Dedup || kind == SystemKind::DvpDedup;
}

std::string
SsdConfig::resolvedGcPolicy() const
{
    if (gcPolicy != "auto")
        return gcPolicy;
    return usesDvp(system) ? "popularity" : "greedy";
}

std::vector<Lpn>
SsdConfig::namespaceBases() const
{
    std::vector<Lpn> bases;
    bases.reserve(std::max<std::size_t>(1, namespacePages.size()));
    Lpn base = 0;
    if (namespacePages.empty()) {
        bases.push_back(0);
        return bases;
    }
    for (const std::uint64_t pages : namespacePages) {
        bases.push_back(base);
        base += pages;
    }
    return bases;
}

double
SsdConfig::overProvisioning() const
{
    zombie_assert(logicalPages > 0, "config has no logical space");
    return static_cast<double>(geom.totalPages() - logicalPages) /
           static_cast<double>(logicalPages);
}

SsdConfig
SsdConfig::forFootprint(std::uint64_t footprint_pages,
                        SystemKind system_kind, double op)
{
    if (footprint_pages == 0)
        zombie_fatal("cannot size an SSD for an empty footprint");
    if (op <= 0.0)
        zombie_fatal("over-provisioning must be positive");

    SsdConfig cfg;
    cfg.system = system_kind;
    cfg.logicalPages = footprint_pages;

    const auto physical_target = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(footprint_pages) * (1.0 + op)));

    // Keep the Table I channel/chip structure; shrink dies/planes at
    // simulation scale, then pick blocks-per-plane to fit. A floor of
    // 16 blocks per plane keeps GC watermarks meaningful.
    const std::uint32_t channels = 8, chips = 8, pages_per_block = 256;
    std::uint32_t dies = 4, planes = 2;
    const std::uint32_t min_blocks = 16;
    auto blocks_needed = [&](std::uint32_t d, std::uint32_t p) {
        const std::uint64_t plane_count =
            std::uint64_t(channels) * chips * d * p;
        const std::uint64_t per_plane =
            std::uint64_t(pages_per_block);
        return static_cast<std::uint32_t>(
            (physical_target + plane_count * per_plane - 1) /
            (plane_count * per_plane));
    };
    while ((dies > 1 || planes > 1) &&
           blocks_needed(dies, planes) < min_blocks) {
        if (planes > 1)
            planes /= 2;
        else
            dies /= 2;
    }
    const std::uint32_t blocks =
        std::max(min_blocks, blocks_needed(dies, planes));
    cfg.geom = Geometry(channels, chips, dies, planes, blocks,
                        pages_per_block);

    // The structural floor (16 blocks/plane across 8x8 chips) can
    // leave the drive much larger than the trace footprint. Export a
    // logical space sized to the drive instead, and precondition it:
    // the region beyond the trace footprint holds static cold data,
    // so utilization — and therefore GC pressure — matches the
    // configured over-provisioning no matter the trace size.
    const auto op_logical = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(cfg.geom.totalPages()) /
                   (1.0 + op)));
    cfg.logicalPages = std::max(footprint_pages, op_logical);
    cfg.validate();
    return cfg;
}

SsdConfig
SsdConfig::forProfile(const WorkloadProfile &profile,
                      SystemKind system_kind, double op)
{
    return forFootprint(profile.totalLpnSpace(), system_kind, op);
}

std::string
SsdConfig::describe() const
{
    std::ostringstream oss;
    oss << toString(system) << ": " << geom.channels() << "ch x "
        << geom.chipsPerChannel() << "chips x " << geom.diesPerChip()
        << "dies x " << geom.planesPerDie() << "planes x "
        << geom.blocksPerPlane() << "blk x " << geom.pagesPerBlock()
        << "pg (" << geom.capacityBytes() / (1024 * 1024)
        << " MiB physical, OP "
        << static_cast<int>(std::lround(overProvisioning() * 100))
        << "%, gc=" << resolvedGcPolicy();
    if (queueDepth != 1)
        oss << ", qd=" << queueDepth;
    if (tenants > 1) {
        oss << ", tenants=" << tenants << " arbiter="
            << toString(arbiter);
        if (!arbiterWeights.empty()) {
            oss << "[";
            for (std::size_t t = 0; t < arbiterWeights.size(); ++t)
                oss << (t ? ":" : "") << arbiterWeights[t];
            oss << "]";
        }
        if (dvpScope == DvpScope::Partitioned && usesDvp(system))
            oss << " dvp-scope=partitioned";
    }
    if (usesDvp(system))
        oss << ", pool=" << mq.capacity << " entries";
    oss << ")";
    return oss.str();
}

void
SsdConfig::validate() const
{
    if (logicalPages == 0)
        zombie_fatal("SsdConfig: logicalPages must be > 0");
    if (logicalPages >= geom.totalPages())
        zombie_fatal("SsdConfig: no over-provisioning space");
    if (prefillFraction < 0.0 || prefillFraction > 1.0)
        zombie_fatal("SsdConfig: prefillFraction out of [0,1]");
    if (gcPagesPerStep == 0)
        zombie_fatal("SsdConfig: gcPagesPerStep must be > 0");
    if (queueDepth == 0)
        zombie_fatal("SsdConfig: queueDepth must be >= 1");
    if (shards == 0)
        zombie_fatal("SsdConfig: shards must be >= 1");
    if (queueDepth > 65536)
        zombie_fatal("SsdConfig: queueDepth ", queueDepth,
                     " exceeds the 65536-tag ceiling");
    if (gcPolicy != "auto" && gcPolicy != "greedy" &&
        gcPolicy != "popularity" && gcPolicy != "wear:greedy" &&
        gcPolicy != "wear:popularity") {
        zombie_fatal("SsdConfig: bad gcPolicy '", gcPolicy, "'");
    }
    if (tenants == 0 || tenants > kMaxTenants) {
        zombie_fatal("SsdConfig: tenants ", tenants,
                     " outside [1, ", kMaxTenants, "]");
    }
    if (!arbiterWeights.empty() && arbiterWeights.size() != tenants) {
        zombie_fatal("SsdConfig: ", arbiterWeights.size(),
                     " arbiter weights for ", tenants, " tenants");
    }
    for (const std::uint32_t w : arbiterWeights) {
        if (w == 0)
            zombie_fatal("SsdConfig: arbiter weights must be > 0");
    }
    if (tenants > 1) {
        if (namespacePages.size() != tenants) {
            zombie_fatal("SsdConfig: ", namespacePages.size(),
                         " namespace sizes for ", tenants,
                         " tenants");
        }
        std::uint64_t total = 0;
        for (const std::uint64_t pages : namespacePages) {
            if (pages == 0)
                zombie_fatal("SsdConfig: empty namespace");
            total += pages;
        }
        if (total > logicalPages) {
            zombie_fatal("SsdConfig: namespaces cover ", total,
                         " pages but the drive exports only ",
                         logicalPages);
        }
    }
}

} // namespace zombie
