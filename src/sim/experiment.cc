#include "sim/experiment.hh"

#include "trace/generator.hh"

namespace zombie
{

SimResult
runSystemOnProfile(const WorkloadProfile &profile, SystemKind system,
                   const ExperimentOptions &opts)
{
    SyntheticTraceGenerator gen(profile);

    SsdConfig cfg = SsdConfig::forProfile(profile, system);
    cfg.mq.capacity = opts.poolCapacity;
    cfg.mq.numQueues = opts.mqQueues;
    cfg.gcPolicy = opts.gcPolicy;
    cfg.queueDepth = opts.queueDepth;
    if (opts.tweak)
        opts.tweak(cfg);

    Ssd ssd(cfg);
    ssd.prefill();
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    return ssd.result();
}

SimResult
runSystem(Workload workload, SystemKind system,
          const ExperimentOptions &opts)
{
    const WorkloadProfile profile = WorkloadProfile::preset(
        workload, opts.day, opts.requests, opts.seed);
    return runSystemOnProfile(profile, system, opts);
}

Comparison
compareSystems(Workload workload,
               const std::vector<SystemKind> &systems,
               const ExperimentOptions &opts)
{
    Comparison cmp;
    cmp.baseline = runSystem(workload, SystemKind::Baseline, opts);
    for (const SystemKind kind : systems)
        cmp.systems.push_back(runSystem(workload, kind, opts));
    return cmp;
}

} // namespace zombie
