#include "sim/experiment.hh"

#include <algorithm>
#include <fstream>

#include "trace/generator.hh"
#include "trace/multi_tenant.hh"
#include "trace/prefetch.hh"
#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Open @p path for writing; fatal (user error) when that fails. */
std::ofstream
openOutput(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        zombie_fatal("cannot write telemetry output: ", path);
    return os;
}

/** Write the run's requested telemetry artifacts (post-drain). */
void
writeTelemetry(Ssd &ssd, const ExperimentOptions &opts)
{
    if (!opts.statsCsv.empty() || !opts.statsJson.empty()) {
        const EpochSampler *sampler = ssd.sampler();
        if (!sampler)
            zombie_fatal("epoch series requested without "
                         "--stats-interval");
        if (!opts.statsCsv.empty()) {
            auto os = openOutput(opts.statsCsv);
            sampler->writeCsv(os);
        }
        if (!opts.statsJson.empty()) {
            auto os = openOutput(opts.statsJson);
            sampler->writeJson(os);
        }
    }
    if (!opts.traceOut.empty()) {
        auto os = openOutput(opts.traceOut);
        ssd.tracer()->writeJson(os);
    }
    if (!opts.statsDump.empty()) {
        auto os = openOutput(opts.statsDump);
        ssd.statRegistry().dump(os);
    }
}

/** Apply the option knobs shared by every entry point. */
void
applyOptions(SsdConfig &cfg, const ExperimentOptions &opts)
{
    cfg.mq.capacity = opts.poolCapacity;
    cfg.mq.numQueues = opts.mqQueues;
    cfg.gcPolicy = opts.gcPolicy;
    cfg.queueDepth = opts.queueDepth;
    cfg.shards = opts.shards;
    cfg.engineMode = engineModeFromString(opts.engine);
    const ArbiterSpec arb = parseArbiterSpec(opts.arbiter);
    cfg.arbiter = arb.kind;
    cfg.arbiterWeights = arb.weights;
    cfg.dvpScope = dvpScopeFromString(opts.dvpScope);
    cfg.statsInterval = opts.statsInterval;
    cfg.opTrace = !opts.traceOut.empty();
    cfg.traceLimit = opts.traceLimit;
}

} // namespace

SimResult
runSystemOnProfile(const WorkloadProfile &profile, SystemKind system,
                   const ExperimentOptions &opts)
{
    if (opts.tenants > 1) {
        return runTenantProfiles(
            splitProfileAcrossTenants(profile, opts.tenants), system,
            opts);
    }

    SyntheticTraceGenerator gen(profile);

    SsdConfig cfg = SsdConfig::forProfile(profile, system);
    applyOptions(cfg, opts);
    if (opts.tweak)
        opts.tweak(cfg);

    Ssd ssd(cfg);
    ssd.prefill();
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    SimResult result = ssd.result();
    writeTelemetry(ssd, opts);
    return result;
}

SimResult
runSystemOnScannedTrace(const ScannedTrace &scan, SystemKind system,
                        const ExperimentOptions &opts, bool streamed)
{
    SsdConfig cfg = SsdConfig::forFootprint(
        std::max<std::uint64_t>(scan.footprintPages, 1), system);
    applyOptions(cfg, opts);
    if (scan.tenantPages.size() > 1) {
        // Device-routed trace: the scan laid the namespaces out.
        cfg.tenants =
            static_cast<std::uint32_t>(scan.tenantPages.size());
        cfg.namespacePages = scan.tenantPages;
    }
    if (opts.tweak)
        opts.tweak(cfg);

    Ssd ssd(cfg);
    auto src = scan.factory();
    if (streamed) {
        // Decode ahead on a producer thread (order-preserving, so
        // the engine sees the identical record stream either way).
        src = maybePrefetch(
            std::move(src),
            static_cast<std::size_t>(opts.prefetchBatch));
        ssd.run(*src);
    } else {
        const std::vector<TraceRecord> records = drainSource(*src);
        ssd.run(records);
    }
    SimResult result = ssd.result();
    writeTelemetry(ssd, opts);
    return result;
}

SimResult
runTenantProfiles(const std::vector<WorkloadProfile> &profiles,
                  SystemKind system, const ExperimentOptions &opts)
{
    MultiTenantTraceGenerator gen(profiles);

    // Size the drive for the combined footprint; each namespace is
    // a contiguous LPN range at its tenant's base.
    SsdConfig cfg =
        SsdConfig::forFootprint(gen.totalLpnSpace(), system);
    applyOptions(cfg, opts);
    cfg.tenants = gen.tenants();
    cfg.namespacePages = gen.allNamespacePages();
    if (opts.tweak)
        opts.tweak(cfg);

    Ssd ssd(cfg);
    ssd.prefill();
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    SimResult result = ssd.result();
    writeTelemetry(ssd, opts);
    return result;
}

SimResult
runSystem(Workload workload, SystemKind system,
          const ExperimentOptions &opts)
{
    const WorkloadProfile profile = WorkloadProfile::preset(
        workload, opts.day, opts.requests, opts.seed);
    return runSystemOnProfile(profile, system, opts);
}

Comparison
compareSystems(Workload workload,
               const std::vector<SystemKind> &systems,
               const ExperimentOptions &opts)
{
    Comparison cmp;
    cmp.baseline = runSystem(workload, SystemKind::Baseline, opts);
    for (const SystemKind kind : systems)
        cmp.systems.push_back(runSystem(workload, kind, opts));
    return cmp;
}

} // namespace zombie
