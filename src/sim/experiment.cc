#include "sim/experiment.hh"

#include <fstream>

#include "trace/generator.hh"
#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Open @p path for writing; fatal (user error) when that fails. */
std::ofstream
openOutput(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        zombie_fatal("cannot write telemetry output: ", path);
    return os;
}

/** Write the run's requested telemetry artifacts (post-drain). */
void
writeTelemetry(Ssd &ssd, const ExperimentOptions &opts)
{
    if (!opts.statsCsv.empty() || !opts.statsJson.empty()) {
        const EpochSampler *sampler = ssd.sampler();
        if (!sampler)
            zombie_fatal("epoch series requested without "
                         "--stats-interval");
        if (!opts.statsCsv.empty()) {
            auto os = openOutput(opts.statsCsv);
            sampler->writeCsv(os);
        }
        if (!opts.statsJson.empty()) {
            auto os = openOutput(opts.statsJson);
            sampler->writeJson(os);
        }
    }
    if (!opts.traceOut.empty()) {
        auto os = openOutput(opts.traceOut);
        ssd.tracer()->writeJson(os);
    }
    if (!opts.statsDump.empty()) {
        auto os = openOutput(opts.statsDump);
        ssd.statRegistry().dump(os);
    }
}

} // namespace

SimResult
runSystemOnProfile(const WorkloadProfile &profile, SystemKind system,
                   const ExperimentOptions &opts)
{
    SyntheticTraceGenerator gen(profile);

    SsdConfig cfg = SsdConfig::forProfile(profile, system);
    cfg.mq.capacity = opts.poolCapacity;
    cfg.mq.numQueues = opts.mqQueues;
    cfg.gcPolicy = opts.gcPolicy;
    cfg.queueDepth = opts.queueDepth;
    cfg.statsInterval = opts.statsInterval;
    cfg.opTrace = !opts.traceOut.empty();
    cfg.traceLimit = opts.traceLimit;
    if (opts.tweak)
        opts.tweak(cfg);

    Ssd ssd(cfg);
    ssd.prefill();
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    SimResult result = ssd.result();
    writeTelemetry(ssd, opts);
    return result;
}

SimResult
runSystem(Workload workload, SystemKind system,
          const ExperimentOptions &opts)
{
    const WorkloadProfile profile = WorkloadProfile::preset(
        workload, opts.day, opts.requests, opts.seed);
    return runSystemOnProfile(profile, system, opts);
}

Comparison
compareSystems(Workload workload,
               const std::vector<SystemKind> &systems,
               const ExperimentOptions &opts)
{
    Comparison cmp;
    cmp.baseline = runSystem(workload, SystemKind::Baseline, opts);
    for (const SystemKind kind : systems)
        cmp.systems.push_back(runSystem(workload, kind, opts));
    return cmp;
}

} // namespace zombie
