#include "sim/host_queue.hh"

#include "util/logging.hh"

namespace zombie
{

double
HostQueueStats::meanAdmissionWaitUs() const
{
    if (submitted == 0)
        return 0.0;
    return usFromTicks(admissionWait) / static_cast<double>(submitted);
}

void
HostQueue::push(const HostCommand &cmd)
{
    fifo.push_back(cmd);
    ++qstats.submitted;
    if (fifo.size() > qstats.maxWaiting)
        qstats.maxWaiting = fifo.size();
}

HostCommand
HostQueue::pop(Tick now)
{
    zombie_assert(!fifo.empty(), "pop() on an empty host queue");
    HostCommand cmd = fifo.front();
    fifo.pop_front();
    if (now > cmd.rec.arrival) {
        ++qstats.blockedAdmissions;
        qstats.admissionWait += now - cmd.rec.arrival;
    }
    return cmd;
}

} // namespace zombie
