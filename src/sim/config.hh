/**
 * @file
 * Simulated-system configuration (paper Table I + section V).
 *
 * SystemKind enumerates the studied systems: Baseline, the proposed
 * MQ dead-value pool, the LRU strawman, LX-SSD prior work, the Dedup
 * baseline, DVP-on-Dedup, and the infinite-pool Ideal.
 *
 * Geometry scaling: the paper models a 1TB drive; at simulation scale
 * the channel/chip structure (8x8) and all Table I latencies are kept
 * while dies/planes/blocks-per-plane shrink so that the physical
 * capacity is the trace footprint plus 15% over-provisioning — the
 * utilization ratio, not absolute capacity, is what drives GC.
 */

#ifndef ZOMBIE_SIM_CONFIG_HH
#define ZOMBIE_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dvp/mq_dvp.hh"
#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "sim/arbiter.hh"
#include "trace/profile.hh"
#include "trace/record.hh"

namespace zombie
{

/** The systems compared in the evaluation (section V-A). */
enum class SystemKind
{
    Baseline, //!< no content engine at all
    MqDvp,    //!< the proposal: MQ dead-value pool
    LruDvp,   //!< single-LRU pool (Figures 5/6)
    LxSsd,    //!< prior work [20]
    Dedup,    //!< in-line dedup only [4,5]
    DvpDedup, //!< MQ-DVP layered on dedup (section VII)
    Ideal,    //!< infinite dead-value pool
};

SystemKind systemKindFromString(const std::string &name);
std::string toString(SystemKind kind);

/**
 * Dead-value pool tenancy when the drive hosts several tenants:
 * Shared exposes one drive-wide pool to every namespace;
 * Partitioned gives each tenant a private pool over its namespace
 * range (see dvp/partitioned_dvp.hh).
 */
enum class DvpScope : std::uint8_t
{
    Shared,
    Partitioned,
};

DvpScope dvpScopeFromString(const std::string &name);
std::string toString(DvpScope scope);

/**
 * Event-engine execution strategy. Serial — the default — is the
 * historical single-queue dispatch loop. Epoch runs channel-local
 * completions through speculative per-channel lanes with epoch
 * barriers (sim/event.hh, DESIGN.md section 7.15); results are
 * byte-identical to Serial by construction, so this is purely an
 * execution-speed knob, like shards.
 */
enum class EngineMode : std::uint8_t
{
    Serial,
    Epoch,
};

EngineMode engineModeFromString(const std::string &name);
std::string toString(EngineMode mode);

/** Whether this system computes content hashes on the write path. */
bool usesHashEngine(SystemKind kind);
/** Whether this system owns a dead-value pool. */
bool usesDvp(SystemKind kind);
/** Whether this system runs in-line dedup. */
bool usesDedup(SystemKind kind);

/** Everything needed to instantiate one simulated SSD. */
struct SsdConfig
{
    SystemKind system = SystemKind::Baseline;

    Geometry geom = Geometry::tableI();
    TimingModel timing;

    /** Exported logical space in pages. */
    std::uint64_t logicalPages = 0;

    /** Fraction of the logical space pre-written before timing. */
    double prefillFraction = 0.70;

    /**
     * Controller read-cache entries (pages; 16 MiB at the default).
     * 0 disables the cache. Without one, dedup's many-to-one mapping
     * turns every popular value into a single-die read hotspot.
     */
    std::uint64_t readCacheEntries = 4096;

    /**
     * Host-interface queue depth: NCQ-style command tags, i.e. how
     * many commands the controller front-end holds concurrently
     * (see sim/controller.hh). 1 — the default — reproduces the
     * historical in-order dispatcher byte-for-byte; deeper queues
     * admit bursts concurrently.
     */
    std::uint32_t queueDepth = 1;

    /**
     * Multi-tenant frontend (NVMe-style namespaces). tenants == 1 —
     * the default — keeps the historical single-queue path
     * byte-for-byte; more tenants give each its own submission
     * queue behind the arbiter, with command tags split into
     * weight-proportional budgets.
     */
    std::uint32_t tenants = 1;
    ArbiterKind arbiter = ArbiterKind::RoundRobin;

    /** Per-tenant wrr weights; empty = equal weights. */
    std::vector<std::uint32_t> arbiterWeights;

    /** Shared or per-tenant dead-value pools (tenants > 1 only). */
    DvpScope dvpScope = DvpScope::Shared;

    /**
     * Namespace sizes in pages, tenant order; required whenever
     * tenants > 1 (the trace frontend supplies them). Their prefix
     * sums are the namespace base LPNs.
     */
    std::vector<std::uint64_t> namespacePages;

    /** Hot/cold write-stream separation (see FtlConfig). */
    bool hotColdSeparation = false;
    std::uint8_t hotThreshold = 2;

    /** Dead-value pool sizing (MQ config; capacity shared by LRU/LX). */
    MqDvpConfig mq;

    /**
     * GC victim policy: "auto" = popularity-aware when a DVP is
     * present (paper section IV-D), greedy otherwise. Explicit
     * "greedy"/"popularity" override for the ablation bench.
     */
    std::string gcPolicy = "auto";
    double gcPopWeight = 1.0;
    std::uint32_t gcSoftWater = 5;
    std::uint32_t gcLowWater = 2;

    /** Incremental-GC budget (relocations per host write per plane). */
    std::uint32_t gcPagesPerStep = 2;

    /**
     * Flash-phase shards: GC bursts are partitioned by channel across
     * this many executors (sim/controller.hh). 1 — the default —
     * keeps the historical single-threaded issue path; any value is
     * byte-identical to 1 because shards touch disjoint channel/die
     * state and join before the next command issues. An attached op
     * tracer forces serial issue regardless.
     */
    std::uint32_t shards = 1;

    /**
     * Event-engine execution strategy (see EngineMode). Epoch mode
     * reuses the flash-phase worker band, so `shards` also sizes its
     * drain parallelism.
     */
    EngineMode engineMode = EngineMode::Serial;

    /**
     * Epoch-sampler interval in simulated ticks; 0 — the default —
     * disables sampling entirely (no events, no snapshots), keeping
     * the request path allocation-free and runs byte-identical to
     * builds without telemetry.
     */
    Tick statsInterval = 0;

    /**
     * Record per-flash-op spans into a Perfetto-loadable trace
     * (telemetry/perfetto_trace.hh). Off by default: disabled tracing
     * costs one null check per scheduled op.
     */
    bool opTrace = false;

    /** Spans kept before the trace stops recording (memory bound). */
    std::uint64_t traceLimit = 1'000'000;

    /** Resolved GC policy name for the chosen system. */
    std::string resolvedGcPolicy() const;

    /** Namespace base LPNs (prefix sums of namespacePages). */
    std::vector<Lpn> namespaceBases() const;

    /** Implied over-provisioning fraction. */
    double overProvisioning() const;

    /**
     * Build a config for @p system sized to a workload: logical space
     * = the profile's footprint, physical = footprint * (1 + op),
     * channels/chips kept at 8x8 (Table I), dies/planes/blocks scaled.
     */
    static SsdConfig forProfile(const WorkloadProfile &profile,
                                SystemKind system, double op = 0.15);

    /** Same scaling from a raw footprint in pages. */
    static SsdConfig forFootprint(std::uint64_t footprint_pages,
                                  SystemKind system, double op = 0.15);

    /** One-line human-readable description (bench headers). */
    std::string describe() const;

    /** Fatal on inconsistent settings. */
    void validate() const;
};

} // namespace zombie

#endif // ZOMBIE_SIM_CONFIG_HH
