/**
 * @file
 * The simulated SSD: functional FTL + event-driven timing pipeline.
 *
 * Ssd is thin wiring: it owns the functional components (FTL, flash
 * array, content engines), the timing components (EventEngine,
 * ResourceModel, read cache) and the Controller pipeline that
 * connects them (see sim/controller.hh for the stage-by-stage
 * model). Requests are submitted through the host interface and
 * serviced when the engine drains; Ssd assembles the run's
 * SimResult from the controller, FTL and flash-array counters.
 */

#ifndef ZOMBIE_SIM_SSD_HH
#define ZOMBIE_SIM_SSD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dedup/fingerprint_store.hh"
#include "dvp/dead_value_pool.hh"
#include "ftl/ftl.hh"
#include "ftl/wear.hh"
#include "nand/flash_array.hh"
#include "nand/resource_model.hh"
#include "sim/config.hh"
#include "sim/controller.hh"
#include "sim/event.hh"
#include "sim/host_queue.hh"
#include "sim/read_cache.hh"
#include "telemetry/epoch_sampler.hh"
#include "telemetry/perfetto_trace.hh"
#include "telemetry/stat_registry.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "util/stats.hh"
#include "util/worker_band.hh"

namespace zombie
{

/** Everything a bench needs from one simulation run. */
struct SimResult
{
    std::string system;

    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t unmappedReads = 0;

    /** Flash activity during the measured phase (prefill excluded). */
    std::uint64_t flashPrograms = 0; //!< host + GC-relocation programs
    std::uint64_t hostPrograms = 0;  //!< host-caused programs only
    std::uint64_t flashReads = 0;
    std::uint64_t flashErases = 0;
    std::uint64_t revivals = 0;

    std::uint64_t gcInvocations = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t dvpRevivals = 0;
    std::uint64_t dedupHits = 0;
    ReadCacheStats readCache;

    LatencyHistogram readLatency;
    LatencyHistogram writeLatency;
    LatencyHistogram allLatency;

    Tick makespan = 0;

    /** Controller-pipeline observations. */
    std::uint32_t queueDepth = 1;
    HostQueueStats hostQueue;
    std::uint64_t oooCompletions = 0;
    std::uint64_t maxDieBacklog = 0;

    /**
     * Multi-tenant frontend observations. tenantResults holds one
     * slice per tenant when tenants > 1, empty otherwise — a
     * single-tenant run's StatSet stays byte-identical.
     */
    std::uint32_t tenants = 1;
    std::vector<TenantResult> tenantResults;

    /**
     * Engine events dispatched over the run (harness-throughput side
     * channel; deliberately absent from toStatSet so pinned stdout
     * tables stay byte-identical across engine changes).
     */
    std::uint64_t events = 0;

    /**
     * Execution-strategy side channels, absent from toStatSet for
     * the same reason: epoch mode and sharding must leave every
     * pinned table byte-identical. Epoch counters are zero in serial
     * mode; burst counters are zero with shards == 1.
     */
    std::uint64_t epochs = 0;
    std::uint64_t rolledBackEpochs = 0;
    std::uint64_t speculatedEvents = 0;
    std::uint64_t shardedBursts = 0;
    std::uint64_t serialForcedBursts = 0;

    /** Erase-count statistics at end of run (device lifetime). */
    WearSummary wear;

    bool hasDvp = false;
    DvpStats dvpStats;
    bool hasDedup = false;
    DedupStats dedupStats;

    /** Flat dump for EXPERIMENTS.md style reporting. */
    StatSet toStatSet() const;
};

/** 1 - sys/base, clamped to 0 when base is empty. */
double writeReduction(const SimResult &sys, const SimResult &base);
double eraseReduction(const SimResult &sys, const SimResult &base);
double meanLatencyImprovement(const SimResult &sys,
                              const SimResult &base);
double tailLatencyImprovement(const SimResult &sys,
                              const SimResult &base);

/** One simulated drive servicing one trace. */
class Ssd
{
  public:
    explicit Ssd(SsdConfig config);

    /**
     * Pre-write prefillFraction of the logical space with unique
     * content, untimed, so GC operates at realistic utilization
     * during the measured phase. Must run before process().
     */
    void prefill();

    /**
     * Submit one timed request to the host interface. Requests are
     * serviced when the pipeline drains (drain(), run() or
     * result()).
     */
    void process(const TraceRecord &rec);

    /** Service a whole trace (prefill() first if configured). */
    void run(const std::vector<TraceRecord> &records);

    /**
     * Service a trace streamed from @p source with bounded memory:
     * before each record is admitted, the engine first services
     * everything scheduled strictly before the record's arrival, so
     * at most the genuinely-concurrent window of commands is ever
     * buffered. Byte-identical to run(records) — arrival events
     * draw sequence numbers from a dedicated low band, so every
     * event's (when, seq) dispatch key is the same whether arrivals
     * are all scheduled up front or admitted as the clock reaches
     * them (DESIGN.md section 7.16).
     */
    void run(TraceSource &source);

    /** Run the event engine until every submitted request completed. */
    void drain();

    /** Drains, then assembles the run's statistics. */
    SimResult result();

    const SsdConfig &config() const { return cfg; }
    const Ftl &ftl() const { return ftl_; }
    const ResourceModel &resourceModel() const { return resources; }
    const FlashArray &flash() const { return flashArray; }
    const Controller &pipeline() const { return controller_; }
    const EventEngine &events() const { return engine; }
    DeadValuePool *dvp() { return pool.get(); }
    FingerprintStore *dedupStore() { return store.get(); }

    /** Every component's statistics under one dotted namespace. */
    const StatRegistry &statRegistry() const { return registry_; }

    /** Epoch time-series; null unless statsInterval > 0. */
    const EpochSampler *sampler() const { return sampler_.get(); }

    /** Operation trace; null unless opTrace is set. */
    const PerfettoTraceWriter *tracer() const { return tracer_.get(); }

  private:
    SsdConfig cfg;
    FlashArray flashArray;
    std::unique_ptr<DeadValuePool> pool;
    std::unique_ptr<FingerprintStore> store;
    Ftl ftl_;
    ResourceModel resources;
    ReadCache cache;
    EventEngine engine;
    Controller controller_;

    /** Flash-phase worker band; null unless cfg.shards > 1. */
    std::unique_ptr<WorkerBand> band_;

    /** Stat namespace over every component (pure observation). */
    StatRegistry registry_;

    /** Telemetry attachments; null when the config disables them. */
    std::unique_ptr<EpochSampler> sampler_;
    std::unique_ptr<PerfettoTraceWriter> tracer_;

    bool prefilled = false;
    bool measuring = false;

    /** Counter snapshots taken when measurement starts. */
    FlashCounters flashBase;
    FtlStats ftlBase;

    void beginMeasurement(Tick first_arrival);
    static std::unique_ptr<DeadValuePool> makePool(const SsdConfig &);
};

} // namespace zombie

#endif // ZOMBIE_SIM_SSD_HH
