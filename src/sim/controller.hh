/**
 * @file
 * Event-driven controller pipeline: admission -> dispatch -> flash.
 *
 * The request path is an explicit pipeline of three stages
 * coordinated by the EventEngine:
 *
 *  1. Host interface (HostQueue): commands are submitted in arrival
 *     order to their tenant's submission queue and admitted
 *     NCQ-style into one of `queueDepth` command contexts (tags).
 *     With several tenants a QueueArbiter (rr/wrr) names the queue
 *     each freed tag serves, and per-tenant tag budgets cap how many
 *     contexts one tenant may hold; a single tenant owns one queue
 *     and the full tag pool, reproducing the historical path
 *     byte-for-byte. While every context is busy (or the tenant's
 *     budget is spent), later commands wait in their submission
 *     queue — that admission delay is the knob deep host queues and
 *     arbitration weights turn.
 *  2. Dispatcher: each admitted command occupies its context for the
 *     FTL overhead (mapping-table work). Contexts process commands
 *     concurrently, but FTL state transitions themselves execute in
 *     submission order (contexts all charge the same overhead, so
 *     dispatch completions preserve FIFO order through the engine's
 *     stable tie-break). The hash engine (Table I, 12us) is
 *     pipelined hardware: it adds latency to a write's path without
 *     occupying the context.
 *  3. Flash scheduler: issues the FTL's FlashSteps against the
 *     ResourceModel. Steps of one command serialize on each other
 *     (a step starts at the previous step's completion); commands on
 *     different dies complete out of order, observed via completion
 *     events. GC steps are charged at the triggering command's issue
 *     tick so collections pile onto their dies behind the host op.
 *
 * The controller is the engine's EventSink: every scheduled event is
 * a typed (kind, ctx, arg) record, and per-command state lives in a
 * free-listed slab addressed by the ctx payload, so the steady-state
 * request path allocates nothing (DESIGN.md section 7.10).
 *
 * At queueDepth 1 the pipeline degenerates to the historical
 * in-order dispatcher (one command in the controller at a time,
 * serialized on the FTL overhead) and reproduces its timing
 * byte-for-byte; deeper queues admit bursts concurrently.
 */

#ifndef ZOMBIE_SIM_CONTROLLER_HH
#define ZOMBIE_SIM_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "ftl/ftl.hh"
#include "nand/resource_model.hh"
#include "sim/arbiter.hh"
#include "sim/config.hh"
#include "sim/event.hh"
#include "sim/host_queue.hh"
#include "sim/read_cache.hh"
#include "telemetry/epoch_sampler.hh"
#include "telemetry/stat_registry.hh"
#include "util/ring.hh"
#include "util/slab.hh"
#include "util/stats.hh"
#include "util/worker_band.hh"

namespace zombie
{

/** Timing outcome of issuing one command's flash work. */
struct FlashIssue
{
    /** Completion of the user-visible operation. */
    Tick completion = 0;

    /** Completion of the last collateral GC step (>= completion). */
    Tick gcTail = 0;

    /**
     * Channel of the command's last user step (0 when the command
     * needed no flash work). Pure affinity hint for the epoch
     * engine's completion lanes — any in-range value is correct.
     */
    std::uint32_t channel = 0;
};

/**
 * Stage 3: charge a command's FlashSteps against the resource model.
 *
 * User steps chain: each step starts no earlier than the previous
 * step's completion (a dependent read-modify sequence cannot overlap
 * itself). Read-cache hits complete in controller RAM and still
 * advance the chain. GC steps all start at the command's issue tick
 * and serialize per die through the busy-until schedule.
 *
 * Sharded GC issue (configureShards): a GC burst — up to a whole
 * victim block of relocation ops per collecting plane — is the one
 * flash phase whose ops do not depend on each other across channels:
 * every op touches only the busy-until/backlog state of its own die
 * and channel, and GC relocation chains never cross planes. The
 * burst is therefore partitioned by channel and executed on a
 * WorkerBand, all shards joining before issue() returns (the
 * conservative epoch barrier: nothing after this command's issue can
 * observe partial state). Results are byte-identical to serial issue
 * because each channel's subsequence executes in original order
 * against disjoint state and the gc-tail fold (max) is
 * order-independent.
 */
class FlashScheduler
{
  public:
    FlashScheduler(ResourceModel &resources, ReadCache &cache)
        : res(resources), readCache(cache)
    {
    }

    FlashIssue issue(const FlashStepBuffer &steps, Tick t);

    /**
     * Enable channel-sharded GC issue. @p shard_count <= 1 or a null
     * @p worker_band keep the serial path; an attached op tracer
     * forces serial issue regardless (spans record in issue order).
     */
    void configureShards(std::uint32_t shard_count,
                         WorkerBand *worker_band);

    /** Category label stamped on host-op trace spans (see
     *  ResourceModel::setHostSpanCategory). */
    void setHostSpanCategory(const char *category)
    {
        res.setHostSpanCategory(category);
    }

    /** GC bursts issued through the sharded path. */
    std::uint64_t shardedBursts() const { return nShardedBursts; }

    /**
     * GC bursts issued serially although sharding was configured —
     * the burst was under kMinShardSteps, or an attached op tracer
     * forced serial issue. A run with sharded_bursts == 0 and a
     * large serial_forced count got no parallelism out of --shards.
     */
    std::uint64_t serialForced() const { return nSerialForced; }

    /**
     * Register the sharded-issue visibility counters under "ctrl.".
     * The owner gates this on the configured shard count so
     * single-shard registry dumps stay byte-identical to historical
     * output.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    /** Sharded GC burst; returns the burst's gc-tail fold. */
    Tick issueGcSharded(const FlashStepBuffer &steps, Tick t);

    /** WorkerBand thunk: run every channel of one shard. */
    static void shardThunk(void *ctx, unsigned shard);

    ResourceModel &res;
    ReadCache &readCache;

    /** Sharded-issue state (unused until configureShards). */
    std::uint32_t shards = 1;
    WorkerBand *band = nullptr;
    std::vector<std::vector<FlashStep>> chanSteps; //!< per channel
    std::vector<Tick> shardTails;                  //!< per shard
    Tick burstStart = 0;                           //!< current burst's t

    /** GC bursts below this many steps stay serial: the fan-out
     *  handshake costs more than the work it would spread. */
    static constexpr std::size_t kMinShardSteps = 24;

    /** Sharded-vs-forced-serial visibility (see the accessors). */
    std::uint64_t nShardedBursts = 0;
    std::uint64_t nSerialForced = 0;
};

/** Aggregate pipeline counters for one run. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Completions that overtook an earlier-submitted command. */
    std::uint64_t oooCompletions = 0;

    Tick firstArrival = 0;
    Tick lastCompletion = 0;

    /**
     * Ticks of collateral GC work extending past the triggering
     * command's user-visible completion (the background pause each
     * collection adds to the schedule's tail).
     */
    Tick gcTailTicks = 0;

    LatencyHistogram readLatency;
    LatencyHistogram writeLatency;
    LatencyHistogram allLatency;
};

/**
 * One tenant's slice of the pipeline observations. Only maintained
 * when the config names more than one tenant, so the single-tenant
 * hot path stays exactly as it was.
 */
struct TenantResult
{
    std::uint64_t submitted = 0;
    std::uint64_t blockedAdmissions = 0;
    Tick admissionWait = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /**
     * Ticks of collateral GC tail charged to commands this tenant
     * issued (who pays for collections the drive needed anyway —
     * the noisy-neighbor attribution signal).
     */
    Tick gcCollateralTicks = 0;

    LatencyHistogram readLatency;
    LatencyHistogram writeLatency;
};

/** The controller pipeline servicing one drive's host stream. */
class Controller : public EventSink
{
  public:
    Controller(const SsdConfig &config, Ftl &ftl,
               ResourceModel &resources, ReadCache &cache,
               EventEngine &events);

    /**
     * Submit one host command. Arrival ticks must be nondecreasing.
     * The command is serviced when the engine drains.
     */
    void submit(const TraceRecord &rec);

    /**
     * Optional hint that @p count submissions are coming: reserves
     * the arrival storages once instead of growing them by doubling
     * mid-run. Pure capacity management; never affects results.
     */
    void reserveSubmissions(std::uint64_t count);

    /** Enable channel-sharded GC issue (FlashScheduler). */
    void configureFlashShards(std::uint32_t shard_count,
                              WorkerBand *worker_band)
    {
        flash.configureShards(shard_count, worker_band);
    }

    /** Run the engine until every submitted command completed. */
    void drain();

    /** Typed-event dispatch (EventSink). */
    void event(Tick now, EventKind kind, std::uint32_t ctx,
               std::uint64_t arg) override;

    const ControllerStats &stats() const { return cstats; }

    /** Drive-wide admission counters, summed across every tenant's
     *  submission queue (identical to the single queue's own stats
     *  when tenants == 1). */
    const HostQueueStats &hostStats() const { return hqTotal; }

    std::uint32_t queueDepth() const { return depth; }
    std::uint32_t tenants() const { return numTenants; }

    /** Tenant @p t's pipeline + admission observations. */
    TenantResult tenantResult(std::uint32_t t) const;

    /** Tag budget (max concurrently held contexts) of tenant @p t. */
    std::uint32_t tagBudgetOf(std::uint32_t t) const
    {
        return tagBudget[t];
    }

    /** Commands submitted but not yet completed. */
    std::uint64_t outstanding() const { return submitted - completed; }

    /** Sharded-issue visibility (FlashScheduler counters). */
    std::uint64_t shardedBursts() const
    {
        return flash.shardedBursts();
    }
    std::uint64_t serialForcedBursts() const
    {
        return flash.serialForced();
    }

    /**
     * Attach an epoch sampler (not owned; nullptr detaches). The
     * controller schedules one StatsSample event per boundary while
     * commands are outstanding, re-arming on the next submission, so
     * an idle drive costs no events and the engine always drains.
     */
    void attachSampler(EpochSampler *s) { sampler = s; }

    /**
     * Register pipeline counters, latency histograms and the
     * outstanding-commands gauge under "ctrl.". Counter storage lives
     * in this controller; the registrations stay valid for its
     * lifetime.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    void tryDispatch(Tick now);
    void onDispatched(const HostCommand &cmd, Tick now);
    void onCompletion(std::uint64_t idx);

    const SsdConfig &cfg;
    Ftl &ftl;
    EventEngine &engine;

    /** One submission queue per tenant (tenant 0 only by default).
     *  Sized at construction; never reallocates, so registered stat
     *  pointers into each queue stay valid. */
    std::vector<HostQueue> queues;
    QueueArbiter arbiter;
    FlashScheduler flash;

    std::uint32_t depth;
    std::uint32_t numTenants;

    /**
     * Per-tenant admission caps: weight-proportional shares of the
     * tag pool (at least one tag each). A budget equal to the full
     * depth imposes no constraint — notably the single-tenant case,
     * where admission is gated by context availability alone,
     * exactly as before the multi-tenant frontend.
     */
    std::vector<std::uint32_t> tagBudget;

    /** Dispatch contexts currently charged to each tenant. */
    std::vector<std::uint32_t> tenantTags;

    /** Drive-wide admission counters (see hostStats()). */
    HostQueueStats hqTotal;

    /** Commands waiting across all queues (drive-wide maxWaiting). */
    std::uint64_t waitingNow = 0;

    /** Per-tenant counters; empty unless numTenants > 1. */
    std::vector<TenantResult> tstats;

    /** Busy-until tick of each dispatch context (command tag). */
    std::vector<Tick> ctxFreeAt;

    /**
     * Commands submitted but not yet arrived. HostArrival events fire
     * in submission order (arrivals are nondecreasing and the engine
     * tie-breaks FIFO), so a ring replaces per-event captures.
     */
    RingBuffer<HostCommand> arrivals;

    /**
     * Commands between admission and dispatch-done, addressed by the
     * slab index carried in the DispatchDone event's ctx payload.
     * At most `depth` slots ever exist.
     */
    Slab<HostCommand> inDispatch;

    /** Reusable scratch the FTL fills per command (clear, not free). */
    FlashStepBuffer steps;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;

    /** Event-heap capacity already requested (doubling growth). */
    std::size_t eventReserve = 0;

    /**
     * Out-of-order completion tracking. The drain only ever consumes
     * the minimum outstanding index, so a min-heap beats an ordered
     * set (no per-node allocation, cache-friendly array).
     */
    std::uint64_t nextInOrder = 0;
    std::vector<std::uint64_t> completedAhead; //!< min-heap

    /** Epoch sampler; null (the default) schedules no sample events. */
    EpochSampler *sampler = nullptr;

    /** A StatsSample event is pending in the engine. */
    bool samplerArmed = false;

    ControllerStats cstats;
};

} // namespace zombie

#endif // ZOMBIE_SIM_CONTROLLER_HH
