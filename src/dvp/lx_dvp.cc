#include "dvp/lx_dvp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

LxDvp::LxDvp(std::uint64_t entry_capacity) : cap(entry_capacity)
{
    if (cap == 0)
        zombie_fatal("LX-DVP capacity must be > 0");
    // Pre-size for a full pool so steady-state churn never rehashes.
    const std::uint64_t expected = std::min<std::uint64_t>(cap, 1u << 20);
    entries.reserve(expected);
    index.reserve(expected);
    ppnIndex.reserve(expected);
}

void
LxDvp::removeEntry(std::uint32_t h)
{
    Entry &e = entries[h];
    ppnIndex.erase(e.ppn);
    index.erase(e.lpn);
    entries.unlink(lru, h);
    entries.release(h);
}

DvpLookupResult
LxDvp::lookupForWrite(const Fingerprint &fp, Lpn lpn)
{
    ++dstats.lookups;
    auto it = index.find(lpn);
    if (it == index.end())
        return DvpLookupResult{};

    const std::uint32_t h = it->second;
    Entry &e = entries[h];
    if (e.fp != fp) {
        // Same address, different content: no recycling possible, but
        // the address was touched so its recency refreshes.
        entries.moveToBack(lru, h);
        return DvpLookupResult{};
    }

    ++dstats.hits;
    DvpLookupResult result;
    result.hit = true;
    result.ppn = e.ppn;
    result.popularity = saturatingIncrement(e.pop);
    removeEntry(h);
    return result;
}

void
LxDvp::insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                     std::uint8_t pop)
{
    ++dstats.insertions;
    auto it = index.find(lpn);
    if (it != index.end()) {
        // The address died again; only its newest dead content is
        // remembered (single slot per LBA).
        const std::uint32_t h = it->second;
        Entry &e = entries[h];
        ppnIndex.erase(e.ppn);
        e.fp = fp;
        e.ppn = ppn;
        e.pop = std::max(e.pop, pop);
        ppnIndex[ppn] = h;
        entries.moveToBack(lru, h);
        ++dstats.mergedInsertions;
        return;
    }

    if (index.size() >= cap) {
        ++dstats.capacityEvictions;
        removeEntry(lru.head);
    }

    const std::uint32_t h = entries.acquire();
    Entry &e = entries[h];
    e.lpn = lpn;
    e.fp = fp;
    e.ppn = ppn;
    e.pop = pop;
    entries.pushBack(lru, h);
    index[lpn] = h;
    ppnIndex[ppn] = h;
}

void
LxDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    ++dstats.gcEvictions;
    removeEntry(it->second);
}

void
LxDvp::touchOnRead(Lpn lpn)
{
    auto it = index.find(lpn);
    if (it != index.end())
        entries.moveToBack(lru, it->second);
}

} // namespace zombie
