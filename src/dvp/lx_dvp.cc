#include "dvp/lx_dvp.hh"

#include "util/logging.hh"

namespace zombie
{

LxDvp::LxDvp(std::uint64_t entry_capacity) : cap(entry_capacity)
{
    if (cap == 0)
        zombie_fatal("LX-DVP capacity must be > 0");
}

void
LxDvp::removeEntry(LruList::iterator it)
{
    ppnIndex.erase(it->ppn);
    index.erase(it->lpn);
    lru.erase(it);
}

DvpLookupResult
LxDvp::lookupForWrite(const Fingerprint &fp, Lpn lpn)
{
    ++dstats.lookups;
    auto it = index.find(lpn);
    if (it == index.end())
        return DvpLookupResult{};

    auto entry = it->second;
    if (entry->fp != fp) {
        // Same address, different content: no recycling possible, but
        // the address was touched so its recency refreshes.
        lru.splice(lru.end(), lru, entry);
        return DvpLookupResult{};
    }

    ++dstats.hits;
    DvpLookupResult result;
    result.hit = true;
    result.ppn = entry->ppn;
    result.popularity = saturatingIncrement(entry->pop);
    removeEntry(entry);
    return result;
}

void
LxDvp::insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                     std::uint8_t pop)
{
    ++dstats.insertions;
    auto it = index.find(lpn);
    if (it != index.end()) {
        // The address died again; only its newest dead content is
        // remembered (single slot per LBA).
        auto entry = it->second;
        ppnIndex.erase(entry->ppn);
        entry->fp = fp;
        entry->ppn = ppn;
        entry->pop = std::max(entry->pop, pop);
        ppnIndex[ppn] = entry;
        lru.splice(lru.end(), lru, entry);
        ++dstats.mergedInsertions;
        return;
    }

    if (index.size() >= cap) {
        ++dstats.capacityEvictions;
        removeEntry(lru.begin());
    }

    lru.push_back(Entry{lpn, fp, ppn, pop});
    auto entry = std::prev(lru.end());
    index[lpn] = entry;
    ppnIndex[ppn] = entry;
}

void
LxDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    ++dstats.gcEvictions;
    removeEntry(it->second);
}

void
LxDvp::touchOnRead(Lpn lpn)
{
    auto it = index.find(lpn);
    if (it != index.end())
        lru.splice(lru.end(), lru, it->second);
}

} // namespace zombie
