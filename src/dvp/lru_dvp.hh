/**
 * @file
 * Single-queue LRU dead-value pool: the strawman of Figures 5 and 6.
 *
 * Content-keyed like MqDvp but with pure recency replacement — the
 * paper shows it already removes most writes yet loses popular values
 * under capacity pressure (Fig 6), which motivates MQ.
 */

#ifndef ZOMBIE_DVP_LRU_DVP_HH
#define ZOMBIE_DVP_LRU_DVP_HH

#include <cstdint>
#include <vector>

#include "dvp/dead_value_pool.hh"
#include "util/flat_map.hh"
#include "util/intrusive_lru.hh"

namespace zombie
{

/** Content-keyed LRU pool. */
class LruDvp : public DeadValuePool
{
  public:
    /** @param entry_capacity maximum resident entries (> 0). */
    explicit LruDvp(std::uint64_t entry_capacity);

    std::string name() const override { return "lru"; }

    DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                   Lpn lpn) override;
    void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                       std::uint8_t pop) override;
    void onErase(Ppn ppn) override;

    std::uint64_t size() const override { return index.size(); }
    std::uint64_t capacity() const override { return cap; }
    const DvpStats &stats() const override { return dstats; }

  private:
    struct Entry
    {
        Fingerprint fp{};
        std::vector<Ppn> ppns;
        std::uint8_t pop = 0;
    };

    void removeEntry(std::uint32_t h);
    void evictOne();

    std::uint64_t cap;
    /** Largest ppns capacity seen; reused slots reserve to it so
     * eviction churn stays allocation-free (see MqDvp). */
    std::size_t ppnsHighWater = 0;
    LruSlab<Entry> entries;
    LruChain lru; //!< head = LRU victim, tail = most recent
    FlatMap<Fingerprint, std::uint32_t, FingerprintHash> index;
    FlatMap<Ppn, std::uint32_t> ppnIndex;
    DvpStats dstats;
};

/** Unbounded pool: the paper's "Ideal" comparison system. */
class InfiniteDvp : public DeadValuePool
{
  public:
    InfiniteDvp() = default;

    std::string name() const override { return "infinite"; }

    DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                   Lpn lpn) override;
    void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                       std::uint8_t pop) override;
    void onErase(Ppn ppn) override;

    std::uint64_t size() const override { return index.size(); }
    std::uint64_t capacity() const override { return 0; }
    const DvpStats &stats() const override { return dstats; }

  private:
    struct Entry
    {
        std::vector<Ppn> ppns;
        std::uint8_t pop = 0;
    };

    FlatMap<Fingerprint, Entry, FingerprintHash> index;
    FlatMap<Ppn, Fingerprint> ppnIndex;
    DvpStats dstats;
};

} // namespace zombie

#endif // ZOMBIE_DVP_LRU_DVP_HH
