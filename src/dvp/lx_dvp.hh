/**
 * @file
 * LX-SSD-style recycling pool (prior work, paper reference [20]).
 *
 * Modeled after the paper's description of Zhou et al.'s LX-SSD and
 * its two inefficiencies (section I):
 *  (i)  recycling probability is driven by combined read+write
 *       popularity of the *page address*, not write value popularity;
 *  (ii) replacement considers only the recency of garbage pages
 *       associated with each LBA (a single LRU keyed by page address).
 *
 * Consequently an entry is keyed by LPN: a write can only be
 * short-circuited when the same logical page is rewritten with the
 * content it used to hold. Rebirths of a value at a *different* LPN —
 * the common case the MQ-DVP exploits — are misses here. Reads refresh
 * recency (inefficiency (i)): touchOnRead() lets the FTL report read
 * traffic, keeping read-hot but write-cold addresses resident.
 */

#ifndef ZOMBIE_DVP_LX_DVP_HH
#define ZOMBIE_DVP_LX_DVP_HH

#include <cstdint>

#include "dvp/dead_value_pool.hh"
#include "util/flat_map.hh"
#include "util/intrusive_lru.hh"

namespace zombie
{

/** LBA-keyed LRU recycling pool. */
class LxDvp : public DeadValuePool
{
  public:
    explicit LxDvp(std::uint64_t entry_capacity);

    std::string name() const override { return "lx"; }

    DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                   Lpn lpn) override;
    void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                       std::uint8_t pop) override;
    void onErase(Ppn ppn) override;

    /** Reads refresh the LBA's recency (read+write conflation). */
    void touchOnRead(Lpn lpn);

    void onHostRead(Lpn lpn) override { touchOnRead(lpn); }

    std::uint64_t size() const override { return index.size(); }
    std::uint64_t capacity() const override { return cap; }
    const DvpStats &stats() const override { return dstats; }

  private:
    struct Entry
    {
        Lpn lpn = 0;
        Fingerprint fp{};
        Ppn ppn = 0;
        std::uint8_t pop = 0;
    };

    void removeEntry(std::uint32_t h);

    std::uint64_t cap;
    LruSlab<Entry> entries;
    LruChain lru;
    FlatMap<Lpn, std::uint32_t> index;
    FlatMap<Ppn, std::uint32_t> ppnIndex;
    DvpStats dstats;
};

} // namespace zombie

#endif // ZOMBIE_DVP_LX_DVP_HH
