#include "dvp/lru_dvp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

LruDvp::LruDvp(std::uint64_t entry_capacity) : cap(entry_capacity)
{
    if (cap == 0)
        zombie_fatal("LRU-DVP capacity must be > 0");
    // Pre-size the hash tables for a full pool to avoid warm-up
    // rehash churn (the pool runs at capacity almost immediately).
    const std::uint64_t expected = std::min<std::uint64_t>(cap, 1u << 20);
    entries.reserve(expected);
    index.reserve(expected);
    ppnIndex.reserve(expected);
}

void
LruDvp::removeEntry(std::uint32_t h)
{
    Entry &e = entries[h];
    for (Ppn ppn : e.ppns)
        ppnIndex.erase(ppn);
    index.erase(e.fp);
    entries.unlink(lru, h);
    entries.release(h);
}

void
LruDvp::evictOne()
{
    zombie_assert(!lru.empty(), "eviction from empty LRU pool");
    ++dstats.capacityEvictions;
    removeEntry(lru.head);
}

DvpLookupResult
LruDvp::lookupForWrite(const Fingerprint &fp, Lpn)
{
    ++dstats.lookups;
    auto it = index.find(fp);
    if (it == index.end())
        return DvpLookupResult{};

    const std::uint32_t h = it->second;
    Entry &e = entries[h];
    zombie_assert(!e.ppns.empty(), "LRU entry without PPNs");
    const Ppn ppn = e.ppns.back();
    e.ppns.pop_back();
    ppnIndex.erase(ppn);
    e.pop = saturatingIncrement(e.pop);
    const std::uint8_t pop_after = e.pop;
    ++dstats.hits;

    if (e.ppns.empty()) {
        removeEntry(h);
    } else {
        // Recency refresh: move to the MRU end.
        entries.moveToBack(lru, h);
    }

    DvpLookupResult result;
    result.hit = true;
    result.ppn = ppn;
    result.popularity = pop_after;
    return result;
}

void
LruDvp::insertGarbage(const Fingerprint &fp, Lpn, Ppn ppn,
                      std::uint8_t pop)
{
    ++dstats.insertions;
    auto it = index.find(fp);
    if (it != index.end()) {
        const std::uint32_t h = it->second;
        Entry &e = entries[h];
        e.ppns.push_back(ppn);
        ppnsHighWater = std::max(ppnsHighWater, e.ppns.capacity());
        e.pop = std::max(e.pop, pop);
        ppnIndex[ppn] = h;
        entries.moveToBack(lru, h);
        ++dstats.mergedInsertions;
        return;
    }

    if (index.size() >= cap)
        evictOne();

    // Field-by-field reset keeps the reused slot's ppns capacity.
    const std::uint32_t h = entries.acquire();
    Entry &e = entries[h];
    e.fp = fp;
    e.ppns.clear();
    if (e.ppns.capacity() < ppnsHighWater)
        e.ppns.reserve(ppnsHighWater);
    e.ppns.push_back(ppn);
    ppnsHighWater = std::max(ppnsHighWater, e.ppns.capacity());
    e.pop = pop;
    entries.pushBack(lru, h);
    index[fp] = h;
    ppnIndex[ppn] = h;
}

void
LruDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    const std::uint32_t h = it->second;
    Entry &e = entries[h];
    auto pos = std::find(e.ppns.begin(), e.ppns.end(), ppn);
    zombie_assert(pos != e.ppns.end(), "LRU ppn index out of sync");
    e.ppns.erase(pos);
    ppnIndex.erase(it);
    ++dstats.gcEvictions;
    if (e.ppns.empty())
        removeEntry(h);
}

DvpLookupResult
InfiniteDvp::lookupForWrite(const Fingerprint &fp, Lpn)
{
    ++dstats.lookups;
    auto it = index.find(fp);
    if (it == index.end())
        return DvpLookupResult{};

    Entry &entry = it->second;
    zombie_assert(!entry.ppns.empty(), "infinite entry without PPNs");
    const Ppn ppn = entry.ppns.back();
    entry.ppns.pop_back();
    ppnIndex.erase(ppn);
    entry.pop = saturatingIncrement(entry.pop);
    ++dstats.hits;

    DvpLookupResult result;
    result.hit = true;
    result.ppn = ppn;
    result.popularity = entry.pop;
    if (entry.ppns.empty())
        index.erase(it);
    return result;
}

void
InfiniteDvp::insertGarbage(const Fingerprint &fp, Lpn, Ppn ppn,
                           std::uint8_t pop)
{
    ++dstats.insertions;
    Entry &entry = index[fp];
    if (!entry.ppns.empty())
        ++dstats.mergedInsertions;
    entry.ppns.push_back(ppn);
    entry.pop = std::max(entry.pop, pop);
    ppnIndex[ppn] = fp;
}

void
InfiniteDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    auto entry_it = index.find(it->second);
    zombie_assert(entry_it != index.end(), "infinite ppn index desync");
    auto &ppns = entry_it->second.ppns;
    auto pos = std::find(ppns.begin(), ppns.end(), ppn);
    zombie_assert(pos != ppns.end(), "infinite ppn list desync");
    ppns.erase(pos);
    ppnIndex.erase(it);
    ++dstats.gcEvictions;
    if (ppns.empty())
        index.erase(entry_it);
}

} // namespace zombie
