#include "dvp/lru_dvp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

LruDvp::LruDvp(std::uint64_t entry_capacity) : cap(entry_capacity)
{
    if (cap == 0)
        zombie_fatal("LRU-DVP capacity must be > 0");
    // Pre-size the hash tables for a full pool to avoid warm-up
    // rehash churn (the pool runs at capacity almost immediately).
    const std::uint64_t expected = std::min<std::uint64_t>(cap, 1u << 20);
    index.reserve(expected);
    ppnIndex.reserve(expected);
}

void
LruDvp::removeEntry(LruList::iterator it)
{
    for (Ppn ppn : it->ppns)
        ppnIndex.erase(ppn);
    index.erase(it->fp);
    lru.erase(it);
}

void
LruDvp::evictOne()
{
    zombie_assert(!lru.empty(), "eviction from empty LRU pool");
    ++dstats.capacityEvictions;
    removeEntry(lru.begin());
}

DvpLookupResult
LruDvp::lookupForWrite(const Fingerprint &fp, Lpn)
{
    ++dstats.lookups;
    auto it = index.find(fp);
    if (it == index.end())
        return DvpLookupResult{};

    auto entry = it->second;
    zombie_assert(!entry->ppns.empty(), "LRU entry without PPNs");
    const Ppn ppn = entry->ppns.back();
    entry->ppns.pop_back();
    ppnIndex.erase(ppn);
    entry->pop = saturatingIncrement(entry->pop);
    const std::uint8_t pop_after = entry->pop;
    ++dstats.hits;

    if (entry->ppns.empty()) {
        removeEntry(entry);
    } else {
        // Recency refresh: move to the MRU end.
        lru.splice(lru.end(), lru, entry);
    }

    DvpLookupResult result;
    result.hit = true;
    result.ppn = ppn;
    result.popularity = pop_after;
    return result;
}

void
LruDvp::insertGarbage(const Fingerprint &fp, Lpn, Ppn ppn,
                      std::uint8_t pop)
{
    ++dstats.insertions;
    auto it = index.find(fp);
    if (it != index.end()) {
        auto entry = it->second;
        entry->ppns.push_back(ppn);
        entry->pop = std::max(entry->pop, pop);
        ppnIndex[ppn] = entry;
        lru.splice(lru.end(), lru, entry);
        ++dstats.mergedInsertions;
        return;
    }

    if (index.size() >= cap)
        evictOne();

    lru.push_back(Entry{fp, {ppn}, pop});
    auto entry = std::prev(lru.end());
    index[fp] = entry;
    ppnIndex[ppn] = entry;
}

void
LruDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    auto entry = it->second;
    auto pos = std::find(entry->ppns.begin(), entry->ppns.end(), ppn);
    zombie_assert(pos != entry->ppns.end(), "LRU ppn index out of sync");
    entry->ppns.erase(pos);
    ppnIndex.erase(it);
    ++dstats.gcEvictions;
    if (entry->ppns.empty())
        removeEntry(entry);
}

DvpLookupResult
InfiniteDvp::lookupForWrite(const Fingerprint &fp, Lpn)
{
    ++dstats.lookups;
    auto it = index.find(fp);
    if (it == index.end())
        return DvpLookupResult{};

    Entry &entry = it->second;
    zombie_assert(!entry.ppns.empty(), "infinite entry without PPNs");
    const Ppn ppn = entry.ppns.back();
    entry.ppns.pop_back();
    ppnIndex.erase(ppn);
    entry.pop = saturatingIncrement(entry.pop);
    ++dstats.hits;

    DvpLookupResult result;
    result.hit = true;
    result.ppn = ppn;
    result.popularity = entry.pop;
    if (entry.ppns.empty())
        index.erase(it);
    return result;
}

void
InfiniteDvp::insertGarbage(const Fingerprint &fp, Lpn, Ppn ppn,
                           std::uint8_t pop)
{
    ++dstats.insertions;
    Entry &entry = index[fp];
    if (!entry.ppns.empty())
        ++dstats.mergedInsertions;
    entry.ppns.push_back(ppn);
    entry.pop = std::max(entry.pop, pop);
    ppnIndex[ppn] = fp;
}

void
InfiniteDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    auto entry_it = index.find(it->second);
    zombie_assert(entry_it != index.end(), "infinite ppn index desync");
    auto &ppns = entry_it->second.ppns;
    auto pos = std::find(ppns.begin(), ppns.end(), ppn);
    zombie_assert(pos != ppns.end(), "infinite ppn list desync");
    ppns.erase(pos);
    ppnIndex.erase(it);
    ++dstats.gcEvictions;
    if (ppns.empty())
        index.erase(entry_it);
}

} // namespace zombie
