#include "dvp/mq_dvp.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace zombie
{

MqDvp::MqDvp(MqDvpConfig config) : cfg(config)
{
    if (cfg.numQueues == 0)
        zombie_fatal("MQ-DVP needs at least one queue");
    if (cfg.capacity == 0)
        zombie_fatal("MQ-DVP capacity must be > 0 (use InfiniteDvp "
                     "for the ideal system)");
    if (cfg.adaptive) {
        if (cfg.adaptiveMin == 0 || cfg.adaptiveWindow == 0)
            zombie_fatal("adaptive MQ-DVP needs a positive minimum "
                         "capacity and window");
        if (cfg.adaptiveMin > cfg.adaptiveMax)
            zombie_fatal("adaptiveMin exceeds adaptiveMax");
        cfg.capacity = std::clamp(cfg.capacity, cfg.adaptiveMin,
                                  cfg.adaptiveMax);
    }
    queues.resize(cfg.numQueues);
    entries.reserve(std::min<std::uint64_t>(cfg.capacity, 1u << 20));

    // Size the hash tables for a full pool up front: warm-up rehash
    // churn otherwise dominates the first capacity's worth of
    // inserts. ppnIndex usually tracks about one dead PPN per entry.
    const std::uint64_t expected =
        std::min<std::uint64_t>(cfg.capacity, 1u << 20);
    index.reserve(expected);
    ppnIndex.reserve(expected);
}

std::uint32_t
MqDvp::targetQueue(std::uint8_t pop) const
{
    // Paper section IV-C: promote while log2(PopDegree + 1) exceeds
    // the current queue index.
    const std::uint32_t level =
        std::bit_width(static_cast<std::uint32_t>(pop) + 1u) - 1u;
    return std::min(level, cfg.numQueues - 1);
}

std::uint64_t
MqDvp::queueLength(std::uint32_t q) const
{
    zombie_assert(q < cfg.numQueues, "queue index out of range");
    return queues[q].count;
}

int
MqDvp::queueOf(const Fingerprint &fp) const
{
    auto it = index.find(fp);
    return it == index.end() ? -1
                             : static_cast<int>(entries[it->second].queue);
}

std::uint64_t
MqDvp::ppnCount(const Fingerprint &fp) const
{
    auto it = index.find(fp);
    return it == index.end() ? 0 : entries[it->second].ppns.size();
}

std::uint64_t
MqDvp::hotInterval() const
{
    const std::uint64_t learned =
        hottestInterval ? hottestInterval : cfg.defaultExpiryInterval;
    const auto floor = static_cast<std::uint64_t>(
        cfg.expiryFloorOfCapacity * static_cast<double>(cfg.capacity));
    return std::max(learned, floor);
}

std::uint32_t
MqDvp::allocEntry()
{
    // Reset fields individually rather than assigning Entry{}: the
    // reused slot's ppns vector keeps its capacity, so steady-state
    // eviction/insertion churn never allocates.
    const std::uint32_t h = entries.acquire();
    Entry &e = entries[h];
    e.fp = Fingerprint{};
    e.ppns.clear();
    if (e.ppns.capacity() < ppnsHighWater)
        e.ppns.reserve(ppnsHighWater);
    e.expire = 0;
    e.lastAccess = 0;
    e.pop = 0;
    e.queue = 0;
    return h;
}

void
MqDvp::freeEntry(std::uint32_t h)
{
    entries.release(h);
}

void
MqDvp::unlink(std::uint32_t h)
{
    entries.unlink(queues[entries[h].queue], h);
}

void
MqDvp::pushTail(std::uint32_t queue_idx, std::uint32_t h)
{
    entries[h].queue = static_cast<std::uint8_t>(queue_idx);
    entries.pushBack(queues[queue_idx], h);
}

void
MqDvp::updateHottest(std::uint32_t h, std::uint64_t prev_access)
{
    Entry &e = entries[h];
    if (e.pop < hottestPop && h != hottestHandle)
        return;
    if (h == hottestHandle || e.pop >= hottestPop) {
        // Interval between the hottest entry's last two accesses
        // (paper section IV-A) drives expiration of every entry.
        if (h == hottestHandle && clock > prev_access)
            hottestInterval = clock - prev_access;
        hottestHandle = h;
        hottestPop = e.pop;
    }
}

void
MqDvp::touch(std::uint32_t h, bool count_as_write)
{
    Entry &e = entries[h];
    const std::uint64_t prev_access = e.lastAccess;

    unlink(h);

    std::uint32_t dest = e.queue;
    const std::uint32_t target = targetQueue(e.pop);
    if (target > dest) {
        dest = cfg.directPromotion ? target : dest + 1;
        ++dstats.promotions;
    }
    pushTail(dest, h);

    e.lastAccess = clock;
    e.expire = clock + hotInterval();
    if (count_as_write)
        updateHottest(h, prev_access);
}

void
MqDvp::demoteExpiredHeads()
{
    // Paper section IV-C: on each update, the head (LRU side) of each
    // queue is checked and demoted one queue if its expiry passed.
    for (std::uint32_t qi = 1; qi < cfg.numQueues; ++qi) {
        const std::uint32_t h = queues[qi].head;
        if (h == kLruNil)
            continue;
        Entry &e = entries[h];
        if (e.expire < clock) {
            unlink(h);
            pushTail(qi - 1, h);
            e.expire = clock + hotInterval();
            ++dstats.demotions;
        }
    }
}

void
MqDvp::removeEntry(std::uint32_t h)
{
    Entry &e = entries[h];
    for (Ppn ppn : e.ppns)
        ppnIndex.erase(ppn);
    index.erase(e.fp);
    unlink(h);
    if (h == hottestHandle)
        hottestHandle = kLruNil; // popularity watermark persists
    freeEntry(h);
    zombie_assert(liveEntries > 0, "live entry count underflow");
    --liveEntries;
}

void
MqDvp::rememberGhost(const Fingerprint &fp)
{
    if (!cfg.adaptive)
        return;
    if (ghostSet.insert(fp))
        ghostFifo.push_back(fp);
    // The ghost list is bounded by the current capacity.
    while (ghostFifo.size() > cfg.capacity) {
        ghostSet.erase(ghostFifo.front());
        ghostFifo.pop_front();
    }
}

void
MqDvp::noteRegret(const Fingerprint &fp)
{
    if (!cfg.adaptive)
        return;
    if (ghostSet.erase(fp) > 0) {
        ++regretsWindow;
        ++regretsTotal;
        // Leave the stale fingerprint in the FIFO; it is skipped when
        // it ages out because the set no longer contains it.
    }
}

void
MqDvp::adaptWindowTick()
{
    if (!cfg.adaptive || ++lookupsWindow < cfg.adaptiveWindow)
        return;

    if (regretsWindow >= cfg.adaptiveRegretThreshold &&
        cfg.capacity < cfg.adaptiveMax) {
        // Evictions cost revivals: grow by one eighth.
        cfg.capacity = std::min(cfg.adaptiveMax,
                                cfg.capacity + cfg.capacity / 8 + 1);
        ++grows;
    } else if (evictionsWindow == 0 &&
               liveEntries < cfg.capacity / 2 &&
               cfg.capacity > cfg.adaptiveMin) {
        // Under-used: release RAM back to the controller.
        cfg.capacity = std::max(cfg.adaptiveMin,
                                cfg.capacity - cfg.capacity / 8);
        while (liveEntries > cfg.capacity)
            evictOne();
        ++shrinks;
    }
    regretsWindow = 0;
    evictionsWindow = 0;
    lookupsWindow = 0;
}

void
MqDvp::evictOne()
{
    for (std::uint32_t qi = 0; qi < cfg.numQueues; ++qi) {
        if (queues[qi].head == kLruNil)
            continue;
        ++dstats.capacityEvictions;
        ++evictionsWindow;
        rememberGhost(entries[queues[qi].head].fp);
        removeEntry(queues[qi].head);
        return;
    }
    zombie_panic("eviction requested from an empty pool");
}

DvpLookupResult
MqDvp::lookupForWrite(const Fingerprint &fp, Lpn)
{
    ++clock;
    ++dstats.lookups;
    adaptWindowTick();

    auto it = index.find(fp);
    if (it == index.end()) {
        noteRegret(fp);
        return DvpLookupResult{};
    }

    const std::uint32_t h = it->second;
    Entry &e = entries[h];
    zombie_assert(!e.ppns.empty(), "pool entry without dead PPNs");

    // Revive the most recently deceased copy.
    const Ppn ppn = e.ppns.back();
    e.ppns.pop_back();
    ppnIndex.erase(ppn);

    e.pop = saturatingIncrement(e.pop);
    const std::uint8_t pop_after = e.pop;

    ++dstats.hits;
    if (e.ppns.empty()) {
        // No garbage copies remain: the entry no longer describes a
        // dead value and is dropped (paper section IV-C, Writes).
        removeEntry(h);
    } else {
        touch(h, true);
    }

    DvpLookupResult result;
    result.hit = true;
    result.ppn = ppn;
    result.popularity = pop_after;
    return result;
}

void
MqDvp::insertGarbage(const Fingerprint &fp, Lpn, Ppn ppn,
                     std::uint8_t pop)
{
    ++dstats.insertions;

    auto it = index.find(fp);
    if (it != index.end()) {
        const std::uint32_t h = it->second;
        Entry &e = entries[h];
        e.ppns.push_back(ppn);
        ppnsHighWater = std::max(ppnsHighWater, e.ppns.capacity());
        ppnIndex[ppn] = h;
        // Another copy of this value died; keep the strongest
        // popularity evidence among the copies.
        e.pop = std::max(e.pop, pop);
        touch(h, true);
        ++dstats.mergedInsertions;
        demoteExpiredHeads();
        return;
    }

    if (liveEntries >= cfg.capacity)
        evictOne();

    const std::uint32_t h = allocEntry();
    Entry &e = entries[h];
    e.fp = fp;
    e.ppns.push_back(ppn);
    ppnsHighWater = std::max(ppnsHighWater, e.ppns.capacity());
    e.pop = pop;
    e.lastAccess = clock;
    e.expire = clock + hotInterval();
    pushTail(0, h);
    index[fp] = h;
    ppnIndex[ppn] = h;
    ++liveEntries;
    updateHottest(h, e.lastAccess);

    demoteExpiredHeads();
}

void
MqDvp::onErase(Ppn ppn)
{
    auto it = ppnIndex.find(ppn);
    if (it == ppnIndex.end())
        return;
    const std::uint32_t h = it->second;
    Entry &e = entries[h];
    auto pos = std::find(e.ppns.begin(), e.ppns.end(), ppn);
    zombie_assert(pos != e.ppns.end(), "ppn index out of sync");
    e.ppns.erase(pos);
    ppnIndex.erase(it);
    ++dstats.gcEvictions;
    if (e.ppns.empty())
        removeEntry(h);
}

} // namespace zombie
