#include "dvp/partitioned_dvp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

PartitionedDvp::PartitionedDvp(
    std::vector<std::unique_ptr<DeadValuePool>> pools_,
    std::vector<Lpn> bases_)
    : pools(std::move(pools_)), bases(std::move(bases_))
{
    if (pools.empty())
        zombie_fatal("partitioned DVP needs at least one pool");
    if (bases.size() != pools.size()) {
        zombie_fatal("partitioned DVP: ", bases.size(),
                     " namespace bases for ", pools.size(), " pools");
    }
    zombie_assert(bases.front() == 0,
                  "first namespace must start at LPN 0");
    zombie_assert(std::is_sorted(bases.begin(), bases.end()),
                  "namespace bases must ascend");
    for (const auto &p : pools)
        zombie_assert(p != nullptr, "partitioned DVP got a null pool");
}

std::uint32_t
PartitionedDvp::tenantOf(Lpn lpn) const
{
    // First base beyond lpn; its predecessor owns the page. Pages
    // past the last namespace (preconditioned cold filler) route to
    // the last tenant, whose range is open-ended.
    const auto it = std::upper_bound(bases.begin(), bases.end(), lpn);
    return static_cast<std::uint32_t>(it - bases.begin()) - 1;
}

std::string
PartitionedDvp::name() const
{
    return "part(" + pools.front()->name() + ")";
}

DvpLookupResult
PartitionedDvp::lookupForWrite(const Fingerprint &fp, Lpn lpn)
{
    return pools[tenantOf(lpn)]->lookupForWrite(fp, lpn);
}

void
PartitionedDvp::insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                              std::uint8_t pop)
{
    pools[tenantOf(lpn)]->insertGarbage(fp, lpn, ppn, pop);
}

void
PartitionedDvp::onErase(Ppn ppn)
{
    for (const auto &p : pools)
        p->onErase(ppn);
}

void
PartitionedDvp::onHostRead(Lpn lpn)
{
    pools[tenantOf(lpn)]->onHostRead(lpn);
}

std::uint64_t
PartitionedDvp::size() const
{
    std::uint64_t total = 0;
    for (const auto &p : pools)
        total += p->size();
    return total;
}

std::uint64_t
PartitionedDvp::capacity() const
{
    std::uint64_t total = 0;
    for (const auto &p : pools)
        total += p->capacity();
    return total;
}

const DvpStats &
PartitionedDvp::stats() const
{
    aggregate = DvpStats{};
    for (const auto &p : pools) {
        const DvpStats &s = p->stats();
        aggregate.lookups += s.lookups;
        aggregate.hits += s.hits;
        aggregate.insertions += s.insertions;
        aggregate.mergedInsertions += s.mergedInsertions;
        aggregate.capacityEvictions += s.capacityEvictions;
        aggregate.gcEvictions += s.gcEvictions;
        aggregate.promotions += s.promotions;
        aggregate.demotions += s.demotions;
    }
    return aggregate;
}

void
PartitionedDvp::registerStats(StatRegistry &registry) const
{
    for (std::size_t t = 0; t < pools.size(); ++t) {
        pools[t]->registerStatsAt(registry,
                                  "dvp.tenant" + std::to_string(t) +
                                      ".");
    }
    // Aggregate counters are recomputed sums, so they register as
    // gauges (counter registration needs a stable pointer). The
    // display name "part(mq)" is not a valid stat path segment, so
    // the aggregate lives under a fixed prefix.
    const std::string p = "dvp.partitioned.";
    registry.addGauge(p + "lookups", [this] {
        return static_cast<double>(stats().lookups);
    });
    registry.addGauge(p + "hits", [this] {
        return static_cast<double>(stats().hits);
    });
    registry.addGauge(p + "size", [this] {
        return static_cast<double>(size());
    });
    registry.addGauge(p + "hit_rate", [this] {
        return stats().hitRate();
    });
}

} // namespace zombie
