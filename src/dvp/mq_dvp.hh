/**
 * @file
 * Multi-Queue dead-value pool (the paper's proposal, sections III-IV).
 *
 * Entries live in numQueues LRU queues; queue index encodes a
 * popularity band. The scheme integrates:
 *  - frequency: an entry whose log2(popularity+1) exceeds its queue
 *    index is promoted one queue up on access,
 *  - recency: within a queue, access pushes the entry to the MRU tail,
 *  - aging: each entry carries an expiration time computed as
 *    CurrentTime + HottestInterval (the interval between the hottest
 *    entry's last two accesses); on every insert, expired queue heads
 *    are demoted one queue down,
 *  - on-demand eviction from the head (LRU end) of the lowest
 *    non-empty queue when the pool exceeds its entry capacity.
 *
 * Time is the pool's write clock: one tick per lookupForWrite call.
 */

#ifndef ZOMBIE_DVP_MQ_DVP_HH
#define ZOMBIE_DVP_MQ_DVP_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "dvp/dead_value_pool.hh"
#include "util/flat_map.hh"
#include "util/intrusive_lru.hh"

namespace zombie
{

/** Tunables (paper defaults: 8 queues, 200K entries). */
struct MqDvpConfig
{
    std::uint64_t capacity = 200'000;
    std::uint32_t numQueues = 8;

    /**
     * Expiration interval (in writes) used until the hottest entry
     * has been accessed twice and its real interval is known.
     */
    std::uint64_t defaultExpiryInterval = 20'000;

    /**
     * Lower bound on the learned expiry interval, as a multiple of
     * the pool capacity. The hottest value can recur every handful of
     * writes, and taking that interval literally would age every
     * entry out of its queue immediately, collapsing MQ into LRU; an
     * entry deserves at least a fraction of one queue-churn cycle
     * (the original MQ paper's lifeTime guidance) before demotion.
     * Set to 0 to follow the literal hottest-interval rule.
     */
    double expiryFloorOfCapacity = 0.5;

    /**
     * Ablation knob: promote straight to the log2 target queue
     * instead of the paper's one-queue-at-a-time rule.
     */
    bool directPromotion = false;

    /**
     * Adaptive capacity (the paper's stated future work, footnote 5:
     * "dynamically tuning the total capacity for MQ, in order to
     * adapt itself to any changes in the workload"). A ghost list
     * remembers recently evicted hashes; a lookup that misses the
     * pool but hits the ghost list is a *regret* — a revival the
     * pool would have made with more room. Every adaptiveWindow
     * lookups: many regrets grow the capacity one step (up to
     * adaptiveMax); an under-used window (no capacity evictions and
     * a half-empty pool) shrinks it (down to adaptiveMin).
     */
    bool adaptive = false;
    std::uint64_t adaptiveMin = 1'024;
    std::uint64_t adaptiveMax = 1'000'000;
    std::uint64_t adaptiveWindow = 10'000;

    /** Regrets per window that trigger growth. */
    std::uint64_t adaptiveRegretThreshold = 64;
};

/** The MQ-DVP scheme. */
class MqDvp : public DeadValuePool
{
  public:
    explicit MqDvp(MqDvpConfig config);

    std::string name() const override { return "mq"; }

    DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                   Lpn lpn) override;
    void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                       std::uint8_t pop) override;
    void onErase(Ppn ppn) override;

    std::uint64_t size() const override { return liveEntries; }

    /** Current capacity (changes over time when adaptive). */
    std::uint64_t capacity() const override { return cfg.capacity; }
    const DvpStats &stats() const override { return dstats; }

    /** Adaptive-capacity counters. */
    std::uint64_t ghostHits() const { return regretsTotal; }
    std::uint64_t adaptiveGrows() const { return grows; }
    std::uint64_t adaptiveShrinks() const { return shrinks; }

    /** Queue index an entry with this popularity belongs in. */
    std::uint32_t targetQueue(std::uint8_t pop) const;

    /** Introspection for tests: entries currently in queue @p q. */
    std::uint64_t queueLength(std::uint32_t q) const;

    /** Introspection for tests: queue holding @p fp, or -1. */
    int queueOf(const Fingerprint &fp) const;

    /** Number of dead PPNs tracked for @p fp (0 if absent). */
    std::uint64_t ppnCount(const Fingerprint &fp) const;

    /** Current expiry interval (defaultExpiryInterval until learned). */
    std::uint64_t hotInterval() const;

    /** Pool write clock (number of lookupForWrite calls so far). */
    std::uint64_t writeClock() const { return clock; }

  private:
    struct Entry
    {
        Fingerprint fp{};
        std::vector<Ppn> ppns;
        std::uint64_t expire = 0;
        std::uint64_t lastAccess = 0;
        std::uint8_t pop = 0;
        std::uint8_t queue = 0;
    };

    void rememberGhost(const Fingerprint &fp);
    void noteRegret(const Fingerprint &fp);
    void adaptWindowTick();

    std::uint32_t allocEntry();
    void freeEntry(std::uint32_t h);
    void unlink(std::uint32_t h);
    void pushTail(std::uint32_t queue_idx, std::uint32_t h);
    void touch(std::uint32_t h, bool count_as_write);
    void updateHottest(std::uint32_t h, std::uint64_t prev_access);
    void demoteExpiredHeads();
    void evictOne();
    void removeEntry(std::uint32_t h);

    MqDvpConfig cfg;
    LruSlab<Entry> entries;
    std::vector<LruChain> queues;
    FlatMap<Fingerprint, std::uint32_t, FingerprintHash> index;
    FlatMap<Ppn, std::uint32_t> ppnIndex;

    std::uint64_t liveEntries = 0;
    std::uint64_t clock = 0;

    /**
     * Largest ppns-vector capacity any entry has reached. Freshly
     * acquired slots are reserved to this high-water mark, so once
     * the workload's dead-copy multiplicity has been seen, slot
     * reuse under eviction churn never touches the allocator.
     */
    std::size_t ppnsHighWater = 0;

    std::uint32_t hottestHandle = kLruNil;
    std::uint8_t hottestPop = 0;
    std::uint64_t hottestInterval = 0; //!< 0 = not learned yet

    /** Ghost list of recently evicted hashes (adaptive mode). */
    std::deque<Fingerprint> ghostFifo;
    FlatSet<Fingerprint, FingerprintHash> ghostSet;
    std::uint64_t regretsWindow = 0;
    std::uint64_t regretsTotal = 0;
    std::uint64_t evictionsWindow = 0;
    std::uint64_t lookupsWindow = 0;
    std::uint64_t grows = 0;
    std::uint64_t shrinks = 0;

    DvpStats dstats;
};

} // namespace zombie

#endif // ZOMBIE_DVP_MQ_DVP_HH
