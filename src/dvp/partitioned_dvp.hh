/**
 * @file
 * Per-tenant partitioned dead-value pool (composite).
 *
 * A multi-tenant drive can either share one drive-wide pool across
 * every namespace or give each tenant a private pool over its own
 * LPN range. PartitionedDvp implements the latter as a pure
 * composite: it owns one DeadValuePool per tenant and routes every
 * call by the request's logical page (namespaces are contiguous LPN
 * ranges, so a binary search over the base table names the owner).
 * The member pools are unmodified — isolation comes entirely from
 * the routing, so any scheme (mq, lru, lx, infinite) partitions.
 *
 * Erases broadcast: the pool cannot tell which tenant's entries a
 * just-erased block held, and onErase is a no-op for pools without a
 * reference to that PPN, so telling everyone is both correct and
 * exactly as cheap as the lookup each member pool does anyway.
 */

#ifndef ZOMBIE_DVP_PARTITIONED_DVP_HH
#define ZOMBIE_DVP_PARTITIONED_DVP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dvp/dead_value_pool.hh"

namespace zombie
{

/** One private dead-value pool per tenant, routed by LPN range. */
class PartitionedDvp : public DeadValuePool
{
  public:
    /**
     * Take ownership of one pool per tenant. @p bases are the
     * namespace base LPNs in tenant order (prefix sums of the
     * namespace sizes), so tenant t owns [bases[t], bases[t+1]).
     */
    PartitionedDvp(std::vector<std::unique_ptr<DeadValuePool>> pools,
                   std::vector<Lpn> bases);

    std::string name() const override;

    DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                   Lpn lpn) override;
    void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                       std::uint8_t pop) override;
    void onErase(Ppn ppn) override;
    void onHostRead(Lpn lpn) override;

    std::uint64_t size() const override;
    std::uint64_t capacity() const override;

    /** Aggregated counters, summed across every member pool. */
    const DvpStats &stats() const override;

    /**
     * Member pools register under "dvp.tenant<t>." and the
     * aggregate view under "dvp.<name()>." as gauges (the sums are
     * computed, so they cannot be registered by counter pointer).
     */
    void registerStats(StatRegistry &registry) const override;

    std::uint32_t tenants() const
    {
        return static_cast<std::uint32_t>(pools.size());
    }

    /** Tenant owning logical page @p lpn. */
    std::uint32_t tenantOf(Lpn lpn) const;

    const DeadValuePool &pool(std::uint32_t t) const
    {
        return *pools[t];
    }

  private:
    std::vector<std::unique_ptr<DeadValuePool>> pools;

    /** Namespace base LPNs, ascending; bases[0] == 0. */
    std::vector<Lpn> bases;

    /** Scratch for stats(): refreshed on every call. */
    mutable DvpStats aggregate;
};

} // namespace zombie

#endif // ZOMBIE_DVP_PARTITIONED_DVP_HH
