/**
 * @file
 * Dead-value pool: the paper's core abstraction.
 *
 * A dead-value pool remembers, for recently invalidated ("dead") flash
 * pages, the 16B hash of their content and the PPN(s) where that
 * content still physically resides. An incoming write whose content
 * hash hits the pool is short-circuited: one dead PPN is revived
 * (Invalid -> Valid) and no flash program happens.
 *
 * Four implementations cover the paper's studied systems:
 *  - MqDvp       the proposed Multi-Queue pool (sections III-IV),
 *  - LruDvp      the single-LRU strawman of Figures 5/6,
 *  - InfiniteDvp the "Ideal" infinite-capacity pool,
 *  - LxDvp       the LX-SSD prior-work baseline [20].
 *
 * Time is measured in write-request count, exactly as the paper's MQ
 * scheme does ("the i-th incoming write request has a timestamp i").
 */

#ifndef ZOMBIE_DVP_DEAD_VALUE_POOL_HH
#define ZOMBIE_DVP_DEAD_VALUE_POOL_HH

#include <cstdint>
#include <string>

#include "hash/fingerprint.hh"
#include "telemetry/stat_registry.hh"
#include "util/types.hh"

namespace zombie
{

/** Counters every pool implementation maintains. */
struct DvpStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;       //!< writes short-circuited
    std::uint64_t insertions = 0; //!< garbage pages registered
    std::uint64_t mergedInsertions = 0; //!< into an existing entry
    std::uint64_t capacityEvictions = 0;
    std::uint64_t gcEvictions = 0; //!< PPNs lost to block erase
    std::uint64_t promotions = 0;  //!< MQ only
    std::uint64_t demotions = 0;   //!< MQ only

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Result of a write-time pool lookup. */
struct DvpLookupResult
{
    bool hit = false;
    Ppn ppn = kInvalidPpn;      //!< dead page to revive (on hit)
    std::uint8_t popularity = 0; //!< value popularity after this write
};

/** Abstract dead-value pool. */
class DeadValuePool
{
  public:
    virtual ~DeadValuePool() = default;

    /** Human-readable scheme name ("mq", "lru", ...). */
    virtual std::string name() const = 0;

    /**
     * An incoming write carries content @p fp (and, for LBA-keyed
     * schemes, targets @p lpn). On a hit the returned PPN must be
     * revived by the caller and is removed from the pool. Advances
     * the pool's write clock.
     */
    virtual DvpLookupResult lookupForWrite(const Fingerprint &fp,
                                           Lpn lpn) = 0;

    /**
     * A valid page at @p ppn holding content @p fp (logical page
     * @p lpn) was just invalidated with popularity degree @p pop.
     */
    virtual void insertGarbage(const Fingerprint &fp, Lpn lpn, Ppn ppn,
                               std::uint8_t pop) = 0;

    /** GC erased the block containing @p ppn; drop any reference. */
    virtual void onErase(Ppn ppn) = 0;

    /**
     * A host read touched @p lpn. Default no-op: the paper's schemes
     * track write popularity only (prior work LX-SSD conflates reads
     * into recency and overrides this — its inefficiency (i)).
     */
    virtual void onHostRead(Lpn lpn) { (void)lpn; }

    /** Number of entries currently resident. */
    virtual std::uint64_t size() const = 0;

    /** Entry capacity (0 = unbounded). */
    virtual std::uint64_t capacity() const = 0;

    virtual const DvpStats &stats() const = 0;

    /**
     * Register the pool's counters and occupancy/hit-rate gauges
     * under "dvp.<name()>." ("dvp.mq.hits", ...). The stats struct
     * every implementation returns by reference is a long-lived
     * member, so the registered pointers stay valid for the pool's
     * lifetime. Virtual so composite pools (PartitionedDvp) can
     * expose their member pools under per-tenant prefixes.
     */
    virtual void registerStats(StatRegistry &registry) const;

    /**
     * Same registrations under an explicit @p prefix (ending in
     * '.'), for composites that place one pool per tenant in the
     * namespace ("dvp.tenant0.", ...).
     */
    void registerStatsAt(StatRegistry &registry,
                         const std::string &prefix) const;
};

inline void
DeadValuePool::registerStats(StatRegistry &registry) const
{
    registerStatsAt(registry, "dvp." + name() + ".");
}

inline void
DeadValuePool::registerStatsAt(StatRegistry &registry,
                               const std::string &prefix) const
{
    const std::string &p = prefix;
    const DvpStats &s = stats();
    registry.addCounter(p + "lookups", &s.lookups);
    registry.addCounter(p + "hits", &s.hits);
    registry.addCounter(p + "insertions", &s.insertions);
    registry.addCounter(p + "merged_insertions", &s.mergedInsertions);
    registry.addCounter(p + "capacity_evictions",
                        &s.capacityEvictions);
    registry.addCounter(p + "gc_evictions", &s.gcEvictions);
    registry.addCounter(p + "promotions", &s.promotions);
    registry.addCounter(p + "demotions", &s.demotions);
    registry.addGauge(p + "size", [this] {
        return static_cast<double>(size());
    });
    registry.addGauge(p + "hit_rate", [this] {
        return stats().hitRate();
    });
}

/** Saturating 8-bit popularity increment (the Fig 8 1-byte counter). */
inline std::uint8_t
saturatingIncrement(std::uint8_t pop)
{
    return pop == 255 ? pop : static_cast<std::uint8_t>(pop + 1);
}

} // namespace zombie

#endif // ZOMBIE_DVP_DEAD_VALUE_POOL_HH
