/**
 * @file
 * Value life-cycle characterization (paper section II).
 *
 * The paper extends a value's life-cycle to three stages: creation
 * (first write), death (its last live copy is invalidated), and
 * rebirth (it is rewritten after death). LifecycleTracker replays a
 * trace's writes at the content level — no SSD model, exactly like
 * the paper's section II methodology ("done by analyzing the traces")
 * — and records, per unique value:
 *
 *   - writes, copy-level invalidations, value-level deaths, rebirths,
 *   - the number of intervening writes from (re)creation to death and
 *     from death to rebirth (the paper's time metric in Figure 4),
 *   - whether each incoming write could have been serviced from the
 *     garbage pool (Figure 1's infinite-buffer reuse probability).
 */

#ifndef ZOMBIE_ANALYSIS_LIFECYCLE_HH
#define ZOMBIE_ANALYSIS_LIFECYCLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hash/fingerprint.hh"
#include "trace/record.hh"

namespace zombie
{

/** Per-unique-value life-cycle counters. */
struct ValueLifecycle
{
    std::uint64_t writes = 0;
    std::uint64_t invalidations = 0; //!< copy-level deaths
    std::uint64_t deaths = 0;        //!< value-level deaths
    std::uint64_t rebirths = 0;      //!< writes arriving while dead

    /**
     * Copy-level rebirths: writes arriving while at least one dead
     * copy existed (each reusable from the garbage pool, Figure 1).
     */
    std::uint64_t reuses = 0;

    std::uint64_t liveCopies = 0;
    std::uint64_t deadCopies = 0;

    /** Write-count distances for the Figure 4 time metrics. */
    std::uint64_t sumCreationToDeath = 0;
    std::uint64_t sumDeathToRebirth = 0;

    /** Write index when the value most recently became live / died. */
    std::uint64_t lastAliveAt = 0;
    std::uint64_t lastDeathAt = 0;

    bool isLive() const { return liveCopies > 0; }
};

/** Aggregate results of a life-cycle replay. */
struct LifecycleSummary
{
    std::uint64_t writes = 0;
    std::uint64_t uniqueValues = 0;
    std::uint64_t liveValues = 0;  //!< still live at end of trace
    std::uint64_t totalDeaths = 0;
    std::uint64_t totalRebirths = 0;

    /** Writes servable from the garbage pool, infinite buffer. */
    std::uint64_t reusableWrites = 0;

    /** Same, assuming in-line dedup removed live-duplicate writes. */
    std::uint64_t reusableWritesAfterDedup = 0;
    std::uint64_t dedupRemovedWrites = 0;

    double
    reuseProbability() const
    {
        return writes ? static_cast<double>(reusableWrites) /
                            static_cast<double>(writes)
                      : 0.0;
    }

    double
    reuseProbabilityAfterDedup() const
    {
        return writes ? static_cast<double>(reusableWritesAfterDedup) /
                            static_cast<double>(writes)
                      : 0.0;
    }
};

/** Content-level trace replay (writes only; reads are ignored). */
class LifecycleTracker
{
  public:
    /** Feed one record (reads are counted but otherwise ignored). */
    void observe(const TraceRecord &rec);

    /** Feed a whole trace. */
    void observeAll(const std::vector<TraceRecord> &records);

    LifecycleSummary summary() const;

    const std::unordered_map<Fingerprint, ValueLifecycle,
                             FingerprintHash> &
    values() const
    {
        return table;
    }

    /**
     * Per-value rows sorted by write count descending — the x-axis
     * order of Figure 3.
     */
    std::vector<ValueLifecycle> valuesByPopularity() const;

    std::uint64_t writeClock() const { return clock; }

  private:
    std::unordered_map<Fingerprint, ValueLifecycle, FingerprintHash>
        table;
    std::unordered_map<Lpn, Fingerprint> lpnContent;
    LifecycleSummary agg;
    std::uint64_t clock = 0; //!< write counter (the time metric)
};

/**
 * Lorenz-style cumulative share curve: for the top fraction x of
 * items (sorted descending by weight), the fraction of total weight
 * they hold. Used for the Figure 3 CDFs.
 */
struct ShareCurvePoint
{
    double itemFraction;
    double weightFraction;
};

std::vector<ShareCurvePoint>
buildShareCurve(std::vector<std::uint64_t> weights,
                std::size_t max_points = 20);

} // namespace zombie

#endif // ZOMBIE_ANALYSIS_LIFECYCLE_HH
