#include "analysis/reuse.hh"

#include <algorithm>
#include <bit>

#include "dvp/lru_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "util/logging.hh"

namespace zombie
{

ReuseAnalyzer::ReuseAnalyzer(std::unique_ptr<DeadValuePool> pool)
    : dvp(std::move(pool))
{
    zombie_assert(dvp != nullptr, "ReuseAnalyzer needs a pool");
}

ReuseAnalyzer::~ReuseAnalyzer() = default;

void
ReuseAnalyzer::observe(const TraceRecord &rec)
{
    if (!rec.isWrite())
        return;

    ++res.writes;
    ValueState &v = values[rec.fp];

    // The previous content of this LPN becomes garbage.
    auto old = lpnContent.find(rec.lpn);
    if (old != lpnContent.end()) {
        ValueState &o = values[old->second];
        zombie_assert(o.liveCopies > 0, "replay copy underflow");
        --o.liveCopies;
        ++o.deadCopies;
        auto ppn_it = lpnPpn.find(rec.lpn);
        zombie_assert(ppn_it != lpnPpn.end(), "lost pseudo PPN");
        dvp->insertGarbage(old->second, rec.lpn, ppn_it->second,
                           lpnPop[rec.lpn]);
    }

    // Bounded pool attempt.
    const DvpLookupResult hit = dvp->lookupForWrite(rec.fp, rec.lpn);

    // Infinite-buffer reference outcome (for capacity misses).
    const bool infinite_hit = v.deadCopies > 0;
    if (infinite_hit)
        --v.deadCopies;

    if (hit.hit) {
        ++res.reusedWrites;
        lpnPpn[rec.lpn] = hit.ppn;
        lpnPop[rec.lpn] = hit.popularity;
    } else {
        if (infinite_hit) {
            ++res.capacityMisses;
            ++v.misses;
        }
        lpnPpn[rec.lpn] = nextPseudoPpn++;
        lpnPop[rec.lpn] = 1;
    }

    ++v.writes;
    ++v.liveCopies;
    lpnContent[rec.lpn] = rec.fp;
}

void
ReuseAnalyzer::observeAll(const std::vector<TraceRecord> &records)
{
    for (const auto &rec : records)
        observe(rec);
}

std::vector<MissBreakdownBin>
ReuseAnalyzer::missBreakdown() const
{
    // Exact degrees up to 64, then power-of-two bins keyed by their
    // lower bound.
    auto bin_of = [](std::uint64_t writes) -> std::uint64_t {
        if (writes <= 64)
            return writes;
        return std::uint64_t{1} << (std::bit_width(writes) - 1);
    };

    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        bins; // degree -> (value count, miss sum)
    for (const auto &[fp, v] : values) {
        auto &[count, misses] = bins[bin_of(v.writes)];
        ++count;
        misses += v.misses;
    }

    std::vector<MissBreakdownBin> rows;
    rows.reserve(bins.size());
    for (const auto &[degree, cm] : bins) {
        rows.push_back({degree, cm.first,
                        static_cast<double>(cm.second) /
                            static_cast<double>(cm.first)});
    }
    return rows;
}

ReuseResult
analyzeLruReuse(const std::vector<TraceRecord> &records,
                std::uint64_t capacity)
{
    ReuseAnalyzer analyzer(std::make_unique<LruDvp>(capacity));
    analyzer.observeAll(records);
    return analyzer.result();
}

ReuseResult
analyzeMqReuse(const std::vector<TraceRecord> &records,
               std::uint64_t capacity, std::uint32_t queues)
{
    MqDvpConfig cfg;
    cfg.capacity = capacity;
    cfg.numQueues = queues;
    ReuseAnalyzer analyzer(std::make_unique<MqDvp>(cfg));
    analyzer.observeAll(records);
    return analyzer.result();
}

} // namespace zombie
