/**
 * @file
 * Bounded-buffer reuse analysis (paper Figures 5 and 6).
 *
 * Replays a trace's writes through a real DeadValuePool instance
 * (pseudo-PPNs stand in for flash pages, no timing model) and counts
 * how many writes the buffer short-circuits. The same replay tracks
 * the infinite-buffer outcome in parallel so Figure 6 can attribute
 * capacity misses — writes the infinite pool would have served but
 * the bounded pool missed — to the popularity degree of the value.
 */

#ifndef ZOMBIE_ANALYSIS_REUSE_HH
#define ZOMBIE_ANALYSIS_REUSE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dvp/dead_value_pool.hh"
#include "trace/record.hh"

namespace zombie
{

/** Outcome of one bounded-buffer replay. */
struct ReuseResult
{
    std::uint64_t writes = 0;        //!< total host writes
    std::uint64_t reusedWrites = 0;  //!< short-circuited by the pool
    std::uint64_t capacityMisses = 0; //!< infinite would have hit

    /** Writes that still had to be performed on flash. */
    std::uint64_t
    actualWrites() const
    {
        return writes - reusedWrites;
    }

    double
    reuseFraction() const
    {
        return writes ? static_cast<double>(reusedWrites) /
                            static_cast<double>(writes)
                      : 0.0;
    }
};

/** Average capacity misses per value, binned by popularity degree. */
struct MissBreakdownBin
{
    std::uint64_t popularityDegree; //!< total writes to the value
    std::uint64_t valueCount;
    double avgMisses;
};

/**
 * Trace-level replay harness around any DeadValuePool.
 * Construct with a pool (owned), feed records, read results.
 */
class ReuseAnalyzer
{
  public:
    explicit ReuseAnalyzer(std::unique_ptr<DeadValuePool> pool);
    ~ReuseAnalyzer();

    void observe(const TraceRecord &rec);
    void observeAll(const std::vector<TraceRecord> &records);

    ReuseResult result() const { return res; }
    const DeadValuePool &pool() const { return *dvp; }

    /**
     * Figure 6: average number of capacity misses per value for each
     * popularity degree (values bucketed by their final write count;
     * degrees above 64 are clamped into log-spaced bins).
     */
    std::vector<MissBreakdownBin> missBreakdown() const;

  private:
    struct ValueState
    {
        std::uint64_t writes = 0;
        std::uint64_t liveCopies = 0;
        std::uint64_t deadCopies = 0; //!< infinite-buffer view
        std::uint64_t misses = 0;     //!< bounded missed, infinite hit
    };

    std::unique_ptr<DeadValuePool> dvp;
    std::unordered_map<Fingerprint, ValueState, FingerprintHash> values;
    std::unordered_map<Lpn, Fingerprint> lpnContent;
    std::unordered_map<Lpn, Ppn> lpnPpn;
    std::unordered_map<Lpn, std::uint8_t> lpnPop;
    std::uint64_t nextPseudoPpn = 0;
    ReuseResult res;
};

/** Convenience: replay through an LRU pool of @p capacity entries. */
ReuseResult analyzeLruReuse(const std::vector<TraceRecord> &records,
                            std::uint64_t capacity);

/** Convenience: replay through an MQ pool. */
ReuseResult analyzeMqReuse(const std::vector<TraceRecord> &records,
                           std::uint64_t capacity,
                           std::uint32_t queues = 8);

} // namespace zombie

#endif // ZOMBIE_ANALYSIS_REUSE_HH
