#include "analysis/lifecycle.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

void
LifecycleTracker::observe(const TraceRecord &rec)
{
    if (!rec.isWrite())
        return;

    ++clock;
    ++agg.writes;

    // 1. The content previously stored at this LPN dies (copy-level).
    auto old = lpnContent.find(rec.lpn);
    if (old != lpnContent.end()) {
        ValueLifecycle &o = table[old->second];
        zombie_assert(o.liveCopies > 0, "copy accounting underflow");
        --o.liveCopies;
        ++o.deadCopies;
        ++o.invalidations;
        if (o.liveCopies == 0) {
            // Value-level death: its last live copy is gone.
            ++o.deaths;
            ++agg.totalDeaths;
            o.sumCreationToDeath += clock - o.lastAliveAt;
            o.lastDeathAt = clock;
        }
    }

    // 2. Classify the incoming write against the value's state.
    ValueLifecycle &v = table[rec.fp];
    const bool has_live = v.liveCopies > 0;
    const bool has_dead = v.deadCopies > 0;
    const bool seen_before = v.writes > 0;

    if (has_dead) {
        ++agg.reusableWrites;
        ++v.reuses;
    }
    if (has_live) {
        ++agg.dedupRemovedWrites;
    } else if (has_dead) {
        ++agg.reusableWritesAfterDedup;
    }

    if (seen_before && !has_live) {
        // Rebirth: rewritten after death (section II-B1).
        ++v.rebirths;
        ++agg.totalRebirths;
        v.sumDeathToRebirth += clock - v.lastDeathAt;
    }
    if (!has_live)
        v.lastAliveAt = clock;

    ++v.writes;
    if (has_dead)
        --v.deadCopies; // infinite garbage pool revives a dead copy
    ++v.liveCopies;

    lpnContent[rec.lpn] = rec.fp;
}

void
LifecycleTracker::observeAll(const std::vector<TraceRecord> &records)
{
    for (const auto &rec : records)
        observe(rec);
}

LifecycleSummary
LifecycleTracker::summary() const
{
    LifecycleSummary s = agg;
    s.uniqueValues = table.size();
    s.liveValues = 0;
    for (const auto &[fp, v] : table) {
        if (v.isLive())
            ++s.liveValues;
    }
    return s;
}

std::vector<ValueLifecycle>
LifecycleTracker::valuesByPopularity() const
{
    std::vector<ValueLifecycle> rows;
    rows.reserve(table.size());
    for (const auto &[fp, v] : table)
        rows.push_back(v);
    std::sort(rows.begin(), rows.end(),
              [](const ValueLifecycle &a, const ValueLifecycle &b) {
                  return a.writes > b.writes;
              });
    return rows;
}

std::vector<ShareCurvePoint>
buildShareCurve(std::vector<std::uint64_t> weights,
                std::size_t max_points)
{
    std::vector<ShareCurvePoint> curve;
    if (weights.empty() || max_points < 2)
        return curve;

    std::sort(weights.begin(), weights.end(),
              std::greater<std::uint64_t>());
    double total = 0.0;
    for (const std::uint64_t w : weights)
        total += static_cast<double>(w);
    if (total == 0.0)
        return curve;

    const std::size_t n = weights.size();
    std::vector<double> cumulative(n);
    double run = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        run += static_cast<double>(weights[i]);
        cumulative[i] = run / total;
    }

    curve.reserve(max_points);
    for (std::size_t k = 1; k <= max_points; ++k) {
        const std::size_t idx =
            std::min(n - 1, k * n / max_points == 0
                                ? std::size_t{0}
                                : k * n / max_points - 1);
        curve.push_back({static_cast<double>(idx + 1) /
                             static_cast<double>(n),
                         cumulative[idx]});
    }
    return curve;
}

} // namespace zombie
