/**
 * @file
 * NAND operation timing (Table I) and the ONFi channel model.
 *
 * Latencies follow Table I: read 75us, program 400us, erase 3.8ms,
 * hash engine 12us per 4KB chunk. The channel models ONFi 4.0 at
 * 800 MT/s: moving one 4KB page plus metadata over the 8-bit bus takes
 * about 5.2us, plus fixed command overhead.
 */

#ifndef ZOMBIE_NAND_TIMING_HH
#define ZOMBIE_NAND_TIMING_HH

#include "util/types.hh"

namespace zombie
{

/** Flash operation kinds the resource model schedules. */
enum class FlashOp
{
    Read,
    Program,
    Erase,
};

/** All latencies in ticks (ns). */
struct TimingModel
{
    Tick readLatency = ticksFromUs(75);
    Tick programLatency = ticksFromUs(400);
    Tick eraseLatency = ticksFromMs(3.8);

    /** 4KB + OOB over an ONFi 4.0 800 MT/s 8-bit bus. */
    Tick pageTransfer = ticksFromUs(5.2);

    /** Command/address cycles per operation. */
    Tick commandOverhead = ticksFromUs(0.2);

    /** On-controller hash engine, per 4KB chunk (Table I, [35]). */
    Tick hashLatency = ticksFromUs(12);

    /** FTL mapping-table manipulation cost per request. */
    Tick ftlOverhead = ticksFromUs(1);

    /** Serving a read from controller RAM (read-cache hit). */
    Tick cacheHit = ticksFromUs(3);

    /** Array-busy time for an operation (excludes bus transfer). */
    Tick
    arrayLatency(FlashOp op) const
    {
        switch (op) {
          case FlashOp::Read:
            return readLatency;
          case FlashOp::Program:
            return programLatency;
          case FlashOp::Erase:
            return eraseLatency;
        }
        return 0;
    }
};

} // namespace zombie

#endif // ZOMBIE_NAND_TIMING_HH
