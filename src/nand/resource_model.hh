/**
 * @file
 * Channel/die contention model (SSDSim-style).
 *
 * The drive's parallelism comes from independently functioning
 * channels with multiple chips (Table I: 8x8, 4 dies/chip); the die is
 * the concurrency unit for array operations and the channel bus
 * serializes page transfers. Each resource keeps a busy-until
 * timestamp; scheduling an operation composes bus and array phases:
 *
 *   read:    array(tR) on die, then data-out transfer on channel
 *   program: data-in transfer on channel, then array(tPROG) on die
 *   erase:   array(tBERS) on die only
 *
 * scheduleOp() returns the completion tick; the difference to the
 * request's arrival is its device-level latency, which is where GC
 * interference and write/read asymmetry show up (paper sections I, VI-B).
 */

#ifndef ZOMBIE_NAND_RESOURCE_MODEL_HH
#define ZOMBIE_NAND_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "telemetry/stat_registry.hh"
#include "telemetry/trace_sink.hh"
#include "util/ring.hh"
#include "util/types.hh"

namespace zombie
{

/** Busy-until schedule for every channel and die. */
class ResourceModel
{
  public:
    ResourceModel(const Geometry &geom, const TimingModel &timing);

    /**
     * Schedule @p op against the page @p ppn lives on, no earlier
     * than @p earliest. Advances the die/channel busy-until state.
     * @p gc tags the op's origin for the trace sink only; it never
     * affects timing. @return completion tick.
     */
    Tick scheduleOp(FlashOp op, Ppn ppn, Tick earliest,
                    bool gc = false);

    /** Earliest tick at which the die owning @p ppn is idle. */
    Tick dieFreeAt(Ppn ppn) const;
    Tick channelFreeAt(Ppn ppn) const;

    /** Busy-until of a die by flat index (dynamic write allocation). */
    Tick dieFreeAtIndex(std::uint64_t die) const;

    /**
     * Raw view of the per-die busy-until table, one entry per die in
     * flat die order. The table is sized at construction and never
     * reallocates, so the pointer stays valid for the model's
     * lifetime; the BlockManager reads it directly on the write
     * allocation path instead of probing through a std::function.
     */
    const Tick *dieBusyTable() const { return dieBusyUntil.data(); }

    /**
     * Raw view of the per-group die busy-until minima, one entry per
     * group of dieGroupDies() consecutive dies in flat die order.
     * Groups never span channels (the group size divides the
     * per-channel die count), so the index stays correct under the
     * channel-sharded flash phase. Like dieBusyTable(), sized at
     * construction and never reallocated. The BlockManager scans
     * this instead of every die to find the least-loaded plane
     * (DESIGN.md section 7.15).
     */
    const Tick *dieGroupMinTable() const { return dieGroupMin.data(); }

    /** Dies per group-min entry (a power-of-two divisor of the
     *  per-channel die count). */
    std::uint64_t dieGroupDies() const { return groupDies; }

    /**
     * Pending-queue accounting (admission backlog signals). The
     * model keeps, per die, the completion ticks of issued ops that
     * were still outstanding when the die last accepted work. This
     * is pure observation: it never advances a busy-until horizon,
     * so it cannot violate the horizon-ratchet rule above.
     */

    /**
     * Ops issued to @p die and not yet complete as of the die's most
     * recent issue point (its schedule backlog, including the op
     * then executing). 0 before the first issue.
     */
    std::uint32_t dieBacklog(std::uint64_t die) const;

    /**
     * Ops on @p die still incomplete at @p now. Exact for @p now at
     * or beyond the die's most recent issue point; earlier than that
     * it is a lower bound (ops already retired from the backlog
     * window are no longer counted).
     */
    std::uint32_t pendingAt(std::uint64_t die, Tick now) const;

    /**
     * High-water mark of any die's backlog over the run. The
     * high-water is tracked per die (so backlog accounting stays
     * channel-local under the sharded flash phase) and folded with
     * max here; the fold equals the historical global running
     * maximum exactly.
     */
    std::uint64_t maxDieBacklog() const;

    /** Fraction of [0, horizon] each resource class was busy. */
    double channelUtilization(Tick horizon) const;
    double dieUtilization(Tick horizon) const;

    const TimingModel &timing() const { return times; }

    /** Geometry this model was built for. */
    const Geometry &geometry() const { return geom; }

    /** Whether an operation tracer is attached (sharding must then
     *  fall back to serial issue: spans record in issue order). */
    bool hasTracer() const { return tracer != nullptr; }

    /**
     * Attach an operation tracer (not owned; nullptr detaches). One
     * track per die, named "chan<c>.chip<k>.die<d>"; each scheduled
     * op emits one span covering its die-occupancy phase, so spans
     * on a track never overlap and start ticks are nondecreasing in
     * recording order. Disabled tracing costs one null check per op.
     */
    void setTraceSink(TraceSink *sink);

    /**
     * Category stamped on host-op spans (GC ops always record under
     * "gc"). Must point at static storage (TraceSink contract); the
     * controller switches it per command to attribute spans to the
     * issuing tenant. Defaults to "host".
     */
    void setHostSpanCategory(const char *category)
    {
        hostCategory = category;
    }

    /**
     * Register per-die busy-tick counters
     * ("nand.chan<c>.chip<k>.die<d>.busy_ticks") and the
     * "nand.max_die_backlog" gauge. The busy tables are sized at
     * construction and never reallocate, so the registered pointers
     * stay valid for the model's lifetime.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    /** Record one issued op's (issue-point, completion) pair. */
    void noteDieIssue(std::uint64_t die, Tick issued, Tick completion);

    /** Keep a die's group minimum current after its busy-until grew
     *  from @p die_was (see scheduleOp). */
    void updateGroupMin(std::uint64_t die, Tick die_was);

    Geometry geom;
    TimingModel times;
    std::vector<Tick> channelBusyUntil;
    std::vector<Tick> dieBusyUntil;

    /**
     * Per-group minima over dieBusyUntil (dies in flat order,
     * groupDies per entry). Maintained lazily: busy-untils only ever
     * grow, so a group's minimum can change only when the op landed
     * on a die that held it — one compare per op, and a short
     * rescan of the group only on that rare hit.
     */
    std::vector<Tick> dieGroupMin;
    std::uint64_t groupDies = 1;
    std::vector<Tick> channelBusyTotal;
    std::vector<Tick> dieBusyTotal;

    /**
     * Per-die completion ticks of outstanding ops, sorted (die ops
     * serialize, so completions arrive in nondecreasing order); the
     * front is pruned at each issue against the new op's issue
     * point. Flat rings: the sliding window stops exercising the
     * allocator once each ring reaches its backlog high-water mark.
     */
    std::vector<RingBuffer<Tick>> dieOutstanding;

    /** Per-die backlog high-water marks (see maxDieBacklog). */
    std::vector<std::uint64_t> backlogHigh;

    /** Operation tracer; null (the default) disables span recording. */
    TraceSink *tracer = nullptr;

    /** Span category for host-origin ops (static storage). */
    const char *hostCategory = "host";
};

/** "chan<c>.chip<k>.die<d>" label for a flat die index. */
std::string dieTrackName(const Geometry &geom, std::uint64_t die);

} // namespace zombie

#endif // ZOMBIE_NAND_RESOURCE_MODEL_HH
