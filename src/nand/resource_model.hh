/**
 * @file
 * Channel/die contention model (SSDSim-style).
 *
 * The drive's parallelism comes from independently functioning
 * channels with multiple chips (Table I: 8x8, 4 dies/chip); the die is
 * the concurrency unit for array operations and the channel bus
 * serializes page transfers. Each resource keeps a busy-until
 * timestamp; scheduling an operation composes bus and array phases:
 *
 *   read:    array(tR) on die, then data-out transfer on channel
 *   program: data-in transfer on channel, then array(tPROG) on die
 *   erase:   array(tBERS) on die only
 *
 * scheduleOp() returns the completion tick; the difference to the
 * request's arrival is its device-level latency, which is where GC
 * interference and write/read asymmetry show up (paper sections I, VI-B).
 */

#ifndef ZOMBIE_NAND_RESOURCE_MODEL_HH
#define ZOMBIE_NAND_RESOURCE_MODEL_HH

#include <cstdint>
#include <vector>

#include "nand/geometry.hh"
#include "nand/timing.hh"
#include "util/types.hh"

namespace zombie
{

/** Busy-until schedule for every channel and die. */
class ResourceModel
{
  public:
    ResourceModel(const Geometry &geom, const TimingModel &timing);

    /**
     * Schedule @p op against the page @p ppn lives on, no earlier
     * than @p earliest. Advances the die/channel busy-until state.
     * @return completion tick.
     */
    Tick scheduleOp(FlashOp op, Ppn ppn, Tick earliest);

    /** Earliest tick at which the die owning @p ppn is idle. */
    Tick dieFreeAt(Ppn ppn) const;
    Tick channelFreeAt(Ppn ppn) const;

    /** Busy-until of a die by flat index (dynamic write allocation). */
    Tick dieFreeAtIndex(std::uint64_t die) const;

    /** Fraction of [0, horizon] each resource class was busy. */
    double channelUtilization(Tick horizon) const;
    double dieUtilization(Tick horizon) const;

    const TimingModel &timing() const { return times; }

  private:
    Geometry geom;
    TimingModel times;
    std::vector<Tick> channelBusyUntil;
    std::vector<Tick> dieBusyUntil;
    std::vector<Tick> channelBusyTotal;
    std::vector<Tick> dieBusyTotal;
};

} // namespace zombie

#endif // ZOMBIE_NAND_RESOURCE_MODEL_HH
