#include "nand/geometry.hh"

#include "util/logging.hh"

namespace zombie
{

Geometry::Geometry(std::uint32_t channels,
                   std::uint32_t chips_per_channel,
                   std::uint32_t dies_per_chip,
                   std::uint32_t planes_per_die,
                   std::uint32_t blocks_per_plane,
                   std::uint32_t pages_per_block)
    : nChannels(channels), nChips(chips_per_channel),
      nDies(dies_per_chip), nPlanes(planes_per_die),
      nBlocks(blocks_per_plane), nPages(pages_per_block)
{
    if (!channels || !chips_per_channel || !dies_per_chip ||
        !planes_per_die || !blocks_per_plane || !pages_per_block) {
        zombie_fatal("every geometry dimension must be >= 1");
    }
    tChips = std::uint64_t(nChannels) * nChips;
    tDies = tChips * nDies;
    tPlanes = tDies * nPlanes;
    tBlocks = tPlanes * nBlocks;
    tPages = tBlocks * nPages;
    divPages = FastDiv(nPages, tPages);
    divBlocks = FastDiv(nBlocks, tBlocks);
    divPlanes = FastDiv(nPlanes, tPlanes);
    divChanDies = FastDiv(std::uint64_t(nDies) * nChips, tDies);
}

Geometry
Geometry::tableI(std::uint32_t blocks_per_plane)
{
    // 8x8 dimension, 4 dies/chip, 2 planes/die, 256 pages/block.
    return Geometry(8, 8, 4, 2, blocks_per_plane, 256);
}

std::uint64_t
Geometry::capacityBytes() const
{
    return totalPages() * kPageSize;
}

Ppn
Geometry::encode(const PageAddress &addr) const
{
    zombie_assert(addr.channel < nChannels && addr.chip < nChips &&
                  addr.die < nDies && addr.plane < nPlanes &&
                  addr.block < nBlocks && addr.page < nPages,
                  "page address out of geometry bounds");
    std::uint64_t idx = addr.channel;
    idx = idx * nChips + addr.chip;
    idx = idx * nDies + addr.die;
    idx = idx * nPlanes + addr.plane;
    idx = idx * nBlocks + addr.block;
    idx = idx * nPages + addr.page;
    return idx;
}

PageAddress
Geometry::decode(Ppn ppn) const
{
    zombie_assert(ppn < totalPages(), "PPN ", ppn, " out of bounds");
    PageAddress addr;
    addr.page = static_cast<std::uint32_t>(ppn % nPages);
    ppn /= nPages;
    addr.block = static_cast<std::uint32_t>(ppn % nBlocks);
    ppn /= nBlocks;
    addr.plane = static_cast<std::uint32_t>(ppn % nPlanes);
    ppn /= nPlanes;
    addr.die = static_cast<std::uint32_t>(ppn % nDies);
    ppn /= nDies;
    addr.chip = static_cast<std::uint32_t>(ppn % nChips);
    ppn /= nChips;
    addr.channel = static_cast<std::uint32_t>(ppn);
    return addr;
}

std::uint64_t
Geometry::blockIndex(const PageAddress &addr) const
{
    return encode(PageAddress{addr.channel, addr.chip, addr.die,
                              addr.plane, addr.block, 0}) / nPages;
}

std::uint64_t
Geometry::planeIndex(const PageAddress &addr) const
{
    return blockIndex(addr) / nBlocks;
}

} // namespace zombie
