/**
 * @file
 * Physical geometry of the modeled SSD and the PPN address codec.
 *
 * Follows Table I of the paper: 8 channels x 8 chips, 4 dies per chip,
 * 2 planes per die, 256 pages per block, 4KB pages. Blocks-per-plane is
 * the scaling knob: the paper models a 1TB drive, the simulator scales
 * capacity to the trace footprint while keeping every structural ratio
 * (see DESIGN.md, substitution table).
 *
 * The flat-index codecs (PPN -> block/plane/die/channel) run on every
 * flash state transition and every resource-model charge, so they are
 * inline and divide through precomputed FastDiv reciprocals instead
 * of hardware division; the totals are cached at construction for the
 * same reason (the bounds asserts would otherwise multiply four
 * dimensions per call).
 */

#ifndef ZOMBIE_NAND_GEOMETRY_HH
#define ZOMBIE_NAND_GEOMETRY_HH

#include <cstdint>

#include "util/fast_div.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

/** Decomposed flash page address. */
struct PageAddress
{
    std::uint32_t channel;
    std::uint32_t chip;   //!< within channel
    std::uint32_t die;    //!< within chip
    std::uint32_t plane;  //!< within die
    std::uint32_t block;  //!< within plane
    std::uint32_t page;   //!< within block

    bool operator==(const PageAddress &) const = default;
};

/** Immutable geometry with flat-index codecs. */
class Geometry
{
  public:
    Geometry(std::uint32_t channels, std::uint32_t chips_per_channel,
             std::uint32_t dies_per_chip, std::uint32_t planes_per_die,
             std::uint32_t blocks_per_plane,
             std::uint32_t pages_per_block);

    /** Table I configuration at simulation scale (64 blocks/plane). */
    static Geometry tableI(std::uint32_t blocks_per_plane = 64);

    std::uint32_t channels() const { return nChannels; }
    std::uint32_t chipsPerChannel() const { return nChips; }
    std::uint32_t diesPerChip() const { return nDies; }
    std::uint32_t planesPerDie() const { return nPlanes; }
    std::uint32_t blocksPerPlane() const { return nBlocks; }
    std::uint32_t pagesPerBlock() const { return nPages; }

    std::uint64_t totalChips() const { return tChips; }
    std::uint64_t totalDies() const { return tDies; }
    std::uint64_t totalPlanes() const { return tPlanes; }
    std::uint64_t totalBlocks() const { return tBlocks; }
    std::uint64_t totalPages() const { return tPages; }
    std::uint64_t capacityBytes() const;

    /** Flat block index in [0, totalBlocks). */
    std::uint64_t blockIndex(const PageAddress &addr) const;

    std::uint64_t
    blockOfPpn(Ppn ppn) const
    {
        zombie_assert(ppn < tPages, "PPN ", ppn, " out of bounds");
        return divPages(ppn);
    }

    /** Flat plane index in [0, totalPlanes). */
    std::uint64_t planeIndex(const PageAddress &addr) const;

    std::uint64_t
    planeOfPpn(Ppn ppn) const
    {
        return divBlocks(blockOfPpn(ppn));
    }

    std::uint64_t
    planeOfBlock(std::uint64_t block_index) const
    {
        zombie_assert(block_index < tBlocks,
                      "block index out of bounds");
        return divBlocks(block_index);
    }

    /** Flat die index in [0, totalDies). */
    std::uint64_t
    dieOfPpn(Ppn ppn) const
    {
        return divPlanes(planeOfPpn(ppn));
    }

    std::uint32_t
    channelOfPpn(Ppn ppn) const
    {
        return static_cast<std::uint32_t>(divChanDies(dieOfPpn(ppn)));
    }

    /** Page offset of @p ppn within its block. */
    std::uint32_t
    pageOfPpn(Ppn ppn) const
    {
        zombie_assert(ppn < tPages, "PPN ", ppn, " out of bounds");
        return static_cast<std::uint32_t>(divPages.mod(ppn));
    }

    Ppn encode(const PageAddress &addr) const;
    PageAddress decode(Ppn ppn) const;

    /** First PPN of the given flat block index. */
    Ppn
    firstPpnOfBlock(std::uint64_t block_index) const
    {
        zombie_assert(block_index < tBlocks,
                      "block index out of bounds");
        return block_index * nPages;
    }

  private:
    std::uint32_t nChannels;
    std::uint32_t nChips;
    std::uint32_t nDies;
    std::uint32_t nPlanes;
    std::uint32_t nBlocks;
    std::uint32_t nPages;

    // Cached totals (products of the dimensions above).
    std::uint64_t tChips;
    std::uint64_t tDies;
    std::uint64_t tPlanes;
    std::uint64_t tBlocks;
    std::uint64_t tPages;

    // Invariant-divisor reciprocals for the codecs above.
    FastDiv divPages;    //!< ppn -> block (by pages per block)
    FastDiv divBlocks;   //!< block -> plane (by blocks per plane)
    FastDiv divPlanes;   //!< plane -> die (by planes per die)
    FastDiv divChanDies; //!< die -> channel (by dies per channel)
};

} // namespace zombie

#endif // ZOMBIE_NAND_GEOMETRY_HH
