#include "nand/resource_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

ResourceModel::ResourceModel(const Geometry &geometry,
                             const TimingModel &timing)
    : geom(geometry), times(timing),
      channelBusyUntil(geom.channels(), 0),
      dieBusyUntil(geom.totalDies(), 0),
      channelBusyTotal(geom.channels(), 0),
      dieBusyTotal(geom.totalDies(), 0),
      dieOutstanding(geom.totalDies()), backlogHigh(geom.totalDies(), 0)
{
    // Group size for the busy-until minima: halve the per-channel
    // die count down to <= 16 dies per group so a group rescan stays
    // within a couple of cache lines, but never split a channel
    // unevenly (groups must tile channels exactly for the sharded
    // flash phase to stay race-free).
    groupDies = geom.diesPerChip() * geom.chipsPerChannel();
    while (groupDies > 16 && groupDies % 2 == 0)
        groupDies /= 2;
    dieGroupMin.assign(geom.totalDies() / groupDies, 0);
    // A die's backlog window peaks when paced GC stacks a few
    // blocks' worth of relocation ops behind the host stream; two
    // blocks of read/program pairs bounds every observed workload
    // with a wide margin. Reserving up front keeps the steady-state
    // request path allocation-free (DESIGN.md section 7.10); a
    // pathological backlog beyond this merely regrows the ring.
    const std::size_t window = 4ul * geom.pagesPerBlock();
    for (RingBuffer<Tick> &out : dieOutstanding)
        out.reserve(window);
}

namespace
{

/** Static span names keyed by op kind (TraceSink literal contract). */
const char *
opSpanName(FlashOp op)
{
    switch (op) {
      case FlashOp::Read:
        return "read";
      case FlashOp::Program:
        return "program";
      case FlashOp::Erase:
        return "erase";
    }
    return "?";
}

} // namespace

std::string
dieTrackName(const Geometry &geom, std::uint64_t die)
{
    const std::uint64_t dies = geom.diesPerChip();
    const std::uint64_t chips = geom.chipsPerChannel();
    const std::uint64_t chan = die / (dies * chips);
    const std::uint64_t chip = (die / dies) % chips;
    return "chan" + std::to_string(chan) + ".chip" +
           std::to_string(chip) + ".die" + std::to_string(die % dies);
}

Tick
ResourceModel::scheduleOp(FlashOp op, Ppn ppn, Tick earliest, bool gc)
{
    const std::uint64_t die = geom.dieOfPpn(ppn);
    const std::uint32_t channel = geom.channelOfPpn(ppn);
    Tick &die_free = dieBusyUntil[die];
    Tick &chan_free = channelBusyUntil[channel];
    const Tick die_was = die_free;

    const Tick cmd = times.commandOverhead;
    const Tick xfer = times.pageTransfer;
    const Tick array = times.arrayLatency(op);

    /** The op's die-occupancy phase, reported to the trace sink. */
    Tick die_start = 0;

    Tick completion = 0;
    switch (op) {
      case FlashOp::Read: {
        // Array sense first, then data-out over the channel. The
        // channel's busy-until horizon only advances when transfers
        // genuinely contend (start at or before the horizon); a
        // transfer far in the future leaves the idle bus unreserved —
        // a scalar busy-until cannot represent the gap, and
        // reserving it would let one backlogged die stall its whole
        // channel ("horizon ratchet").
        const Tick start = std::max(earliest, die_free) + cmd;
        const Tick sensed = start + array;
        const Tick xfer_start = std::max(sensed, chan_free);
        completion = xfer_start + xfer;
        // The page register holds data until the transfer drains.
        dieBusyTotal[die] += completion - start;
        die_start = start;
        die_free = completion;
        channelBusyTotal[channel] += xfer;
        if (sensed <= chan_free)
            chan_free = completion;
        break;
      }
      case FlashOp::Program: {
        // Data-in over the channel first, then the array program.
        // The bus is held only for the transfer itself — the page
        // register buffers the data while the die drains its queue —
        // so one backlogged die never stalls its whole channel.
        const Tick xfer_start = std::max(earliest, chan_free) + cmd;
        const Tick loaded = xfer_start + xfer;
        const Tick prog_start = std::max(loaded, die_free);
        completion = prog_start + array;
        channelBusyTotal[channel] += xfer;
        if (earliest <= chan_free)
            chan_free = loaded;
        dieBusyTotal[die] += completion - prog_start;
        die_start = prog_start;
        die_free = completion;
        break;
      }
      case FlashOp::Erase: {
        // Array-only; the channel carries just the command cycles.
        const Tick start = std::max(earliest, die_free) + cmd;
        completion = start + array;
        dieBusyTotal[die] += completion - start;
        die_start = start;
        die_free = completion;
        break;
      }
    }
    updateGroupMin(die, die_was);
    noteDieIssue(die, earliest, completion);
    if (tracer)
        tracer->span(static_cast<std::uint32_t>(die), opSpanName(op),
                     gc ? "gc" : hostCategory, die_start, completion);
    return completion;
}

void
ResourceModel::updateGroupMin(std::uint64_t die, Tick die_was)
{
    // Busy-untils only grow, so the group's minimum moved only if
    // the op landed on a die that held it; rescan just that group.
    const std::uint64_t group = die / groupDies;
    if (die_was != dieGroupMin[group])
        return;
    const std::uint64_t base = group * groupDies;
    Tick low = dieBusyUntil[base];
    for (std::uint64_t i = 1; i < groupDies; ++i)
        low = std::min(low, dieBusyUntil[base + i]);
    dieGroupMin[group] = low;
}

void
ResourceModel::setTraceSink(TraceSink *sink)
{
    tracer = sink;
    if (!tracer)
        return;
    for (std::uint64_t die = 0; die < geom.totalDies(); ++die)
        tracer->declareTrack(static_cast<std::uint32_t>(die),
                             dieTrackName(geom, die));
}

void
ResourceModel::registerStats(StatRegistry &registry) const
{
    for (std::uint64_t die = 0; die < geom.totalDies(); ++die)
        registry.addCounter("nand." + dieTrackName(geom, die) +
                                ".busy_ticks",
                            &dieBusyTotal[die]);
    registry.addGauge("nand.max_die_backlog", [this] {
        return static_cast<double>(maxDieBacklog());
    });
}

void
ResourceModel::noteDieIssue(std::uint64_t die, Tick issued,
                            Tick completion)
{
    // Ops already complete when this one was issued have retired;
    // what remains is the backlog the new op queued behind (die ops
    // serialize, so completions stay sorted no matter where the
    // window is cut). Observation only: no busy-until horizon moves
    // here.
    RingBuffer<Tick> &out = dieOutstanding[die];
    while (!out.empty() && out.front() <= issued)
        out.pop_front();
    out.push_back(completion);
    if (out.size() > backlogHigh[die])
        backlogHigh[die] = out.size();
}

std::uint64_t
ResourceModel::maxDieBacklog() const
{
    std::uint64_t high = 0;
    for (const std::uint64_t h : backlogHigh)
        high = std::max(high, h);
    return high;
}

std::uint32_t
ResourceModel::dieBacklog(std::uint64_t die) const
{
    zombie_assert(die < dieOutstanding.size(),
                  "die index out of bounds");
    return static_cast<std::uint32_t>(dieOutstanding[die].size());
}

std::uint32_t
ResourceModel::pendingAt(std::uint64_t die, Tick now) const
{
    zombie_assert(die < dieOutstanding.size(),
                  "die index out of bounds");
    const RingBuffer<Tick> &out = dieOutstanding[die];
    // Completions are sorted; count the suffix strictly after now
    // (upper_bound over the ring by index).
    std::size_t lo = 0, hi = out.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (out[mid] <= now)
            lo = mid + 1;
        else
            hi = mid;
    }
    return static_cast<std::uint32_t>(out.size() - lo);
}

Tick
ResourceModel::dieFreeAt(Ppn ppn) const
{
    return dieBusyUntil[geom.dieOfPpn(ppn)];
}

Tick
ResourceModel::channelFreeAt(Ppn ppn) const
{
    return channelBusyUntil[geom.channelOfPpn(ppn)];
}

Tick
ResourceModel::dieFreeAtIndex(std::uint64_t die) const
{
    zombie_assert(die < dieBusyUntil.size(), "die index out of bounds");
    return dieBusyUntil[die];
}

double
ResourceModel::channelUtilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    Tick busy = 0;
    for (Tick t : channelBusyTotal)
        busy += t;
    return static_cast<double>(busy) /
           (static_cast<double>(horizon) * channelBusyTotal.size());
}

double
ResourceModel::dieUtilization(Tick horizon) const
{
    if (horizon == 0)
        return 0.0;
    Tick busy = 0;
    for (Tick t : dieBusyTotal)
        busy += t;
    return static_cast<double>(busy) /
           (static_cast<double>(horizon) * dieBusyTotal.size());
}

} // namespace zombie
