/**
 * @file
 * Page/block state bookkeeping for the whole flash array.
 *
 * Enforces the NAND invariants the paper's mechanism lives inside:
 * no write-in-place (a page programs only from the Free state, pages
 * within a block program sequentially), erase works on whole blocks,
 * and an invalidated page is garbage until erased. The one deliberate
 * extension is revivePage(): flipping an Invalid page back to Valid,
 * which is exactly the "zombie revival" the dead-value pool performs
 * on a hit.
 *
 * Each garbage page also remembers the popularity degree its LPN had
 * when it died; the popularity-aware GC victim metric (paper section
 * IV-D) is the weighted sum of these per block.
 */

#ifndef ZOMBIE_NAND_FLASH_ARRAY_HH
#define ZOMBIE_NAND_FLASH_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "nand/geometry.hh"
#include "telemetry/stat_registry.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

/** Life state of one flash page. */
enum class PageState : std::uint8_t
{
    Free = 0,
    Valid = 1,
    Invalid = 2, //!< garbage ("dead"/zombie candidate)
};

/** Per-block bookkeeping. */
struct BlockInfo
{
    std::uint32_t writePtr = 0; //!< next page to program (sequential)
    std::uint32_t validCount = 0;
    std::uint32_t invalidCount = 0;
    std::uint32_t eraseCount = 0;

    /** Sum of popularity degrees over current garbage pages. */
    std::uint64_t garbagePopularity = 0;
};

/** Array-wide operation counters. */
struct FlashCounters
{
    std::uint64_t programs = 0;
    std::uint64_t reads = 0;
    std::uint64_t erases = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t revivals = 0;
};

/** State of every page and block in the drive. */
class FlashArray
{
  public:
    explicit FlashArray(const Geometry &geom);

    const Geometry &geometry() const { return geom; }

    /**
     * Observer for block-level garbage transitions. Invoked with the
     * block index after every invalidate, revive and erase — the
     * three operations that can change whether a block is a GC victim
     * candidate from the array's side. The BlockManager uses this to
     * keep its incremental victim index in sync without rescanning
     * planes (programs are not reported: they only affect candidacy
     * through the write-point roll-over, which the BlockManager
     * observes directly).
     */
    using BlockListener = std::function<void(std::uint64_t block)>;

    /** Install @p listener (replaces any previous one). */
    void
    setBlockListener(BlockListener listener)
    {
        onBlockChange = std::move(listener);
    }

    // The page/block accessors below are on the GC scoring and write
    // allocation hot paths (hundreds of calls per host request), so
    // they are defined inline.

    PageState
    state(Ppn ppn) const
    {
        zombie_assert(ppn < pageState.size(), "PPN out of bounds");
        return pageState[ppn];
    }

    /** Popularity recorded when the page was invalidated. */
    std::uint8_t
    garbagePopularity(Ppn ppn) const
    {
        zombie_assert(state(ppn) == PageState::Invalid,
                      "garbage popularity queried on non-garbage page");
        return garbagePop[ppn];
    }

    const BlockInfo &
    block(std::uint64_t block_index) const
    {
        zombie_assert(block_index < blocks.size(),
                      "block index out of bounds");
        return blocks[block_index];
    }

    /**
     * Program the next free page of @p block_index. Panics if the
     * block is full (the caller must have checked blockHasRoom).
     * @return the PPN that was programmed.
     */
    Ppn programPage(std::uint64_t block_index);

    bool
    blockHasRoom(std::uint64_t block_index) const
    {
        return block(block_index).writePtr < geom.pagesPerBlock();
    }

    std::uint32_t
    freePagesInBlock(std::uint64_t block_index) const
    {
        return geom.pagesPerBlock() - block(block_index).writePtr;
    }

    /** Count a host/GC read of a valid page. */
    void readPage(Ppn ppn);

    /**
     * Invalidate a valid page (out-of-place update or trim), tagging
     * it with the dying LPN's popularity degree for GC scoring.
     */
    void invalidatePage(Ppn ppn, std::uint8_t popularity);

    /**
     * Revive a garbage page: Invalid -> Valid without programming.
     * This is the dead-value-pool hit path (no flash op, no latency
     * beyond mapping updates).
     */
    void revivePage(Ppn ppn);

    /**
     * Erase a block: every page returns to Free. Panics if valid
     * pages remain (GC must relocate them first).
     */
    void eraseBlock(std::uint64_t block_index);

    const FlashCounters &counters() const { return stats; }

    /**
     * Register the array-wide operation counters under "flash.".
     * Counter storage lives in this array; registrations stay valid
     * for its lifetime.
     */
    void registerStats(StatRegistry &registry) const;

    /** Aggregate page-state census (testing / reporting). */
    std::uint64_t totalFreePages() const { return freePages; }
    std::uint64_t totalValidPages() const { return validPages; }
    std::uint64_t totalInvalidPages() const { return invalidPages; }

    /** Max per-block erase count (wear skew reporting). */
    std::uint32_t maxEraseCount() const;

  private:
    /** Report a garbage transition on @p block_index, if observed. */
    void
    notifyBlock(std::uint64_t block_index)
    {
        if (onBlockChange)
            onBlockChange(block_index);
    }

    Geometry geom;
    BlockListener onBlockChange;
    std::vector<PageState> pageState;
    std::vector<std::uint8_t> garbagePop;
    std::vector<BlockInfo> blocks;
    FlashCounters stats;
    std::uint64_t freePages;
    std::uint64_t validPages = 0;
    std::uint64_t invalidPages = 0;
};

} // namespace zombie

#endif // ZOMBIE_NAND_FLASH_ARRAY_HH
