/**
 * @file
 * Page/block state bookkeeping for the whole flash array.
 *
 * Enforces the NAND invariants the paper's mechanism lives inside:
 * no write-in-place (a page programs only from the Free state, pages
 * within a block program sequentially), erase works on whole blocks,
 * and an invalidated page is garbage until erased. The one deliberate
 * extension is revivePage(): flipping an Invalid page back to Valid,
 * which is exactly the "zombie revival" the dead-value pool performs
 * on a hit.
 *
 * Each garbage page also remembers the popularity degree its LPN had
 * when it died; the popularity-aware GC victim metric (paper section
 * IV-D) is the weighted sum of these per block.
 *
 * Storage is struct-of-arrays (DESIGN.md section 7.14): the 2-bit
 * page state is packed as two parallel bitmaps (one valid bit and
 * one invalid bit per page, one uint64_t word per 64 pages; both
 * clear = Free, both set = impossible by construction), and the
 * per-block counters live in parallel flat arrays instead of an
 * array of BlockInfo structs. The GC inner loops that used to walk
 * pages one at a time (victim relocation, pool purge, erase reset)
 * scan 64 pages per word via std::countr_zero, and victim scoring
 * gathers from a dense uint32_t array instead of striding through
 * 24-byte structs.
 */

#ifndef ZOMBIE_NAND_FLASH_ARRAY_HH
#define ZOMBIE_NAND_FLASH_ARRAY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "nand/geometry.hh"
#include "telemetry/stat_registry.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

/** Life state of one flash page. */
enum class PageState : std::uint8_t
{
    Free = 0,
    Valid = 1,
    Invalid = 2, //!< garbage ("dead"/zombie candidate)
};

/** Per-block bookkeeping (a gathered view; storage is SoA). */
struct BlockInfo
{
    std::uint32_t writePtr = 0; //!< next page to program (sequential)
    std::uint32_t validCount = 0;
    std::uint32_t invalidCount = 0;
    std::uint32_t eraseCount = 0;

    /** Sum of popularity degrees over current garbage pages. */
    std::uint64_t garbagePopularity = 0;
};

/** Array-wide operation counters. */
struct FlashCounters
{
    std::uint64_t programs = 0;
    std::uint64_t reads = 0;
    std::uint64_t erases = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t revivals = 0;
};

/** State of every page and block in the drive. */
class FlashArray
{
  public:
    explicit FlashArray(const Geometry &geom);

    const Geometry &geometry() const { return geom; }

    /**
     * Observer for block-level garbage transitions. Invoked with the
     * block index after every invalidate, revive and erase — the
     * three operations that can change whether a block is a GC victim
     * candidate from the array's side. The BlockManager uses this to
     * keep its incremental victim index in sync without rescanning
     * planes (programs are not reported: they only affect candidacy
     * through the write-point roll-over, which the BlockManager
     * observes directly).
     *
     * A plain function pointer + context, not std::function: the
     * callback fires on every invalidation (millions per run) and
     * must not pay a type-erased indirect call or risk a capture
     * allocation.
     */
    using BlockListenerFn = void (*)(void *ctx, std::uint64_t block);

    /** Install @p fn/@p ctx (replaces any previous listener;
     *  nullptr fn detaches). */
    void
    setBlockListener(BlockListenerFn fn, void *ctx)
    {
        onBlockChange = fn;
        onBlockChangeCtx = ctx;
    }

    // The page/block accessors below are on the GC scoring and write
    // allocation hot paths (hundreds of calls per host request), so
    // they are defined inline.

    PageState
    state(Ppn ppn) const
    {
        zombie_assert(ppn < geom.totalPages(), "PPN out of bounds");
        const std::uint64_t word = ppn >> 6;
        const std::uint64_t bit = 1ULL << (ppn & 63);
        if (validBits[word] & bit)
            return PageState::Valid;
        return (invalidBits[word] & bit) ? PageState::Invalid
                                         : PageState::Free;
    }

    /** Popularity recorded when the page was invalidated. */
    std::uint8_t
    garbagePopularity(Ppn ppn) const
    {
        zombie_assert(state(ppn) == PageState::Invalid,
                      "garbage popularity queried on non-garbage page");
        return garbagePop[ppn];
    }

    /** Gathered per-block view (tests/reporting; hot loops use the
     *  field accessors or raw arrays below). */
    BlockInfo
    block(std::uint64_t block_index) const
    {
        zombie_assert(block_index < blkEraseCount.size(),
                      "block index out of bounds");
        return BlockInfo{blkWritePtr[block_index],
                         blkValidCount[block_index],
                         blkInvalidCount[block_index],
                         blkEraseCount[block_index],
                         blkGarbagePop[block_index]};
    }

    std::uint32_t
    writePtrOf(std::uint64_t block_index) const
    {
        return blkWritePtr[block_index];
    }

    std::uint32_t
    validCountOf(std::uint64_t block_index) const
    {
        return blkValidCount[block_index];
    }

    std::uint32_t
    invalidCountOf(std::uint64_t block_index) const
    {
        return blkInvalidCount[block_index];
    }

    std::uint32_t
    eraseCountOf(std::uint64_t block_index) const
    {
        return blkEraseCount[block_index];
    }

    std::uint64_t
    garbagePopularityOf(std::uint64_t block_index) const
    {
        return blkGarbagePop[block_index];
    }

    /** Dense per-block arrays for victim-scoring gather loops. */
    const std::uint32_t *invalidCounts() const
    {
        return blkInvalidCount.data();
    }
    const std::uint32_t *eraseCounts() const
    {
        return blkEraseCount.data();
    }
    const std::uint64_t *garbagePopularities() const
    {
        return blkGarbagePop.data();
    }

    /**
     * Program the next free page of @p block_index. Panics if the
     * block is full (the caller must have checked blockHasRoom).
     * @return the PPN that was programmed.
     */
    Ppn programPage(std::uint64_t block_index);

    bool
    blockHasRoom(std::uint64_t block_index) const
    {
        zombie_assert(block_index < blkWritePtr.size(),
                      "block index out of bounds");
        return blkWritePtr[block_index] < geom.pagesPerBlock();
    }

    std::uint32_t
    freePagesInBlock(std::uint64_t block_index) const
    {
        zombie_assert(block_index < blkWritePtr.size(),
                      "block index out of bounds");
        return geom.pagesPerBlock() - blkWritePtr[block_index];
    }

    /** Count a host/GC read of a valid page. */
    void readPage(Ppn ppn);

    /**
     * Invalidate a valid page (out-of-place update or trim), tagging
     * it with the dying LPN's popularity degree for GC scoring.
     */
    void invalidatePage(Ppn ppn, std::uint8_t popularity);

    /**
     * Revive a garbage page: Invalid -> Valid without programming.
     * This is the dead-value-pool hit path (no flash op, no latency
     * beyond mapping updates).
     */
    void revivePage(Ppn ppn);

    /**
     * Erase a block: every page returns to Free. Panics if valid
     * pages remain (GC must relocate them first).
     */
    void eraseBlock(std::uint64_t block_index);

    /**
     * First page index >= @p from_page of @p block_index whose page
     * is Valid, or pagesPerBlock() when none remains. Scans the
     * valid bitmap a word (64 pages) at a time — this is the GC
     * relocation cursor.
     */
    std::uint32_t nextValidPage(std::uint64_t block_index,
                                std::uint32_t from_page) const;

    /** Likewise over the invalid (garbage) bitmap. */
    std::uint32_t nextInvalidPage(std::uint64_t block_index,
                                  std::uint32_t from_page) const;

    const FlashCounters &counters() const { return stats; }

    /**
     * Register the array-wide operation counters under "flash.".
     * Counter storage lives in this array; registrations stay valid
     * for its lifetime.
     */
    void registerStats(StatRegistry &registry) const;

    /** Aggregate page-state census (testing / reporting). */
    std::uint64_t totalFreePages() const { return freePages; }
    std::uint64_t totalValidPages() const { return validPages; }
    std::uint64_t totalInvalidPages() const { return invalidPages; }

    /** Max per-block erase count, maintained at erase time (O(1)). */
    std::uint32_t maxEraseCount() const { return maxErase; }

  private:
    /** Report a garbage transition on @p block_index, if observed. */
    void
    notifyBlock(std::uint64_t block_index)
    {
        if (onBlockChange)
            onBlockChange(onBlockChangeCtx, block_index);
    }

    Geometry geom;
    BlockListenerFn onBlockChange = nullptr;
    void *onBlockChangeCtx = nullptr;

    /**
     * Page-state bit-planes: bit ppn of validBits / invalidBits is
     * the high/low half of the packed 2-bit state. Never both set.
     */
    std::vector<std::uint64_t> validBits;
    std::vector<std::uint64_t> invalidBits;

    std::vector<std::uint8_t> garbagePop;

    // Per-block bookkeeping, struct-of-arrays.
    std::vector<std::uint32_t> blkWritePtr;
    std::vector<std::uint32_t> blkValidCount;
    std::vector<std::uint32_t> blkInvalidCount;
    std::vector<std::uint32_t> blkEraseCount;
    std::vector<std::uint64_t> blkGarbagePop;

    FlashCounters stats;
    std::uint64_t freePages;
    std::uint64_t validPages = 0;
    std::uint64_t invalidPages = 0;
    std::uint32_t maxErase = 0;
};

} // namespace zombie

#endif // ZOMBIE_NAND_FLASH_ARRAY_HH
