#include "nand/flash_array.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace zombie
{
namespace
{

/**
 * First set bit index in [begin, end) of @p words, or @p end when
 * none: the word-at-a-time kernel behind both bitmap cursors. Block
 * page ranges need not be word-aligned (tiny test geometries), so
 * the first word is masked below `begin` and the hit is clamped to
 * `end`.
 */
std::uint64_t
nextSetBit(const std::uint64_t *words, std::uint64_t begin,
           std::uint64_t end)
{
    if (begin >= end)
        return end;
    std::uint64_t w = begin >> 6;
    const std::uint64_t last = (end - 1) >> 6;
    std::uint64_t word = words[w] & (~0ULL << (begin & 63));
    for (;;) {
        if (word) {
            const std::uint64_t bit =
                (w << 6) + std::countr_zero(word);
            return bit < end ? bit : end;
        }
        if (w == last)
            return end;
        word = words[++w];
    }
}

} // namespace

FlashArray::FlashArray(const Geometry &geometry)
    : geom(geometry),
      validBits((geom.totalPages() + 63) / 64, 0),
      invalidBits((geom.totalPages() + 63) / 64, 0),
      garbagePop(geom.totalPages(), 0),
      blkWritePtr(geom.totalBlocks(), 0),
      blkValidCount(geom.totalBlocks(), 0),
      blkInvalidCount(geom.totalBlocks(), 0),
      blkEraseCount(geom.totalBlocks(), 0),
      blkGarbagePop(geom.totalBlocks(), 0),
      freePages(geom.totalPages())
{
}

Ppn
FlashArray::programPage(std::uint64_t block_index)
{
    zombie_assert(block_index < blkWritePtr.size(),
                  "block index out of bounds");
    std::uint32_t &write_ptr = blkWritePtr[block_index];
    zombie_assert(write_ptr < geom.pagesPerBlock(),
                  "program into a full block ", block_index);
    const Ppn ppn = geom.firstPpnOfBlock(block_index) + write_ptr;
    zombie_assert(state(ppn) == PageState::Free,
                  "program of a non-free page ", ppn);
    ++write_ptr;
    ++blkValidCount[block_index];
    validBits[ppn >> 6] |= 1ULL << (ppn & 63);
    --freePages;
    ++validPages;
    ++stats.programs;
    return ppn;
}

void
FlashArray::readPage(Ppn ppn)
{
    zombie_assert(state(ppn) == PageState::Valid,
                  "read of a non-valid page ", ppn);
    ++stats.reads;
}

void
FlashArray::invalidatePage(Ppn ppn, std::uint8_t popularity)
{
    zombie_assert(state(ppn) == PageState::Valid,
                  "invalidate of a non-valid page ", ppn);
    const std::uint64_t bit = 1ULL << (ppn & 63);
    validBits[ppn >> 6] &= ~bit;
    invalidBits[ppn >> 6] |= bit;
    garbagePop[ppn] = popularity;

    const std::uint64_t block = geom.blockOfPpn(ppn);
    zombie_assert(blkValidCount[block] > 0,
                  "block valid count underflow");
    --blkValidCount[block];
    ++blkInvalidCount[block];
    blkGarbagePop[block] += popularity;

    --validPages;
    ++invalidPages;
    ++stats.invalidations;
    notifyBlock(block);
}

void
FlashArray::revivePage(Ppn ppn)
{
    zombie_assert(state(ppn) == PageState::Invalid,
                  "revive of a non-garbage page ", ppn);
    const std::uint64_t bit = 1ULL << (ppn & 63);
    invalidBits[ppn >> 6] &= ~bit;
    validBits[ppn >> 6] |= bit;

    const std::uint64_t block = geom.blockOfPpn(ppn);
    zombie_assert(blkInvalidCount[block] > 0,
                  "block invalid count underflow");
    --blkInvalidCount[block];
    ++blkValidCount[block];
    blkGarbagePop[block] -= std::min<std::uint64_t>(
        blkGarbagePop[block], garbagePop[ppn]);
    garbagePop[ppn] = 0;

    --invalidPages;
    ++validPages;
    ++stats.revivals;
    notifyBlock(block);
}

void
FlashArray::eraseBlock(std::uint64_t block_index)
{
    zombie_assert(block_index < blkWritePtr.size(),
                  "block index out of bounds");
    zombie_assert(blkValidCount[block_index] == 0,
                  "erase of block ", block_index,
                  " with ", blkValidCount[block_index],
                  " valid pages");

    // With no valid pages left, the page census moves exactly the
    // block's garbage count from invalid to free — no page loop.
    const std::uint32_t garbage = blkInvalidCount[block_index];
    invalidPages -= garbage;
    freePages += garbage;

    // Clear the block's slice of the invalid bit-plane (the valid
    // plane is already clear) and its popularity bytes. The slice
    // need not be word-aligned in tiny test geometries, so edge
    // words are masked rather than stored whole.
    const Ppn first = geom.firstPpnOfBlock(block_index);
    const Ppn end = first + geom.pagesPerBlock();
    std::uint64_t w = first >> 6;
    const std::uint64_t last = (end - 1) >> 6;
    const std::uint64_t head_mask = ~0ULL << (first & 63);
    const std::uint64_t tail_mask =
        (end & 63) ? ~(~0ULL << (end & 63)) : ~0ULL;
    if (w == last) {
        invalidBits[w] &= ~(head_mask & tail_mask);
    } else {
        invalidBits[w] &= ~head_mask;
        while (++w < last)
            invalidBits[w] = 0;
        invalidBits[last] &= ~tail_mask;
    }
    std::memset(garbagePop.data() + first, 0,
                geom.pagesPerBlock());

    // Pages beyond writePtr were never programmed and stay free.
    blkWritePtr[block_index] = 0;
    blkInvalidCount[block_index] = 0;
    blkGarbagePop[block_index] = 0;
    maxErase = std::max(maxErase, ++blkEraseCount[block_index]);
    ++stats.erases;
    notifyBlock(block_index);
}

std::uint32_t
FlashArray::nextValidPage(std::uint64_t block_index,
                          std::uint32_t from_page) const
{
    const Ppn first = geom.firstPpnOfBlock(block_index);
    const std::uint64_t hit =
        nextSetBit(validBits.data(), first + from_page,
                   first + geom.pagesPerBlock());
    return static_cast<std::uint32_t>(hit - first);
}

std::uint32_t
FlashArray::nextInvalidPage(std::uint64_t block_index,
                            std::uint32_t from_page) const
{
    const Ppn first = geom.firstPpnOfBlock(block_index);
    const std::uint64_t hit =
        nextSetBit(invalidBits.data(), first + from_page,
                   first + geom.pagesPerBlock());
    return static_cast<std::uint32_t>(hit - first);
}

void
FlashArray::registerStats(StatRegistry &registry) const
{
    registry.addCounter("flash.programs", &stats.programs);
    registry.addCounter("flash.reads", &stats.reads);
    registry.addCounter("flash.erases", &stats.erases);
    registry.addCounter("flash.invalidations", &stats.invalidations);
    registry.addCounter("flash.revivals", &stats.revivals);
    registry.addGauge("flash.free_pages", [this] {
        return static_cast<double>(freePages);
    });
    registry.addGauge("flash.valid_pages", [this] {
        return static_cast<double>(validPages);
    });
    registry.addGauge("flash.invalid_pages", [this] {
        return static_cast<double>(invalidPages);
    });
}

} // namespace zombie
