#include "nand/flash_array.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

FlashArray::FlashArray(const Geometry &geometry)
    : geom(geometry),
      pageState(geom.totalPages(), PageState::Free),
      garbagePop(geom.totalPages(), 0),
      blocks(geom.totalBlocks()),
      freePages(geom.totalPages())
{
}

Ppn
FlashArray::programPage(std::uint64_t block_index)
{
    BlockInfo &blk = blocks[block_index];
    zombie_assert(blk.writePtr < geom.pagesPerBlock(),
                  "program into a full block ", block_index);
    const Ppn ppn = geom.firstPpnOfBlock(block_index) + blk.writePtr;
    zombie_assert(pageState[ppn] == PageState::Free,
                  "program of a non-free page ", ppn);
    ++blk.writePtr;
    ++blk.validCount;
    pageState[ppn] = PageState::Valid;
    --freePages;
    ++validPages;
    ++stats.programs;
    return ppn;
}

void
FlashArray::readPage(Ppn ppn)
{
    zombie_assert(state(ppn) == PageState::Valid,
                  "read of a non-valid page ", ppn);
    ++stats.reads;
}

void
FlashArray::invalidatePage(Ppn ppn, std::uint8_t popularity)
{
    zombie_assert(state(ppn) == PageState::Valid,
                  "invalidate of a non-valid page ", ppn);
    pageState[ppn] = PageState::Invalid;
    garbagePop[ppn] = popularity;

    BlockInfo &blk = blocks[geom.blockOfPpn(ppn)];
    zombie_assert(blk.validCount > 0, "block valid count underflow");
    --blk.validCount;
    ++blk.invalidCount;
    blk.garbagePopularity += popularity;

    --validPages;
    ++invalidPages;
    ++stats.invalidations;
    notifyBlock(geom.blockOfPpn(ppn));
}

void
FlashArray::revivePage(Ppn ppn)
{
    zombie_assert(state(ppn) == PageState::Invalid,
                  "revive of a non-garbage page ", ppn);
    pageState[ppn] = PageState::Valid;

    BlockInfo &blk = blocks[geom.blockOfPpn(ppn)];
    zombie_assert(blk.invalidCount > 0, "block invalid count underflow");
    --blk.invalidCount;
    ++blk.validCount;
    blk.garbagePopularity -= std::min<std::uint64_t>(
        blk.garbagePopularity, garbagePop[ppn]);
    garbagePop[ppn] = 0;

    --invalidPages;
    ++validPages;
    ++stats.revivals;
    notifyBlock(geom.blockOfPpn(ppn));
}

void
FlashArray::eraseBlock(std::uint64_t block_index)
{
    BlockInfo &blk = blocks[block_index];
    zombie_assert(blk.validCount == 0,
                  "erase of block ", block_index,
                  " with ", blk.validCount, " valid pages");

    const Ppn first = geom.firstPpnOfBlock(block_index);
    for (std::uint32_t i = 0; i < geom.pagesPerBlock(); ++i) {
        const Ppn ppn = first + i;
        if (pageState[ppn] == PageState::Invalid) {
            --invalidPages;
            ++freePages;
        } else if (pageState[ppn] == PageState::Free) {
            // already free; nothing to adjust
        }
        pageState[ppn] = PageState::Free;
        garbagePop[ppn] = 0;
    }

    // Pages beyond writePtr were never programmed and stay free.
    blk.writePtr = 0;
    blk.invalidCount = 0;
    blk.garbagePopularity = 0;
    ++blk.eraseCount;
    ++stats.erases;
    notifyBlock(block_index);
}

std::uint32_t
FlashArray::maxEraseCount() const
{
    std::uint32_t max_erases = 0;
    for (const auto &blk : blocks)
        max_erases = std::max(max_erases, blk.eraseCount);
    return max_erases;
}

void
FlashArray::registerStats(StatRegistry &registry) const
{
    registry.addCounter("flash.programs", &stats.programs);
    registry.addCounter("flash.reads", &stats.reads);
    registry.addCounter("flash.erases", &stats.erases);
    registry.addCounter("flash.invalidations", &stats.invalidations);
    registry.addCounter("flash.revivals", &stats.revivals);
    registry.addGauge("flash.free_pages", [this] {
        return static_cast<double>(freePages);
    });
    registry.addGauge("flash.valid_pages", [this] {
        return static_cast<double>(validPages);
    });
    registry.addGauge("flash.invalid_pages", [this] {
        return static_cast<double>(invalidPages);
    });
}

} // namespace zombie
