#include "telemetry/epoch_sampler.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace zombie
{

EpochSampler::EpochSampler(const StatRegistry &registry, Tick interval)
    : reg(registry), step(interval), cpaths(registry.counterPaths()),
      gpaths(registry.gaugePaths())
{
    zombie_assert(step > 0, "epoch interval must be positive");
}

void
EpochSampler::begin(Tick now)
{
    if (started)
        return;
    started = true;
    epochStart = now;
    reg.counterValues(prev);
}

Tick
EpochSampler::nextBoundary(Tick now) const
{
    // Boundaries sit on absolute multiples of the interval so the
    // epoch grid is seed-independent.
    return (now / step + 1) * step;
}

void
EpochSampler::closeEpoch(Tick end)
{
    reg.counterValues(scratch);
    EpochRow row;
    row.start = epochStart;
    row.end = end;
    row.deltas.resize(scratch.size());
    for (std::size_t i = 0; i < scratch.size(); ++i)
        row.deltas[i] = scratch[i] - prev[i];
    reg.gaugeValues(row.gauges);
    prev.swap(scratch);
    series.push_back(std::move(row));
    epochStart = end;
}

void
EpochSampler::sample(Tick boundary)
{
    zombie_assert(started, "epoch sampler sampled before begin()");
    if (finished || boundary <= epochStart)
        return;
    closeEpoch(boundary);
}

void
EpochSampler::finish(Tick end)
{
    if (!started || finished)
        return;
    finished = true;
    if (end > epochStart)
        closeEpoch(end);
}

std::uint64_t
EpochSampler::totalOf(const std::string &counter_path) const
{
    for (std::size_t i = 0; i < cpaths.size(); ++i) {
        if (cpaths[i] != counter_path)
            continue;
        std::uint64_t total = 0;
        for (const EpochRow &row : series)
            total += row.deltas[i];
        return total;
    }
    zombie_panic("unknown epoch counter column: ", counter_path);
}

void
EpochSampler::writeCsv(std::ostream &os) const
{
    os << "epoch,start_ns,end_ns";
    for (const std::string &path : cpaths)
        os << ',' << path;
    for (const std::string &path : gpaths)
        os << ',' << path;
    os << '\n';
    for (std::size_t e = 0; e < series.size(); ++e) {
        const EpochRow &row = series[e];
        os << e << ',' << row.start << ',' << row.end;
        for (const std::uint64_t d : row.deltas)
            os << ',' << d;
        char buf[64];
        for (const double g : row.gauges) {
            std::snprintf(buf, sizeof(buf), "%.6g", g);
            os << ',' << buf;
        }
        os << '\n';
    }
}

void
EpochSampler::writeJson(std::ostream &os) const
{
    os << "{\n  \"interval_ns\": " << step << ",\n";
    os << "  \"counters\": [";
    for (std::size_t i = 0; i < cpaths.size(); ++i)
        os << (i ? ", " : "") << '"' << cpaths[i] << '"';
    os << "],\n  \"gauges\": [";
    for (std::size_t i = 0; i < gpaths.size(); ++i)
        os << (i ? ", " : "") << '"' << gpaths[i] << '"';
    os << "],\n  \"epochs\": [\n";
    char buf[64];
    for (std::size_t e = 0; e < series.size(); ++e) {
        const EpochRow &row = series[e];
        os << "    {\"epoch\": " << e << ", \"start_ns\": "
           << row.start << ", \"end_ns\": " << row.end
           << ", \"deltas\": [";
        for (std::size_t i = 0; i < row.deltas.size(); ++i)
            os << (i ? ", " : "") << row.deltas[i];
        os << "], \"gauges\": [";
        for (std::size_t i = 0; i < row.gauges.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%.6g", row.gauges[i]);
            os << (i ? ", " : "") << buf;
        }
        os << "]}" << (e + 1 < series.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace zombie
