/**
 * @file
 * Hierarchical statistic registry (gem5-style observability root).
 *
 * Components register named statistics under dotted paths
 * ("ctrl.reads", "nand.chan0.chip1.die2.busy_ticks") at construction
 * time; the registry never owns the underlying storage. Three source
 * kinds cover every simulator statistic:
 *
 *  - counter:   a monotonically nondecreasing uint64 the component
 *               already maintains (registered by pointer),
 *  - gauge:     a point-in-time double sampled through a callback
 *               (pool occupancy, derived rates),
 *  - histogram: a LatencyHistogram, expanded on dump into
 *               .count/.mean/.min/.p50/.p99/.p999/.max sub-stats.
 *
 * The registry is pure observation: nothing on the request hot path
 * ever calls into it — components keep updating their own members and
 * the registry reads them on demand (dump or epoch snapshot), so the
 * zero-allocation steady-state contract (DESIGN.md section 7.10) is
 * untouched. dump() emits a stable, sorted, machine-parseable
 * listing, and counter snapshots feed the epoch sampler
 * (telemetry/epoch_sampler.hh).
 */

#ifndef ZOMBIE_TELEMETRY_STAT_REGISTRY_HH
#define ZOMBIE_TELEMETRY_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace zombie
{

/** Name -> source binding for every registered statistic. */
class StatRegistry
{
  public:
    /** Point-in-time sampler for gauge statistics. */
    using GaugeFn = std::function<double()>;

    /**
     * Register a counter at @p path reading @p value (not owned; must
     * outlive the registry). Fatal on duplicate or malformed paths.
     */
    void addCounter(const std::string &path,
                    const std::uint64_t *value);

    /** Register a gauge at @p path sampled through @p sample. */
    void addGauge(const std::string &path, GaugeFn sample);

    /** Register a histogram at @p path (not owned). */
    void addHistogram(const std::string &path,
                      const LatencyHistogram *hist);

    bool has(const std::string &path) const;
    std::size_t size() const { return entries.size(); }

    /** Current value of one counter/gauge path. Fatal on unknown. */
    double value(const std::string &path) const;

    /**
     * Write every statistic as "path value" lines, sorted by path.
     * Counters print as integers, gauges as %.6g, histograms as their
     * expanded sub-stats. The listing is byte-stable for identical
     * simulated state.
     */
    void dump(std::ostream &os) const;

    /** Registered counter paths in sorted (dump) order. */
    std::vector<std::string> counterPaths() const;

    /** Registered gauge paths in sorted (dump) order. */
    std::vector<std::string> gaugePaths() const;

    /** Read every counter, in counterPaths() order, into @p out. */
    void counterValues(std::vector<std::uint64_t> &out) const;

    /** Sample every gauge, in gaugePaths() order, into @p out. */
    void gaugeValues(std::vector<double> &out) const;

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind;
        const std::uint64_t *counter = nullptr;
        GaugeFn gauge;
        const LatencyHistogram *hist = nullptr;
    };

    void insert(const std::string &path, Entry entry);

    /** Sorted map: dump order and snapshot order fall out for free. */
    std::map<std::string, Entry> entries;
};

} // namespace zombie

#endif // ZOMBIE_TELEMETRY_STAT_REGISTRY_HH
