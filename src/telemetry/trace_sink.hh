/**
 * @file
 * Operation-span tracing interface (null by default).
 *
 * A TraceSink receives one span per hardware operation: the track it
 * ran on (a small integer the producer maps to a channel/chip/die),
 * a static name ("read", "program", "erase"), a static category
 * ("host" or "gc"), and the simulated start/end ticks. Producers hold
 * a nullable TraceSink pointer and skip the call entirely when no
 * sink is attached, so tracing costs a single predictable branch when
 * disabled and the request hot path stays allocation-free.
 *
 * Name and category strings must have static storage duration
 * (string literals): sinks keep the pointers, never copies, so
 * recording a span allocates nothing until the sink itself decides
 * to buffer it.
 */

#ifndef ZOMBIE_TELEMETRY_TRACE_SINK_HH
#define ZOMBIE_TELEMETRY_TRACE_SINK_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace zombie
{

/** Receiver of operation spans from the timing layer. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Declare a human-readable name for @p track (e.g.
     * "chan0.chip1.die2"). Called once per track, before any span
     * references it.
     */
    virtual void declareTrack(std::uint32_t track,
                              const std::string &name) = 0;

    /**
     * One operation occupying @p track over [@p start, @p end).
     * @p name and @p category must be string literals.
     */
    virtual void span(std::uint32_t track, const char *name,
                      const char *category, Tick start, Tick end) = 0;
};

} // namespace zombie

#endif // ZOMBIE_TELEMETRY_TRACE_SINK_HH
