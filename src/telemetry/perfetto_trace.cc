#include "telemetry/perfetto_trace.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace zombie
{

PerfettoTraceWriter::PerfettoTraceWriter(std::uint64_t limit)
    : cap(limit)
{
    zombie_assert(cap > 0, "trace limit must be positive");
}

void
PerfettoTraceWriter::declareTrack(std::uint32_t track,
                                  const std::string &name)
{
    trackNames[track] = name;
}

void
PerfettoTraceWriter::span(std::uint32_t track, const char *name,
                          const char *category, Tick start, Tick end)
{
    ++offered;
    if (spans.size() >= cap)
        return;
    spans.push_back(Span{start, end, name, category, track});
}

std::string
PerfettoTraceWriter::escapeJson(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const unsigned char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
PerfettoTraceWriter::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
    bool first = true;
    for (const auto &[track, name] : trackNames) {
        os << (first ? "" : ",\n")
           << "  {\"ph\": \"M\", \"pid\": 0, \"tid\": " << track
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
           << escapeJson(name) << "\"}}";
        first = false;
    }
    char buf[128];
    for (const Span &s : spans) {
        // ts/dur are microseconds; ticks are ns, so three decimals
        // are exact.
        std::snprintf(buf, sizeof(buf),
                      "\"ts\": %llu.%03llu, \"dur\": %llu.%03llu",
                      static_cast<unsigned long long>(s.start / 1000),
                      static_cast<unsigned long long>(s.start % 1000),
                      static_cast<unsigned long long>(
                          (s.end - s.start) / 1000),
                      static_cast<unsigned long long>(
                          (s.end - s.start) % 1000));
        os << (first ? "" : ",\n")
           << "  {\"ph\": \"X\", \"pid\": 0, \"tid\": " << s.track
           << ", " << buf << ", \"name\": \"" << s.name
           << "\", \"cat\": \"" << s.category << "\"}";
        first = false;
    }
    os << "\n]}\n";
}

} // namespace zombie
