#include "telemetry/stat_registry.hh"

#include <cstdio>
#include <ostream>

#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Paths are dotted identifiers: [A-Za-z0-9_] segments, '.'-joined. */
bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (const char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

/** Stable %.6g rendering shared by dump() and gauge values. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

void
StatRegistry::insert(const std::string &path, Entry entry)
{
    zombie_assert(validPath(path), "malformed stat path: ", path);
    const auto [it, fresh] = entries.emplace(path, std::move(entry));
    (void)it;
    zombie_assert(fresh, "duplicate stat path: ", path);
}

void
StatRegistry::addCounter(const std::string &path,
                         const std::uint64_t *value)
{
    zombie_assert(value != nullptr, "null counter source: ", path);
    Entry e;
    e.kind = Kind::Counter;
    e.counter = value;
    insert(path, std::move(e));
}

void
StatRegistry::addGauge(const std::string &path, GaugeFn sample)
{
    zombie_assert(static_cast<bool>(sample),
                  "null gauge sampler: ", path);
    Entry e;
    e.kind = Kind::Gauge;
    e.gauge = std::move(sample);
    insert(path, std::move(e));
}

void
StatRegistry::addHistogram(const std::string &path,
                           const LatencyHistogram *hist)
{
    zombie_assert(hist != nullptr, "null histogram source: ", path);
    Entry e;
    e.kind = Kind::Histogram;
    e.hist = hist;
    insert(path, std::move(e));
}

bool
StatRegistry::has(const std::string &path) const
{
    return entries.count(path) > 0;
}

double
StatRegistry::value(const std::string &path) const
{
    const auto it = entries.find(path);
    zombie_assert(it != entries.end(), "unknown stat path: ", path);
    switch (it->second.kind) {
      case Kind::Counter:
        return static_cast<double>(*it->second.counter);
      case Kind::Gauge:
        return it->second.gauge();
      default:
        zombie_panic("stat path is a histogram, not a scalar: ", path);
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[path, entry] : entries) {
        switch (entry.kind) {
          case Kind::Counter:
            os << path << ' ' << *entry.counter << '\n';
            break;
          case Kind::Gauge:
            os << path << ' ' << formatDouble(entry.gauge()) << '\n';
            break;
          case Kind::Histogram: {
            const LatencyHistogram &h = *entry.hist;
            os << path << ".count " << h.count() << '\n';
            os << path << ".mean " << formatDouble(h.mean()) << '\n';
            os << path << ".min " << h.minValue() << '\n';
            os << path << ".p50 " << h.percentile(0.5) << '\n';
            os << path << ".p99 " << h.percentile(0.99) << '\n';
            os << path << ".p999 " << h.percentile(0.999) << '\n';
            os << path << ".max " << h.maxValue() << '\n';
            break;
          }
        }
    }
}

std::vector<std::string>
StatRegistry::counterPaths() const
{
    std::vector<std::string> paths;
    for (const auto &[path, entry] : entries) {
        if (entry.kind == Kind::Counter)
            paths.push_back(path);
    }
    return paths;
}

std::vector<std::string>
StatRegistry::gaugePaths() const
{
    std::vector<std::string> paths;
    for (const auto &[path, entry] : entries) {
        if (entry.kind == Kind::Gauge)
            paths.push_back(path);
    }
    return paths;
}

void
StatRegistry::counterValues(std::vector<std::uint64_t> &out) const
{
    out.clear();
    for (const auto &[path, entry] : entries) {
        if (entry.kind == Kind::Counter)
            out.push_back(*entry.counter);
    }
}

void
StatRegistry::gaugeValues(std::vector<double> &out) const
{
    out.clear();
    for (const auto &[path, entry] : entries) {
        if (entry.kind == Kind::Gauge)
            out.push_back(entry.gauge());
    }
}

} // namespace zombie
