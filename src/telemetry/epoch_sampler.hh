/**
 * @file
 * Epoch time-series sampler over a StatRegistry.
 *
 * The paper's latency figures are shaped by transient behaviour — GC
 * pauses, die queueing, DVP hit-rate drift as the pool warms — that
 * end-of-run aggregates average away. The sampler snapshots the
 * registry's counters at fixed simulated-tick boundaries and stores
 * the per-epoch deltas (plus point-in-time gauge values), giving
 * per-interval hit-rate, relocation and queue-depth curves.
 *
 * Epoch boundaries sit on absolute multiples of the interval (tick 0
 * origin), so epoch alignment is a property of the interval alone —
 * reruns with different seeds produce comparable series. Sampling is
 * driven by the simulation clock (the controller schedules a
 * StatsSample event per boundary); no wall-clock state exists
 * anywhere, so runs stay deterministic. The final, partial epoch is
 * flushed by finish(), which makes the column sums over all epochs
 * equal the end-of-run counter totals exactly.
 */

#ifndef ZOMBIE_TELEMETRY_EPOCH_SAMPLER_HH
#define ZOMBIE_TELEMETRY_EPOCH_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/stat_registry.hh"
#include "util/types.hh"

namespace zombie
{

/** One closed epoch: [start, end) with counter deltas and gauges. */
struct EpochRow
{
    Tick start = 0;
    Tick end = 0;

    /** Counter increments over the epoch, in counterPaths() order. */
    std::vector<std::uint64_t> deltas;

    /** Gauge values at the epoch's end, in gaugePaths() order. */
    std::vector<double> gauges;
};

/** Snapshots registry counters into an in-memory time-series. */
class EpochSampler
{
  public:
    /** Sample @p registry every @p interval ticks (must be > 0). */
    EpochSampler(const StatRegistry &registry, Tick interval);

    Tick interval() const { return step; }

    /**
     * Take the baseline snapshot at measurement start: everything
     * counted before @p now (e.g. prefill) is excluded from epoch 0.
     * Idempotent; later calls are no-ops so trace replays do not
     * restart the series.
     */
    void begin(Tick now);

    /** Smallest epoch boundary strictly after @p now. */
    Tick nextBoundary(Tick now) const;

    /** Close the epoch ending at @p boundary and start the next. */
    void sample(Tick boundary);

    /**
     * Close the trailing partial epoch at @p end (no-op when the run
     * ended exactly on a boundary or nothing was counted since).
     * After finish(), per-column delta sums equal the end-of-run
     * counter totals minus the begin() baseline exactly.
     */
    void finish(Tick end);

    bool begun() const { return started; }
    const std::vector<EpochRow> &rows() const { return series; }
    const std::vector<std::string> &counterColumns() const
    {
        return cpaths;
    }
    const std::vector<std::string> &gaugeColumns() const
    {
        return gpaths;
    }

    /** Sum of one counter column over all closed epochs. */
    std::uint64_t totalOf(const std::string &counter_path) const;

    /**
     * CSV export: header "epoch,start_ns,end_ns,<columns...>" then
     * one row per epoch. Gauge columns follow counter columns.
     */
    void writeCsv(std::ostream &os) const;

    /** JSON export of the same series (column names + epoch rows). */
    void writeJson(std::ostream &os) const;

  private:
    /** Append the epoch [epochStart, end) from a fresh snapshot. */
    void closeEpoch(Tick end);

    const StatRegistry &reg;
    Tick step;
    Tick epochStart = 0;
    bool started = false;
    bool finished = false;

    std::vector<std::string> cpaths;
    std::vector<std::string> gpaths;
    std::vector<std::uint64_t> prev;
    std::vector<std::uint64_t> scratch;
    std::vector<EpochRow> series;
};

} // namespace zombie

#endif // ZOMBIE_TELEMETRY_EPOCH_SAMPLER_HH
