/**
 * @file
 * TraceSink emitting Chrome trace_event JSON loadable in Perfetto.
 *
 * Spans are buffered as POD records (track, literal name/category,
 * start/end ticks) and serialized on demand as complete events
 * ("ph":"X") with microsecond timestamps, one Perfetto thread per
 * track, plus thread_name metadata events. Ticks are nanoseconds, so
 * timestamps print with three decimals and lose nothing.
 *
 * The buffer keeps the first `limit` spans offered (--span-limit):
 * the interesting transients — pool warm-up, first GC storms — are at
 * the front of a run, and a hard cap keeps a day-long trace from
 * buffering gigabytes. recorded() vs kept() exposes the truncation.
 */

#ifndef ZOMBIE_TELEMETRY_PERFETTO_TRACE_HH
#define ZOMBIE_TELEMETRY_PERFETTO_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace_sink.hh"
#include "util/types.hh"

namespace zombie
{

/** Buffering TraceSink with Chrome trace_event JSON output. */
class PerfettoTraceWriter : public TraceSink
{
  public:
    static constexpr std::uint64_t kDefaultLimit = 1'000'000;

    explicit PerfettoTraceWriter(std::uint64_t limit = kDefaultLimit);

    void declareTrack(std::uint32_t track,
                      const std::string &name) override;
    void span(std::uint32_t track, const char *name,
              const char *category, Tick start, Tick end) override;

    /** Spans offered to the sink (including dropped ones). */
    std::uint64_t recorded() const { return offered; }

    /** Spans actually buffered (first `limit` offered). */
    std::uint64_t kept() const { return spans.size(); }

    std::uint64_t limit() const { return cap; }

    /** Serialize as {"traceEvents": [...]} JSON. */
    void writeJson(std::ostream &os) const;

    /** JSON string escaping (exposed for tests). */
    static std::string escapeJson(const std::string &raw);

  private:
    struct Span
    {
        Tick start;
        Tick end;
        const char *name;
        const char *category;
        std::uint32_t track;
    };

    std::vector<Span> spans;
    std::map<std::uint32_t, std::string> trackNames;
    std::uint64_t cap;
    std::uint64_t offered = 0;
};

} // namespace zombie

#endif // ZOMBIE_TELEMETRY_PERFETTO_TRACE_HH
