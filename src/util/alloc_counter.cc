#include "util/alloc_counter.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace
{

std::atomic<std::uint64_t> allocCalls{0};

void *
countedAlloc(std::size_t bytes)
{
    allocCalls.fetch_add(1, std::memory_order_relaxed);
    // operator new must not return nullptr even for zero bytes.
    void *p = std::malloc(bytes ? bytes : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

namespace zombie
{

std::uint64_t
heapAllocCount()
{
    return allocCalls.load(std::memory_order_relaxed);
}

} // namespace zombie

void *
operator new(std::size_t bytes)
{
    return countedAlloc(bytes);
}

void *
operator new[](std::size_t bytes)
{
    return countedAlloc(bytes);
}

void *
operator new(std::size_t bytes, const std::nothrow_t &) noexcept
{
    allocCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(bytes ? bytes : 1);
}

void *
operator new[](std::size_t bytes, const std::nothrow_t &) noexcept
{
    allocCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(bytes ? bytes : 1);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
