#include "util/csv.hh"

#include "util/logging.hh"

namespace zombie
{

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> header)
    : filePath(path), out(path), arity(header.size())
{
    if (!out)
        zombie_fatal("cannot open CSV output file: ", path);
    zombie_assert(arity > 0, "CSV needs at least one column");
    writeRow(header);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &row)
{
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i)
            out << ',';
        out << escape(row[i]);
    }
    out << '\n';
}

void
CsvWriter::addRow(const std::vector<std::string> &row)
{
    zombie_assert(row.size() == arity, "CSV row arity mismatch");
    writeRow(row);
}

void
CsvWriter::close()
{
    out.close();
}

} // namespace zombie
