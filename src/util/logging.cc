#include "util/logging.hh"

#include <cstdio>
#include <exception>

namespace zombie
{

namespace
{

LogLevel g_level = LogLevel::Inform;

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace zombie
