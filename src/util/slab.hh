/**
 * @file
 * Free-listed, index-addressed object slab.
 *
 * Pools per-command state so the steady-state request path never
 * allocates: acquire() pops the lowest-water free slot (or grows the
 * backing vector during warm-up), release() pushes it back. Slots
 * are addressed by dense uint32 index, which is what the typed event
 * payload carries instead of heap-allocated lambda captures.
 *
 * The free list is LIFO over indices, so the acquire/release
 * sequence alone determines which index a command gets; no pointer
 * values or allocator state leak into behaviour, keeping seeded runs
 * byte-identical.
 */

#ifndef ZOMBIE_UTIL_SLAB_HH
#define ZOMBIE_UTIL_SLAB_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace zombie
{

/** Grow-only pool of T addressed by dense index. */
template <typename T>
class Slab
{
  public:
    /** Pop a free slot, growing the slab only when none is free. */
    std::uint32_t
    acquire()
    {
        if (!freeList.empty()) {
            const std::uint32_t idx = freeList.back();
            freeList.pop_back();
            return idx;
        }
        const auto idx = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
        return idx;
    }

    /** Return @p idx to the free list; the slot value persists. */
    void
    release(std::uint32_t idx)
    {
        zombie_assert(idx < slots.size(), "slab release out of range");
        freeList.push_back(idx);
    }

    /** Pre-size both the slots and the free-list spine. */
    void
    reserve(std::size_t n)
    {
        slots.reserve(n);
        freeList.reserve(n);
    }

    T &operator[](std::uint32_t idx) { return slots[idx]; }
    const T &operator[](std::uint32_t idx) const { return slots[idx]; }

    std::size_t size() const { return slots.size(); }
    std::size_t freeCount() const { return freeList.size(); }

  private:
    std::vector<T> slots;
    std::vector<std::uint32_t> freeList;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_SLAB_HH
