#include "util/byte_source.hh"

#include <cstring>

#include "util/logging.hh"

#if ZOMBIE_HAVE_ZLIB
#include <zlib.h>
#endif
#if ZOMBIE_HAVE_ZSTD
#include <zstd.h>
#endif

namespace zombie
{

namespace
{

/** Compressed-input block fed to a decoder per refill. */
constexpr std::size_t kDecoderInputBlock = 1 << 16;

/**
 * Replays a sniffed prefix before delegating to the inner source, so
 * openByteSource() can inspect magic bytes without seeking (decoders
 * need the container header too, and gzip streams from a pipe could
 * not rewind).
 */
class PrefixedByteSource : public ByteSource
{
  public:
    PrefixedByteSource(std::string head,
                       std::unique_ptr<ByteSource> inner)
        : prefix(std::move(head)), src(std::move(inner))
    {
    }

    std::size_t
    read(char *dst, std::size_t capacity) override
    {
        if (pos < prefix.size()) {
            const std::size_t n =
                std::min(capacity, prefix.size() - pos);
            std::memcpy(dst, prefix.data() + pos, n);
            pos += n;
            return n;
        }
        return src->read(dst, capacity);
    }

    const std::string &describe() const override
    {
        return src->describe();
    }

  private:
    std::string prefix;
    std::unique_ptr<ByteSource> src;
    std::size_t pos = 0;
};

#if ZOMBIE_HAVE_ZLIB

/** Streaming gzip/zlib inflater over an inner ByteSource. */
class GzipByteSource : public ByteSource
{
  public:
    explicit GzipByteSource(std::unique_ptr<ByteSource> inner)
        : src(std::move(inner)), input(kDecoderInputBlock)
    {
        std::memset(&strm, 0, sizeof(strm));
        // 15 window bits + 32: auto-detect gzip or zlib wrapping.
        if (inflateInit2(&strm, 15 + 32) != Z_OK)
            zombie_fatal("zlib inflateInit failed for ",
                         src->describe());
    }

    ~GzipByteSource() override { inflateEnd(&strm); }

    std::size_t
    read(char *dst, std::size_t capacity) override
    {
        if (finished)
            return 0;
        strm.next_out = reinterpret_cast<Bytef *>(dst);
        strm.avail_out = static_cast<uInt>(capacity);
        while (strm.avail_out > 0) {
            if (strm.avail_in == 0) {
                const std::size_t n =
                    src->read(input.data(), input.size());
                if (n == 0) {
                    if (strm.avail_out == capacity)
                        zombie_fatal("truncated gzip stream: ",
                                     src->describe());
                    break;
                }
                strm.next_in =
                    reinterpret_cast<Bytef *>(input.data());
                strm.avail_in = static_cast<uInt>(n);
            }
            const int rc = inflate(&strm, Z_NO_FLUSH);
            if (rc == Z_STREAM_END) {
                // Concatenated gzip members are valid (gzip -c a b);
                // reset and keep inflating the remaining input.
                if (strm.avail_in == 0 && !innerHasMore()) {
                    finished = true;
                    break;
                }
                if (inflateReset(&strm) != Z_OK)
                    zombie_fatal("gzip member reset failed: ",
                                 src->describe());
                continue;
            }
            if (rc != Z_OK)
                zombie_fatal("corrupt gzip stream (zlib rc ", rc,
                             "): ", src->describe());
        }
        return capacity - strm.avail_out;
    }

    const std::string &describe() const override
    {
        return src->describe();
    }

  private:
    /** Peek one byte ahead so trailing garbage-free streams end. */
    bool
    innerHasMore()
    {
        const std::size_t n = src->read(input.data(), input.size());
        if (n == 0)
            return false;
        strm.next_in = reinterpret_cast<Bytef *>(input.data());
        strm.avail_in = static_cast<uInt>(n);
        return true;
    }

    std::unique_ptr<ByteSource> src;
    std::vector<char> input;
    z_stream strm;
    bool finished = false;
};

#endif // ZOMBIE_HAVE_ZLIB

#if ZOMBIE_HAVE_ZSTD

/** Streaming zstd decoder over an inner ByteSource. */
class ZstdByteSource : public ByteSource
{
  public:
    explicit ZstdByteSource(std::unique_ptr<ByteSource> inner)
        : src(std::move(inner)), input(kDecoderInputBlock),
          stream(ZSTD_createDStream())
    {
        if (!stream)
            zombie_fatal("ZSTD_createDStream failed for ",
                         src->describe());
        in.src = input.data();
        in.size = 0;
        in.pos = 0;
    }

    ~ZstdByteSource() override { ZSTD_freeDStream(stream); }

    std::size_t
    read(char *dst, std::size_t capacity) override
    {
        ZSTD_outBuffer out{dst, capacity, 0};
        while (out.pos < out.size) {
            if (in.pos == in.size) {
                const std::size_t n =
                    src->read(input.data(), input.size());
                if (n == 0) {
                    if (pending != 0)
                        zombie_fatal("truncated zstd stream: ",
                                     src->describe());
                    break;
                }
                in.size = n;
                in.pos = 0;
            }
            pending = ZSTD_decompressStream(stream, &out, &in);
            if (ZSTD_isError(pending))
                zombie_fatal("corrupt zstd stream (",
                             ZSTD_getErrorName(pending),
                             "): ", src->describe());
        }
        return out.pos;
    }

    const std::string &describe() const override
    {
        return src->describe();
    }

  private:
    std::unique_ptr<ByteSource> src;
    std::vector<char> input;
    ZSTD_DStream *stream;
    ZSTD_inBuffer in{};
    std::size_t pending = 0;
};

#endif // ZOMBIE_HAVE_ZSTD

} // namespace

FileByteSource::FileByteSource(const std::string &path)
    : file(std::fopen(path.c_str(), "rb")), path_(path)
{
    if (!file)
        zombie_fatal("cannot open file: ", path);
    // The line reader above does its own 256KB chunking; stdio's
    // extra copy through its internal buffer is pure overhead.
    std::setvbuf(file, nullptr, _IONBF, 0);
}

FileByteSource::~FileByteSource()
{
    std::fclose(file);
}

std::size_t
FileByteSource::read(char *dst, std::size_t capacity)
{
    const std::size_t n = std::fread(dst, 1, capacity, file);
    if (n < capacity && std::ferror(file))
        zombie_fatal("I/O error reading ", path_);
    return n;
}

std::size_t
MemoryByteSource::read(char *dst, std::size_t capacity)
{
    const std::size_t n = std::min(capacity, data.size() - pos);
    std::memcpy(dst, data.data() + pos, n);
    pos += n;
    return n;
}

bool
compressionSupported(Compression kind)
{
    switch (kind) {
      case Compression::None:
        return true;
      case Compression::Gzip:
        return ZOMBIE_HAVE_ZLIB != 0;
      case Compression::Zstd:
        return ZOMBIE_HAVE_ZSTD != 0;
    }
    zombie_panic("unreachable compression kind");
}

Compression
sniffCompression(const unsigned char *head, std::size_t size)
{
    if (size >= 2 && head[0] == 0x1f && head[1] == 0x8b)
        return Compression::Gzip;
    if (size >= 4 && head[0] == 0x28 && head[1] == 0xb5 &&
        head[2] == 0x2f && head[3] == 0xfd)
        return Compression::Zstd;
    return Compression::None;
}

std::unique_ptr<ByteSource>
makeDecompressor(Compression kind, std::unique_ptr<ByteSource> inner)
{
    switch (kind) {
      case Compression::None:
        return inner;
      case Compression::Gzip:
#if ZOMBIE_HAVE_ZLIB
        return std::make_unique<GzipByteSource>(std::move(inner));
#else
        zombie_fatal("gzip input ", inner->describe(),
                     " but this build has no zlib; rebuild with "
                     "zlib development headers installed");
#endif
      case Compression::Zstd:
#if ZOMBIE_HAVE_ZSTD
        return std::make_unique<ZstdByteSource>(std::move(inner));
#else
        zombie_fatal("zstd input ", inner->describe(),
                     " but this build has no libzstd; rebuild with "
                     "zstd development headers installed");
#endif
    }
    zombie_panic("unreachable compression kind");
}

std::unique_ptr<ByteSource>
prependBytes(std::string head, std::unique_ptr<ByteSource> inner)
{
    return std::make_unique<PrefixedByteSource>(std::move(head),
                                                std::move(inner));
}

std::unique_ptr<ByteSource>
openByteSource(const std::string &path)
{
    auto file = std::make_unique<FileByteSource>(path);
    char head[4];
    std::size_t got = 0;
    while (got < sizeof(head)) {
        const std::size_t n =
            file->read(head + got, sizeof(head) - got);
        if (n == 0)
            break;
        got += n;
    }
    const Compression kind = sniffCompression(
        reinterpret_cast<const unsigned char *>(head), got);
    std::unique_ptr<ByteSource> src =
        std::make_unique<PrefixedByteSource>(std::string(head, got),
                                             std::move(file));
    return makeDecompressor(kind, std::move(src));
}

} // namespace zombie
