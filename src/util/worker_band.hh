/**
 * @file
 * Persistent worker band for the channel-sharded flash phase.
 *
 * Unlike ThreadPool (futures + heap-allocated tasks, built for the
 * experiment harness), a WorkerBand dispatches one plain function
 * pointer to a fixed set of long-lived workers with zero allocation
 * per run: the simulator's steady-state request path must stay
 * allocation-free (DESIGN.md section 7.10) even when GC bursts fan
 * out across channel shards thousands of times per second.
 *
 * run(fn, ctx, shards) executes fn(ctx, s) for every shard s in
 * [0, shards) and returns when all calls finished. The calling
 * thread is executor 0 and always participates; shard s runs on
 * executor s % executors(). Shards must touch disjoint state — the
 * band provides a completion barrier, not any ordering between
 * shards of the same run.
 */

#ifndef ZOMBIE_UTIL_WORKER_BAND_HH
#define ZOMBIE_UTIL_WORKER_BAND_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace zombie
{

/** Fixed band of workers; allocation-free fan-out/join per run. */
class WorkerBand
{
  public:
    /** Shard body: called once per assigned shard. */
    using TaskFn = void (*)(void *ctx, unsigned shard);

    /**
     * @param extra_workers worker threads to spawn in addition to
     * the calling thread (0 makes run() purely inline).
     */
    explicit WorkerBand(unsigned extra_workers);

    /** Joins the workers (any in-flight run must have returned). */
    ~WorkerBand();

    WorkerBand(const WorkerBand &) = delete;
    WorkerBand &operator=(const WorkerBand &) = delete;

    /** Total executors: the spawned workers plus the caller. */
    unsigned executors() const { return nExecutors; }

    /**
     * Execute fn(ctx, s) for all s in [0, shards), the caller
     * handling executor 0's share, and join. Not reentrant: one run
     * at a time per band.
     */
    void run(TaskFn fn, void *ctx, unsigned shards);

  private:
    void workerLoop(unsigned id);

    /** Worker count + 1, frozen before any worker starts (workers
     *  derive their shard stride from it while the constructor may
     *  still be appending to `threads`). */
    unsigned nExecutors;

    std::vector<std::thread> threads;
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable done;

    /** Bumped per run(); workers run every generation once. */
    std::uint64_t generation = 0;
    unsigned pendingWorkers = 0;
    TaskFn fn = nullptr;
    void *ctx = nullptr;
    unsigned shards = 0;
    bool stopping = false;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_WORKER_BAND_HH
