/**
 * @file
 * Global heap-allocation counter.
 *
 * When linked into a binary, util/alloc_counter.cc replaces the
 * global operator new/delete with counting forwarders. The counter
 * lets the allocation regression test and the --wall-json side
 * channel prove that the steady-state request path performs zero
 * heap allocations (DESIGN.md section 7.10).
 *
 * Counting is always-on but nearly free (one relaxed atomic add per
 * allocation); it never changes allocation behaviour or simulated
 * results.
 */

#ifndef ZOMBIE_UTIL_ALLOC_COUNTER_HH
#define ZOMBIE_UTIL_ALLOC_COUNTER_HH

#include <cstdint>

namespace zombie
{

/** Total operator-new calls in this process so far. */
std::uint64_t heapAllocCount();

} // namespace zombie

#endif // ZOMBIE_UTIL_ALLOC_COUNTER_HH
