/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic components (trace generation, tie-breaking) draw from a
 * Xoshiro256** generator seeded explicitly, so every experiment is
 * reproducible from its command line.
 */

#ifndef ZOMBIE_UTIL_RANDOM_HH
#define ZOMBIE_UTIL_RANDOM_HH

#include <array>
#include <cstdint>

namespace zombie
{

/** SplitMix64: used to expand a 64-bit seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
 * Satisfies the UniformRandomBitGenerator concept.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x5eedULL)
    {
        SplitMix64 sm(seed);
        for (auto &w : state)
            w = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t t = (-bound) % bound;
            while (l < t) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Exponentially distributed draw with the given mean. */
    double
    nextExponential(double mean)
    {
        double u = nextDouble();
        // Guard u == 0 which would yield +inf.
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * logApprox(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Thin wrapper so <cmath> stays out of this header's hot path. */
    static double logApprox(double u);

    std::array<std::uint64_t, 4> state;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_RANDOM_HH
