#include "util/worker_band.hh"

namespace zombie
{

WorkerBand::WorkerBand(unsigned extra_workers)
    : nExecutors(extra_workers + 1)
{
    threads.reserve(extra_workers);
    for (unsigned id = 0; id < extra_workers; ++id)
        threads.emplace_back([this, id] { workerLoop(id); });
}

WorkerBand::~WorkerBand()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
WorkerBand::run(TaskFn run_fn, void *run_ctx, unsigned run_shards)
{
    if (threads.empty() || run_shards <= 1) {
        for (unsigned s = 0; s < run_shards; ++s)
            run_fn(run_ctx, s);
        return;
    }
    const unsigned stride = executors();
    {
        std::lock_guard<std::mutex> lock(mutex);
        fn = run_fn;
        ctx = run_ctx;
        shards = run_shards;
        pendingWorkers = static_cast<unsigned>(threads.size());
        ++generation;
    }
    wake.notify_all();
    // The caller is executor 0 and works its share while the band
    // runs; the join below is the epoch barrier the sharded flash
    // phase relies on.
    for (unsigned s = 0; s < run_shards; s += stride)
        run_fn(run_ctx, s);
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [this] { return pendingWorkers == 0; });
}

void
WorkerBand::workerLoop(unsigned id)
{
    std::uint64_t seen = 0;
    const unsigned stride = executors();
    for (;;) {
        TaskFn task;
        void *task_ctx;
        unsigned task_shards;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wake.wait(lock, [this, seen] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            task = fn;
            task_ctx = ctx;
            task_shards = shards;
        }
        for (unsigned s = id + 1; s < task_shards; s += stride)
            task(task_ctx, s);
        bool last;
        {
            std::lock_guard<std::mutex> lock(mutex);
            last = --pendingWorkers == 0;
        }
        if (last)
            done.notify_one();
    }
}

} // namespace zombie
