/**
 * @file
 * Statistics primitives used across the simulator and benches.
 *
 * The paper reports mean and tail (99th percentile) latencies as well as
 * CDFs of per-value counters. LatencyHistogram gives O(1) recording and
 * approximate (sub-1%) percentiles over arbitrary tick ranges;
 * RunningStat gives exact mean/variance; Cdf builds plot-ready CDF
 * series for the Figure 2/3 style outputs.
 */

#ifndef ZOMBIE_UTIL_STATS_HH
#define ZOMBIE_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zombie
{

/** Exact running mean / variance / min / max (Welford's algorithm). */
class RunningStat
{
  public:
    void record(double x);
    void merge(const RunningStat &other);
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const { return n > 1 ? m2 / (double)(n - 1) : 0.0; }
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * HDR-style log-bucketed histogram over non-negative 64-bit samples.
 * Each power-of-two range is split into 32 linear sub-buckets, bounding
 * relative quantile error to ~3%; mean is exact (separate sum).
 */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    void record(std::uint64_t value);
    void merge(const LatencyHistogram &other);
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const;
    std::uint64_t minValue() const { return n ? lo : 0; }
    std::uint64_t maxValue() const { return n ? hi : 0; }

    /** Value at quantile q in [0, 1]; e.g. 0.99 for the paper's tail. */
    std::uint64_t percentile(double q) const;

  private:
    static constexpr int kSubBucketBits = 5;
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kBuckets = 64 * kSubBuckets;

    static int bucketIndex(std::uint64_t value);
    static std::uint64_t bucketUpperBound(int index);

    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    double total = 0.0;
};

/** One (x, fraction<=x) point of a cumulative distribution. */
struct CdfPoint
{
    double x;
    double fraction;
};

/**
 * Build a CDF over raw samples (e.g. per-value invalidation counts for
 * Figure 2). Points are emitted at each distinct sample value.
 */
std::vector<CdfPoint> buildCdf(std::vector<double> samples);

/**
 * Downsample a CDF to at most max_points points, always keeping the
 * first and last, so benches print compact tables.
 */
std::vector<CdfPoint> thinCdf(const std::vector<CdfPoint> &cdf,
                              std::size_t max_points);

/** Exact percentile of an already-sorted sample vector. */
double percentileOfSorted(const std::vector<double> &sorted, double q);

/**
 * Flat name -> value registry a component exposes for dumping. Values
 * are stored as doubles; names use dotted paths ("ftl.gc.erases").
 */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    void add(const std::string &name, double delta);
    double get(const std::string &name) const;
    bool has(const std::string &name) const;

    const std::map<std::string, double> &all() const { return values; }

    /** Render as aligned "name value" lines. */
    std::string format() const;

  private:
    std::map<std::string, double> values;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_STATS_HH
