/**
 * @file
 * CSV emission so bench output can be post-processed / plotted.
 */

#ifndef ZOMBIE_UTIL_CSV_HH
#define ZOMBIE_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace zombie
{

/** Streams rows to a CSV file with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Opens (truncates) the target path; fatal if unwritable. */
    CsvWriter(const std::string &path, std::vector<std::string> header);

    void addRow(const std::vector<std::string> &row);
    void close();

    const std::string &path() const { return filePath; }

  private:
    static std::string escape(const std::string &cell);
    void writeRow(const std::vector<std::string> &row);

    std::string filePath;
    std::ofstream out;
    std::size_t arity;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_CSV_HH
