/**
 * @file
 * Bounded single-producer/single-consumer hand-off ring.
 *
 * The decode-ahead replay pipeline (trace/prefetch.hh) moves *batches*
 * of records between exactly two threads, so the ring optimizes for
 * clarity and allocation behaviour, not lock-free cleverness: one
 * mutex guards the indices, and both push() and pop() exchange
 * payloads with the slot via swap. A popped std::vector batch hands
 * its heap buffer back to the ring, and the producer receives it on
 * the next push — after warm-up the same few buffers circulate
 * forever and the steady state allocates nothing. At one lock
 * operation per multi-thousand-record batch the mutex is invisible,
 * and the blocking paths are trivially free of lost-wakeup races
 * (every wait predicate is re-checked under the same lock the state
 * changes under), which keeps the tsan preset quiet.
 *
 * FIFO order is absolute: pop() returns payloads in exactly push()
 * order, which is what lets the prefetch pipeline guarantee a
 * byte-identical record stream (DESIGN.md section 7.17).
 *
 * Shutdown is two-sided: the producer finish()es when its stream is
 * exhausted (pop() then drains and returns false), and the consumer
 * cancel()s when it stops early (push() then fails so the producer
 * thread can exit instead of blocking forever on a full ring).
 */

#ifndef ZOMBIE_UTIL_SPSC_RING_HH
#define ZOMBIE_UTIL_SPSC_RING_HH

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace zombie
{

/** Bounded two-thread FIFO with swap-based payload exchange. */
template <typename T>
class SpscRing
{
  public:
    /** @param depth slot count; full push() blocks (minimum 1). */
    explicit SpscRing(std::size_t depth)
        : slots(depth > 0 ? depth : 1)
    {
    }

    std::size_t capacity() const { return slots.size(); }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return count;
    }

    /**
     * Producer: exchange @p value into the ring (on return, @p value
     * holds the recycled previous content of the slot). Blocks while
     * full. @return false — with @p value untouched — once the
     * consumer cancelled.
     */
    bool
    push(T &value)
    {
        std::unique_lock<std::mutex> lock(mtx);
        notFull.wait(lock, [&] {
            return cancelled || count < slots.size();
        });
        if (cancelled)
            return false;
        using std::swap;
        swap(slots[(head + count) % slots.size()], value);
        ++count;
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /** Producer: no further push() calls will follow. */
    void
    finish()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            finished = true;
        }
        notEmpty.notify_one();
    }

    /**
     * Consumer: exchange the oldest payload into @p out (its previous
     * content becomes the slot's recycled buffer). Blocks while
     * empty. @return false once the ring is finished and drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mtx);
        notEmpty.wait(lock, [&] { return finished || count > 0; });
        if (count == 0)
            return false;
        using std::swap;
        swap(slots[head], out);
        head = (head + 1) % slots.size();
        --count;
        lock.unlock();
        notFull.notify_one();
        return true;
    }

    /** Consumer: abandon the stream; blocked/future push() fails. */
    void
    cancel()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            cancelled = true;
        }
        notFull.notify_one();
    }

  private:
    std::vector<T> slots;
    mutable std::mutex mtx;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::size_t head = 0;
    std::size_t count = 0;
    bool finished = false;
    bool cancelled = false;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_SPSC_RING_HH
