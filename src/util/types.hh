/**
 * @file
 * Fundamental index and time types shared by every zombie module.
 *
 * The simulator follows the paper's terminology: a logical page number
 * (LPN) names a 4KB chunk in the host address space, a physical page
 * number (PPN) names a flash page, and simulated time advances in
 * nanosecond ticks.
 */

#ifndef ZOMBIE_UTIL_TYPES_HH
#define ZOMBIE_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace zombie
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Logical page number: index of a 4KB chunk in host address space. */
using Lpn = std::uint64_t;

/** Physical page number: flat index of a flash page in the array. */
using Ppn = std::uint64_t;

/** Sentinel for "no page mapped". */
inline constexpr Lpn kInvalidLpn = std::numeric_limits<Lpn>::max();
inline constexpr Ppn kInvalidPpn = std::numeric_limits<Ppn>::max();
inline constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Page size used throughout the paper: requests are 4KB chunks. */
inline constexpr std::size_t kPageSize = 4096;

/** Tick helpers: the config file quotes latencies in us/ms. */
inline constexpr Tick
ticksFromUs(double us)
{
    return static_cast<Tick>(us * 1000.0);
}

inline constexpr Tick
ticksFromMs(double ms)
{
    return static_cast<Tick>(ms * 1000.0 * 1000.0);
}

inline constexpr double
usFromTicks(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

} // namespace zombie

#endif // ZOMBIE_UTIL_TYPES_HH
