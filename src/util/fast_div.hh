/**
 * @file
 * Exact division by a runtime-constant divisor via one multiply.
 *
 * The geometry codecs (PPN -> block/plane/die/channel) sit on every
 * flash-state transition — millions of integer divisions per
 * simulated second, each 20+ cycles on current cores. The divisors
 * are fixed at construction, so the classic invariant-divisor
 * transformation applies: precompute m = floor(2^64 / d) + 1 once
 * and replace n / d with the high 64 bits of the 128-bit product
 * m * n.
 *
 * Exactness (Granlund & Montgomery, "Division by Invariant Integers
 * using Multiplication"): with e = m*d - 2^64 (0 < e <= d),
 * m*n / 2^64 = (n + e*n/2^64) / d, so the floored quotient is exact
 * for every n with e*n < 2^64 — a bound the constructor checks
 * against the caller-declared maximum dividend. Dividends here are
 * page/block indices (far below 2^56), so the check never fails in
 * practice; if it ever did, the functor falls back to hardware
 * division and stays correct.
 *
 * Powers of two (most geometry dimensions) skip the multiply
 * entirely and compile to a shift.
 */

#ifndef ZOMBIE_UTIL_FAST_DIV_HH
#define ZOMBIE_UTIL_FAST_DIV_HH

#include <cstdint>

#include "util/logging.hh"

namespace zombie
{

/** n / d for a divisor fixed at construction; always exact. */
class FastDiv
{
  public:
    FastDiv() = default;

    /**
     * @param divisor the fixed divisor (>= 1).
     * @param max_dividend largest n this functor must handle; the
     *        magic-multiply path is only taken when it is provably
     *        exact over [0, max_dividend].
     */
    FastDiv(std::uint64_t divisor, std::uint64_t max_dividend)
        : d(divisor)
    {
        zombie_assert(divisor > 0, "division by zero divisor");
        if ((d & (d - 1)) == 0) {
            // Power of two: pure shift.
            shift = ctz(d);
            kind = Kind::Shift;
            return;
        }
        magic = ~std::uint64_t(0) / d + 1; // floor(2^64/d) + 1
        const std::uint64_t err =
            magic * d; // == m*d - 2^64 (mod 2^64), the e above
        const bool exact =
            static_cast<unsigned __int128>(err) * max_dividend <
            (static_cast<unsigned __int128>(1) << 64);
        kind = exact ? Kind::Magic : Kind::Divide;
    }

    std::uint64_t
    operator()(std::uint64_t n) const
    {
        switch (kind) {
          case Kind::Shift:
            return n >> shift;
          case Kind::Magic:
            return static_cast<std::uint64_t>(
                (static_cast<unsigned __int128>(magic) * n) >> 64);
          default:
            return n / d;
        }
    }

    std::uint64_t divisor() const { return d; }

    /** n % d, sharing the fast quotient. */
    std::uint64_t mod(std::uint64_t n) const { return n - (*this)(n)*d; }

  private:
    enum class Kind : std::uint8_t { Divide, Shift, Magic };

    static std::uint32_t
    ctz(std::uint64_t v)
    {
        std::uint32_t s = 0;
        while (!(v & 1)) {
            v >>= 1;
            ++s;
        }
        return s;
    }

    std::uint64_t d = 1;
    std::uint64_t magic = 0;
    std::uint32_t shift = 0;
    Kind kind = Kind::Shift;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_FAST_DIV_HH
