#include "util/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace zombie
{

void
RunningStat::record(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    const double combined = na + nb;
    mu += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    total += other.total;
    n += other.n;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

LatencyHistogram::LatencyHistogram() : counts(kBuckets, 0) {}

int
LatencyHistogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<int>(value);
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - kSubBucketBits;
    const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
    return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

std::uint64_t
LatencyHistogram::bucketUpperBound(int index)
{
    if (index < kSubBuckets)
        return static_cast<std::uint64_t>(index);
    const int tier = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    const int shift = tier - 1;
    // Upper edge of the linear sub-bucket within this power-of-two tier.
    return ((static_cast<std::uint64_t>(kSubBuckets + sub) + 1)
            << shift) - 1;
}

void
LatencyHistogram::record(std::uint64_t value)
{
    if (n == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    ++n;
    total += static_cast<double>(value);
    ++counts[bucketIndex(value)];
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        lo = other.lo;
        hi = other.hi;
    } else {
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
    }
    n += other.n;
    total += other.total;
    for (int i = 0; i < kBuckets; ++i)
        counts[i] += other.counts[i];
}

void
LatencyHistogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    n = 0;
    lo = hi = 0;
    total = 0.0;
}

double
LatencyHistogram::mean() const
{
    return n ? total / static_cast<double>(n) : 0.0;
}

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (n == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    // Quantile 0 is the recorded minimum exactly, not the containing
    // bucket's upper bound (which can sit ~3% above it).
    if (target == 0)
        return lo;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[i];
        if (seen >= target && counts[i] > 0)
            return std::clamp(bucketUpperBound(i), lo, hi);
    }
    return hi;
}

std::vector<CdfPoint>
buildCdf(std::vector<double> samples)
{
    std::vector<CdfPoint> cdf;
    if (samples.empty())
        return cdf;
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    std::size_t i = 0;
    while (i < samples.size()) {
        std::size_t j = i;
        while (j < samples.size() && samples[j] == samples[i])
            ++j;
        cdf.push_back({samples[i], static_cast<double>(j) / n});
        i = j;
    }
    return cdf;
}

std::vector<CdfPoint>
thinCdf(const std::vector<CdfPoint> &cdf, std::size_t max_points)
{
    if (cdf.size() <= max_points || max_points < 2)
        return cdf;
    std::vector<CdfPoint> out;
    out.reserve(max_points);
    const double step = static_cast<double>(cdf.size() - 1) /
        static_cast<double>(max_points - 1);
    for (std::size_t k = 0; k < max_points; ++k) {
        const std::size_t idx = static_cast<std::size_t>(
            std::llround(step * static_cast<double>(k)));
        out.push_back(cdf[std::min(idx, cdf.size() - 1)]);
    }
    return out;
}

double
percentileOfSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo_idx = static_cast<std::size_t>(pos);
    const std::size_t hi_idx = std::min(lo_idx + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo_idx);
    return sorted[lo_idx] * (1.0 - frac) + sorted[hi_idx] * frac;
}

void
StatSet::set(const std::string &name, double value)
{
    values[name] = value;
}

void
StatSet::add(const std::string &name, double delta)
{
    values[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values.find(name);
    zombie_assert(it != values.end(), "unknown stat: ", name);
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
StatSet::format() const
{
    std::size_t width = 0;
    for (const auto &[name, value] : values)
        width = std::max(width, name.size());
    std::ostringstream oss;
    for (const auto &[name, value] : values) {
        oss << name;
        for (std::size_t i = name.size(); i < width + 2; ++i)
            oss << ' ';
        oss << value << '\n';
    }
    return oss.str();
}

} // namespace zombie
