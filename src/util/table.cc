#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace zombie
{

TextTable::TextTable(std::vector<std::string> header)
    : columns(std::move(header))
{
    zombie_assert(!columns.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    zombie_assert(row.size() == columns.size(),
                  "row arity ", row.size(), " != header arity ",
                  columns.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << '%';
    return oss.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_line = [&](const std::vector<std::string> &cells) {
        std::ostringstream oss;
        oss << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << ' ' << cells[c];
            for (std::size_t i = cells[c].size(); i < widths[c]; ++i)
                oss << ' ';
            oss << " |";
        }
        oss << '\n';
        return oss.str();
    };

    std::ostringstream oss;
    std::string separator = "+";
    for (std::size_t c = 0; c < columns.size(); ++c)
        separator += std::string(widths[c] + 2, '-') + "+";
    separator += '\n';

    oss << separator << render_line(columns) << separator;
    for (const auto &row : rows)
        oss << render_line(row);
    oss << separator;
    return oss.str();
}

std::string
sectionBanner(const std::string &title)
{
    std::string bar(std::max<std::size_t>(title.size() + 4, 40), '=');
    return bar + "\n  " + title + "\n" + bar + "\n";
}

} // namespace zombie
