#include "util/zipf.hh"

#include <cmath>

#include "util/logging.hh"

namespace zombie
{

namespace
{

/**
 * Integral of the unnormalized density x^-s, shifted so hIntegral(1)=0.
 * For s == 1 the closed form degenerates to log(x).
 */
double
hIntegral(double x, double s)
{
    const double log_x = std::log(x);
    if (std::abs(s - 1.0) < 1e-12)
        return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

double
hIntegralInverse(double x, double s)
{
    if (std::abs(s - 1.0) < 1e-12)
        return std::exp(x);
    double t = x * (1.0 - s);
    // Clamp to the domain of log1p to absorb rounding at the boundary.
    if (t < -1.0)
        t = -1.0;
    return std::exp(std::log1p(t) / (1.0 - s));
}

} // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t num_items, double exponent)
    : items(num_items), s(exponent)
{
    zombie_assert(num_items >= 1, "Zipf needs a non-empty universe");
    zombie_assert(exponent >= 0.0, "Zipf exponent must be non-negative");
    hImaxPlus1 = hIntegral(static_cast<double>(items) + 0.5, s);
    hX0 = hIntegral(1.5, s) - 1.0;
    scale = 2.0 -
        hIntegralInverse(hIntegral(2.5, s) - h(2.0), s);
}

double
ZipfDistribution::h(double x) const
{
    return std::exp(-s * std::log(x));
}

double
ZipfDistribution::hInverse(double x) const
{
    return hIntegralInverse(x, s);
}

std::uint64_t
ZipfDistribution::sample(Xoshiro256 &rng) const
{
    if (items == 1)
        return 0;
    if (s == 0.0)
        return rng.nextBounded(items);

    // Rejection-inversion after Hormann & Derflinger (1996).
    while (true) {
        const double u =
            hImaxPlus1 + rng.nextDouble() * (hX0 - hImaxPlus1);
        const double x = hInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > items)
            k = items;
        const double kd = static_cast<double>(k);
        if (kd - x <= scale ||
            u >= hIntegral(kd + 0.5, s) - h(kd)) {
            return k - 1; // external ranks are zero-based
        }
    }
}

double
ZipfDistribution::topMassFraction(std::uint64_t top_ranks) const
{
    if (top_ranks >= items)
        return 1.0;
    double top = 0.0;
    double total = 0.0;
    for (std::uint64_t k = 1; k <= items; ++k) {
        const double p = std::exp(-s * std::log(static_cast<double>(k)));
        total += p;
        if (k <= top_ranks)
            top += p;
    }
    return top / total;
}

} // namespace zombie
