#include "util/zipf.hh"

#include <cmath>

#include "util/logging.hh"

namespace zombie
{

namespace
{

/**
 * Integral of the unnormalized density x^-s, shifted so hIntegral(1)=0.
 * For s == 1 the closed form degenerates to log(x).
 */
double
hIntegral(double x, double s)
{
    const double log_x = std::log(x);
    if (std::abs(s - 1.0) < 1e-12)
        return log_x;
    return std::expm1((1.0 - s) * log_x) / (1.0 - s);
}

double
hIntegralInverse(double x, double s)
{
    if (std::abs(s - 1.0) < 1e-12)
        return std::exp(x);
    double t = x * (1.0 - s);
    // Clamp to the domain of log1p to absorb rounding at the boundary.
    if (t < -1.0)
        t = -1.0;
    return std::exp(std::log1p(t) / (1.0 - s));
}

} // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t num_items,
                                   double exponent, ZipfMethod method)
    : items(num_items), s(exponent), kind(method)
{
    zombie_assert(num_items >= 1, "Zipf needs a non-empty universe");
    zombie_assert(exponent >= 0.0, "Zipf exponent must be non-negative");
    hImaxPlus1 = hIntegral(static_cast<double>(items) + 0.5, s);
    hX0 = hIntegral(1.5, s) - 1.0;
    scale = 2.0 -
        hIntegralInverse(hIntegral(2.5, s) - h(2.0), s);
    if (kind == ZipfMethod::Alias)
        buildAliasTables();
}

void
ZipfDistribution::buildAliasTables()
{
    zombie_assert(items <= 0xffffffffu,
                  "alias tables index ranks with 32 bits");
    const auto n = static_cast<std::size_t>(items);

    // Walker/Vose construction: scale each rank's probability by n,
    // then pair every under-full (< 1) column with an over-full
    // donor. Stacks are filled in ascending rank order, so the
    // resulting tables — and thus every draw — are a deterministic
    // function of (n, s) alone.
    double total = 0.0;
    std::vector<double> scaled(n);
    for (std::size_t k = 0; k < n; ++k) {
        scaled[k] = std::exp(-s * std::log(static_cast<double>(k + 1)));
        total += scaled[k];
    }
    const double norm = static_cast<double>(n) / total;
    for (std::size_t k = 0; k < n; ++k)
        scaled[k] *= norm;

    aliasProb.assign(n, 1.0);
    aliasOf.resize(n);
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        aliasOf[k] = static_cast<std::uint32_t>(k);
        if (scaled[k] < 1.0)
            small.push_back(static_cast<std::uint32_t>(k));
        else
            large.push_back(static_cast<std::uint32_t>(k));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t under = small.back();
        const std::uint32_t over = large.back();
        small.pop_back();
        aliasProb[under] = scaled[under];
        aliasOf[under] = over;
        scaled[over] -= 1.0 - scaled[under];
        if (scaled[over] < 1.0) {
            large.pop_back();
            small.push_back(over);
        }
    }
    // Residual columns are full up to rounding; they keep prob 1.
}

double
ZipfDistribution::h(double x) const
{
    return std::exp(-s * std::log(x));
}

double
ZipfDistribution::hInverse(double x) const
{
    return hIntegralInverse(x, s);
}

std::uint64_t
ZipfDistribution::sample(Xoshiro256 &rng) const
{
    if (items == 1)
        return 0;

    if (kind == ZipfMethod::Alias) {
        // Exactly two draws: pick a column, then stay or follow the
        // alias. The residual full columns have prob 1.0, so the
        // comparison below always keeps them.
        const std::uint64_t col = rng.nextBounded(items);
        return rng.nextDouble() < aliasProb[col] ? col : aliasOf[col];
    }

    if (s == 0.0)
        return rng.nextBounded(items);

    // Rejection-inversion after Hormann & Derflinger (1996).
    while (true) {
        const double u =
            hImaxPlus1 + rng.nextDouble() * (hX0 - hImaxPlus1);
        const double x = hInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > items)
            k = items;
        const double kd = static_cast<double>(k);
        if (kd - x <= scale ||
            u >= hIntegral(kd + 0.5, s) - h(kd)) {
            return k - 1; // external ranks are zero-based
        }
    }
}

double
ZipfDistribution::topMassFraction(std::uint64_t top_ranks) const
{
    if (top_ranks >= items)
        return 1.0;
    double top = 0.0;
    double total = 0.0;
    for (std::uint64_t k = 1; k <= items; ++k) {
        const double p = std::exp(-s * std::log(static_cast<double>(k)));
        total += p;
        if (k <= top_ranks)
            top += p;
    }
    return top / total;
}

} // namespace zombie
