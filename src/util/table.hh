/**
 * @file
 * Plain-text table rendering for bench output.
 *
 * Every figure-reproduction bench prints the series the paper plots as
 * an aligned ASCII table so the rows can be diffed against
 * EXPERIMENTS.md or piped into a plotting script.
 */

#ifndef ZOMBIE_UTIL_TABLE_HH
#define ZOMBIE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace zombie
{

/** Column-aligned ASCII table with a header row and separators. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string num(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    /** Render the full table including borders. */
    std::string render() const;

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

/** Print a titled section banner around bench output. */
std::string sectionBanner(const std::string &title);

} // namespace zombie

#endif // ZOMBIE_UTIL_TABLE_HH
