/**
 * @file
 * Minimal command-line argument parser for benches and examples.
 *
 * Supports --flag, --key value and --key=value forms plus automatic
 * --help generation. Unknown options are fatal (user error) so typos
 * do not silently run the wrong experiment.
 */

#ifndef ZOMBIE_UTIL_ARGS_HH
#define ZOMBIE_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zombie
{

/** Declarative CLI option set with typed accessors. */
class ArgParser
{
  public:
    explicit ArgParser(std::string program_description);

    /** Register an option with a default value (all values as text). */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Exits with usage text on --help; fatal on unknown
     * options or missing values.
     */
    void parse(int argc, char **argv);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    std::uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    std::string usage() const;

    /** Basename of argv[0] (available after parse()). */
    std::string programName() const;

  private:
    struct Option
    {
        std::string def;
        std::string help;
        bool is_flag;
    };

    const Option &lookup(const std::string &name) const;

    std::string description;
    std::string program = "prog";
    std::vector<std::string> order;
    std::map<std::string, Option> options;
    std::map<std::string, std::string> parsed;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_ARGS_HH
