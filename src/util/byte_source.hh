/**
 * @file
 * Chunked byte streams with transparent decompression.
 *
 * ByteSource is the one pull interface under every file-backed trace
 * reader: read() fills a caller buffer and returns the byte count, 0
 * at end of stream. openByteSource() sniffs the file's magic bytes
 * and, when they name a gzip or zstd container, layers the matching
 * streaming decoder over the raw file source — so a `.csv.gz` trace
 * replays with no unpack step and no temp file. Decoders found at
 * configure time are compiled in (ZOMBIE_HAVE_ZLIB / ZOMBIE_HAVE_
 * ZSTD); a compressed input on a build without the decoder is a
 * zombie_fatal naming the rebuild fix, never silent garbage.
 *
 * Sources are strictly streaming and read-once: no rewind, bounded
 * memory (one compressed-input block per decoder). Decompression is
 * deterministic, so layered sources keep the repo's byte-identical
 * replay contract.
 */

#ifndef ZOMBIE_UTIL_BYTE_SOURCE_HH
#define ZOMBIE_UTIL_BYTE_SOURCE_HH

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace zombie
{

/** Pull interface over a forward-only byte stream. */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /**
     * Fill up to @p capacity bytes of @p dst.
     * @return bytes produced; 0 only at end of stream. Short reads
     * before the end are allowed. Fatal on I/O or decode errors.
     */
    virtual std::size_t read(char *dst, std::size_t capacity) = 0;

    /** Origin label (path) for error messages. */
    virtual const std::string &describe() const = 0;
};

/** Plain file bytes (no decompression). */
class FileByteSource : public ByteSource
{
  public:
    explicit FileByteSource(const std::string &path);
    ~FileByteSource() override;

    std::size_t read(char *dst, std::size_t capacity) override;
    const std::string &describe() const override { return path_; }

  private:
    std::FILE *file;
    std::string path_;
};

/** An in-memory byte buffer (tests, spools). */
class MemoryByteSource : public ByteSource
{
  public:
    explicit MemoryByteSource(std::string bytes,
                              std::string label = "<memory>")
        : data(std::move(bytes)), label_(std::move(label))
    {
    }

    std::size_t read(char *dst, std::size_t capacity) override;
    const std::string &describe() const override { return label_; }

  private:
    std::string data;
    std::string label_;
    std::size_t pos = 0;
};

/** Compression containers openByteSource() can sniff. */
enum class Compression
{
    None,
    Gzip,
    Zstd,
};

/** Decoder availability for @p kind in this build. */
bool compressionSupported(Compression kind);

/**
 * Sniff @p head (the first bytes of a stream) for a compression
 * container's magic. Needs at most 4 bytes; shorter prefixes of a
 * real container simply read as Compression::None.
 */
Compression sniffCompression(const unsigned char *head,
                             std::size_t size);

/**
 * Layer the streaming decoder for @p kind over @p inner (which must
 * be positioned at the container's first byte, magic included).
 * Fatal when this build lacks the decoder.
 */
std::unique_ptr<ByteSource>
makeDecompressor(Compression kind, std::unique_ptr<ByteSource> inner);

/**
 * Open @p path, sniff its magic bytes, and return either the raw
 * file source or the matching decoder layered over it. Fatal when
 * the file cannot be opened or names a decoder this build lacks.
 */
std::unique_ptr<ByteSource> openByteSource(const std::string &path);

/**
 * Replay @p head before delegating to @p inner — how callers that
 * consumed a prefix to sniff a format (trace/io.hh's magic check)
 * hand the bytes back without seeking.
 */
std::unique_ptr<ByteSource>
prependBytes(std::string head, std::unique_ptr<ByteSource> inner);

} // namespace zombie

#endif // ZOMBIE_UTIL_BYTE_SOURCE_HH
