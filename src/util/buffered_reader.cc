#include "util/buffered_reader.hh"

#include <cstring>

#include "util/logging.hh"

namespace zombie
{

BufferedLineReader::BufferedLineReader(
    std::unique_ptr<ByteSource> source, std::size_t block_size)
    : src(std::move(source)),
      buf(block_size > 0 ? block_size : kDefaultBlock)
{
}

bool
BufferedLineReader::refill()
{
    // Keep the partial line's bytes: slide them to the front, then
    // fill the space behind them. A line longer than the buffer
    // grows it (doubling), so pathological inputs still parse.
    if (pos > 0) {
        std::memmove(buf.data(), buf.data() + pos, limit - pos);
        limit -= pos;
        pos = 0;
    } else if (limit == buf.size()) {
        buf.resize(buf.size() * 2);
    }
    const std::size_t n =
        src->read(buf.data() + limit, buf.size() - limit);
    limit += n;
    if (n == 0)
        eof = true;
    return n > 0;
}

bool
BufferedLineReader::nextLine(std::string_view &line)
{
    for (;;) {
        const char *base = buf.data() + pos;
        const std::size_t avail = limit - pos;
        const char *nl = static_cast<const char *>(
            std::memchr(base, '\n', avail));
        if (nl) {
            std::size_t len = static_cast<std::size_t>(nl - base);
            if (len > 0 && base[len - 1] == '\r')
                --len;
            line = std::string_view(base, len);
            pos += static_cast<std::size_t>(nl - base) + 1;
            ++lineNo;
            return true;
        }
        if (eof) {
            if (avail == 0)
                return false;
            // Final line without a terminator.
            std::size_t len = avail;
            if (base[len - 1] == '\r')
                --len;
            line = std::string_view(base, len);
            pos = limit;
            ++lineNo;
            return true;
        }
        refill();
    }
}

} // namespace zombie
