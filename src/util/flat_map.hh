/**
 * @file
 * Open-addressing hash containers for the metadata hot path.
 *
 * Every simulated write performs several fingerprint/PPN lookups (DVP
 * index, dedup store, FTL owner lists). Node-based std::unordered_map
 * pays one cache miss per bucket pointer and one per node; FlatMap
 * keeps the payload in one contiguous slot array probed linearly, with
 * robin-hood displacement bounding probe lengths and backward-shift
 * deletion keeping the table tombstone-free at any erase rate.
 *
 * Determinism contract: the layout is a pure function of the operation
 * sequence — capacity is a power of two grown on fixed load
 * thresholds, probing is linear from `hash & mask`, displacement ties
 * preserve insertion order, and rehash reinserts slots in index
 * order. No pointer values or allocator state leak into behaviour, so
 * seeded runs are byte-identical across platforms. Iteration order is
 * nevertheless an implementation detail (it changes when the table
 * grows): simulator output must never depend on it.
 */

#ifndef ZOMBIE_UTIL_FLAT_MAP_HH
#define ZOMBIE_UTIL_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace zombie
{

/**
 * Default key hash: SplitMix64 finalizer over the integral value.
 * std::hash is the identity on libstdc++ integers, which is unusable
 * with power-of-two masking; this mixer gives uniform low bits.
 */
template <typename Key>
struct FlatHash
{
    std::size_t
    operator()(const Key &key) const
    {
        std::uint64_t z = static_cast<std::uint64_t>(key);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(z ^ (z >> 31));
    }
};

/** Robin-hood open-addressing hash map (see file comment). */
template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, T>;

    /** Forward iterator over occupied slots. */
    template <typename MapPtr, typename Value>
    class Iter
    {
      public:
        Iter(MapPtr map, std::size_t pos) : map(map), pos(pos) {}

        Value &operator*() const { return map->slots[pos]; }
        Value *operator->() const { return &map->slots[pos]; }

        Iter &
        operator++()
        {
            ++pos;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            return pos == other.pos;
        }

        bool
        operator!=(const Iter &other) const
        {
            return pos != other.pos;
        }

      private:
        friend class FlatMap;

        void
        skipEmpty()
        {
            while (pos < map->dists.size() && map->dists[pos] == 0)
                ++pos;
        }

        MapPtr map;
        std::size_t pos;
    };

    using iterator = Iter<FlatMap *, value_type>;
    using const_iterator = Iter<const FlatMap *, const value_type>;

    FlatMap() = default;

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipEmpty();
        return it;
    }

    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipEmpty();
        return it;
    }

    iterator end() { return iterator(this, dists.size()); }
    const_iterator end() const
    {
        return const_iterator(this, dists.size());
    }

    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }

    /** Slots the table can hold before the next growth rehash. */
    std::size_t
    capacityBeforeGrowth() const
    {
        return dists.size() - dists.size() / 8;
    }

    /** Pre-size so @p n entries insert without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        while (cap - cap / 8 < n)
            cap <<= 1;
        if (cap > dists.size())
            rehash(cap);
    }

    void
    clear()
    {
        slots.clear();
        slots.resize(dists.size());
        dists.assign(dists.size(), 0);
        used = 0;
    }

    iterator
    find(const Key &key)
    {
        return iterator(this, findPos(key));
    }

    const_iterator
    find(const Key &key) const
    {
        return const_iterator(this, findPos(key));
    }

    bool
    contains(const Key &key) const
    {
        return findPos(key) != dists.size();
    }

    std::size_t count(const Key &key) const { return contains(key); }

    T &
    at(const Key &key)
    {
        const std::size_t pos = findPos(key);
        zombie_assert(pos != dists.size(), "FlatMap::at missing key");
        return slots[pos].second;
    }

    const T &
    at(const Key &key) const
    {
        const std::size_t pos = findPos(key);
        zombie_assert(pos != dists.size(), "FlatMap::at missing key");
        return slots[pos].second;
    }

    /** Find-or-default-insert. The reference is invalidated by any
     * later insert or erase (slots shift), unlike node-based maps. */
    T &
    operator[](const Key &key)
    {
        return insertSlot(key)->second;
    }

    /** Insert if absent. @return {iterator, inserted}. */
    std::pair<iterator, bool>
    insert(const value_type &kv)
    {
        const std::size_t before = used;
        value_type *slot = insertSlot(kv.first);
        const bool inserted = used != before;
        if (inserted)
            slot->second = kv.second;
        return {iterator(this, static_cast<std::size_t>(slot -
                                                        slots.data())),
                inserted};
    }

    /** Erase by key. @return number of entries removed (0 or 1). */
    std::size_t
    erase(const Key &key)
    {
        const std::size_t pos = findPos(key);
        if (pos == dists.size())
            return 0;
        erasePos(pos);
        return 1;
    }

    /** Erase by iterator (must dereference an occupied slot). */
    void
    erase(iterator it)
    {
        zombie_assert(it.pos < dists.size() && dists[it.pos] != 0,
                      "FlatMap::erase of invalid iterator");
        erasePos(it.pos);
    }

  private:
    friend iterator;
    friend const_iterator;

    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::uint16_t kMaxDist = 0xffff;

    std::size_t
    findPos(const Key &key) const
    {
        if (used == 0)
            return dists.size();
        const std::size_t mask = dists.size() - 1;
        std::size_t pos = hasher(key) & mask;
        std::uint16_t dist = 1;
        while (true) {
            const std::uint16_t have = dists[pos];
            // Robin-hood invariant: a resident with a shorter probe
            // distance proves the key is absent.
            if (have < dist)
                return dists.size();
            if (have == dist && slots[pos].first == key)
                return pos;
            pos = (pos + 1) & mask;
            ++dist;
        }
    }

    /** Find @p key or claim a slot for it (value untouched on find,
     * default on insert). @return pointer to the slot. */
    value_type *
    insertSlot(const Key &key)
    {
        if (dists.empty() || (used + 1) * 8 > dists.size() * 7)
            rehash(dists.empty() ? kMinCapacity : dists.size() * 2);

        const std::size_t mask = dists.size() - 1;
        std::size_t pos = hasher(key) & mask;
        std::uint16_t dist = 1;
        value_type carry{key, T{}};
        value_type *result = nullptr;
        while (true) {
            if (dists[pos] == 0) {
                slots[pos] = std::move(carry);
                dists[pos] = dist;
                ++used;
                return result ? result : &slots[pos];
            }
            if (!result && dists[pos] == dist &&
                slots[pos].first == carry.first) {
                return &slots[pos];
            }
            if (dists[pos] < dist) {
                // Rob the richer resident: park the carried entry
                // here and continue inserting the displaced one.
                std::swap(carry, slots[pos]);
                std::swap(dist, dists[pos]);
                if (!result)
                    result = &slots[pos];
            }
            pos = (pos + 1) & mask;
            ++dist;
            if (dist == kMaxDist)
                zombie_panic("FlatMap probe length overflow");
        }
    }

    void
    erasePos(std::size_t pos)
    {
        const std::size_t mask = dists.size() - 1;
        // Backward-shift deletion: pull every displaced successor one
        // slot toward its home bucket; no tombstones, so the table
        // never degrades no matter how much churn it sees.
        std::size_t next = (pos + 1) & mask;
        while (dists[next] > 1) {
            slots[pos] = std::move(slots[next]);
            dists[pos] = static_cast<std::uint16_t>(dists[next] - 1);
            pos = next;
            next = (next + 1) & mask;
        }
        slots[pos] = value_type{};
        dists[pos] = 0;
        --used;
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<value_type> old_slots = std::move(slots);
        std::vector<std::uint16_t> old_dists = std::move(dists);
        slots.clear();
        slots.resize(new_cap);
        dists.assign(new_cap, 0);
        used = 0;
        for (std::size_t i = 0; i < old_dists.size(); ++i) {
            if (old_dists[i] == 0)
                continue;
            value_type *slot = insertSlot(old_slots[i].first);
            slot->second = std::move(old_slots[i].second);
        }
    }

    std::vector<value_type> slots;
    std::vector<std::uint16_t> dists; //!< probe distance + 1; 0 = empty
    std::size_t used = 0;
    Hash hasher;
};

/** Open-addressing hash set over FlatMap's probing machinery. */
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet
{
  public:
    /** @return true if @p key was inserted (false: already present). */
    bool
    insert(const Key &key)
    {
        const std::size_t before = map.size();
        map[key];
        return map.size() != before;
    }

    std::size_t erase(const Key &key) { return map.erase(key); }
    bool contains(const Key &key) const { return map.contains(key); }
    std::size_t count(const Key &key) const { return map.count(key); }
    std::size_t size() const { return map.size(); }
    bool empty() const { return map.empty(); }
    void reserve(std::size_t n) { map.reserve(n); }
    void clear() { map.clear(); }

  private:
    struct Empty
    {
    };

    FlatMap<Key, Empty, Hash> map;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_FLAT_MAP_HH
