/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel host-side work.
 *
 * The pool exists for the *experiment harness*, not the simulator:
 * every (workload x system) cell of the paper's evaluation grid is an
 * independent, seed-deterministic simulation, so cells can run on
 * worker threads while each simulation itself stays single-threaded
 * and wall-clock free. Nothing in here may leak into simulated time
 * (see DESIGN.md section 7.9).
 *
 * submit() returns a std::future; exceptions thrown by a task are
 * captured and rethrown from future::get(). parallelMap() is the
 * harness primitive: run fn(0..n-1) on a temporary pool and return
 * the results in index order, so callers' output is byte-identical
 * for any worker count.
 */

#ifndef ZOMBIE_UTIL_THREAD_POOL_HH
#define ZOMBIE_UTIL_THREAD_POOL_HH

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace zombie
{

/** Fixed worker count, FIFO task queue, futures-based results. */
class ThreadPool
{
  public:
    /** @param workers number of worker threads (>= 1). */
    explicit ThreadPool(unsigned workers);

    /** Joins the workers after draining the queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /**
     * Queue @p fn for execution on a worker. The returned future
     * yields fn's result, or rethrows what fn threw.
     */
    template <typename Fn, typename R = std::invoke_result_t<Fn &>>
    std::future<R>
    submit(Fn fn)
    {
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex);
            tasks.push_back([task] { (*task)(); });
        }
        available.notify_one();
        return result;
    }

    /**
     * Translate a --jobs style request into a worker count:
     * 0 means one per hardware thread, anything else is taken
     * literally (minimum 1).
     */
    static unsigned resolveJobs(std::uint64_t requested);

  private:
    void workerLoop();

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable available;
    bool stopping = false;
};

/**
 * Run fn(i) for every i in [0, n) and return the results in index
 * order. With jobs <= 1 the calls run inline (no threads, exactly
 * the historical serial behaviour); otherwise min(jobs, n) workers
 * execute them concurrently. The first exception any call threw is
 * rethrown after the pool drains. @p fn must be safe to invoke from
 * multiple threads when jobs > 1.
 */
template <typename Fn>
auto
parallelMap(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    std::vector<R> results;
    results.reserve(n);
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results.push_back(fn(i));
        return results;
    }

    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, n)));
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { return fn(i); }));
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

} // namespace zombie

#endif // ZOMBIE_UTIL_THREAD_POOL_HH
