#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace zombie
{

ThreadPool::ThreadPool(unsigned workers)
{
    zombie_assert(workers >= 1, "thread pool needs at least one "
                                "worker");
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock, [this] {
                return stopping || !tasks.empty();
            });
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        task();
    }
}

unsigned
ThreadPool::resolveJobs(std::uint64_t requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }
    return static_cast<unsigned>(
        std::min<std::uint64_t>(requested, 1u << 10));
}

} // namespace zombie
