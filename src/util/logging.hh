/**
 * @file
 * Status-message and error-handling helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in zombie itself);
 *            aborts so a core dump / debugger can inspect the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, malformed trace); exits with code 1.
 * warn()   - something works but not as well as it should.
 * inform() - normal operating message.
 */

#ifndef ZOMBIE_UTIL_LOGGING_HH
#define ZOMBIE_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace zombie
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Global log verbosity; defaults to Inform. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace zombie

/** Abort on an internal bug; never use for user errors. */
#define zombie_panic(...) \
    ::zombie::detail::panicImpl(__FILE__, __LINE__, \
                                ::zombie::detail::concat(__VA_ARGS__))

/** Exit on a user error (bad config, bad trace). */
#define zombie_fatal(...) \
    ::zombie::detail::fatalImpl(__FILE__, __LINE__, \
                                ::zombie::detail::concat(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define zombie_warn(...) \
    ::zombie::detail::warnImpl(::zombie::detail::concat(__VA_ARGS__))

/** Normal status output. */
#define zombie_inform(...) \
    ::zombie::detail::informImpl(::zombie::detail::concat(__VA_ARGS__))

/** Verbose diagnostic output, only shown at LogLevel::Debug. */
#define zombie_debug(...) \
    ::zombie::detail::debugImpl(::zombie::detail::concat(__VA_ARGS__))

/**
 * Invariant check that survives NDEBUG builds. Use for conditions whose
 * violation means the simulator state is corrupt.
 */
#define zombie_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::zombie::detail::panicImpl(__FILE__, __LINE__, \
                ::zombie::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // ZOMBIE_UTIL_LOGGING_HH
