/**
 * @file
 * Zipf-distributed sampling over a finite universe of ranks.
 *
 * The paper's workloads show "high skewness in value locality, i.e., a
 * small fraction of values account for a large number of accesses"
 * (around 20% of values account for ~80% of writes, Fig 3a). The trace
 * generator models that skew with a Zipf distribution whose exponent is
 * calibrated per workload.
 */

#ifndef ZOMBIE_UTIL_ZIPF_HH
#define ZOMBIE_UTIL_ZIPF_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace zombie
{

/** Sampling algorithm backing a ZipfDistribution. */
enum class ZipfMethod
{
    /**
     * Rejection-Inversion (Hormann & Derflinger, 1996): O(1)
     * expected per draw, no tables. The default; all pinned trace
     * goldens were generated with this method's draw sequence.
     */
    RejectionInversion,

    /**
     * Walker/Vose alias tables: exactly two RNG draws per sample
     * (O(1) worst-case), built once in O(n) with 16 bytes per rank.
     * Consumes the RNG differently, so switching methods changes
     * the generated trace for a given seed.
     */
    Alias,
};

/**
 * Zipf(s, n) sampler. O(1) per sample independent of n, exact for
 * s >= 0. Rank 0 is the most popular item.
 */
class ZipfDistribution
{
  public:
    /**
     * @param num_items Size of the universe (must be >= 1).
     * @param exponent Skew parameter s; 0 degenerates to uniform.
     * @param method Sampling algorithm (see ZipfMethod).
     */
    ZipfDistribution(std::uint64_t num_items, double exponent,
                     ZipfMethod method = ZipfMethod::RejectionInversion);

    /** Draw a rank in [0, numItems). */
    std::uint64_t sample(Xoshiro256 &rng) const;

    std::uint64_t numItems() const { return items; }
    double exponent() const { return s; }
    ZipfMethod method() const { return kind; }

    /**
     * Fraction of probability mass held by the top `top_ranks` items.
     * Used by tests to check the 20/80 skew property.
     */
    double topMassFraction(std::uint64_t top_ranks) const;

  private:
    double h(double x) const;
    double hInverse(double x) const;
    void buildAliasTables();

    std::uint64_t items;
    double s;
    ZipfMethod kind;
    double hImaxPlus1;
    double hX0;
    double scale;

    /** Alias tables (built only for ZipfMethod::Alias). */
    std::vector<double> aliasProb;
    std::vector<std::uint32_t> aliasOf;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_ZIPF_HH
