/**
 * @file
 * Slab-backed intrusive doubly-linked lists for LRU/MQ chains.
 *
 * The DVP variants keep their entries on recency lists. With
 * std::list every entry is a separate heap node, so walking or
 * splicing chases pointers across the heap; here all entries live in
 * one Slab and the links are dense uint32 indices into it, so a chain
 * costs 8 bytes per entry and entry reuse keeps any heap-allocated
 * members' capacity (e.g. a PPN vector) across generations.
 *
 * One LruSlab can back many chains (the MQ policy keeps 8 queues over
 * a single entry pool); each LruChain is just {head, tail, count} and
 * the caller passes the chain a node belongs to. Index assignment is
 * LIFO over the slab free list, so the acquire/release sequence alone
 * determines layout — no pointer values leak into behaviour and
 * seeded runs stay byte-identical.
 */

#ifndef ZOMBIE_UTIL_INTRUSIVE_LRU_HH
#define ZOMBIE_UTIL_INTRUSIVE_LRU_HH

#include <cstdint>

#include "util/logging.hh"
#include "util/slab.hh"

namespace zombie
{

/** Null link/index sentinel for intrusive chains. */
constexpr std::uint32_t kLruNil = 0xffffffffu;

/** One doubly-linked list threaded through an LruSlab. */
struct LruChain
{
    std::uint32_t head = kLruNil; //!< eviction end (least recent)
    std::uint32_t tail = kLruNil; //!< insertion end (most recent)
    std::uint64_t count = 0;

    bool empty() const { return head == kLruNil; }
};

/** Entry pool with intrusive prev/next links (see file comment). */
template <typename T>
class LruSlab
{
  public:
    /**
     * Pop a free slot with fresh (nil) links. The value member is NOT
     * reset — callers clear it field by field so heap-allocated
     * members keep their capacity across reuse.
     */
    std::uint32_t
    acquire()
    {
        const std::uint32_t idx = nodes.acquire();
        Node &node = nodes[idx];
        node.prev = kLruNil;
        node.next = kLruNil;
        return idx;
    }

    /** Return an unlinked slot to the free list. */
    void
    release(std::uint32_t idx)
    {
        nodes.release(idx);
    }

    /** Pre-size the pool so steady-state churn never allocates. */
    void
    reserve(std::size_t n)
    {
        nodes.reserve(n);
    }

    T &operator[](std::uint32_t idx) { return nodes[idx].value; }
    const T &
    operator[](std::uint32_t idx) const
    {
        return nodes[idx].value;
    }

    /** Slots ever allocated (live + free), i.e. the pool high-water. */
    std::size_t size() const { return nodes.size(); }

    std::uint32_t nextOf(std::uint32_t idx) const
    {
        return nodes[idx].next;
    }

    std::uint32_t prevOf(std::uint32_t idx) const
    {
        return nodes[idx].prev;
    }

    /** Append @p idx at @p chain's tail (most-recent end). */
    void
    pushBack(LruChain &chain, std::uint32_t idx)
    {
        Node &node = nodes[idx];
        node.prev = chain.tail;
        node.next = kLruNil;
        if (chain.tail != kLruNil)
            nodes[chain.tail].next = idx;
        else
            chain.head = idx;
        chain.tail = idx;
        ++chain.count;
    }

    /** Detach @p idx from @p chain (it must be linked there). */
    void
    unlink(LruChain &chain, std::uint32_t idx)
    {
        zombie_assert(chain.count > 0, "unlink from empty LRU chain");
        Node &node = nodes[idx];
        if (node.prev != kLruNil)
            nodes[node.prev].next = node.next;
        else
            chain.head = node.next;
        if (node.next != kLruNil)
            nodes[node.next].prev = node.prev;
        else
            chain.tail = node.prev;
        node.prev = kLruNil;
        node.next = kLruNil;
        --chain.count;
    }

    /** Refresh recency: move @p idx to @p chain's tail. */
    void
    moveToBack(LruChain &chain, std::uint32_t idx)
    {
        if (chain.tail == idx)
            return;
        unlink(chain, idx);
        pushBack(chain, idx);
    }

  private:
    struct Node
    {
        T value{};
        std::uint32_t prev = kLruNil;
        std::uint32_t next = kLruNil;
    };

    Slab<Node> nodes;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_INTRUSIVE_LRU_HH
