/**
 * @file
 * Zero-copy chunked line reader.
 *
 * std::getline copies every line into a std::string through the
 * istream overhead; on a 10-100M-line trace that puts megabytes of
 * per-line copying and virtual sentry machinery on the replay path.
 * BufferedLineReader instead pulls ~256KB blocks from a ByteSource
 * and hands out string_view lines pointing straight into the block —
 * no per-line allocation or copy, one memmove of the partial tail
 * line per block boundary.
 *
 * Line semantics: lines are terminated by '\n'; a trailing '\r' is
 * stripped, so CRLF traces (real MSR-Cambridge CSVs) parse exactly
 * like LF ones. A final line without a terminator is still produced.
 * Returned views are valid until the next nextLine() call.
 */

#ifndef ZOMBIE_UTIL_BUFFERED_READER_HH
#define ZOMBIE_UTIL_BUFFERED_READER_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/byte_source.hh"

namespace zombie
{

/** string_view lines over a chunk-buffered ByteSource. */
class BufferedLineReader
{
  public:
    static constexpr std::size_t kDefaultBlock = 256 * 1024;

    explicit BufferedLineReader(std::unique_ptr<ByteSource> source,
                                std::size_t block_size = kDefaultBlock);

    /**
     * Produce the next line (terminator stripped) into @p line.
     * @return false at end of stream. The view aliases the internal
     * buffer: consume it before the next call.
     */
    bool nextLine(std::string_view &line);

    /** 1-based number of the line nextLine() last produced. */
    std::uint64_t lineNumber() const { return lineNo; }

    /** Origin label (path) for error messages. */
    const std::string &describe() const { return src->describe(); }

  private:
    /** Slide the unconsumed tail to the front and refill behind it.
     *  @return true when new bytes arrived. */
    bool refill();

    std::unique_ptr<ByteSource> src;
    std::vector<char> buf;
    std::size_t pos = 0;   //!< first unconsumed byte
    std::size_t limit = 0; //!< one past the last valid byte
    bool eof = false;
    std::uint64_t lineNo = 0;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_BUFFERED_READER_HH
