#include "util/args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace zombie
{

ArgParser::ArgParser(std::string program_description)
    : description(std::move(program_description))
{
    addFlag("help", "show this help text and exit");
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    zombie_assert(!options.count(name), "duplicate option --", name);
    options[name] = Option{def, help, false};
    order.push_back(name);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    zombie_assert(!options.count(name), "duplicate flag --", name);
    options[name] = Option{"false", help, true};
    order.push_back(name);
}

void
ArgParser::parse(int argc, char **argv)
{
    if (argc > 0)
        program = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            zombie_fatal("unexpected positional argument: ", arg);
        arg = arg.substr(2);

        std::string value;
        bool has_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }

        auto it = options.find(arg);
        if (it == options.end())
            zombie_fatal("unknown option --", arg, "\n", usage());

        if (it->second.is_flag) {
            if (has_value)
                zombie_fatal("flag --", arg, " does not take a value");
            parsed[arg] = "true";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    zombie_fatal("option --", arg, " needs a value");
                value = argv[++i];
            }
            parsed[arg] = value;
        }
    }

    if (getFlag("help")) {
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
    }
}

const ArgParser::Option &
ArgParser::lookup(const std::string &name) const
{
    auto it = options.find(name);
    zombie_assert(it != options.end(), "option --", name,
                  " was never registered");
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    const Option &opt = lookup(name);
    auto it = parsed.find(name);
    return it != parsed.end() ? it->second : opt.def;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string text = getString(name);
    try {
        return std::stoll(text);
    } catch (...) {
        zombie_fatal("--", name, " expects an integer, got '", text, "'");
    }
}

std::uint64_t
ArgParser::getUint(const std::string &name) const
{
    const std::string text = getString(name);
    try {
        return std::stoull(text);
    } catch (...) {
        zombie_fatal("--", name, " expects an unsigned integer, got '",
                     text, "'");
    }
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string text = getString(name);
    try {
        return std::stod(text);
    } catch (...) {
        zombie_fatal("--", name, " expects a number, got '", text, "'");
    }
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return getString(name) == "true";
}

std::string
ArgParser::programName() const
{
    const auto slash = program.find_last_of('/');
    return slash == std::string::npos ? program
                                      : program.substr(slash + 1);
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << description << "\n\nusage: " << program << " [options]\n";
    for (const auto &name : order) {
        const Option &opt = options.at(name);
        oss << "  --" << name;
        if (!opt.is_flag)
            oss << " <value> (default: " << opt.def << ")";
        oss << "\n      " << opt.help << "\n";
    }
    return oss.str();
}

} // namespace zombie
