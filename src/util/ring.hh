/**
 * @file
 * Flat FIFO ring buffer for hot-path queues.
 *
 * std::deque allocates and frees a chunk every few dozen elements as
 * the window slides, which puts the allocator on the steady-state
 * request path (host queue, per-die outstanding-op windows). This
 * ring keeps one contiguous power-of-two array: push/pop move head
 * and tail indices, capacity only ever grows (to the high-water mark
 * of the queue), and after warm-up no operation allocates.
 *
 * Growth relinearizes the live window into the new array, so logical
 * order (front .. back) is preserved exactly; behaviour is a pure
 * function of the push/pop sequence, keeping seeded runs
 * byte-identical.
 */

#ifndef ZOMBIE_UTIL_RING_HH
#define ZOMBIE_UTIL_RING_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace zombie
{

/** Grow-only FIFO over a contiguous power-of-two buffer. */
template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return buf.size(); }

    /** Ensure room for @p n elements without further allocation. */
    void
    reserve(std::size_t n)
    {
        if (n > buf.size())
            regrow(roundUp(n));
    }

    /** Element @p i positions behind the front (0 = front). */
    const T &
    operator[](std::size_t i) const
    {
        zombie_assert(i < count, "ring index out of range");
        return buf[(head + i) & mask];
    }

    const T &
    front() const
    {
        zombie_assert(count > 0, "front() on an empty ring");
        return buf[head];
    }

    void
    push_back(const T &value)
    {
        if (count == buf.size())
            regrow(buf.empty() ? kMinCapacity : buf.size() * 2);
        buf[(head + count) & mask] = value;
        ++count;
    }

    void
    pop_front()
    {
        zombie_assert(count > 0, "pop_front() on an empty ring");
        head = (head + 1) & mask;
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    static std::size_t
    roundUp(std::size_t n)
    {
        std::size_t p = kMinCapacity;
        while (p < n)
            p *= 2;
        return p;
    }

    void
    regrow(std::size_t new_capacity)
    {
        std::vector<T> next(new_capacity);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = buf[(head + i) & mask];
        buf = std::move(next);
        head = 0;
        mask = buf.size() - 1;
    }

    std::vector<T> buf;
    std::size_t head = 0;
    std::size_t count = 0;
    std::size_t mask = 0;
};

} // namespace zombie

#endif // ZOMBIE_UTIL_RING_HH
