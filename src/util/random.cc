#include "util/random.hh"

#include <cmath>

namespace zombie
{

double
Xoshiro256::logApprox(double u)
{
    return std::log(u);
}

} // namespace zombie
