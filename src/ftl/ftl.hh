/**
 * @file
 * The flash translation layer orchestrator.
 *
 * Ties together the mapping table, block manager, GC policy, the
 * optional dead-value pool (the paper's contribution) and the optional
 * dedup fingerprint store (the paper's Dedup baseline / combination
 * system of section VII).
 *
 * The FTL performs all state transitions synchronously and returns
 * the flash operations the controller must charge time for, split
 * into the user op's own steps and collateral GC steps. This keeps
 * the functional model (who writes what where) testable without the
 * event-driven timing layer on top.
 *
 * Write path (sections IV-C and VII):
 *  1. with dedup: look the content up among live pages first; a hit
 *     just remaps the LPN (many-to-one) with no flash program,
 *  2. an update invalidates the old physical page; the dying page's
 *     hash, PPN and popularity degree enter the dead-value pool,
 *  3. the new content is searched in the dead-value pool; a hit
 *     revives a dead page (Invalid -> Valid) and short-circuits the
 *     program entirely,
 *  4. otherwise a page is programmed and GC may be triggered.
 */

#ifndef ZOMBIE_FTL_FTL_HH
#define ZOMBIE_FTL_FTL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dedup/fingerprint_store.hh"
#include "dvp/dead_value_pool.hh"
#include "ftl/block_manager.hh"
#include "ftl/gc_policy.hh"
#include "ftl/mapping.hh"
#include "ftl/wear.hh"
#include "nand/flash_array.hh"
#include "nand/timing.hh"
#include "telemetry/stat_registry.hh"
#include "util/flat_map.hh"

namespace zombie
{

/** FTL tunables. */
struct FtlConfig
{
    /** Exported logical space in pages. */
    std::uint64_t logicalPages = 0;

    /**
     * Opportunistic threshold: at <= this many free blocks a plane
     * starts collecting, but only victims that pass the quality gate
     * (gcMinInvalid).
     */
    std::uint32_t gcSoftWater = 5;

    /**
     * Mandatory threshold: at <= this many free blocks the quality
     * gate is waived — the best victim is collected regardless, still
     * paced. At <= 1 free block the victim drains in one shot.
     */
    std::uint32_t gcLowWater = 2;

    /**
     * Incremental GC budget: total valid-page relocations advanced
     * per host write, spent round-robin across collecting planes.
     * Keeps background collection paced to the host write rate so
     * synchronized plane fill levels cannot trigger GC storms; a
     * plane down to its last free block drains its victim in one
     * shot regardless (survival mode).
     */
    std::uint32_t gcPagesPerStep = 2;

    /**
     * "greedy" or "popularity" (paper section IV-D); a "wear:"
     * prefix names the wear-aware decorator explicitly (the ctor
     * then skips its own wearTolerance wrap to avoid stacking two
     * decorators).
     */
    std::string gcPolicy = "greedy";
    double gcPopWeight = 1.0;

    /**
     * Quality gate for opportunistic (soft-watermark) collection:
     * only victims with at least this many garbage pages are worth
     * collecting early. Waived at/below the mandatory watermark.
     */
    std::uint32_t gcMinInvalid = 192;

    /**
     * Wrap the victim policy in the wear-aware tie-breaking
     * decorator (see ftl/wear.hh). Tolerance 0 disables it.
     */
    std::uint32_t wearTolerance = 8;

    /**
     * Hot/cold stream separation: updates of LPNs whose popularity
     * byte (Figure 8) reaches hotThreshold program through a
     * dedicated write point, so hot pages die together and GC
     * victims carry less live data. Costs one more active block per
     * plane when enabled.
     */
    bool hotColdSeparation = false;
    std::uint8_t hotThreshold = 2;
};

/** One flash operation the controller must schedule. */
struct FlashStep
{
    FlashOp op;
    Ppn ppn;
};

/**
 * Caller-owned scratch holding one host operation's flash steps.
 *
 * Ownership rule (DESIGN.md section 7.10): the caller owns the
 * storage and reuses one buffer across commands; the FTL clears it
 * on entry to write()/read()/trim() and appends its steps. clear()
 * keeps capacity, so after the buffer has grown to the largest
 * result ever produced (bounded by one block's worth of GC work),
 * the request path performs no further heap allocation.
 */
struct FlashStepBuffer
{
    /** Flash steps of the user operation itself (0 or 1 step). */
    std::vector<FlashStep> userSteps;

    /** Collateral GC steps (relocation reads/programs + erases). */
    std::vector<FlashStep> gcSteps;

    void
    clear()
    {
        userSteps.clear();
        gcSteps.clear();
    }

    void
    reserve(std::size_t user, std::size_t gc)
    {
        userSteps.reserve(user);
        gcSteps.reserve(gc);
    }
};

/** Outcome of a host read/write at the FTL level (flags only). */
struct HostOpResult
{
    bool ok = true;            //!< false: read of an unmapped LPN
    bool shortCircuit = false; //!< no program was needed
    bool dvpRevival = false;   //!< a dead page was revived
    bool dedupHit = false;     //!< absorbed by a live duplicate
};

/** FTL-level counters. */
struct FtlStats
{
    std::uint64_t hostWrites = 0;
    std::uint64_t hostReads = 0;
    std::uint64_t unmappedReads = 0;
    std::uint64_t programs = 0; //!< host-caused page programs
    std::uint64_t dvpRevivals = 0;
    std::uint64_t dedupHits = 0;
    std::uint64_t gcInvocations = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t trims = 0;
};

/** Page-level FTL with optional DVP and dedup attachments. */
class Ftl
{
  public:
    Ftl(FlashArray &array, FtlConfig config);

    /** Attach the dead-value pool (not owned). May be nullptr. */
    void attachDvp(DeadValuePool *pool);

    /** Attach the dedup store (not owned). May be nullptr. */
    void attachDedup(FingerprintStore *store);

    /** Enable dynamic write allocation (see BlockManager). */
    void setPlaneLoadProbe(BlockManager::PlaneLoadProbe probe);

    /** Allocation-free dynamic write allocation (see BlockManager). */
    void setDieLoadView(const Tick *die_busy,
                        std::uint32_t planes_per_die);

    /** Group-min accelerator for the die-load view (see
     *  BlockManager::setDieLoadGroups). */
    void setDieLoadGroups(const Tick *group_min,
                          std::uint32_t dies_per_group);

    /**
     * Service a host write of content @p fp to @p lpn, appending the
     * flash work to the caller-owned @p steps (cleared on entry).
     */
    HostOpResult write(Lpn lpn, const Fingerprint &fp,
                       FlashStepBuffer &steps);

    /** Service a host read of @p lpn. */
    HostOpResult read(Lpn lpn, FlashStepBuffer &steps);

    /**
     * Trim (discard) @p lpn: the mapping is dropped and the physical
     * page becomes garbage. Its content still enters the dead-value
     * pool — trimmed data is dead data, and a later write of the
     * same content revives it, extending the paper's mechanism to
     * the discard path. No-op on unmapped LPNs.
     */
    HostOpResult trim(Lpn lpn, FlashStepBuffer &steps);

    /** Drive-wide erase-count statistics. */
    WearSummary wearSummary() const;

    const MappingTable &mapping() const { return map; }
    const FlashArray &flash() const { return array; }
    const BlockManager &blocks() const { return blockMgr; }
    const FtlStats &stats() const { return fstats; }
    const FtlConfig &config() const { return cfg; }
    DeadValuePool *dvp() { return pool; }
    FingerprintStore *dedup() { return store; }

    /** Owner LPNs of a valid physical page (dedup-aware). */
    std::vector<Lpn> ownersOf(Ppn ppn) const;

    /** Invariant sweep used by tests: panics on inconsistency. */
    void checkConsistency() const;

    /**
     * Register the FTL's counters under "ftl." (GC activity under
     * "ftl.gc."). Counter storage lives in this FTL; registrations
     * stay valid for its lifetime.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    /** In-flight incremental collection of one victim block. */
    struct GcJob
    {
        std::uint64_t victim = ~0ULL;
        std::uint32_t nextPage = 0;

        bool active() const { return victim != ~0ULL; }
        void reset() { victim = ~0ULL; nextPage = 0; }
    };

    void invalidateLpn(Lpn lpn);
    void mapNewContent(Lpn lpn, Ppn ppn, const Fingerprint &fp,
                       std::uint8_t pop);
    void advanceGcAll(FlashStepBuffer &steps);

    /**
     * Advance @p plane's collection by at most @p budget relocations.
     * @return relocations performed.
     */
    std::uint32_t advanceGc(std::uint64_t plane, std::uint32_t budget,
                            FlashStepBuffer &steps);
    bool startGcJob(std::uint64_t plane);
    void relocatePage(std::uint64_t plane, Ppn src,
                      FlashStepBuffer &steps);
    bool inGcVictim(Ppn ppn) const;

    FlashArray &array;
    FtlConfig cfg;
    MappingTable map;
    BlockManager blockMgr;
    std::unique_ptr<GcPolicy> policy;
    DeadValuePool *pool = nullptr;
    FingerprintStore *store = nullptr;

    /** Owner lists for shared (deduplicated) physical pages. */
    FlatMap<Ppn, std::vector<Lpn>> owners;

    /** One incremental GC job per plane. */
    std::vector<GcJob> gcJobs;
    std::uint64_t gcCursor = 0;

    /**
     * Planes with an open GC job, one bit per plane (same word
     * layout as the BlockManager pacing masks). Together with the
     * manager's low/soft/gate masks this turns the twice-per-write
     * advanceGcAll eligibility scan into a few word operations.
     */
    std::vector<std::uint64_t> gcActiveMask;

    FtlStats fstats;
};

} // namespace zombie

#endif // ZOMBIE_FTL_FTL_HH
