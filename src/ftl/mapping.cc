#include "ftl/mapping.hh"

#include "util/logging.hh"

namespace zombie
{

MappingTable::MappingTable(std::uint64_t logical_pages,
                           std::uint64_t physical_pages)
    : forward(logical_pages, kInvalidPpn),
      reverse(physical_pages, kInvalidLpn),
      pop(logical_pages, 0),
      content(logical_pages)
{
    if (logical_pages == 0)
        zombie_fatal("mapping table needs a non-empty logical space");
    if (physical_pages < logical_pages)
        zombie_fatal("physical space (", physical_pages,
                     " pages) smaller than logical space (",
                     logical_pages, " pages)");
}

void
MappingTable::checkLpn(Lpn lpn) const
{
    zombie_assert(lpn < forward.size(), "LPN ", lpn, " out of bounds");
}

void
MappingTable::checkPpn(Ppn ppn) const
{
    zombie_assert(ppn < reverse.size(), "PPN ", ppn, " out of bounds");
}

bool
MappingTable::isMapped(Lpn lpn) const
{
    checkLpn(lpn);
    return forward[lpn] != kInvalidPpn;
}

Ppn
MappingTable::ppnOf(Lpn lpn) const
{
    checkLpn(lpn);
    return forward[lpn];
}

void
MappingTable::map(Lpn lpn, Ppn ppn)
{
    checkLpn(lpn);
    checkPpn(ppn);
    if (forward[lpn] == kInvalidPpn)
        ++mapped;
    forward[lpn] = ppn;
    reverse[ppn] = lpn;
}

void
MappingTable::unmap(Lpn lpn)
{
    checkLpn(lpn);
    if (forward[lpn] == kInvalidPpn)
        return;
    if (reverse[forward[lpn]] == lpn)
        reverse[forward[lpn]] = kInvalidLpn;
    forward[lpn] = kInvalidPpn;
    --mapped;
}

Lpn
MappingTable::lpnOf(Ppn ppn) const
{
    checkPpn(ppn);
    return reverse[ppn];
}

void
MappingTable::clearReverse(Ppn ppn)
{
    checkPpn(ppn);
    reverse[ppn] = kInvalidLpn;
}

std::uint8_t
MappingTable::popularity(Lpn lpn) const
{
    checkLpn(lpn);
    return pop[lpn];
}

void
MappingTable::setPopularity(Lpn lpn, std::uint8_t p)
{
    checkLpn(lpn);
    pop[lpn] = p;
}

const Fingerprint &
MappingTable::fingerprintOf(Lpn lpn) const
{
    checkLpn(lpn);
    return content[lpn];
}

void
MappingTable::setFingerprint(Lpn lpn, const Fingerprint &fp)
{
    checkLpn(lpn);
    content[lpn] = fp;
}

} // namespace zombie
