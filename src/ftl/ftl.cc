#include "ftl/ftl.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace zombie
{

Ftl::Ftl(FlashArray &flash_array, FtlConfig config)
    : array(flash_array), cfg(std::move(config)),
      map(cfg.logicalPages, array.geometry().totalPages()),
      blockMgr(array),
      policy(cfg.wearTolerance > 0 &&
                     cfg.gcPolicy.rfind("wear:", 0) != 0
                 ? std::make_unique<WearAwareGcPolicy>(
                       makeGcPolicy(cfg.gcPolicy, cfg.gcPopWeight),
                       cfg.wearTolerance)
                 : makeGcPolicy(cfg.gcPolicy, cfg.gcPopWeight)),
      gcJobs(array.geometry().totalPlanes()),
      gcActiveMask((array.geometry().totalPlanes() + 63) / 64, 0)
{
    if (cfg.gcPagesPerStep == 0)
        zombie_fatal("gcPagesPerStep must be > 0");
    blockMgr.configureGcWatermarks(cfg.gcLowWater, cfg.gcSoftWater);
    const std::uint64_t physical = array.geometry().totalPages();
    if (cfg.logicalPages > physical)
        zombie_fatal("logical space exceeds physical capacity");
    // Sanity-check the implied over-provisioning: warn below 5%.
    const double op =
        static_cast<double>(physical - cfg.logicalPages) /
        static_cast<double>(cfg.logicalPages);
    if (op < 0.05) {
        zombie_warn("over-provisioning is only ", op * 100.0,
                    "% - GC may thrash");
    }
}

void
Ftl::attachDvp(DeadValuePool *p)
{
    pool = p;
}

void
Ftl::attachDedup(FingerprintStore *s)
{
    store = s;
}

void
Ftl::setPlaneLoadProbe(BlockManager::PlaneLoadProbe probe)
{
    blockMgr.setLoadProbe(std::move(probe));
}

void
Ftl::setDieLoadView(const Tick *die_busy, std::uint32_t planes_per_die)
{
    blockMgr.setDieLoadView(die_busy, planes_per_die);
}

void
Ftl::setDieLoadGroups(const Tick *group_min,
                      std::uint32_t dies_per_group)
{
    blockMgr.setDieLoadGroups(group_min, dies_per_group);
}

void
Ftl::invalidateLpn(Lpn lpn)
{
    const Ppn old_ppn = map.ppnOf(lpn);
    const Fingerprint old_fp = map.fingerprintOf(lpn);
    const std::uint8_t old_pop = map.popularity(lpn);

    if (store) {
        auto it = owners.find(old_ppn);
        zombie_assert(it != owners.end(), "dedup owner list missing");
        auto &list = it->second;
        auto pos = std::find(list.begin(), list.end(), lpn);
        zombie_assert(pos != list.end(), "LPN missing from owner list");
        list.erase(pos);

        const std::uint32_t remaining =
            store->releaseReference(old_ppn);
        if (remaining > 0) {
            // Other LPNs still share the page; it stays live
            // (section VII: many-to-one mapping delays garbage).
            if (map.lpnOf(old_ppn) == lpn)
                map.map(list.front(), old_ppn);
            return;
        }
        owners.erase(it);
    }

    array.invalidatePage(old_ppn, old_pop);
    map.clearReverse(old_ppn);
    // Pages inside a block under active collection are about to be
    // erased; registering them would allow a revival the erase would
    // then corrupt.
    if (pool && !inGcVictim(old_ppn))
        pool->insertGarbage(old_fp, lpn, old_ppn, old_pop);
}

bool
Ftl::inGcVictim(Ppn ppn) const
{
    const std::uint64_t block = array.geometry().blockOfPpn(ppn);
    const std::uint64_t plane = array.geometry().planeOfBlock(block);
    return gcJobs[plane].victim == block;
}

void
Ftl::mapNewContent(Lpn lpn, Ppn ppn, const Fingerprint &fp,
                   std::uint8_t pop)
{
    map.map(lpn, ppn);
    map.setFingerprint(lpn, fp);
    map.setPopularity(lpn, pop);
    if (store)
        owners[ppn].push_back(lpn);
}

HostOpResult
Ftl::write(Lpn lpn, const Fingerprint &fp, FlashStepBuffer &steps)
{
    zombie_assert(lpn < cfg.logicalPages, "write beyond logical space");
    steps.clear();
    HostOpResult result;
    ++fstats.hostWrites;

    // Collect before allocating so a plane can never be asked for a
    // user block while it still has reclaimable garbage pending.
    advanceGcAll(steps);

    const bool was_mapped = map.isMapped(lpn);

    // 1. In-line dedup against live content (before invalidating the
    //    old page, so a same-content rewrite is a pure no-op).
    if (store) {
        if (auto live = store->lookup(fp)) {
            const Ppn live_ppn = *live;
            if (was_mapped && map.ppnOf(lpn) == live_ppn) {
                // Same content, same page: nothing changes.
                const std::uint8_t pop = store->addReference(fp);
                store->releaseReference(live_ppn); // undo ref bump
                map.setPopularity(lpn, pop);
            } else {
                if (was_mapped)
                    invalidateLpn(lpn);
                const std::uint8_t pop = store->addReference(fp);
                mapNewContent(lpn, live_ppn, fp, pop);
            }
            result.shortCircuit = true;
            result.dedupHit = true;
            ++fstats.dedupHits;
            return result;
        }
    }

    // 2. Out-of-place update: the old page dies and its hash enters
    //    the dead-value pool.
    if (was_mapped)
        invalidateLpn(lpn);

    // 3. Dead-value pool lookup: revive a zombie page on a hit.
    if (pool) {
        const DvpLookupResult hit = pool->lookupForWrite(fp, lpn);
        if (hit.hit) {
            array.revivePage(hit.ppn);
            mapNewContent(lpn, hit.ppn, fp, hit.popularity);
            if (store)
                store->registerPage(fp, hit.ppn);
            result.shortCircuit = true;
            result.dvpRevival = true;
            ++fstats.dvpRevivals;
            return result;
        }
    }

    // 4. Normal program path. With hot/cold separation, updates of
    //    frequently written LPNs use the hot write point. When the
    //    plane has no spare block to extend the preferred stream,
    //    degrade to whichever user write point still has room rather
    //    than strand the allocation.
    const bool hot = cfg.hotColdSeparation && was_mapped &&
                     map.popularity(lpn) >= cfg.hotThreshold;
    const std::uint64_t plane = blockMgr.nextUserPlane();
    Stream stream = hot ? Stream::UserHot : Stream::UserCold;
    if (blockMgr.freeBlocks(plane) == 0 &&
        !blockMgr.streamHasRoom(plane, stream)) {
        const Stream other =
            hot ? Stream::UserCold : Stream::UserHot;
        if (blockMgr.streamHasRoom(plane, other))
            stream = other;
    }
    const Ppn ppn = blockMgr.allocatePage(plane, stream);
    ++fstats.programs;
    mapNewContent(lpn, ppn, fp, 1);
    if (store)
        store->registerPage(fp, ppn);
    steps.userSteps.push_back(FlashStep{FlashOp::Program, ppn});
    return result;
}

HostOpResult
Ftl::read(Lpn lpn, FlashStepBuffer &steps)
{
    steps.clear();
    HostOpResult result;
    ++fstats.hostReads;

    if (lpn >= cfg.logicalPages || !map.isMapped(lpn)) {
        ++fstats.unmappedReads;
        result.ok = false;
        return result;
    }

    const Ppn ppn = map.ppnOf(lpn);
    array.readPage(ppn);
    steps.userSteps.push_back(FlashStep{FlashOp::Read, ppn});
    if (pool)
        pool->onHostRead(lpn);
    return result;
}

HostOpResult
Ftl::trim(Lpn lpn, FlashStepBuffer &steps)
{
    steps.clear();
    HostOpResult result;
    ++fstats.trims;
    if (lpn >= cfg.logicalPages || !map.isMapped(lpn)) {
        result.ok = false;
        return result;
    }
    invalidateLpn(lpn);
    map.unmap(lpn);
    map.setPopularity(lpn, 0);
    advanceGcAll(steps);
    return result;
}

WearSummary
Ftl::wearSummary() const
{
    return summarizeWear(array);
}

void
Ftl::registerStats(StatRegistry &registry) const
{
    registry.addCounter("ftl.host_writes", &fstats.hostWrites);
    registry.addCounter("ftl.host_reads", &fstats.hostReads);
    registry.addCounter("ftl.unmapped_reads", &fstats.unmappedReads);
    registry.addCounter("ftl.programs", &fstats.programs);
    registry.addCounter("ftl.dvp_revivals", &fstats.dvpRevivals);
    registry.addCounter("ftl.dedup_hits", &fstats.dedupHits);
    registry.addCounter("ftl.trims", &fstats.trims);
    registry.addCounter("ftl.gc.invocations", &fstats.gcInvocations);
    registry.addCounter("ftl.gc.relocations", &fstats.gcRelocations);
}

void
Ftl::advanceGcAll(FlashStepBuffer &steps)
{
    const std::uint64_t planes = array.geometry().totalPlanes();
    const std::size_t words = blockMgr.planeMaskWords();

    // Emergency: a plane with no free block left drains its victim in
    // one shot (the GC reserve guarantees relocation space) so the
    // next user allocation cannot strand. In practice the paced tiers
    // below keep planes from ever reaching this point, which is why
    // the scan is gated on the manager's zero-free count.
    if (blockMgr.anyPlaneOutOfFreeBlocks()) {
        const std::uint64_t *zero = blockMgr.gcZeroMask();
        const std::uint32_t drain = array.geometry().pagesPerBlock();
        for (std::size_t w = 0; w < words; ++w) {
            // Per-word snapshot: advanceGc(p) only mutates plane p's
            // bits, so later bits of the word are still live-exact.
            for (std::uint64_t m = zero[w]; m; m &= m - 1) {
                const std::uint64_t p =
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(m));
                advanceGc(p, drain, steps);
            }
        }
    }

    // Paced background collection: planes at/below the mandatory
    // watermark have first claim on the budget, then opportunistic
    // (quality-gated) collection of planes at the soft watermark.
    // This scan runs twice per host write, so eligibility is read
    // from the plane bitmaps: a word of 64 planes costs a handful of
    // loads and the scan skips straight between set bits. A clear
    // gate bit replays the memoized victim-gate "no" for free —
    // advanceGc would re-score the candidates only to refuse again.
    const std::uint64_t *act = gcActiveMask.data();
    const std::uint64_t *low = blockMgr.gcLowMask();
    const std::uint64_t *soft = blockMgr.gcSoftMask();
    const std::uint64_t *gate = blockMgr.gcGateOkMask();
    std::uint32_t budget = cfg.gcPagesPerStep;

    // Rotate the sweep from gcCursor exactly like the historical
    // per-plane loop: bits >= the cursor first (segment A), then the
    // wrap-around remainder (segment B).
    const std::size_t sw = gcCursor >> 6;
    const std::uint64_t head = ~0ULL << (gcCursor & 63);
    const auto sweep = [&](auto eligible) {
        std::uint64_t wmask = head;
        for (std::size_t w = sw; w < words && budget > 0; ++w) {
            for (std::uint64_t m = eligible(w) & wmask;
                 m && budget > 0; m &= m - 1) {
                const std::uint64_t p =
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(m));
                budget -= advanceGc(p, budget, steps);
            }
            wmask = ~0ULL;
        }
        for (std::size_t w = 0; w <= sw && budget > 0; ++w) {
            const std::uint64_t tail = w == sw ? ~head : ~0ULL;
            for (std::uint64_t m = eligible(w) & tail;
                 m && budget > 0; m &= m - 1) {
                const std::uint64_t p =
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(m));
                budget -= advanceGc(p, budget, steps);
            }
        }
    };
    sweep([&](std::size_t w) { return act[w] | (low[w] & gate[w]); });
    sweep([&](std::size_t w) { return soft[w] & ~act[w] & gate[w]; });

    if (++gcCursor == planes)
        gcCursor = 0;
}

bool
Ftl::startGcJob(std::uint64_t plane)
{
    // Gate memoization: every input of the decision below (candidate
    // membership, per-block garbage/wear scores, the free-block
    // count) reopens the plane's gate bit when it changes, so a
    // still-clear bit replays the cached "no" without re-scoring the
    // candidates.
    if (!blockMgr.gcGateOk(plane))
        return false;

    const auto &candidates = blockMgr.victimCandidates(plane);
    if (candidates.empty()) {
        blockMgr.markGcGateFailed(plane);
        return false;
    }
    const std::uint64_t victim = policy->selectVictim(array, candidates);

    // Thin garbage is not worth hundreds of relocations per erase;
    // above the mandatory watermark, wait for invalidations to
    // concentrate rather than collecting a poor victim.
    if (array.invalidCountOf(victim) < cfg.gcMinInvalid &&
        blockMgr.freeBlocks(plane) > cfg.gcLowWater) {
        blockMgr.markGcGateFailed(plane);
        return false;
    }

    GcJob &job = gcJobs[plane];
    job.victim = victim;
    job.nextPage = 0;
    gcActiveMask[plane >> 6] |= 1ULL << (plane & 63);
    ++fstats.gcInvocations;

    // The victim's garbage pages are now doomed: purge their pool
    // entries so no write revives a page scheduled for erase. The
    // invalid bitmap yields each garbage page in ascending order a
    // word (64 pages) at a time.
    if (pool) {
        const Geometry &geom = array.geometry();
        const Ppn first = geom.firstPpnOfBlock(victim);
        const std::uint32_t pages = geom.pagesPerBlock();
        for (std::uint32_t i = array.nextInvalidPage(victim, 0);
             i < pages; i = array.nextInvalidPage(victim, i + 1)) {
            pool->onErase(first + i);
        }
    }
    return true;
}

void
Ftl::relocatePage(std::uint64_t plane, Ppn src, FlashStepBuffer &steps)
{
    array.readPage(src);
    steps.gcSteps.push_back(FlashStep{FlashOp::Read, src});
    const Ppn dst = blockMgr.allocatePage(plane, true);
    steps.gcSteps.push_back(FlashStep{FlashOp::Program, dst});
    ++fstats.gcRelocations;

    if (store) {
        auto it = owners.find(src);
        zombie_assert(it != owners.end(),
                      "relocating page without owners");
        std::vector<Lpn> list = std::move(it->second);
        owners.erase(it);
        store->relocate(src, dst);
        for (const Lpn l : list)
            map.map(l, dst);
        owners[dst] = std::move(list);
    } else {
        const Lpn owner = map.lpnOf(src);
        zombie_assert(owner != kInvalidLpn,
                      "valid page without reverse mapping");
        map.map(owner, dst);
    }
    // The source copy is dead; popularity 0 keeps GC scoring neutral
    // about relocation-created garbage.
    array.invalidatePage(src, 0);
    map.clearReverse(src);
}

std::uint32_t
Ftl::advanceGc(std::uint64_t plane, std::uint32_t budget,
               FlashStepBuffer &steps)
{
    GcJob &job = gcJobs[plane];
    if (!job.active() && !startGcJob(plane))
        return 0;

    const Geometry &geom = array.geometry();
    const Ppn first = geom.firstPpnOfBlock(job.victim);
    const std::uint32_t pages = geom.pagesPerBlock();

    // The relocation cursor hops valid bitmap bits instead of
    // probing every page: a budget-bounded walk leaves nextPage just
    // past the last page it moved, exactly like the per-page loop.
    std::uint32_t moved = 0;
    while (moved < budget) {
        const std::uint32_t page =
            array.nextValidPage(job.victim, job.nextPage);
        if (page == pages) {
            job.nextPage = pages;
            break;
        }
        relocatePage(plane, first + page, steps);
        ++moved;
        job.nextPage = page + 1;
    }

    if (job.nextPage == geom.pagesPerBlock()) {
        // All live data moved; the erase completes the job. Garbage
        // pages invalidated mid-job were never (re)inserted into the
        // pool, so nothing dangles.
        array.eraseBlock(job.victim);
        steps.gcSteps.push_back(FlashStep{FlashOp::Erase, first});
        blockMgr.releaseBlock(job.victim);
        job.reset();
        gcActiveMask[plane >> 6] &= ~(1ULL << (plane & 63));
    }
    return moved;
}

std::vector<Lpn>
Ftl::ownersOf(Ppn ppn) const
{
    if (store) {
        auto it = owners.find(ppn);
        return it == owners.end() ? std::vector<Lpn>{} : it->second;
    }
    const Lpn owner = map.lpnOf(ppn);
    if (owner == kInvalidLpn)
        return {};
    return {owner};
}

void
Ftl::checkConsistency() const
{
    // Every mapped LPN must point at a Valid physical page holding it.
    for (Lpn lpn = 0; lpn < cfg.logicalPages; ++lpn) {
        if (!map.isMapped(lpn))
            continue;
        const Ppn ppn = map.ppnOf(lpn);
        zombie_assert(array.state(ppn) == PageState::Valid,
                      "LPN ", lpn, " maps to non-valid PPN ", ppn);
        if (store) {
            auto it = owners.find(ppn);
            zombie_assert(it != owners.end(), "shared page ", ppn,
                          " lost its owner list");
            zombie_assert(std::find(it->second.begin(),
                                    it->second.end(),
                                    lpn) != it->second.end(),
                          "LPN ", lpn, " missing from owners of ", ppn);
        } else {
            zombie_assert(map.lpnOf(ppn) == lpn,
                          "reverse map mismatch for LPN ", lpn);
        }
    }
}

} // namespace zombie
