#include "ftl/ftl.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

Ftl::Ftl(FlashArray &flash_array, FtlConfig config)
    : array(flash_array), cfg(std::move(config)),
      map(cfg.logicalPages, array.geometry().totalPages()),
      blockMgr(array),
      policy(cfg.wearTolerance > 0 &&
                     cfg.gcPolicy.rfind("wear:", 0) != 0
                 ? std::make_unique<WearAwareGcPolicy>(
                       makeGcPolicy(cfg.gcPolicy, cfg.gcPopWeight),
                       cfg.wearTolerance)
                 : makeGcPolicy(cfg.gcPolicy, cfg.gcPopWeight)),
      gcJobs(array.geometry().totalPlanes()),
      gcGateFailEpoch(array.geometry().totalPlanes(), ~0ULL)
{
    if (cfg.gcPagesPerStep == 0)
        zombie_fatal("gcPagesPerStep must be > 0");
    const std::uint64_t physical = array.geometry().totalPages();
    if (cfg.logicalPages > physical)
        zombie_fatal("logical space exceeds physical capacity");
    // Sanity-check the implied over-provisioning: warn below 5%.
    const double op =
        static_cast<double>(physical - cfg.logicalPages) /
        static_cast<double>(cfg.logicalPages);
    if (op < 0.05) {
        zombie_warn("over-provisioning is only ", op * 100.0,
                    "% - GC may thrash");
    }
}

void
Ftl::attachDvp(DeadValuePool *p)
{
    pool = p;
}

void
Ftl::attachDedup(FingerprintStore *s)
{
    store = s;
}

void
Ftl::setPlaneLoadProbe(BlockManager::PlaneLoadProbe probe)
{
    blockMgr.setLoadProbe(std::move(probe));
}

void
Ftl::setDieLoadView(const Tick *die_busy, std::uint32_t planes_per_die)
{
    blockMgr.setDieLoadView(die_busy, planes_per_die);
}

void
Ftl::invalidateLpn(Lpn lpn)
{
    const Ppn old_ppn = map.ppnOf(lpn);
    const Fingerprint old_fp = map.fingerprintOf(lpn);
    const std::uint8_t old_pop = map.popularity(lpn);

    if (store) {
        auto it = owners.find(old_ppn);
        zombie_assert(it != owners.end(), "dedup owner list missing");
        auto &list = it->second;
        auto pos = std::find(list.begin(), list.end(), lpn);
        zombie_assert(pos != list.end(), "LPN missing from owner list");
        list.erase(pos);

        const std::uint32_t remaining =
            store->releaseReference(old_ppn);
        if (remaining > 0) {
            // Other LPNs still share the page; it stays live
            // (section VII: many-to-one mapping delays garbage).
            if (map.lpnOf(old_ppn) == lpn)
                map.map(list.front(), old_ppn);
            return;
        }
        owners.erase(it);
    }

    array.invalidatePage(old_ppn, old_pop);
    map.clearReverse(old_ppn);
    // Pages inside a block under active collection are about to be
    // erased; registering them would allow a revival the erase would
    // then corrupt.
    if (pool && !inGcVictim(old_ppn))
        pool->insertGarbage(old_fp, lpn, old_ppn, old_pop);
}

bool
Ftl::inGcVictim(Ppn ppn) const
{
    const std::uint64_t block = array.geometry().blockOfPpn(ppn);
    const std::uint64_t plane = array.geometry().planeOfBlock(block);
    return gcJobs[plane].victim == block;
}

void
Ftl::mapNewContent(Lpn lpn, Ppn ppn, const Fingerprint &fp,
                   std::uint8_t pop)
{
    map.map(lpn, ppn);
    map.setFingerprint(lpn, fp);
    map.setPopularity(lpn, pop);
    if (store)
        owners[ppn].push_back(lpn);
}

HostOpResult
Ftl::write(Lpn lpn, const Fingerprint &fp, FlashStepBuffer &steps)
{
    zombie_assert(lpn < cfg.logicalPages, "write beyond logical space");
    steps.clear();
    HostOpResult result;
    ++fstats.hostWrites;

    // Collect before allocating so a plane can never be asked for a
    // user block while it still has reclaimable garbage pending.
    advanceGcAll(steps);

    const bool was_mapped = map.isMapped(lpn);

    // 1. In-line dedup against live content (before invalidating the
    //    old page, so a same-content rewrite is a pure no-op).
    if (store) {
        if (auto live = store->lookup(fp)) {
            const Ppn live_ppn = *live;
            if (was_mapped && map.ppnOf(lpn) == live_ppn) {
                // Same content, same page: nothing changes.
                const std::uint8_t pop = store->addReference(fp);
                store->releaseReference(live_ppn); // undo ref bump
                map.setPopularity(lpn, pop);
            } else {
                if (was_mapped)
                    invalidateLpn(lpn);
                const std::uint8_t pop = store->addReference(fp);
                mapNewContent(lpn, live_ppn, fp, pop);
            }
            result.shortCircuit = true;
            result.dedupHit = true;
            ++fstats.dedupHits;
            return result;
        }
    }

    // 2. Out-of-place update: the old page dies and its hash enters
    //    the dead-value pool.
    if (was_mapped)
        invalidateLpn(lpn);

    // 3. Dead-value pool lookup: revive a zombie page on a hit.
    if (pool) {
        const DvpLookupResult hit = pool->lookupForWrite(fp, lpn);
        if (hit.hit) {
            array.revivePage(hit.ppn);
            mapNewContent(lpn, hit.ppn, fp, hit.popularity);
            if (store)
                store->registerPage(fp, hit.ppn);
            result.shortCircuit = true;
            result.dvpRevival = true;
            ++fstats.dvpRevivals;
            return result;
        }
    }

    // 4. Normal program path. With hot/cold separation, updates of
    //    frequently written LPNs use the hot write point. When the
    //    plane has no spare block to extend the preferred stream,
    //    degrade to whichever user write point still has room rather
    //    than strand the allocation.
    const bool hot = cfg.hotColdSeparation && was_mapped &&
                     map.popularity(lpn) >= cfg.hotThreshold;
    const std::uint64_t plane = blockMgr.nextUserPlane();
    Stream stream = hot ? Stream::UserHot : Stream::UserCold;
    if (blockMgr.freeBlocks(plane) == 0 &&
        !blockMgr.streamHasRoom(plane, stream)) {
        const Stream other =
            hot ? Stream::UserCold : Stream::UserHot;
        if (blockMgr.streamHasRoom(plane, other))
            stream = other;
    }
    const Ppn ppn = blockMgr.allocatePage(plane, stream);
    ++fstats.programs;
    mapNewContent(lpn, ppn, fp, 1);
    if (store)
        store->registerPage(fp, ppn);
    steps.userSteps.push_back(FlashStep{FlashOp::Program, ppn});
    return result;
}

HostOpResult
Ftl::read(Lpn lpn, FlashStepBuffer &steps)
{
    steps.clear();
    HostOpResult result;
    ++fstats.hostReads;

    if (lpn >= cfg.logicalPages || !map.isMapped(lpn)) {
        ++fstats.unmappedReads;
        result.ok = false;
        return result;
    }

    const Ppn ppn = map.ppnOf(lpn);
    array.readPage(ppn);
    steps.userSteps.push_back(FlashStep{FlashOp::Read, ppn});
    if (pool)
        pool->onHostRead(lpn);
    return result;
}

HostOpResult
Ftl::trim(Lpn lpn, FlashStepBuffer &steps)
{
    steps.clear();
    HostOpResult result;
    ++fstats.trims;
    if (lpn >= cfg.logicalPages || !map.isMapped(lpn)) {
        result.ok = false;
        return result;
    }
    invalidateLpn(lpn);
    map.unmap(lpn);
    map.setPopularity(lpn, 0);
    advanceGcAll(steps);
    return result;
}

WearSummary
Ftl::wearSummary() const
{
    return summarizeWear(array);
}

void
Ftl::registerStats(StatRegistry &registry) const
{
    registry.addCounter("ftl.host_writes", &fstats.hostWrites);
    registry.addCounter("ftl.host_reads", &fstats.hostReads);
    registry.addCounter("ftl.unmapped_reads", &fstats.unmappedReads);
    registry.addCounter("ftl.programs", &fstats.programs);
    registry.addCounter("ftl.dvp_revivals", &fstats.dvpRevivals);
    registry.addCounter("ftl.dedup_hits", &fstats.dedupHits);
    registry.addCounter("ftl.trims", &fstats.trims);
    registry.addCounter("ftl.gc.invocations", &fstats.gcInvocations);
    registry.addCounter("ftl.gc.relocations", &fstats.gcRelocations);
}

void
Ftl::advanceGcAll(FlashStepBuffer &steps)
{
    const std::uint64_t planes = array.geometry().totalPlanes();

    // Emergency: a plane with no free block left drains its victim in
    // one shot (the GC reserve guarantees relocation space) so the
    // next user allocation cannot strand. In practice the paced tiers
    // below keep planes from ever reaching this point, which is why
    // the scan is gated on the manager's zero-free count.
    if (blockMgr.anyPlaneOutOfFreeBlocks()) {
        for (std::uint64_t p = 0; p < planes; ++p) {
            if (blockMgr.freeBlocks(p) == 0)
                advanceGc(p, array.geometry().pagesPerBlock(), steps);
        }
    }

    // Paced background collection: planes at/below the mandatory
    // watermark have first claim on the budget, then opportunistic
    // (quality-gated) collection of planes at the soft watermark.
    // This scan runs once per host write, so it reads the manager's
    // flat count/epoch tables, and a plane without an open job whose
    // epoch still matches the memoized gate refusal is skipped
    // outright: advanceGc would replay the cached "no" and return 0.
    const std::vector<std::uint32_t> &free_counts =
        blockMgr.freeBlockCounts();
    const std::vector<std::uint64_t> &epochs =
        blockMgr.planeEpochTable();
    std::uint32_t budget = cfg.gcPagesPerStep;
    std::uint64_t p = gcCursor;
    for (std::uint64_t i = 0; i < planes && budget > 0; ++i) {
        const bool active = gcJobs[p].active();
        if ((active || free_counts[p] <= cfg.gcLowWater) &&
            (active || epochs[p] != gcGateFailEpoch[p])) {
            budget -= advanceGc(p, budget, steps);
        }
        if (++p == planes)
            p = 0;
    }
    p = gcCursor;
    for (std::uint64_t i = 0; i < planes && budget > 0; ++i) {
        if (!gcJobs[p].active() &&
            free_counts[p] <= cfg.gcSoftWater &&
            epochs[p] != gcGateFailEpoch[p]) {
            budget -= advanceGc(p, budget, steps);
        }
        if (++p == planes)
            p = 0;
    }
    if (++gcCursor == planes)
        gcCursor = 0;
}

bool
Ftl::startGcJob(std::uint64_t plane)
{
    // Gate memoization: every input of the decision below (candidate
    // membership, per-block garbage/wear scores, the free-block
    // count) bumps the plane's epoch, so an unchanged epoch replays
    // the cached "no" without re-scoring the candidates.
    const std::uint64_t epoch = blockMgr.planeEpoch(plane);
    if (epoch == gcGateFailEpoch[plane])
        return false;

    const auto &candidates = blockMgr.victimCandidates(plane);
    if (candidates.empty()) {
        gcGateFailEpoch[plane] = epoch;
        return false;
    }
    const std::uint64_t victim = policy->selectVictim(array, candidates);

    // Thin garbage is not worth hundreds of relocations per erase;
    // above the mandatory watermark, wait for invalidations to
    // concentrate rather than collecting a poor victim.
    if (array.block(victim).invalidCount < cfg.gcMinInvalid &&
        blockMgr.freeBlocks(plane) > cfg.gcLowWater) {
        gcGateFailEpoch[plane] = epoch;
        return false;
    }

    GcJob &job = gcJobs[plane];
    job.victim = victim;
    job.nextPage = 0;
    ++fstats.gcInvocations;

    // The victim's garbage pages are now doomed: purge their pool
    // entries so no write revives a page scheduled for erase.
    if (pool) {
        const Geometry &geom = array.geometry();
        const Ppn first = geom.firstPpnOfBlock(victim);
        for (std::uint32_t i = 0; i < geom.pagesPerBlock(); ++i) {
            if (array.state(first + i) == PageState::Invalid)
                pool->onErase(first + i);
        }
    }
    return true;
}

void
Ftl::relocatePage(std::uint64_t plane, Ppn src, FlashStepBuffer &steps)
{
    array.readPage(src);
    steps.gcSteps.push_back(FlashStep{FlashOp::Read, src});
    const Ppn dst = blockMgr.allocatePage(plane, true);
    steps.gcSteps.push_back(FlashStep{FlashOp::Program, dst});
    ++fstats.gcRelocations;

    if (store) {
        auto it = owners.find(src);
        zombie_assert(it != owners.end(),
                      "relocating page without owners");
        std::vector<Lpn> list = std::move(it->second);
        owners.erase(it);
        store->relocate(src, dst);
        for (const Lpn l : list)
            map.map(l, dst);
        owners[dst] = std::move(list);
    } else {
        const Lpn owner = map.lpnOf(src);
        zombie_assert(owner != kInvalidLpn,
                      "valid page without reverse mapping");
        map.map(owner, dst);
    }
    // The source copy is dead; popularity 0 keeps GC scoring neutral
    // about relocation-created garbage.
    array.invalidatePage(src, 0);
    map.clearReverse(src);
}

std::uint32_t
Ftl::advanceGc(std::uint64_t plane, std::uint32_t budget,
               FlashStepBuffer &steps)
{
    GcJob &job = gcJobs[plane];
    if (!job.active() && !startGcJob(plane))
        return 0;

    const Geometry &geom = array.geometry();
    const Ppn first = geom.firstPpnOfBlock(job.victim);

    std::uint32_t moved = 0;
    while (moved < budget && job.nextPage < geom.pagesPerBlock()) {
        const Ppn src = first + job.nextPage;
        if (array.state(src) == PageState::Valid) {
            relocatePage(plane, src, steps);
            ++moved;
        }
        ++job.nextPage;
    }

    if (job.nextPage == geom.pagesPerBlock()) {
        // All live data moved; the erase completes the job. Garbage
        // pages invalidated mid-job were never (re)inserted into the
        // pool, so nothing dangles.
        array.eraseBlock(job.victim);
        steps.gcSteps.push_back(FlashStep{FlashOp::Erase, first});
        blockMgr.releaseBlock(job.victim);
        job.reset();
    }
    return moved;
}

std::vector<Lpn>
Ftl::ownersOf(Ppn ppn) const
{
    if (store) {
        auto it = owners.find(ppn);
        return it == owners.end() ? std::vector<Lpn>{} : it->second;
    }
    const Lpn owner = map.lpnOf(ppn);
    if (owner == kInvalidLpn)
        return {};
    return {owner};
}

void
Ftl::checkConsistency() const
{
    // Every mapped LPN must point at a Valid physical page holding it.
    for (Lpn lpn = 0; lpn < cfg.logicalPages; ++lpn) {
        if (!map.isMapped(lpn))
            continue;
        const Ppn ppn = map.ppnOf(lpn);
        zombie_assert(array.state(ppn) == PageState::Valid,
                      "LPN ", lpn, " maps to non-valid PPN ", ppn);
        if (store) {
            auto it = owners.find(ppn);
            zombie_assert(it != owners.end(), "shared page ", ppn,
                          " lost its owner list");
            zombie_assert(std::find(it->second.begin(),
                                    it->second.end(),
                                    lpn) != it->second.end(),
                          "LPN ", lpn, " missing from owners of ", ppn);
        } else {
            zombie_assert(map.lpnOf(ppn) == lpn,
                          "reverse map mismatch for LPN ", lpn);
        }
    }
}

} // namespace zombie
