/**
 * @file
 * Free-block pools and write points.
 *
 * Each plane keeps its own free-block stack plus two active blocks:
 * one for host writes and one for GC relocations (so a victim's valid
 * pages never interleave with fresh host data). Host writes stripe
 * across planes channel-first, which is what gives the 8x8 drive its
 * parallelism (paper Table I / section IV-B).
 */

#ifndef ZOMBIE_FTL_BLOCK_MANAGER_HH
#define ZOMBIE_FTL_BLOCK_MANAGER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "nand/flash_array.hh"
#include "nand/geometry.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

/** Write streams: separating them concentrates garbage per block. */
enum class Stream
{
    UserCold, //!< default host-write stream
    UserHot,  //!< updates of popular LPNs (hot/cold separation)
    Gc,       //!< GC relocation stream
};

/** Allocation and free-space accounting on top of FlashArray. */
class BlockManager
{
  public:
    static constexpr std::uint64_t kNoBlock = ~0ULL;

    explicit BlockManager(FlashArray &array);

    // The manager registers itself as the array's block listener
    // (capturing `this`), so it must stay at one address for life.
    BlockManager(const BlockManager &) = delete;
    BlockManager &operator=(const BlockManager &) = delete;

    /** Load probe: busy-until tick of the die owning a plane. */
    using PlaneLoadProbe = std::function<Tick(std::uint64_t plane)>;

    /**
     * Plane the next host write should land on. Without a probe this
     * is channel-first round-robin; with one it is dynamic allocation
     * (SSDSim [13]): the least-busy plane in round-robin order.
     */
    std::uint64_t nextUserPlane();

    /** Install/remove the dynamic-allocation probe. */
    void setLoadProbe(PlaneLoadProbe probe);

    /**
     * Allocation-free fast path for dynamic allocation: read die
     * busy-until ticks straight from @p die_busy (the resource
     * model's table, one entry per die, never reallocated), where
     * plane p belongs to die p / @p planes_per_die. Overrides any
     * std::function probe; pass nullptr to remove.
     */
    void setDieLoadView(const Tick *die_busy,
                        std::uint32_t planes_per_die);

    /**
     * Optional accelerator over the die-load view: @p group_min is
     * the resource model's per-group busy-until minima table
     * (ResourceModel::dieGroupMinTable()), covering
     * @p dies_per_group consecutive dies per entry. The least-busy
     * scan then reads the group table and descends only into groups
     * that carry the global minimum — same plane choice, same
     * tie-break, a fraction of the memory touched. Pass nullptr to
     * remove. Requires a die-load view to be installed.
     */
    void setDieLoadGroups(const Tick *group_min,
                          std::uint32_t dies_per_group);

    /**
     * Program one page on @p plane through the given write stream.
     * Panics if the plane is out of free blocks — the GC
     * policy/thresholds must prevent that.
     * @return the programmed PPN.
     */
    Ppn allocatePage(std::uint64_t plane, Stream stream);

    /**
     * Whether a page can be programmed on @p plane through
     * @p stream without consuming a new free block.
     */
    bool streamHasRoom(std::uint64_t plane, Stream stream) const;

    /** Back-compat shorthand: @p for_gc selects the GC stream. */
    Ppn
    allocatePage(std::uint64_t plane, bool for_gc)
    {
        return allocatePage(plane,
                            for_gc ? Stream::Gc : Stream::UserCold);
    }

    /** Blocks currently on @p plane's free stack. */
    std::uint32_t
    freeBlocks(std::uint64_t plane) const
    {
        zombie_assert(plane < freeLists.size(), "plane out of bounds");
        return static_cast<std::uint32_t>(freeLists[plane].size());
    }

    /** Whether any plane's free stack is empty (emergency GC). */
    bool anyPlaneOutOfFreeBlocks() const { return zeroFreePlanes > 0; }

    /**
     * Per-plane free-stack depths as one contiguous array, for hot
     * loops (the GC pacing scan) that read every plane per host
     * write and cannot afford a bounds-checked call per plane.
     */
    const std::vector<std::uint32_t> &
    freeBlockCounts() const
    {
        return freeCounts;
    }

    /** All plane epochs (see planeEpoch) for hot scan loops. */
    const std::vector<std::uint64_t> &
    planeEpochTable() const
    {
        return planeEpochs;
    }

    /** Smallest free-stack depth across all planes. */
    std::uint32_t minFreeBlocks() const;

    /**
     * GC pacing bitmaps (one bit per plane, 64 planes per word,
     * trailing bits always clear). The paced-GC scan in
     * Ftl::advanceGcAll runs twice per host write; these masks turn
     * its O(planes) eligibility probing into a handful of word
     * loads. Maintained incrementally at every free-stack pop /
     * release against the watermarks configured below.
     */
    void configureGcWatermarks(std::uint32_t low_water,
                               std::uint32_t soft_water);

    /** Planes with an empty free stack (emergency GC). */
    const std::uint64_t *gcZeroMask() const { return zeroMask.data(); }

    /** Planes at/below the mandatory (low) watermark. */
    const std::uint64_t *gcLowMask() const { return lowMask.data(); }

    /** Planes at/below the opportunistic (soft) watermark. */
    const std::uint64_t *gcSoftMask() const { return softMask.data(); }

    /**
     * Planes whose GC-relevant state changed since the victim gate
     * last declined there (see gcGateOk). A clear bit replays the
     * memoized "no" for free.
     */
    const std::uint64_t *gcGateOkMask() const
    {
        return gateOkMask.data();
    }

    /** Words in each plane mask above. */
    std::size_t planeMaskWords() const { return zeroMask.size(); }

    /**
     * Whether the victim gate on @p plane could answer differently
     * than its last memoized refusal. Equivalent to the historical
     * `planeEpoch(plane) != <epoch at last refusal>` check: the bit
     * sets at every epoch bump and clears at markGcGateFailed().
     */
    bool
    gcGateOk(std::uint64_t plane) const
    {
        return (gateOkMask[plane >> 6] >> (plane & 63)) & 1;
    }

    /** Memoize a victim-gate refusal on @p plane. */
    void
    markGcGateFailed(std::uint64_t plane)
    {
        gateOkMask[plane >> 6] &= ~(1ULL << (plane & 63));
    }

    /**
     * Version counter of @p plane's GC-relevant state. Bumped by
     * every change to candidate membership or scores (the array's
     * invalidate/revive/erase notifications), every free-stack pop
     * and every block release, so a pure function of those inputs
     * (the victim gate) can be memoized against it.
     */
    std::uint64_t
    planeEpoch(std::uint64_t plane) const
    {
        zombie_assert(plane < planeEpochs.size(),
                      "plane out of bounds");
        return planeEpochs[plane];
    }

    /** Return an erased block to its plane's free stack. */
    void releaseBlock(std::uint64_t block_index);

    /** True if @p block_index is a write point (never a GC victim). */
    bool isActive(std::uint64_t block_index) const;

    /**
     * Victim candidates on @p plane: full, inactive, some garbage.
     * Served from the incremental per-plane index (ascending block
     * order, O(candidates), no allocation, no plane rescan); the
     * index is kept in sync by the FlashArray block listener plus
     * the write-point transitions this class performs itself.
     */
    const std::vector<std::uint64_t> &
    victimCandidates(std::uint64_t plane) const;

  private:
    /** FlashArray block-listener thunk (ctx is the manager). */
    static void onBlockChanged(void *ctx, std::uint64_t block);

    std::uint64_t popFree(std::uint64_t plane, bool for_gc);

    /** Re-evaluate one block's membership in the victim index. */
    void updateCandidate(std::uint64_t block_index);

    /** Recompute the cached user-write room bit for @p plane. */
    void refreshUserRoom(std::uint64_t plane);

    /** Recompute @p plane's watermark bits after a count change. */
    void refreshWaterBits(std::uint64_t plane);

    /** Bump @p plane's epoch and reopen its victim gate. */
    void
    bumpPlaneEpoch(std::uint64_t plane)
    {
        ++planeEpochs[plane];
        gateOkMask[plane >> 6] |= 1ULL << (plane & 63);
    }

    FlashArray &flash;
    const Geometry &geom;
    std::vector<std::vector<std::uint64_t>> freeLists; //!< per plane
    std::vector<std::uint64_t> userActive;             //!< per plane
    std::vector<std::uint64_t> hotActive;              //!< per plane
    std::vector<std::uint64_t> gcActive;               //!< per plane

    /**
     * One block per plane set aside for GC relocation: even with the
     * free stack empty, a victim's valid pages (at most one block's
     * worth) can always move, so collection can always make progress.
     */
    std::vector<std::uint64_t> gcReserve;
    std::vector<std::uint64_t> planeOrder; //!< channel-first striping
    std::uint64_t rrCursor = 0;
    PlaneLoadProbe loadProbe;

    /** Raw die busy-until view (fast path; overrides loadProbe). */
    const Tick *dieLoad = nullptr;
    std::uint32_t dieLoadPlanesPerDie = 1;
    std::uint32_t dieCount = 0;          //!< entries in dieLoad

    /**
     * Forward-probe window for the min-load position search: when
     * the minimum is carried by many dies (GC bursts synchronize
     * whole channels' completions), the first matching position sits
     * a step or two past the cursor; a sparse minimum exhausts the
     * window and falls back to the candidate descent.
     */
    static constexpr std::uint32_t kMinProbeWindow = 32;

    /** Per-group die-load minima (see setDieLoadGroups); null
     *  disables the group descent. */
    const Tick *dieGroupLoad = nullptr;
    std::uint32_t dieGroupSize = 0;      //!< dies per group entry
    std::uint32_t dieGroupCount = 0;     //!< entries in dieGroupLoad
    std::vector<std::uint32_t> planeDie; //!< plane -> dieLoad index

    /** planeOrder position -> dieLoad index, so the rotated argmin
     *  scan gathers loads without the planeOrder indirection. */
    std::vector<std::uint32_t> orderDie;

    /** Per die, its planeOrder positions in ascending order, so the
     *  all-room fast path can jump to the first at-or-after-cursor
     *  position of a least-loaded die instead of walking. */
    std::vector<std::vector<std::uint32_t>> diePositions;

    /**
     * Incrementally maintained nextUserPlane() inputs: per-plane
     * free-stack depth and whether a host write fits on the plane
     * without popping a free block. Both change only in popFree /
     * releaseBlock / allocatePage, so the dynamic-allocation scan
     * reads two flat arrays instead of re-deriving room from the
     * free lists and active blocks on every plane, every write.
     */
    std::vector<std::uint32_t> freeCounts;
    std::vector<std::uint8_t> userRoom;

    /** Per-plane GC-state version counters (see planeEpoch). */
    std::vector<std::uint64_t> planeEpochs;

    /** Planes whose free stack is empty right now. */
    std::uint64_t zeroFreePlanes = 0;

    /** Planes whose userRoom bit is currently clear. */
    std::uint64_t noRoomPlanes = 0;

    // GC pacing masks (see the accessors above).
    std::uint32_t gcLowWater = 0;
    std::uint32_t gcSoftWater = 0;
    std::vector<std::uint64_t> zeroMask;
    std::vector<std::uint64_t> lowMask;
    std::vector<std::uint64_t> softMask;
    std::vector<std::uint64_t> gateOkMask;

    /**
     * Incremental victim index: per plane, the sorted block indices
     * satisfying the candidate predicate (full, inactive, some
     * garbage), plus a per-block membership bit so the hot
     * invalidate path updates in O(1) when nothing changes.
     */
    std::vector<std::vector<std::uint64_t>> candidates; //!< per plane
    std::vector<bool> inCandidates;                     //!< per block
};

} // namespace zombie

#endif // ZOMBIE_FTL_BLOCK_MANAGER_HH
