#include "ftl/wear.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace zombie
{

WearSummary
summarizeWear(const FlashArray &flash)
{
    WearSummary summary;
    const std::uint64_t blocks = flash.geometry().totalBlocks();
    zombie_assert(blocks > 0, "empty geometry");

    double sum = 0.0;
    double sum_sq = 0.0;
    const std::uint32_t *erase_counts = flash.eraseCounts();
    summary.minErase = erase_counts[0];
    summary.maxErase = erase_counts[0];
    for (std::uint64_t b = 0; b < blocks; ++b) {
        const std::uint32_t erases = erase_counts[b];
        summary.minErase = std::min(summary.minErase, erases);
        summary.maxErase = std::max(summary.maxErase, erases);
        sum += erases;
        sum_sq += static_cast<double>(erases) * erases;
    }
    const double n = static_cast<double>(blocks);
    summary.meanErase = sum / n;
    const double variance =
        std::max(0.0, sum_sq / n - summary.meanErase * summary.meanErase);
    summary.stddevErase = std::sqrt(variance);
    return summary;
}

WearAwareGcPolicy::WearAwareGcPolicy(
    std::unique_ptr<GcPolicy> base_policy, std::uint32_t tolerance)
    : basePolicy(std::move(base_policy)), tol(tolerance)
{
    zombie_assert(basePolicy != nullptr,
                  "wear-aware decorator needs a base policy");
}

std::string
WearAwareGcPolicy::name() const
{
    return "wear-aware(" + basePolicy->name() + ")";
}

std::uint64_t
WearAwareGcPolicy::selectVictim(
    const FlashArray &flash,
    const std::vector<std::uint64_t> &candidates) const
{
    const std::uint64_t preferred =
        basePolicy->selectVictim(flash, candidates);
    if (tol == 0)
        return preferred;

    // Treat candidates within `tol` garbage pages of the preferred
    // victim as equivalent and pick the least-worn among them.
    const std::uint32_t *invalid_counts = flash.invalidCounts();
    const std::uint32_t *erase_counts = flash.eraseCounts();
    const std::uint32_t best_invalid = invalid_counts[preferred];
    std::uint64_t chosen = preferred;
    std::uint32_t chosen_erases = erase_counts[preferred];
    for (const std::uint64_t block : candidates) {
        const std::uint32_t invalid = invalid_counts[block];
        if (invalid + tol < best_invalid)
            continue;
        if (invalid > best_invalid + tol)
            continue;
        if (erase_counts[block] < chosen_erases) {
            chosen = block;
            chosen_erases = erase_counts[block];
        }
    }
    return chosen;
}

} // namespace zombie
