/**
 * @file
 * GC victim-selection policies.
 *
 * GreedyGcPolicy is the conventional max-invalid-pages choice.
 * PopularityAwareGcPolicy implements the paper's section IV-D tuning:
 * the victim score discounts blocks whose garbage pages carry high
 * popularity degrees, so pages likely to be revived soon survive
 * longer in the dead-value pool.
 */

#ifndef ZOMBIE_FTL_GC_POLICY_HH
#define ZOMBIE_FTL_GC_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nand/flash_array.hh"

namespace zombie
{

/** Strategy interface: pick a victim among candidate blocks. */
class GcPolicy
{
  public:
    virtual ~GcPolicy() = default;

    virtual std::string name() const = 0;

    /**
     * @param candidates non-empty list of erasable block indices.
     * @return the chosen victim block index.
     */
    virtual std::uint64_t
    selectVictim(const FlashArray &flash,
                 const std::vector<std::uint64_t> &candidates) const = 0;
};

/** Conventional greedy policy: most invalid pages wins. */
class GreedyGcPolicy : public GcPolicy
{
  public:
    std::string name() const override { return "greedy"; }

    std::uint64_t
    selectVictim(const FlashArray &flash,
                 const std::vector<std::uint64_t> &candidates)
        const override;
};

/**
 * Popularity-aware policy (paper section IV-D): score each candidate
 * by invalid-page count minus a weighted, normalized sum of the
 * popularity degrees of its garbage pages; the highest score wins.
 */
class PopularityAwareGcPolicy : public GcPolicy
{
  public:
    explicit PopularityAwareGcPolicy(double pop_weight = 1.0)
        : weight(pop_weight)
    {
    }

    std::string name() const override { return "popularity-aware"; }

    double popWeight() const { return weight; }

    /** The victim score; exposed for tests and the ablation bench. */
    double score(const FlashArray &flash, std::uint64_t block) const;

    std::uint64_t
    selectVictim(const FlashArray &flash,
                 const std::vector<std::uint64_t> &candidates)
        const override;

  private:
    double weight;
};

/** Factory: "greedy", "popularity", or either behind the
 *  wear-aware decorator as "wear:greedy" / "wear:popularity". */
std::unique_ptr<GcPolicy> makeGcPolicy(const std::string &name,
                                       double pop_weight = 1.0);

} // namespace zombie

#endif // ZOMBIE_FTL_GC_POLICY_HH
