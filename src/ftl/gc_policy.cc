#include "ftl/gc_policy.hh"

#include "ftl/wear.hh"
#include "util/logging.hh"

namespace zombie
{

std::uint64_t
GreedyGcPolicy::selectVictim(
    const FlashArray &flash,
    const std::vector<std::uint64_t> &candidates) const
{
    zombie_assert(!candidates.empty(), "victim selection with no "
                                       "candidates");
    // Gather straight from the SoA invalid-count array: the scoring
    // loop touches one dense uint32 per candidate instead of a
    // BlockInfo stride.
    const std::uint32_t *invalid_counts = flash.invalidCounts();
    std::uint64_t best = candidates.front();
    std::uint32_t best_invalid = invalid_counts[best];
    for (const std::uint64_t block : candidates) {
        const std::uint32_t invalid = invalid_counts[block];
        if (invalid > best_invalid) {
            best = block;
            best_invalid = invalid;
        }
    }
    return best;
}

double
PopularityAwareGcPolicy::score(const FlashArray &flash,
                               std::uint64_t block) const
{
    // Normalize the popularity sum by the 1-byte counter range so a
    // fully popular garbage page cancels roughly `weight / 255` of a
    // reclaimable page.
    const double popularity_penalty =
        weight *
        static_cast<double>(flash.garbagePopularityOf(block)) / 255.0;
    return static_cast<double>(flash.invalidCountOf(block)) -
           popularity_penalty;
}

std::uint64_t
PopularityAwareGcPolicy::selectVictim(
    const FlashArray &flash,
    const std::vector<std::uint64_t> &candidates) const
{
    zombie_assert(!candidates.empty(), "victim selection with no "
                                       "candidates");
    std::uint64_t best = candidates.front();
    double best_score = score(flash, best);
    for (const std::uint64_t block : candidates) {
        const double s = score(flash, block);
        if (s > best_score) {
            best = block;
            best_score = s;
        }
    }
    return best;
}

std::unique_ptr<GcPolicy>
makeGcPolicy(const std::string &name, double pop_weight)
{
    if (name == "greedy")
        return std::make_unique<GreedyGcPolicy>();
    if (name == "popularity")
        return std::make_unique<PopularityAwareGcPolicy>(pop_weight);
    // "wear:<base>" wraps the base policy in the wear-aware
    // tie-breaking decorator at its default tolerance.
    if (name.rfind("wear:", 0) == 0) {
        return std::make_unique<WearAwareGcPolicy>(
            makeGcPolicy(name.substr(5), pop_weight));
    }
    zombie_fatal("unknown GC policy '", name,
                 "' (expected greedy | popularity | wear:greedy | "
                 "wear:popularity)");
}

} // namespace zombie
