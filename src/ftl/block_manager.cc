#include "ftl/block_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

BlockManager::BlockManager(FlashArray &array)
    : flash(array), geom(array.geometry())
{
    const std::uint64_t planes = geom.totalPlanes();
    freeLists.resize(planes);
    userActive.assign(planes, kNoBlock);
    hotActive.assign(planes, kNoBlock);
    gcActive.assign(planes, kNoBlock);
    gcReserve.assign(planes, kNoBlock);

    if (geom.blocksPerPlane() < 4)
        zombie_fatal("need at least 4 blocks per plane (user + GC "
                     "write points, GC reserve, and data)");

    // All blocks start free. Stacks are filled in reverse so the
    // lowest-numbered block of each plane is allocated first (makes
    // tests deterministic). The highest-numbered block of each plane
    // becomes the GC reserve.
    for (std::uint64_t plane = 0; plane < planes; ++plane) {
        auto &stack = freeLists[plane];
        stack.reserve(geom.blocksPerPlane());
        gcReserve[plane] =
            plane * geom.blocksPerPlane() + geom.blocksPerPlane() - 1;
        for (std::uint32_t b = geom.blocksPerPlane() - 1; b-- > 0;)
            stack.push_back(plane * geom.blocksPerPlane() + b);
    }

    freeCounts.resize(planes);
    for (std::uint64_t plane = 0; plane < planes; ++plane)
        freeCounts[plane] =
            static_cast<std::uint32_t>(freeLists[plane].size());
    userRoom.resize(planes);
    for (std::uint64_t plane = 0; plane < planes; ++plane)
        refreshUserRoom(plane);

    // Channel-first plane visit order: consecutive host writes land
    // on different channels, maximizing bus-level parallelism.
    const std::uint64_t planes_per_channel =
        planes / geom.channels();
    planeOrder.reserve(planes);
    for (std::uint64_t offset = 0; offset < planes_per_channel;
         ++offset) {
        for (std::uint32_t ch = 0; ch < geom.channels(); ++ch)
            planeOrder.push_back(ch * planes_per_channel + offset);
    }

    // Victim index: each plane's list can hold at most every block of
    // the plane, so one up-front reserve makes all later maintenance
    // allocation-free. Seed from the array's current state (usually
    // empty, but an already-written array is legal) and subscribe to
    // its garbage transitions.
    candidates.resize(planes);
    for (auto &list : candidates)
        list.reserve(geom.blocksPerPlane());
    inCandidates.assign(geom.totalBlocks(), false);
    planeEpochs.assign(planes, 0);
    for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b)
        updateCandidate(b);
    // Every notified transition changes a victim score or candidate
    // set, so the plane epoch bumps even when membership is stable.
    flash.setBlockListener([this](std::uint64_t block) {
        ++planeEpochs[geom.planeOfBlock(block)];
        updateCandidate(block);
    });
}

std::uint64_t
BlockManager::nextUserPlane()
{
    if (!dieLoad && !loadProbe) {
        const std::uint64_t plane = planeOrder[rrCursor];
        rrCursor = (rrCursor + 1) % planeOrder.size();
        return plane;
    }

    // Dynamic allocation: least-busy plane, visiting in round-robin
    // order so ties keep striping across channels. Planes that are
    // out of spare blocks are skipped unless every plane is.
    const std::uint64_t n = planeOrder.size();
    std::uint64_t best = planeOrder[rrCursor];
    Tick best_load = kMaxTick;
    bool best_has_room = false;

    if (dieLoad) {
        // Fast path: this scan runs once per host write, so room is
        // read from the incrementally maintained bit and the die is
        // a table lookup instead of a division.
        std::uint64_t idx = rrCursor;
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t plane = planeOrder[idx];
            if (++idx == n)
                idx = 0;
            const bool has_room = userRoom[plane];
            if (best_has_room && !has_room)
                continue;
            const Tick load = dieLoad[planeDie[plane]];
            if ((has_room && !best_has_room) || load < best_load) {
                best = plane;
                best_load = load;
                best_has_room = has_room;
            }
        }
        if (++rrCursor == n)
            rrCursor = 0;
        return best;
    }

    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t plane = planeOrder[(rrCursor + i) % n];
        const bool has_room = !freeLists[plane].empty() ||
                              (userActive[plane] != kNoBlock &&
                               flash.blockHasRoom(userActive[plane])) ||
                              (hotActive[plane] != kNoBlock &&
                               flash.blockHasRoom(hotActive[plane]));
        if (best_has_room && !has_room)
            continue;
        const Tick load = loadProbe(plane);
        if ((has_room && !best_has_room) || load < best_load) {
            best = plane;
            best_load = load;
            best_has_room = has_room;
        }
    }
    rrCursor = (rrCursor + 1) % n;
    return best;
}

void
BlockManager::setLoadProbe(PlaneLoadProbe probe)
{
    loadProbe = std::move(probe);
}

void
BlockManager::setDieLoadView(const Tick *die_busy,
                             std::uint32_t planes_per_die)
{
    zombie_assert(!die_busy || planes_per_die > 0,
                  "die-load view needs planes per die");
    dieLoad = die_busy;
    dieLoadPlanesPerDie = planes_per_die;
    planeDie.resize(geom.totalPlanes());
    for (std::uint64_t p = 0; p < planeDie.size(); ++p)
        planeDie[p] = static_cast<std::uint32_t>(p / planes_per_die);
}

std::uint64_t
BlockManager::popFree(std::uint64_t plane, bool for_gc)
{
    ++planeEpochs[plane];
    auto &stack = freeLists[plane];
    if (!stack.empty()) {
        const std::uint64_t block = stack.back();
        stack.pop_back();
        --freeCounts[plane];
        if (stack.empty())
            ++zeroFreePlanes;
        return block;
    }
    // GC may dip into its reserve so collection always progresses.
    if (for_gc && gcReserve[plane] != kNoBlock) {
        const std::uint64_t block = gcReserve[plane];
        gcReserve[plane] = kNoBlock;
        return block;
    }
    zombie_panic("plane ", plane, " ran out of free blocks; "
                 "GC thresholds failed to keep up");
}

Ppn
BlockManager::allocatePage(std::uint64_t plane, Stream stream)
{
    auto &active = stream == Stream::Gc
                       ? gcActive[plane]
                       : (stream == Stream::UserHot ? hotActive[plane]
                                                    : userActive[plane]);
    if (active == kNoBlock || !flash.blockHasRoom(active)) {
        const std::uint64_t retired = active;
        active = popFree(plane, stream == Stream::Gc);
        // The write point rolled over: the retired block just became
        // inactive, which may make it a victim candidate.
        if (retired != kNoBlock)
            updateCandidate(retired);
    }
    const Ppn ppn = flash.programPage(active);
    // The program may have filled the write point, and the roll-over
    // above may have drained the free stack.
    refreshUserRoom(plane);
    return ppn;
}

bool
BlockManager::streamHasRoom(std::uint64_t plane, Stream stream) const
{
    const std::uint64_t active =
        stream == Stream::Gc
            ? gcActive[plane]
            : (stream == Stream::UserHot ? hotActive[plane]
                                         : userActive[plane]);
    return active != kNoBlock && flash.blockHasRoom(active);
}

std::uint32_t
BlockManager::minFreeBlocks() const
{
    std::uint32_t lo = ~0u;
    for (const auto &stack : freeLists)
        lo = std::min<std::uint32_t>(
            lo, static_cast<std::uint32_t>(stack.size()));
    return lo;
}

void
BlockManager::releaseBlock(std::uint64_t block_index)
{
    const std::uint64_t plane = geom.planeOfBlock(block_index);
    zombie_assert(flash.block(block_index).writePtr == 0,
                  "releasing a non-erased block ", block_index);
    ++planeEpochs[plane];
    if (userActive[plane] == block_index)
        userActive[plane] = kNoBlock;
    if (hotActive[plane] == block_index)
        hotActive[plane] = kNoBlock;
    if (gcActive[plane] == block_index)
        gcActive[plane] = kNoBlock;
    // Refill the GC reserve before feeding the general pool.
    if (gcReserve[plane] == kNoBlock) {
        gcReserve[plane] = block_index;
    } else {
        if (freeLists[plane].empty())
            --zeroFreePlanes;
        freeLists[plane].push_back(block_index);
        ++freeCounts[plane];
    }
    updateCandidate(block_index);
    refreshUserRoom(plane);
}

bool
BlockManager::isActive(std::uint64_t block_index) const
{
    const std::uint64_t plane = geom.planeOfBlock(block_index);
    return userActive[plane] == block_index ||
           hotActive[plane] == block_index ||
           gcActive[plane] == block_index;
}

void
BlockManager::refreshUserRoom(std::uint64_t plane)
{
    userRoom[plane] =
        freeCounts[plane] > 0 ||
        (userActive[plane] != kNoBlock &&
         flash.blockHasRoom(userActive[plane])) ||
        (hotActive[plane] != kNoBlock &&
         flash.blockHasRoom(hotActive[plane]));
}

void
BlockManager::updateCandidate(std::uint64_t block_index)
{
    const BlockInfo &info = flash.block(block_index);
    // Only fully written blocks are collected; partially written
    // inactive blocks do not exist by construction.
    const bool want = info.invalidCount > 0 &&
                      info.writePtr == geom.pagesPerBlock() &&
                      !isActive(block_index);
    if (want == static_cast<bool>(inCandidates[block_index]))
        return;
    inCandidates[block_index] = want;
    auto &list = candidates[geom.planeOfBlock(block_index)];
    const auto it =
        std::lower_bound(list.begin(), list.end(), block_index);
    if (want)
        list.insert(it, block_index);
    else
        list.erase(it);
}

const std::vector<std::uint64_t> &
BlockManager::victimCandidates(std::uint64_t plane) const
{
    zombie_assert(plane < candidates.size(), "plane out of bounds");
    return candidates[plane];
}

} // namespace zombie
