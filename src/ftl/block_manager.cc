#include "ftl/block_manager.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

BlockManager::BlockManager(FlashArray &array)
    : flash(array), geom(array.geometry())
{
    const std::uint64_t planes = geom.totalPlanes();
    freeLists.resize(planes);
    userActive.assign(planes, kNoBlock);
    hotActive.assign(planes, kNoBlock);
    gcActive.assign(planes, kNoBlock);
    gcReserve.assign(planes, kNoBlock);

    if (geom.blocksPerPlane() < 4)
        zombie_fatal("need at least 4 blocks per plane (user + GC "
                     "write points, GC reserve, and data)");

    // All blocks start free. Stacks are filled in reverse so the
    // lowest-numbered block of each plane is allocated first (makes
    // tests deterministic). The highest-numbered block of each plane
    // becomes the GC reserve.
    for (std::uint64_t plane = 0; plane < planes; ++plane) {
        auto &stack = freeLists[plane];
        stack.reserve(geom.blocksPerPlane());
        gcReserve[plane] =
            plane * geom.blocksPerPlane() + geom.blocksPerPlane() - 1;
        for (std::uint32_t b = geom.blocksPerPlane() - 1; b-- > 0;)
            stack.push_back(plane * geom.blocksPerPlane() + b);
    }

    freeCounts.resize(planes);
    for (std::uint64_t plane = 0; plane < planes; ++plane)
        freeCounts[plane] =
            static_cast<std::uint32_t>(freeLists[plane].size());
    userRoom.assign(planes, 1);
    for (std::uint64_t plane = 0; plane < planes; ++plane)
        refreshUserRoom(plane);

    // GC pacing masks: sized one bit per plane, trailing bits clear.
    // Watermarks default to 0 until the FTL configures its own; the
    // zero mask and the gate bits are meaningful regardless.
    const std::size_t mask_words = (planes + 63) / 64;
    zeroMask.assign(mask_words, 0);
    lowMask.assign(mask_words, 0);
    softMask.assign(mask_words, 0);
    gateOkMask.assign(mask_words, 0);
    for (std::uint64_t plane = 0; plane < planes; ++plane) {
        gateOkMask[plane >> 6] |= 1ULL << (plane & 63);
        refreshWaterBits(plane);
    }

    // Channel-first plane visit order: consecutive host writes land
    // on different channels, maximizing bus-level parallelism.
    const std::uint64_t planes_per_channel =
        planes / geom.channels();
    planeOrder.reserve(planes);
    for (std::uint64_t offset = 0; offset < planes_per_channel;
         ++offset) {
        for (std::uint32_t ch = 0; ch < geom.channels(); ++ch)
            planeOrder.push_back(ch * planes_per_channel + offset);
    }

    // Victim index: each plane's list can hold at most every block of
    // the plane, so one up-front reserve makes all later maintenance
    // allocation-free. Seed from the array's current state (usually
    // empty, but an already-written array is legal) and subscribe to
    // its garbage transitions.
    candidates.resize(planes);
    for (auto &list : candidates)
        list.reserve(geom.blocksPerPlane());
    inCandidates.assign(geom.totalBlocks(), false);
    planeEpochs.assign(planes, 0);
    for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b)
        updateCandidate(b);
    // Every notified transition changes a victim score or candidate
    // set, so the plane epoch bumps even when membership is stable.
    // Plain function pointer + context: this fires per invalidation.
    flash.setBlockListener(&BlockManager::onBlockChanged, this);
}

void
BlockManager::onBlockChanged(void *ctx, std::uint64_t block)
{
    auto *self = static_cast<BlockManager *>(ctx);
    self->bumpPlaneEpoch(self->geom.planeOfBlock(block));
    self->updateCandidate(block);
}

void
BlockManager::configureGcWatermarks(std::uint32_t low_water,
                                    std::uint32_t soft_water)
{
    gcLowWater = low_water;
    gcSoftWater = soft_water;
    for (std::uint64_t plane = 0; plane < freeCounts.size(); ++plane)
        refreshWaterBits(plane);
}

void
BlockManager::refreshWaterBits(std::uint64_t plane)
{
    const std::uint64_t bit = 1ULL << (plane & 63);
    const std::uint64_t word = plane >> 6;
    const std::uint32_t free = freeCounts[plane];
    if (free == 0)
        zeroMask[word] |= bit;
    else
        zeroMask[word] &= ~bit;
    if (free <= gcLowWater)
        lowMask[word] |= bit;
    else
        lowMask[word] &= ~bit;
    if (free <= gcSoftWater)
        softMask[word] |= bit;
    else
        softMask[word] &= ~bit;
}

std::uint64_t
BlockManager::nextUserPlane()
{
    if (!dieLoad && !loadProbe) {
        const std::uint64_t plane = planeOrder[rrCursor];
        rrCursor = (rrCursor + 1) % planeOrder.size();
        return plane;
    }

    // Dynamic allocation: least-busy plane, visiting in round-robin
    // order so ties keep striping across channels. Planes that are
    // out of spare blocks are skipped unless every plane is.
    const std::uint64_t n = planeOrder.size();
    std::uint64_t best = planeOrder[rrCursor];
    Tick best_load = kMaxTick;
    bool best_has_room = false;

    if (dieLoad) {
        // Fast path: this scan runs once per host write, so room is
        // read from the incrementally maintained bit and the die is
        // a table lookup instead of a division.
        std::uint64_t idx = rrCursor;
        if (noRoomPlanes == 0) {
            // Every plane has room (the steady state): the rotated
            // strict-< argmin over positions picks the first rotated
            // position whose die carries the globally smallest load.
            // Scan the die table (planes / planesPerDie entries) for
            // that minimum, then take the nearest-at-or-after-cursor
            // position among the dies that carry it — far cheaper
            // than gathering the load of all planes.
            // With the group-min accelerator the minimum comes from
            // the (dies / dieGroupSize)-entry group table, and only
            // groups carrying it are descended into — the candidate
            // die set and visit order are identical, so the choice
            // is byte-identical to the flat scan.
            Tick min_load;
            if (dieGroupLoad) {
                min_load = dieGroupLoad[0];
                for (std::uint32_t g = 1; g < dieGroupCount; ++g)
                    min_load = std::min(min_load, dieGroupLoad[g]);
            } else {
                min_load = dieLoad[0];
                for (std::uint32_t d = 1; d < dieCount; ++d)
                    min_load = std::min(min_load, dieLoad[d]);
            }
            // The sought position is the first one at or after the
            // cursor (wrapping) whose die carries min_load. GC
            // bursts leave whole burst's worth of dies with the
            // same completion tick, so the minimum is usually
            // carried by many dies and a short forward probe from
            // the cursor finds it in a step or two. Probe a bounded
            // window first; a sparse minimum falls back to the
            // per-die candidate descent. Both compute the same
            // position, so the choice is byte-identical either way.
            bool found = false;
            std::uint64_t probe = rrCursor;
            for (std::uint32_t k = 0; k < kMinProbeWindow; ++k) {
                if (dieLoad[orderDie[probe]] == min_load) {
                    idx = probe;
                    found = true;
                    break;
                }
                if (++probe == n)
                    probe = 0;
            }
            if (!found) {
                // Unwrapped positions (pos, or pos + n once
                // wrapped) are all >= rrCursor, so their plain min
                // is the rotated min.
                std::uint64_t first_pos = 2 * n;
                auto consider = [&](std::uint32_t d) {
                    if (dieLoad[d] != min_load)
                        return;
                    const auto &pos = diePositions[d];
                    const auto it = std::lower_bound(
                        pos.begin(), pos.end(), rrCursor);
                    const std::uint64_t cand =
                        it != pos.end() ? *it : pos.front() + n;
                    first_pos = std::min(first_pos, cand);
                };
                if (dieGroupLoad) {
                    for (std::uint32_t g = 0; g < dieGroupCount;
                         ++g) {
                        if (dieGroupLoad[g] != min_load)
                            continue;
                        const std::uint32_t base = g * dieGroupSize;
                        for (std::uint32_t d = base;
                             d < base + dieGroupSize; ++d)
                            consider(d);
                    }
                } else {
                    for (std::uint32_t d = 0; d < dieCount; ++d)
                        consider(d);
                }
                idx = first_pos >= n ? first_pos - n : first_pos;
            }
            if (++rrCursor == n)
                rrCursor = 0;
            return planeOrder[idx];
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t plane = planeOrder[idx];
            if (++idx == n)
                idx = 0;
            const bool has_room = userRoom[plane];
            if (best_has_room && !has_room)
                continue;
            const Tick load = dieLoad[planeDie[plane]];
            if ((has_room && !best_has_room) || load < best_load) {
                best = plane;
                best_load = load;
                best_has_room = has_room;
            }
        }
        if (++rrCursor == n)
            rrCursor = 0;
        return best;
    }

    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t plane = planeOrder[(rrCursor + i) % n];
        const bool has_room = !freeLists[plane].empty() ||
                              (userActive[plane] != kNoBlock &&
                               flash.blockHasRoom(userActive[plane])) ||
                              (hotActive[plane] != kNoBlock &&
                               flash.blockHasRoom(hotActive[plane]));
        if (best_has_room && !has_room)
            continue;
        const Tick load = loadProbe(plane);
        if ((has_room && !best_has_room) || load < best_load) {
            best = plane;
            best_load = load;
            best_has_room = has_room;
        }
    }
    rrCursor = (rrCursor + 1) % n;
    return best;
}

void
BlockManager::setLoadProbe(PlaneLoadProbe probe)
{
    loadProbe = std::move(probe);
}

void
BlockManager::setDieLoadView(const Tick *die_busy,
                             std::uint32_t planes_per_die)
{
    zombie_assert(!die_busy || planes_per_die > 0,
                  "die-load view needs planes per die");
    dieLoad = die_busy;
    dieLoadPlanesPerDie = planes_per_die;
    planeDie.resize(geom.totalPlanes());
    for (std::uint64_t p = 0; p < planeDie.size(); ++p)
        planeDie[p] = static_cast<std::uint32_t>(p / planes_per_die);
    dieCount = planeDie.empty() ? 0 : planeDie.back() + 1;
    orderDie.resize(planeOrder.size());
    for (std::uint64_t i = 0; i < planeOrder.size(); ++i)
        orderDie[i] = planeDie[planeOrder[i]];
    diePositions.assign(dieCount, {});
    for (auto &list : diePositions)
        list.reserve(planes_per_die);
    for (std::uint32_t i = 0; i < orderDie.size(); ++i)
        diePositions[orderDie[i]].push_back(i);
}

void
BlockManager::setDieLoadGroups(const Tick *group_min,
                               std::uint32_t dies_per_group)
{
    if (!group_min) {
        dieGroupLoad = nullptr;
        dieGroupSize = 0;
        dieGroupCount = 0;
        return;
    }
    zombie_assert(dieLoad, "die-load groups need a die-load view");
    zombie_assert(dies_per_group > 0 &&
                      dieCount % dies_per_group == 0,
                  "group size must tile the die table");
    dieGroupLoad = group_min;
    dieGroupSize = dies_per_group;
    dieGroupCount = dieCount / dies_per_group;
}

std::uint64_t
BlockManager::popFree(std::uint64_t plane, bool for_gc)
{
    bumpPlaneEpoch(plane);
    auto &stack = freeLists[plane];
    if (!stack.empty()) {
        const std::uint64_t block = stack.back();
        stack.pop_back();
        --freeCounts[plane];
        refreshWaterBits(plane);
        if (stack.empty())
            ++zeroFreePlanes;
        return block;
    }
    // GC may dip into its reserve so collection always progresses.
    if (for_gc && gcReserve[plane] != kNoBlock) {
        const std::uint64_t block = gcReserve[plane];
        gcReserve[plane] = kNoBlock;
        return block;
    }
    zombie_panic("plane ", plane, " ran out of free blocks; "
                 "GC thresholds failed to keep up");
}

Ppn
BlockManager::allocatePage(std::uint64_t plane, Stream stream)
{
    auto &active = stream == Stream::Gc
                       ? gcActive[plane]
                       : (stream == Stream::UserHot ? hotActive[plane]
                                                    : userActive[plane]);
    if (active == kNoBlock || !flash.blockHasRoom(active)) {
        const std::uint64_t retired = active;
        active = popFree(plane, stream == Stream::Gc);
        // The write point rolled over: the retired block just became
        // inactive, which may make it a victim candidate.
        if (retired != kNoBlock)
            updateCandidate(retired);
    }
    const Ppn ppn = flash.programPage(active);
    // The program may have filled the write point, and the roll-over
    // above may have drained the free stack.
    refreshUserRoom(plane);
    return ppn;
}

bool
BlockManager::streamHasRoom(std::uint64_t plane, Stream stream) const
{
    const std::uint64_t active =
        stream == Stream::Gc
            ? gcActive[plane]
            : (stream == Stream::UserHot ? hotActive[plane]
                                         : userActive[plane]);
    return active != kNoBlock && flash.blockHasRoom(active);
}

std::uint32_t
BlockManager::minFreeBlocks() const
{
    std::uint32_t lo = ~0u;
    for (const auto &stack : freeLists)
        lo = std::min<std::uint32_t>(
            lo, static_cast<std::uint32_t>(stack.size()));
    return lo;
}

void
BlockManager::releaseBlock(std::uint64_t block_index)
{
    const std::uint64_t plane = geom.planeOfBlock(block_index);
    zombie_assert(flash.writePtrOf(block_index) == 0,
                  "releasing a non-erased block ", block_index);
    bumpPlaneEpoch(plane);
    if (userActive[plane] == block_index)
        userActive[plane] = kNoBlock;
    if (hotActive[plane] == block_index)
        hotActive[plane] = kNoBlock;
    if (gcActive[plane] == block_index)
        gcActive[plane] = kNoBlock;
    // Refill the GC reserve before feeding the general pool.
    if (gcReserve[plane] == kNoBlock) {
        gcReserve[plane] = block_index;
    } else {
        if (freeLists[plane].empty())
            --zeroFreePlanes;
        freeLists[plane].push_back(block_index);
        ++freeCounts[plane];
        refreshWaterBits(plane);
    }
    updateCandidate(block_index);
    refreshUserRoom(plane);
}

bool
BlockManager::isActive(std::uint64_t block_index) const
{
    const std::uint64_t plane = geom.planeOfBlock(block_index);
    return userActive[plane] == block_index ||
           hotActive[plane] == block_index ||
           gcActive[plane] == block_index;
}

void
BlockManager::refreshUserRoom(std::uint64_t plane)
{
    const std::uint8_t had = userRoom[plane];
    const std::uint8_t has =
        freeCounts[plane] > 0 ||
        (userActive[plane] != kNoBlock &&
         flash.blockHasRoom(userActive[plane])) ||
        (hotActive[plane] != kNoBlock &&
         flash.blockHasRoom(hotActive[plane]));
    userRoom[plane] = has;
    noRoomPlanes += static_cast<std::uint64_t>(had) - has;
}

void
BlockManager::updateCandidate(std::uint64_t block_index)
{
    // Only fully written blocks are collected; partially written
    // inactive blocks do not exist by construction.
    const bool want = flash.invalidCountOf(block_index) > 0 &&
                      flash.writePtrOf(block_index) ==
                          geom.pagesPerBlock() &&
                      !isActive(block_index);
    if (want == static_cast<bool>(inCandidates[block_index]))
        return;
    inCandidates[block_index] = want;
    auto &list = candidates[geom.planeOfBlock(block_index)];
    const auto it =
        std::lower_bound(list.begin(), list.end(), block_index);
    if (want)
        list.insert(it, block_index);
    else
        list.erase(it);
}

const std::vector<std::uint64_t> &
BlockManager::victimCandidates(std::uint64_t plane) const
{
    zombie_assert(plane < candidates.size(), "plane out of bounds");
    return candidates[plane];
}

} // namespace zombie
