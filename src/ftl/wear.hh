/**
 * @file
 * Wear accounting and wear-aware victim selection.
 *
 * The paper's FTL "is comprised of (i) a Mapping Unit ... and (ii)
 * the garbage collection and wear levelling" (section IV-B), and its
 * lifetime argument rests on erase counts ("each NAND Flash cell can
 * endure only a limited number of erases"). This module provides:
 *
 *  - WearSummary: per-drive erase-count statistics (the lifetime
 *    metric behind Figure 10's erase reductions),
 *  - WearAwareGcPolicy: a decorator over any GcPolicy that breaks
 *    near-ties toward less-worn victims, bounding the erase-count
 *    skew the base policy would otherwise build up on hot planes.
 */

#ifndef ZOMBIE_FTL_WEAR_HH
#define ZOMBIE_FTL_WEAR_HH

#include <cstdint>
#include <memory>

#include "ftl/gc_policy.hh"
#include "nand/flash_array.hh"

namespace zombie
{

/** Drive-wide erase-count statistics. */
struct WearSummary
{
    std::uint32_t minErase = 0;
    std::uint32_t maxErase = 0;
    double meanErase = 0.0;
    double stddevErase = 0.0;

    /** max - min: the imbalance wear leveling must bound. */
    std::uint32_t
    skew() const
    {
        return maxErase - minErase;
    }
};

/** Compute erase-count statistics over every block in the array. */
WearSummary summarizeWear(const FlashArray &flash);

/**
 * Wear-aware tie-breaking decorator: victims whose base-policy score
 * is within @p tolerance garbage pages of the best are considered
 * equivalent, and the least-worn of them is chosen. tolerance = 0
 * degenerates to the base policy.
 */
class WearAwareGcPolicy : public GcPolicy
{
  public:
    WearAwareGcPolicy(std::unique_ptr<GcPolicy> base_policy,
                      std::uint32_t tolerance = 8);

    std::string name() const override;

    std::uint64_t
    selectVictim(const FlashArray &flash,
                 const std::vector<std::uint64_t> &candidates)
        const override;

    const GcPolicy &base() const { return *basePolicy; }

  private:
    std::unique_ptr<GcPolicy> basePolicy;
    std::uint32_t tol;
};

} // namespace zombie

#endif // ZOMBIE_FTL_WEAR_HH
