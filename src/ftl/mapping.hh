/**
 * @file
 * Page-level LPN-to-PPN mapping table (paper Figure 8).
 *
 * Besides the forward map, each LPN entry carries the 1-byte
 * popularity degree the paper adds ("not to lose the popularity
 * information of a data block once it is evicted from the dead-value
 * pool") and — simulation bookkeeping standing in for the page's
 * content — the fingerprint currently stored at the LPN, which the
 * controller needs when the page dies (its hash is inserted into the
 * dead-value pool). A one-owner reverse map supports GC relocation in
 * the non-deduplicated FTL; the dedup engine keeps its own owner
 * lists for shared pages.
 */

#ifndef ZOMBIE_FTL_MAPPING_HH
#define ZOMBIE_FTL_MAPPING_HH

#include <cstdint>
#include <vector>

#include "hash/fingerprint.hh"
#include "util/types.hh"

namespace zombie
{

/** Forward + reverse page-level mapping with popularity bytes. */
class MappingTable
{
  public:
    MappingTable(std::uint64_t logical_pages,
                 std::uint64_t physical_pages);

    std::uint64_t logicalPages() const { return forward.size(); }

    bool isMapped(Lpn lpn) const;
    Ppn ppnOf(Lpn lpn) const;

    /** Map (or remap) @p lpn to @p ppn, updating the reverse map. */
    void map(Lpn lpn, Ppn ppn);

    /** Drop the mapping for @p lpn (trim / update bookkeeping). */
    void unmap(Lpn lpn);

    /** Owner LPN of a physical page (kInvalidLpn if none). */
    Lpn lpnOf(Ppn ppn) const;

    /** Clear the reverse entry without touching the forward map. */
    void clearReverse(Ppn ppn);

    std::uint8_t popularity(Lpn lpn) const;
    void setPopularity(Lpn lpn, std::uint8_t pop);

    const Fingerprint &fingerprintOf(Lpn lpn) const;
    void setFingerprint(Lpn lpn, const Fingerprint &fp);

    std::uint64_t mappedCount() const { return mapped; }

    /** Per-entry RAM cost in bytes (Figure 8 accounting). */
    static constexpr std::size_t
    bytesPerEntry()
    {
        // PPN (8B when fully resident) + 1B popularity.
        return sizeof(Ppn) + 1;
    }

  private:
    void checkLpn(Lpn lpn) const;
    void checkPpn(Ppn ppn) const;

    std::vector<Ppn> forward;
    std::vector<Lpn> reverse;
    std::vector<std::uint8_t> pop;
    std::vector<Fingerprint> content;
    std::uint64_t mapped = 0;
};

} // namespace zombie

#endif // ZOMBIE_FTL_MAPPING_HH
