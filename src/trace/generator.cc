#include "trace/generator.hh"

#include "util/logging.hh"

namespace zombie
{

SyntheticTraceGenerator::SyntheticTraceGenerator(WorkloadProfile profile)
    : prof(std::move(profile)),
      hasher(prof.hashAlgo),
      rng(prof.seed),
      valueZipf(prof.popularPoolSize(), prof.valueAlpha),
      updateZipf(prof.footprintPages(), prof.updateLpnAlpha),
      readZipf(prof.footprintPages(), prof.readLpnAlpha),
      freshCounter(prof.popularPoolSize()),
      coldPages(prof.coldReadPages())
{
    prof.validate();
    poolValueWritten.assign(prof.popularPoolSize(), false);
    lpnContent.reserve(prof.footprintPages());
}

Tick
SyntheticTraceGenerator::nextArrivalDelta()
{
    double mean_us;
    if (burstRemaining > 0) {
        --burstRemaining;
        mean_us = prof.burstInterarrivalUs;
    } else if (rng.nextBool(prof.burstProb)) {
        burstRemaining = prof.burstLength;
        mean_us = prof.burstInterarrivalUs;
    } else {
        mean_us = prof.meanInterarrivalUs;
    }
    const double delta_us = rng.nextExponential(mean_us);
    return static_cast<Tick>(delta_us * 1000.0) + 1;
}

std::uint64_t
SyntheticTraceGenerator::pickValue(bool updating,
                                   std::uint64_t current_vid)
{
    // Redundant rewrite of the content already stored at the target
    // page (the Figure 13 W2/W3 pattern).
    if (updating && current_vid != TraceRecord::kNoValueId &&
        rng.nextBool(prof.sameValueProb)) {
        ++gstats.sameValueRewrites;
        return current_vid;
    }

    if (rng.nextBool(prof.newValueProb)) {
        ++gstats.freshValueWrites;
        return freshCounter++;
    }

    const std::uint64_t rank = valueZipf.sample(rng);
    if (!poolValueWritten[rank]) {
        poolValueWritten[rank] = true;
        ++gstats.distinctPoolValuesWritten;
    }
    return rank;
}

void
SyntheticTraceGenerator::emitWrite(TraceRecord &out)
{
    ++gstats.writes;

    const std::uint64_t used = lpnContent.size();
    const bool can_grow = used < prof.footprintPages();
    const bool must_grow = used == 0;
    // Fill the footprint at a constant rate so invalidations (and thus
    // garbage-page creation) are spread across the whole trace.
    const bool grow =
        must_grow || (can_grow && rng.nextBool(prof.footprintFrac));

    // Footprint indices are relative; the cold-read region occupies
    // LPNs [0, coldPages), writes land above it.
    std::uint64_t idx;
    std::uint64_t current_vid = TraceRecord::kNoValueId;
    if (grow) {
        idx = used;
        lpnContent.push_back(TraceRecord::kNoValueId);
        ++gstats.newLpnWrites;
    } else {
        const std::uint64_t rank = updateZipf.sample(rng);
        idx = rank % used;
        current_vid = lpnContent[idx];
        ++gstats.updateWrites;
    }

    const std::uint64_t vid = pickValue(!grow, current_vid);
    lpnContent[idx] = vid;

    out.op = OpType::Write;
    out.lpn = coldPages + idx;
    out.valueId = vid;
    out.fp = hasher.hashValueId(vid);
}

void
SyntheticTraceGenerator::emitRead(TraceRecord &out)
{
    ++gstats.reads;

    Lpn lpn;
    std::uint64_t vid;
    if (coldPages > 0 && rng.nextBool(prof.coldReadFrac)) {
        // Cold read: pre-existing, never-written unique content.
        lpn = rng.nextBounded(coldPages);
        vid = kColdValueBase + lpn;
    } else {
        const std::uint64_t used = lpnContent.size();
        zombie_assert(used > 0, "read emitted before any write");
        const std::uint64_t rank = readZipf.sample(rng);
        const std::uint64_t idx = rank % used;
        lpn = coldPages + idx;
        vid = lpnContent[idx];
    }

    if (readValues.insert(vid).second)
        ++gstats.distinctValuesRead;

    out.op = OpType::Read;
    out.lpn = lpn;
    out.valueId = vid;
    out.fp = hasher.hashValueId(vid);
}

bool
SyntheticTraceGenerator::next(TraceRecord &out)
{
    if (emitted >= prof.requests)
        return false;
    ++emitted;

    clock += nextArrivalDelta();
    out = TraceRecord{};
    out.arrival = clock;

    // The very first request must be a write so reads have content.
    const bool is_write =
        lpnContent.empty() || rng.nextBool(prof.writeRatio);
    if (is_write)
        emitWrite(out);
    else
        emitRead(out);
    return true;
}

std::vector<TraceRecord>
SyntheticTraceGenerator::generateAll()
{
    std::vector<TraceRecord> records;
    records.reserve(prof.requests);
    TraceRecord rec;
    while (next(rec))
        records.push_back(rec);
    return records;
}

std::uint64_t
SyntheticTraceGenerator::contentAt(Lpn lpn) const
{
    if (lpn < coldPages)
        return kColdValueBase + lpn;
    const std::uint64_t idx = lpn - coldPages;
    zombie_assert(idx < lpnContent.size(), "contentAt: unwritten LPN");
    return lpnContent[idx];
}

} // namespace zombie
