/**
 * @file
 * Multi-tenant trace frontend: a deterministic k-way merge of
 * per-tenant synthetic generator streams.
 *
 * Each tenant owns one SyntheticTraceGenerator (its own profile,
 * seed, arrival clock and value universe), modeling independent
 * hosts sharing one drive through NVMe-style namespaces:
 *
 *  - LPNs are offset into disjoint namespace ranges, tenant t's
 *    range starting at the prefix sum of the earlier tenants'
 *    totalLpnSpace(),
 *  - value ids are salted with (tenant << 56) so tenants never
 *    dedup against each other's content (fingerprints are recomputed
 *    from the salted id),
 *  - the merge emits the globally earliest arrival, tie-breaking on
 *    the lower tenant id, so the output is a pure function of the
 *    profiles.
 *
 * A single-tenant instance is the identity: tenant 0 keeps base 0,
 * salt 0 and its generator's exact record stream, so existing
 * single-stream traces and goldens do not move.
 */

#ifndef ZOMBIE_TRACE_MULTI_TENANT_HH
#define ZOMBIE_TRACE_MULTI_TENANT_HH

#include <cstdint>
#include <vector>

#include "hash/hasher.hh"
#include "trace/generator.hh"
#include "trace/profile.hh"
#include "trace/record.hh"

namespace zombie
{

/**
 * Derive per-tenant profiles from one base profile: the request
 * budget is split evenly (earlier tenants absorb the remainder, so
 * the drive-wide total is exactly base.requests) and seeds are
 * decorrelated per tenant. Tenant 0 keeps the base seed.
 */
std::vector<WorkloadProfile>
splitProfileAcrossTenants(const WorkloadProfile &base,
                          std::uint32_t tenants);

/** Streaming k-way merge over per-tenant generators. */
class MultiTenantTraceGenerator : public TraceSource
{
  public:
    /** One profile per tenant; 1 <= size <= kMaxTenants (fatal). */
    explicit MultiTenantTraceGenerator(
        std::vector<WorkloadProfile> profiles);

    /**
     * Produce the next merged record (tenant id, namespace-offset
     * LPN, salted value id). @return false when every tenant's
     * request budget is exhausted.
     */
    bool next(TraceRecord &out) override;

    /** Materialize the whole merged trace. */
    std::vector<TraceRecord> generateAll();

    std::uint32_t tenants() const
    {
        return static_cast<std::uint32_t>(gens.size());
    }

    /** First LPN of tenant @p t's namespace. */
    Lpn namespaceBase(std::uint32_t t) const { return bases[t]; }

    /** Pages in tenant @p t's namespace (its totalLpnSpace()). */
    std::uint64_t namespacePages(std::uint32_t t) const
    {
        return sizes[t];
    }

    /** Per-tenant namespace sizes, tenant order (SsdConfig wiring). */
    const std::vector<std::uint64_t> &allNamespacePages() const
    {
        return sizes;
    }

    /** Total LPN space across every namespace (drive sizing). */
    std::uint64_t totalLpnSpace() const;

    /** Tenant @p t's underlying generator (profile, stats). */
    const SyntheticTraceGenerator &generator(std::uint32_t t) const
    {
        return gens[t];
    }

    /**
     * Value-id salt for @p tenant: the identity for tenant 0, else
     * vid + (tenant << 56), keeping every tenant's fresh, popular,
     * and cold-read id regions disjoint from every other tenant's
     * (and from the prefill region, see kMaxTenants).
     */
    static std::uint64_t saltValueId(std::uint32_t tenant,
                                     std::uint64_t vid)
    {
        return tenant == 0
                   ? vid
                   : vid + (static_cast<std::uint64_t>(tenant) << 56);
    }

  private:
    /** Pull tenant @p t's next record into heads[t]; false at end. */
    bool refill(std::uint32_t t);

    std::vector<SyntheticTraceGenerator> gens;
    std::vector<ContentHasher> salters;
    std::vector<Lpn> bases;
    std::vector<std::uint64_t> sizes;
    std::vector<TraceRecord> heads;
    std::vector<bool> hasHead;
};

} // namespace zombie

#endif // ZOMBIE_TRACE_MULTI_TENANT_HH
