#include "trace/multi_tenant.hh"

#include "util/logging.hh"

namespace zombie
{

namespace
{

/** Odd 64-bit mixing constant decorrelating per-tenant seeds. */
constexpr std::uint64_t kSeedStride = 0x9E37'79B9'7F4A'7C15ULL;

} // namespace

std::vector<WorkloadProfile>
splitProfileAcrossTenants(const WorkloadProfile &base,
                          std::uint32_t tenants)
{
    if (tenants == 0 || tenants > kMaxTenants) {
        zombie_fatal("tenant count ", tenants, " outside [1, ",
                     kMaxTenants, "]");
    }
    std::vector<WorkloadProfile> profiles;
    profiles.reserve(tenants);
    const std::uint64_t share = base.requests / tenants;
    const std::uint64_t remainder = base.requests % tenants;
    for (std::uint32_t t = 0; t < tenants; ++t) {
        WorkloadProfile p = base;
        p.requests = share + (t < remainder ? 1 : 0);
        p.seed = base.seed + kSeedStride * t;
        if (t > 0)
            p.name = base.name + "-t" + std::to_string(t);
        profiles.push_back(std::move(p));
    }
    return profiles;
}

MultiTenantTraceGenerator::MultiTenantTraceGenerator(
    std::vector<WorkloadProfile> profiles)
{
    if (profiles.empty() || profiles.size() > kMaxTenants) {
        zombie_fatal("multi-tenant generator needs 1..", kMaxTenants,
                     " profiles, got ", profiles.size());
    }
    const auto n = static_cast<std::uint32_t>(profiles.size());
    gens.reserve(n);
    salters.reserve(n);
    bases.reserve(n);
    sizes.reserve(n);
    Lpn base = 0;
    for (std::uint32_t t = 0; t < n; ++t) {
        salters.emplace_back(profiles[t].hashAlgo);
        gens.emplace_back(std::move(profiles[t]));
        bases.push_back(base);
        sizes.push_back(gens.back().profile().totalLpnSpace());
        base += sizes.back();
    }
    heads.resize(n);
    hasHead.assign(n, false);
    for (std::uint32_t t = 0; t < n; ++t)
        hasHead[t] = refill(t);
}

bool
MultiTenantTraceGenerator::refill(std::uint32_t t)
{
    TraceRecord rec;
    if (!gens[t].next(rec))
        return false;
    rec.tenant = static_cast<std::uint16_t>(t);
    rec.lpn += bases[t];
    if (t > 0 && rec.valueId != TraceRecord::kNoValueId) {
        // Salted ids live in a tenant-private region; the fingerprint
        // must follow so content engines see them as distinct values.
        rec.valueId = saltValueId(t, rec.valueId);
        rec.fp = salters[t].hashValueId(rec.valueId);
    }
    heads[t] = rec;
    return true;
}

bool
MultiTenantTraceGenerator::next(TraceRecord &out)
{
    // Linear scan beats a heap at <= kMaxTenants streams, and the
    // lowest-tenant tie-break falls out of the strict '<'.
    const auto n = static_cast<std::uint32_t>(gens.size());
    std::uint32_t best = n;
    for (std::uint32_t t = 0; t < n; ++t) {
        if (!hasHead[t])
            continue;
        if (best == n || heads[t].arrival < heads[best].arrival)
            best = t;
    }
    if (best == n)
        return false;
    out = heads[best];
    hasHead[best] = refill(best);
    return true;
}

std::vector<TraceRecord>
MultiTenantTraceGenerator::generateAll()
{
    std::uint64_t total = 0;
    for (const auto &g : gens)
        total += g.profile().requests;
    std::vector<TraceRecord> records;
    records.reserve(total);
    TraceRecord rec;
    while (next(rec))
        records.push_back(rec);
    return records;
}

std::uint64_t
MultiTenantTraceGenerator::totalLpnSpace() const
{
    return bases.back() + sizes.back();
}

} // namespace zombie
