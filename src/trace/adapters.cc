#include "trace/adapters.hh"

#include <algorithm>
#include <utility>

#include "trace/io.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

namespace
{

/**
 * Keeps synthesized external content ids clear of the generator's
 * value-id regions (tenant salts in the low top-nibble, cold reads
 * at 0xC0.., prefill at 0xF0..). XOR with a constant is a bijection,
 * so it cannot break (lpn, version) injectivity.
 */
constexpr std::uint64_t kExternalIdSalt = 0xe3a1d95b00000000ULL;

constexpr std::uint64_t kGoldenRatio = 0x9e3779b97f4a7c15ULL;

std::unique_ptr<RawTraceSource>
openRawSource(const ExternalTraceConfig &cfg)
{
    switch (cfg.format) {
      case ExternalFormat::FiuBlkio:
        return std::make_unique<FiuBlkioSource>(cfg.path);
      case ExternalFormat::MsrCsv:
        return std::make_unique<MsrCsvSource>(cfg.path);
      case ExternalFormat::GenericCsv:
        return std::make_unique<GenericCsvSource>(cfg.path);
      case ExternalFormat::Native:
        break;
    }
    zombie_panic("native traces bypass the raw-parser layer");
}

} // namespace

Fingerprint
synthesizeFingerprint(Lpn lpn, std::uint32_t version)
{
    zombie_assert(lpn < (1ULL << 40),
                  "external LPN exceeds the 2^40 synthesis range");
    const std::uint64_t id =
        ((static_cast<std::uint64_t>(version) << 40) | lpn) ^
        kExternalIdSalt;
    return Fingerprint::fromValueId(id);
}

Fingerprint
pageFingerprint(const Fingerprint &native, std::uint64_t page_index)
{
    if (page_index == 0)
        return native;
    // Later pages of a multi-page extent get distinct deterministic
    // fingerprints derived from the extent hash and their index.
    return Fingerprint::fromValueId(native.word0() ^
                                    (native.word1() * kGoldenRatio) ^
                                    (page_index * kGoldenRatio));
}

ExternalPageSource::ExternalPageSource(
    std::unique_ptr<RawTraceSource> raw, std::uint32_t version_period)
    : src(std::move(raw)), period(version_period)
{
}

bool
ExternalPageSource::next(TraceRecord &out)
{
    if (!active) {
        if (!src->next(cur))
            return false;
        // A zero-length request still touches the page at offset.
        const std::uint64_t len =
            std::max<std::uint64_t>(cur.length, 1);
        page = cur.offset / kPageSize;
        lastPage = (cur.offset + len - 1) / kPageSize;
        pageIndex = 0;
        active = true;
    }

    out = TraceRecord{};
    out.arrival = cur.arrival;
    out.op = cur.write ? OpType::Write : OpType::Read;
    out.lpn = page;
    out.valueId = TraceRecord::kNoValueId;
    if (cur.hasFingerprint) {
        out.fp = pageFingerprint(cur.fp, pageIndex);
    } else {
        // Hashless formats: name content by (LBA, version). Writes
        // bump the page's version — wrapping modulo the period, so
        // overwritten content eventually recurs — and reads see the
        // version currently on the page (0 if never written).
        std::uint32_t version = 0;
        if (cur.write) {
            std::uint32_t &slot = versions[page];
            slot = period ? (slot + 1) % period : slot + 1;
            version = slot;
        } else {
            const auto it = versions.find(page);
            if (it != versions.end())
                version = it->second;
        }
        out.fp = synthesizeFingerprint(page, version);
    }

    ++pageIndex;
    if (page >= lastPage)
        active = false;
    else
        ++page;
    return true;
}

bool
WindowSource::next(TraceRecord &out)
{
    while (toSkip > 0) {
        if (!src->next(out))
            return false;
        --toSkip;
    }
    if (bounded && remaining == 0)
        return false;
    if (!src->next(out))
        return false;
    if (bounded)
        --remaining;
    return true;
}

bool
StrideSource::next(TraceRecord &out)
{
    for (;;) {
        if (!src->next(out))
            return false;
        const bool keep = index % stride_ == 0;
        ++index;
        if (keep)
            return true;
    }
}

bool
CompactingSource::next(TraceRecord &out)
{
    if (!src->next(out))
        return false;
    const auto it = map->find(out.lpn);
    // The remap was built by a scan over this same deterministic
    // stream, so every LPN the replay pass sees must be present.
    zombie_assert(it != map->end(),
                  "LPN absent from the compaction remap");
    out.lpn = it->second;
    return true;
}

TraceSourceFactory
makeExternalSourceFactory(const ExternalTraceConfig &cfg)
{
    return [cfg]() -> std::unique_ptr<TraceSource> {
        std::unique_ptr<TraceSource> src;
        if (cfg.format == ExternalFormat::Native)
            src = std::make_unique<TraceReader>(cfg.path);
        else
            src = std::make_unique<ExternalPageSource>(
                openRawSource(cfg), cfg.versionPeriod);
        if (cfg.skip > 0 || cfg.limit > 0)
            src = std::make_unique<WindowSource>(std::move(src),
                                                 cfg.skip, cfg.limit);
        if (cfg.stride > 1)
            src = std::make_unique<StrideSource>(std::move(src),
                                                 cfg.stride);
        return src;
    };
}

ScannedTrace
scanExternalTrace(const ExternalTraceConfig &cfg)
{
    ScannedTrace out;
    const TraceSourceFactory inner = makeExternalSourceFactory(cfg);
    auto remap = std::make_shared<LpnRemap>();
    TraceSummarizer summarizer;

    auto src = inner();
    TraceRecord rec;
    Lpn max_lpn = 0;
    bool first = true;
    while (src->next(rec)) {
        ++out.records;
        if (cfg.compact) {
            const auto [it, fresh] = remap->insert(
                {rec.lpn, static_cast<Lpn>(remap->size())});
            (void)fresh;
            rec.lpn = it->second;
        }
        max_lpn = std::max(max_lpn, rec.lpn);
        if (cfg.summarize) {
            summarizer.observe(rec);
        } else {
            // Cheap fields only: skip the O(distinct-values) sets.
            if (rec.isWrite())
                ++out.summary.writes;
            else
                ++out.summary.reads;
            if (first)
                out.summary.firstArrival = rec.arrival;
            out.summary.lastArrival = rec.arrival;
        }
        first = false;
    }

    out.footprintPages =
        cfg.compact ? remap->size()
                    : (out.records > 0 ? max_lpn + 1 : 0);
    if (cfg.summarize)
        out.summary = summarizer.finish();
    else
        out.summary.distinctLpns = out.footprintPages;

    if (cfg.compact) {
        out.factory = [inner, remap]() -> std::unique_ptr<TraceSource> {
            return std::make_unique<CompactingSource>(inner(), remap);
        };
    } else {
        out.factory = inner;
    }
    return out;
}

} // namespace zombie
