#include "trace/adapters.hh"

#include <algorithm>
#include <utility>

#include "trace/io.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

namespace
{

/**
 * Keeps synthesized external content ids clear of the generator's
 * value-id regions (tenant salts in the low top-nibble, cold reads
 * at 0xC0.., prefill at 0xF0..). XOR with a constant is a bijection,
 * so it cannot break (lpn, version) injectivity.
 */
constexpr std::uint64_t kExternalIdSalt = 0xe3a1d95b00000000ULL;

constexpr std::uint64_t kGoldenRatio = 0x9e3779b97f4a7c15ULL;

std::unique_ptr<RawTraceSource>
openRawSource(const ExternalTraceConfig &cfg)
{
    switch (cfg.format) {
      case ExternalFormat::FiuBlkio:
        return std::make_unique<FiuBlkioSource>(cfg.path);
      case ExternalFormat::MsrCsv:
        return std::make_unique<MsrCsvSource>(cfg.path);
      case ExternalFormat::GenericCsv:
        return std::make_unique<GenericCsvSource>(cfg.path);
      case ExternalFormat::Native:
        break;
    }
    zombie_panic("native traces bypass the raw-parser layer");
}

} // namespace

Fingerprint
synthesizeFingerprint(Lpn lpn, std::uint32_t version,
                      std::uint32_t tenant)
{
    zombie_assert(lpn < (1ULL << 40),
                  "external LPN exceeds the 2^40 synthesis range");
    std::uint64_t id =
        (static_cast<std::uint64_t>(version) << 40) | lpn;
    if (tenant != 0) {
        // Tenant salt occupies the top byte; versions then live in
        // bits 40..55, so the three fields never overlap and the
        // synthesis stays injective per tenant.
        zombie_assert(version < (1U << 16),
                      "per-tenant synthesis needs version < 2^16");
        zombie_assert(tenant < kMaxTenants,
                      "tenant id exceeds kMaxTenants");
        id |= static_cast<std::uint64_t>(tenant) << 56;
    }
    return Fingerprint::fromValueId(id ^ kExternalIdSalt);
}

Fingerprint
pageFingerprint(const Fingerprint &native, std::uint64_t page_index)
{
    if (page_index == 0)
        return native;
    // Later pages of a multi-page extent get distinct deterministic
    // fingerprints derived from the extent hash and their index.
    return Fingerprint::fromValueId(native.word0() ^
                                    (native.word1() * kGoldenRatio) ^
                                    (page_index * kGoldenRatio));
}

ExternalPageSource::ExternalPageSource(
    std::unique_ptr<RawTraceSource> raw, std::uint32_t version_period,
    bool device_tenants)
    : src(std::move(raw)), period(version_period),
      deviceTenants(device_tenants)
{
}

bool
ExternalPageSource::next(TraceRecord &out)
{
    if (!active) {
        if (!src->next(cur))
            return false;
        // A zero-length request still touches the page at offset.
        const std::uint64_t len =
            std::max<std::uint64_t>(cur.length, 1);
        page = cur.offset / kPageSize;
        lastPage = (cur.offset + len - 1) / kPageSize;
        pageIndex = 0;
        active = true;
        if (deviceTenants) {
            const auto [it, fresh] = devices.insert(
                {cur.device,
                 static_cast<std::uint32_t>(devices.size())});
            if (fresh && devices.size() > kMaxTenants)
                zombie_fatal("trace touches more than ", kMaxTenants,
                             " devices; window or filter it before "
                             "tenant routing");
            tenant = it->second;
        }
    }

    // Tenant-qualified version-map key; plain LPN when routing is
    // off, so single-device replay bytes never change.
    const Lpn vkey =
        (static_cast<Lpn>(tenant) << 48) | page;

    out = TraceRecord{};
    out.arrival = cur.arrival;
    out.op = cur.write ? OpType::Write : OpType::Read;
    out.lpn = page;
    out.tenant = static_cast<std::uint16_t>(tenant);
    out.valueId = TraceRecord::kNoValueId;
    if (cur.hasFingerprint) {
        out.fp = pageFingerprint(cur.fp, pageIndex);
    } else {
        // Hashless formats: name content by (LBA, version). Writes
        // bump the page's version — wrapping modulo the period, so
        // overwritten content eventually recurs — and reads see the
        // version currently on the page (0 if never written).
        std::uint32_t version = 0;
        if (cur.write) {
            std::uint32_t &slot = versions[vkey];
            slot = period ? (slot + 1) % period : slot + 1;
            version = slot;
        } else {
            const auto it = versions.find(vkey);
            if (it != versions.end())
                version = it->second;
        }
        out.fp = synthesizeFingerprint(page, version, tenant);
    }

    ++pageIndex;
    if (page >= lastPage)
        active = false;
    else
        ++page;
    return true;
}

bool
WindowSource::next(TraceRecord &out)
{
    while (toSkip > 0) {
        if (!src->next(out))
            return false;
        --toSkip;
    }
    if (bounded && remaining == 0)
        return false;
    if (!src->next(out))
        return false;
    if (bounded)
        --remaining;
    return true;
}

bool
StrideSource::next(TraceRecord &out)
{
    for (;;) {
        if (!src->next(out))
            return false;
        const bool keep = index % stride_ == 0;
        ++index;
        if (keep)
            return true;
    }
}

bool
CompactingSource::next(TraceRecord &out)
{
    if (!src->next(out))
        return false;
    const Lpn key =
        (static_cast<Lpn>(out.tenant) << 48) | out.lpn;
    const auto it = map->find(key);
    // The remap was built by a scan over this same deterministic
    // stream, so every LPN the replay pass sees must be present.
    zombie_assert(it != map->end(),
                  "LPN absent from the compaction remap");
    out.lpn = it->second;
    return true;
}

TraceSourceFactory
makeExternalSourceFactory(const ExternalTraceConfig &cfg)
{
    return [cfg]() -> std::unique_ptr<TraceSource> {
        std::unique_ptr<TraceSource> src;
        if (cfg.format == ExternalFormat::Native)
            src = std::make_unique<TraceReader>(cfg.path);
        else
            src = std::make_unique<ExternalPageSource>(
                openRawSource(cfg), cfg.versionPeriod,
                cfg.deviceTenants);
        if (cfg.skip > 0 || cfg.limit > 0)
            src = std::make_unique<WindowSource>(std::move(src),
                                                 cfg.skip, cfg.limit);
        if (cfg.stride > 1)
            src = std::make_unique<StrideSource>(std::move(src),
                                                 cfg.stride);
        return src;
    };
}

ScannedTrace
scanExternalTrace(const ExternalTraceConfig &cfg)
{
    if (cfg.deviceTenants && !cfg.compact)
        zombie_fatal("per-device tenant routing needs LBA "
                     "compaction to lay out the namespaces; drop "
                     "--no-compact");
    if (cfg.deviceTenants && cfg.format == ExternalFormat::Native)
        zombie_fatal("native traces already carry tenant ids; "
                     "--msr-disk-tenants applies to raw block "
                     "formats");

    ScannedTrace out;
    const TraceSourceFactory inner = makeExternalSourceFactory(cfg);
    auto remap = std::make_shared<LpnRemap>();
    TraceSummarizer summarizer;

    // Per-tenant footprints; single implicit tenant when device
    // routing is off. Remap values hold per-tenant indices during
    // the scan and get namespace bases added afterwards.
    std::vector<std::uint64_t> tenant_counts;

    auto src = inner();
    TraceRecord rec;
    Lpn max_lpn = 0;
    bool first = true;
    while (src->next(rec)) {
        ++out.records;
        if (cfg.compact) {
            if (rec.tenant >= tenant_counts.size())
                tenant_counts.resize(rec.tenant + 1, 0);
            const Lpn key =
                (static_cast<Lpn>(rec.tenant) << 48) | rec.lpn;
            const auto [it, fresh] = remap->insert(
                {key, static_cast<Lpn>(
                          tenant_counts[rec.tenant])});
            if (fresh)
                ++tenant_counts[rec.tenant];
            // Summarize under the tenant-qualified dense id so
            // distinct pages of different tenants stay distinct
            // (identical to the plain index for tenant 0).
            rec.lpn =
                (static_cast<Lpn>(rec.tenant) << 48) | it->second;
        }
        max_lpn = std::max(max_lpn, rec.lpn);
        if (cfg.summarize) {
            summarizer.observe(rec);
        } else {
            // Cheap fields only: skip the O(distinct-values) sets.
            if (rec.isWrite())
                ++out.summary.writes;
            else
                ++out.summary.reads;
            if (first)
                out.summary.firstArrival = rec.arrival;
            out.summary.lastArrival = rec.arrival;
        }
        first = false;
    }

    if (tenant_counts.size() > 1) {
        // Lay the tenants out as contiguous namespaces: final LPN =
        // namespace base (prefix sum of earlier footprints) + the
        // per-tenant first-appearance index stored during the scan.
        std::vector<Lpn> bases(tenant_counts.size(), 0);
        for (std::size_t t = 1; t < tenant_counts.size(); ++t)
            bases[t] = bases[t - 1] + tenant_counts[t - 1];
        for (auto &entry : *remap)
            entry.second += bases[entry.first >> 48];
        out.tenantPages = tenant_counts;
    }

    out.footprintPages =
        cfg.compact ? remap->size()
                    : (out.records > 0 ? max_lpn + 1 : 0);
    if (cfg.summarize)
        out.summary = summarizer.finish();
    else
        out.summary.distinctLpns = out.footprintPages;

    if (cfg.compact) {
        out.factory = [inner, remap]() -> std::unique_ptr<TraceSource> {
            return std::make_unique<CompactingSource>(inner(), remap);
        };
    } else {
        out.factory = inner;
    }
    return out;
}

} // namespace zombie
