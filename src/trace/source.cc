#include "trace/source.hh"

namespace zombie
{

std::vector<TraceRecord>
drainSource(TraceSource &source)
{
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (source.next(rec))
        records.push_back(rec);
    return records;
}

} // namespace zombie
