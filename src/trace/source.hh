/**
 * @file
 * Streaming trace-record sources.
 *
 * TraceSource is the one pull interface the whole replay path speaks:
 * the synthetic generator, the native trace readers and the external
 * block-trace parsers (trace/formats.hh) all implement it, and the
 * simulator consumes records one at a time — no whole-trace vector
 * anywhere between a trace file and the host queue (DESIGN.md
 * section 7.16). Adapters (trace/adapters.hh) are TraceSources that
 * wrap another TraceSource, so format quirks compose as decorators.
 *
 * Sources that read from files or other forward-only inputs cannot
 * rewind; multi-pass consumers (the LBA compactor's footprint scan,
 * streamed-vs-materialized differential tests) therefore work with a
 * TraceSourceFactory that rebuilds the chain from scratch. Every
 * source in this repo is deterministic, so two factory invocations
 * yield byte-identical record streams.
 */

#ifndef ZOMBIE_TRACE_SOURCE_HH
#define ZOMBIE_TRACE_SOURCE_HH

#include <functional>
#include <memory>
#include <vector>

#include "trace/record.hh"

namespace zombie
{

/** Pull interface over any record stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record into @p out.
     * @return false once the stream is exhausted; the stream must
     * not be read past its first false.
     */
    virtual bool next(TraceRecord &out) = 0;
};

/** Rebuilds an identical source chain from the start of its stream. */
using TraceSourceFactory =
    std::function<std::unique_ptr<TraceSource>()>;

/** Adapts a materialized trace (tests, offline analyses). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceRecord> records)
        : recs(std::move(records))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (pos >= recs.size())
            return false;
        out = recs[pos++];
        return true;
    }

  private:
    std::vector<TraceRecord> recs;
    std::size_t pos = 0;
};

/** Drain @p source into a vector (tests and analyses only; the
 *  replay path never materializes). */
std::vector<TraceRecord> drainSource(TraceSource &source);

} // namespace zombie

#endif // ZOMBIE_TRACE_SOURCE_HH
