/**
 * @file
 * Trace summarization: recompute Table II columns from any record
 * stream (synthetic or file-based), independent of the generator's
 * internal counters.
 */

#ifndef ZOMBIE_TRACE_SUMMARY_HH
#define ZOMBIE_TRACE_SUMMARY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hash/fingerprint.hh"
#include "trace/record.hh"

namespace zombie
{

/** Aggregate trace statistics (Table II reproduction). */
struct TraceSummary
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t distinctWriteValues = 0;
    std::uint64_t distinctReadValues = 0;
    std::uint64_t distinctLpns = 0;
    Tick firstArrival = 0;
    Tick lastArrival = 0;

    std::uint64_t total() const { return reads + writes; }

    double
    writeRatio() const
    {
        return total() ? static_cast<double>(writes) /
                             static_cast<double>(total())
                       : 0.0;
    }

    double
    uniqueWriteValueFraction() const
    {
        return writes ? static_cast<double>(distinctWriteValues) /
                            static_cast<double>(writes)
                      : 0.0;
    }

    double
    uniqueReadValueFraction() const
    {
        return reads ? static_cast<double>(distinctReadValues) /
                           static_cast<double>(reads)
                     : 0.0;
    }
};

/** Streaming summarizer (fingerprint-keyed, so it works on any trace). */
class TraceSummarizer
{
  public:
    void observe(const TraceRecord &rec);
    TraceSummary finish() const { return summary; }

    /** Size the distinct-value sets for @p records records up front
     *  (summarizing a day-long trace rehashes megabytes otherwise). */
    void
    reserve(std::uint64_t records)
    {
        const auto n = static_cast<std::size_t>(records);
        writeValues.reserve(n);
        readValues.reserve(n);
        lpns.reserve(n);
    }

  private:
    TraceSummary summary;
    std::unordered_set<Fingerprint, FingerprintHash> writeValues;
    std::unordered_set<Fingerprint, FingerprintHash> readValues;
    std::unordered_set<Lpn> lpns;
    bool first = true;
};

/** Convenience over a materialized trace. */
TraceSummary summarizeTrace(const std::vector<TraceRecord> &records);

} // namespace zombie

#endif // ZOMBIE_TRACE_SUMMARY_HH
