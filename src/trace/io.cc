#include "trace/io.hh"

#include <cctype>
#include <charconv>
#include <cstring>

#include "util/logging.hh"

namespace zombie
{

namespace
{

constexpr char kBinaryMagic[8] = {'Z', 'O', 'M', 'B', 'T', 'R', 'C', '1'};

/**
 * Fixed-width on-disk record for the binary format. The tenant id
 * occupies two little-endian bytes of what used to be padding, so
 * pre-tenant traces (zeroed pad) read back as tenant 0.
 */
struct PackedRecord
{
    std::uint64_t arrival;
    std::uint64_t lpn;
    std::uint64_t value_id;
    std::uint8_t op;
    std::uint8_t fp[16];
    std::uint8_t tenant_lo;
    std::uint8_t tenant_hi;
    std::uint8_t pad[5];
};
static_assert(sizeof(PackedRecord) == 48, "packed record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string &path, TraceFormat format)
    : out(path, format == TraceFormat::Binary
                    ? std::ios::binary | std::ios::out
                    : std::ios::out),
      fmt(format)
{
    if (!out)
        zombie_fatal("cannot open trace file for writing: ", path);
    if (fmt == TraceFormat::Binary)
        out.write(kBinaryMagic, sizeof(kBinaryMagic));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const TraceRecord &rec)
{
    if (fmt == TraceFormat::Text) {
        out << rec.arrival << ' '
            << (rec.isWrite() ? 'W' : 'R') << ' '
            << rec.lpn << ' '
            << rec.fp.hex() << ' ';
        if (rec.valueId == TraceRecord::kNoValueId)
            out << '-';
        else
            out << rec.valueId;
        // Trailing tenant column only when non-default, so
        // single-tenant text traces keep their historical bytes.
        if (rec.tenant != 0)
            out << ' ' << rec.tenant;
        out << '\n';
    } else {
        PackedRecord packed{};
        packed.arrival = rec.arrival;
        packed.lpn = rec.lpn;
        packed.value_id = rec.valueId;
        packed.op = static_cast<std::uint8_t>(rec.op);
        std::memcpy(packed.fp, rec.fp.bytes.data(), 16);
        packed.tenant_lo = static_cast<std::uint8_t>(rec.tenant);
        packed.tenant_hi = static_cast<std::uint8_t>(rec.tenant >> 8);
        out.write(reinterpret_cast<const char *>(&packed), sizeof(packed));
    }
    ++count;
}

void
TraceWriter::close()
{
    if (out.is_open())
        out.close();
}

TraceReader::TraceReader(const std::string &path)
    : path_(path), fmt(TraceFormat::Text)
{
    auto src = openByteSource(path);

    // Sniff the native binary magic on the (decompressed) stream.
    char magic[sizeof(kBinaryMagic)] = {};
    std::size_t got = 0;
    while (got < sizeof(magic)) {
        const std::size_t n =
            src->read(magic + got, sizeof(magic) - got);
        if (n == 0)
            break;
        got += n;
    }
    if (got == sizeof(magic) &&
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0) {
        fmt = TraceFormat::Binary;
        bin = std::move(src);
        buf.resize(BufferedLineReader::kDefaultBlock);
    } else {
        // Not binary: hand the sniffed bytes back, parse as text.
        fmt = TraceFormat::Text;
        lines = std::make_unique<BufferedLineReader>(
            prependBytes(std::string(magic, got), std::move(src)));
    }
}

std::size_t
TraceReader::binAvail(std::size_t need)
{
    while (limit - pos < need) {
        if (pos > 0) {
            std::memmove(buf.data(), buf.data() + pos, limit - pos);
            limit -= pos;
            pos = 0;
        }
        const std::size_t n =
            bin->read(buf.data() + limit, buf.size() - limit);
        if (n == 0)
            break;
        limit += n;
    }
    return limit - pos;
}

namespace
{

/** Advance past spaces; then past the field. @return the field. */
std::string_view
takeField(std::string_view text, std::size_t &cursor)
{
    while (cursor < text.size() && text[cursor] == ' ')
        ++cursor;
    const std::size_t start = cursor;
    while (cursor < text.size() && text[cursor] != ' ')
        ++cursor;
    return text.substr(start, cursor - start);
}

} // namespace

bool
TraceReader::next(TraceRecord &out)
{
    if (fmt == TraceFormat::Binary) {
        const std::size_t have = binAvail(sizeof(PackedRecord));
        if (have == 0)
            return false;
        ++line; // binary: `line` counts records, not text lines
        if (have < sizeof(PackedRecord))
            zombie_fatal("truncated binary trace ", path_, ": record ",
                         line, " has ", have, " of ",
                         sizeof(PackedRecord), " bytes");
        PackedRecord packed;
        std::memcpy(&packed, buf.data() + pos, sizeof(packed));
        pos += sizeof(packed);
        out.arrival = packed.arrival;
        out.lpn = packed.lpn;
        out.valueId = packed.value_id;
        if (packed.op > 1)
            zombie_fatal("corrupt op byte ",
                         static_cast<unsigned>(packed.op),
                         " at record ", line, " in binary trace ",
                         path_);
        out.op = static_cast<OpType>(packed.op);
        std::memcpy(out.fp.bytes.data(), packed.fp, 16);
        out.tenant = static_cast<std::uint16_t>(
            packed.tenant_lo | (packed.tenant_hi << 8));
        return true;
    }

    std::string_view text;
    while (lines->nextLine(text)) {
        line = lines->lineNumber();
        if (text.empty() || text[0] == '#')
            continue;
        const auto bad = [&](const char *what, std::string_view tok) {
            zombie_fatal("bad ", what, " '", std::string(tok),
                         "' at line ", line, " in ", path_);
        };
        const auto parse_u64 = [&](std::string_view tok,
                                   const char *what) {
            std::uint64_t value = 0;
            const char *end = tok.data() + tok.size();
            const auto [ptr, ec] =
                std::from_chars(tok.data(), end, value);
            if (ec != std::errc{} || ptr != end)
                bad(what, tok);
            return value;
        };

        std::size_t cursor = 0;
        const std::string_view ts = takeField(text, cursor);
        const std::string_view op_tok = takeField(text, cursor);
        const std::string_view lpn_tok = takeField(text, cursor);
        const std::string_view fp_hex = takeField(text, cursor);
        const std::string_view vid_text = takeField(text, cursor);
        if (vid_text.empty())
            zombie_fatal("malformed trace line ", line, " in ", path_,
                         ": '", std::string(text), "'");
        out.arrival = parse_u64(ts, "arrival");
        const char op_char = op_tok.size() == 1 ? op_tok[0] : '?';
        if (op_char == 'W' || op_char == 'w')
            out.op = OpType::Write;
        else if (op_char == 'R' || op_char == 'r')
            out.op = OpType::Read;
        else
            zombie_fatal("bad op '", std::string(op_tok),
                         "' at line ", line, " in ", path_);
        out.lpn = parse_u64(lpn_tok, "lpn");
        if (fp_hex.size() != 32)
            zombie_fatal("bad fingerprint '", std::string(fp_hex),
                         "' at line ", line, " in ", path_,
                         " (need 32 hex digits)");
        out.fp = Fingerprint::fromHex(fp_hex);
        if (vid_text == "-")
            out.valueId = TraceRecord::kNoValueId;
        else
            out.valueId = parse_u64(vid_text, "value id");
        const std::string_view tenant_tok = takeField(text, cursor);
        out.tenant =
            tenant_tok.empty()
                ? 0
                : static_cast<std::uint16_t>(
                      parse_u64(tenant_tok, "tenant"));
        return true;
    }
    return false;
}

std::vector<TraceRecord>
TraceReader::readAll()
{
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (next(rec))
        records.push_back(rec);
    return records;
}

void
writeTraceFile(const std::string &path, TraceFormat format,
               const std::vector<TraceRecord> &records)
{
    TraceWriter writer(path, format);
    for (const auto &rec : records)
        writer.write(rec);
}

} // namespace zombie
