#include "trace/io.hh"

#include <charconv>
#include <cstring>
#include <sstream>

#include "util/logging.hh"

namespace zombie
{

namespace
{

constexpr char kBinaryMagic[8] = {'Z', 'O', 'M', 'B', 'T', 'R', 'C', '1'};

/**
 * Fixed-width on-disk record for the binary format. The tenant id
 * occupies two little-endian bytes of what used to be padding, so
 * pre-tenant traces (zeroed pad) read back as tenant 0.
 */
struct PackedRecord
{
    std::uint64_t arrival;
    std::uint64_t lpn;
    std::uint64_t value_id;
    std::uint8_t op;
    std::uint8_t fp[16];
    std::uint8_t tenant_lo;
    std::uint8_t tenant_hi;
    std::uint8_t pad[5];
};
static_assert(sizeof(PackedRecord) == 48, "packed record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string &path, TraceFormat format)
    : out(path, format == TraceFormat::Binary
                    ? std::ios::binary | std::ios::out
                    : std::ios::out),
      fmt(format)
{
    if (!out)
        zombie_fatal("cannot open trace file for writing: ", path);
    if (fmt == TraceFormat::Binary)
        out.write(kBinaryMagic, sizeof(kBinaryMagic));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const TraceRecord &rec)
{
    if (fmt == TraceFormat::Text) {
        out << rec.arrival << ' '
            << (rec.isWrite() ? 'W' : 'R') << ' '
            << rec.lpn << ' '
            << rec.fp.hex() << ' ';
        if (rec.valueId == TraceRecord::kNoValueId)
            out << '-';
        else
            out << rec.valueId;
        // Trailing tenant column only when non-default, so
        // single-tenant text traces keep their historical bytes.
        if (rec.tenant != 0)
            out << ' ' << rec.tenant;
        out << '\n';
    } else {
        PackedRecord packed{};
        packed.arrival = rec.arrival;
        packed.lpn = rec.lpn;
        packed.value_id = rec.valueId;
        packed.op = static_cast<std::uint8_t>(rec.op);
        std::memcpy(packed.fp, rec.fp.bytes.data(), 16);
        packed.tenant_lo = static_cast<std::uint8_t>(rec.tenant);
        packed.tenant_hi = static_cast<std::uint8_t>(rec.tenant >> 8);
        out.write(reinterpret_cast<const char *>(&packed), sizeof(packed));
    }
    ++count;
}

void
TraceWriter::close()
{
    if (out.is_open())
        out.close();
}

TraceReader::TraceReader(const std::string &path)
    : in(path, std::ios::binary), path_(path), fmt(TraceFormat::Text)
{
    if (!in)
        zombie_fatal("cannot open trace file: ", path);
    char magic[sizeof(kBinaryMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() == sizeof(magic) &&
        std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0) {
        fmt = TraceFormat::Binary;
    } else {
        // Not binary: rewind and parse as text.
        in.clear();
        in.seekg(0);
        fmt = TraceFormat::Text;
    }
}

bool
TraceReader::next(TraceRecord &out)
{
    if (fmt == TraceFormat::Binary) {
        PackedRecord packed;
        in.read(reinterpret_cast<char *>(&packed), sizeof(packed));
        if (in.gcount() == 0) {
            if (in.bad())
                zombie_fatal("I/O error reading binary trace ", path_,
                             " after record ", line);
            return false;
        }
        ++line; // binary: `line` counts records, not text lines
        if (in.gcount() != static_cast<std::streamsize>(sizeof(packed)))
            zombie_fatal("truncated binary trace ", path_, ": record ",
                         line, " has ", in.gcount(), " of ",
                         sizeof(packed), " bytes");
        out.arrival = packed.arrival;
        out.lpn = packed.lpn;
        out.valueId = packed.value_id;
        if (packed.op > 1)
            zombie_fatal("corrupt op byte ",
                         static_cast<unsigned>(packed.op),
                         " at record ", line, " in binary trace ",
                         path_);
        out.op = static_cast<OpType>(packed.op);
        std::memcpy(out.fp.bytes.data(), packed.fp, 16);
        out.tenant = static_cast<std::uint16_t>(
            packed.tenant_lo | (packed.tenant_hi << 8));
        return true;
    }

    std::string text;
    while (std::getline(in, text)) {
        ++line;
        if (text.empty() || text[0] == '#')
            continue;
        std::istringstream iss(text);
        char op_char;
        std::string fp_hex, vid_text;
        if (!(iss >> out.arrival >> op_char >> out.lpn >> fp_hex >>
              vid_text)) {
            zombie_fatal("malformed trace line ", line, " in ", path_,
                         ": '", text, "'");
        }
        if (op_char == 'W' || op_char == 'w')
            out.op = OpType::Write;
        else if (op_char == 'R' || op_char == 'r')
            out.op = OpType::Read;
        else
            zombie_fatal("bad op '", op_char, "' at line ", line, " in ",
                         path_);
        if (fp_hex.size() != 32)
            zombie_fatal("bad fingerprint '", fp_hex, "' at line ",
                         line, " in ", path_,
                         " (need 32 hex digits)");
        out.fp = Fingerprint::fromHex(fp_hex);
        if (vid_text == "-") {
            out.valueId = TraceRecord::kNoValueId;
        } else {
            // Checked parse: std::stoull would throw (an uncaught
            // exception, not a diagnosis) on a corrupt column.
            const char *vid_end = vid_text.data() + vid_text.size();
            const auto [ptr, ec] = std::from_chars(
                vid_text.data(), vid_end, out.valueId);
            if (ec != std::errc{} || ptr != vid_end)
                zombie_fatal("bad value id '", vid_text,
                             "' at line ", line, " in ", path_);
        }
        std::uint64_t tenant = 0;
        out.tenant = (iss >> tenant)
                         ? static_cast<std::uint16_t>(tenant)
                         : 0;
        return true;
    }
    return false;
}

std::vector<TraceRecord>
TraceReader::readAll()
{
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (next(rec))
        records.push_back(rec);
    return records;
}

void
writeTraceFile(const std::string &path, TraceFormat format,
               const std::vector<TraceRecord> &records)
{
    TraceWriter writer(path, format);
    for (const auto &rec : records)
        writer.write(rec);
}

} // namespace zombie
