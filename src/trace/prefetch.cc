#include "trace/prefetch.hh"

namespace zombie
{

PrefetchSource::PrefetchSource(std::unique_ptr<TraceSource> inner,
                               std::size_t batch_records,
                               std::size_t depth)
    : src(std::move(inner)),
      batchRecords(batch_records > 0 ? batch_records : 1),
      ring(depth)
{
    producer = std::thread([this] { producerLoop(); });
}

PrefetchSource::~PrefetchSource()
{
    ring.cancel();
    if (producer.joinable())
        producer.join();
}

void
PrefetchSource::producerLoop()
{
    Batch batch;
    batch.reserve(batchRecords);
    TraceRecord rec;
    bool more = true;
    while (more) {
        batch.clear();
        while (batch.size() < batchRecords && (more = src->next(rec)))
            batch.push_back(rec);
        if (batch.empty())
            break;
        if (!ring.push(batch))
            return; // consumer cancelled; skip finish(), just exit
        // push() swapped in a recycled buffer; grow it once so the
        // steady state stays allocation-free.
        if (batch.capacity() < batchRecords)
            batch.reserve(batchRecords);
    }
    ring.finish();
}

bool
PrefetchSource::next(TraceRecord &out)
{
    while (pos >= cur.size()) {
        // Hand the drained batch's buffer back through the swap.
        cur.clear();
        pos = 0;
        if (!ring.pop(cur))
            return false;
    }
    out = cur[pos++];
    return true;
}

std::unique_ptr<TraceSource>
maybePrefetch(std::unique_ptr<TraceSource> inner,
              std::size_t batch_records)
{
    if (batch_records == 0)
        return inner;
    return std::make_unique<PrefetchSource>(std::move(inner),
                                            batch_records);
}

} // namespace zombie
