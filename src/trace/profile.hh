/**
 * @file
 * Workload profiles mirroring the paper's Table II.
 *
 * The FIU (web, home, mail) and OSU (hadoop, trans, desktop) content
 * traces are not redistributable, so each workload is described by the
 * statistics the dead-value-pool mechanism is sensitive to — write
 * ratio, unique-value fractions for reads and writes, value-popularity
 * skew, footprint, and burstiness — and a generator synthesizes traces
 * matching them (see DESIGN.md, substitution table).
 */

#ifndef ZOMBIE_TRACE_PROFILE_HH
#define ZOMBIE_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hash/hasher.hh"
#include "util/types.hh"

namespace zombie
{

/** The six workloads of Table II. */
enum class Workload
{
    Web,
    Home,
    Mail,
    Hadoop,
    Trans,
    Desktop,
};

/** Parse "web" / "home" / ... ; fatal otherwise. */
Workload workloadFromString(const std::string &name);
std::string toString(Workload w);
std::vector<Workload> allWorkloads();

/** Paper-reported Table II characteristics, used for validation. */
struct TableIiRow
{
    double writeRatio;       //!< WR [%] / 100
    double uniqueWriteValue; //!< unique values among writes
    double uniqueReadValue;  //!< unique values among reads
};

TableIiRow tableIi(Workload w);

/**
 * Full parameter set consumed by SyntheticTraceGenerator. Defaults are
 * neutral; use preset() for the calibrated per-workload values.
 */
struct WorkloadProfile
{
    std::string name = "custom";
    std::uint64_t requests = 1'000'000;
    std::uint64_t seed = 42;

    /** Fraction of requests that are writes (Table II WR%). */
    double writeRatio = 0.5;

    /**
     * Probability a write carries brand-new (never seen) content.
     * Primary knob for the unique-write-value fraction.
     */
    double newValueProb = 0.5;

    /**
     * Popular-value pool size as a fraction of the expected write
     * count; secondary knob for unique-write-value fraction.
     */
    double popularPoolFrac = 0.05;

    /** Zipf exponent over the popular-value pool (write popularity). */
    double valueAlpha = 1.05;

    /**
     * Probability an update rewrites the content already stored at the
     * target LPN (redundant in-place rewrite; the Figure 13 pattern).
     */
    double sameValueProb = 0.05;

    /** Logical footprint as a fraction of the expected write count. */
    double footprintFrac = 0.4;

    /** Zipf exponent for choosing which existing LPN a write updates. */
    double updateLpnAlpha = 0.7;

    /**
     * Zipf exponent for read target LPNs; higher = reads concentrate
     * on few pages = lower unique-read-value fraction.
     */
    double readLpnAlpha = 0.6;

    /**
     * Fraction of reads that target cold, never-written data (e.g.
     * pre-existing mailbox files): each such read returns unique
     * content. This is what lets a workload like mail combine 8%
     * unique write values with 80% unique read values (Table II) —
     * read popularity and write popularity are decoupled, the
     * observation the paper leans on against LX-SSD.
     */
    double coldReadFrac = 0.0;

    /** Mean request inter-arrival time in microseconds. */
    double meanInterarrivalUs = 20.0;

    /** Probability a request starts a burst, and the burst geometry. */
    double burstProb = 0.005;
    std::uint64_t burstLength = 32;
    double burstInterarrivalUs = 1.0;

    /** Digest used for fingerprints. */
    HashAlgo hashAlgo = HashAlgo::Synthetic;

    /**
     * Calibrated preset for a Table II workload. @p day perturbs the
     * seed/parameters to model the multi-day FIU collections
     * (m1..m3, h1..h3, w1..w3 in Figures 1 and 5).
     */
    static WorkloadProfile preset(Workload w, int day = 1,
                                  std::uint64_t requests = 1'000'000,
                                  std::uint64_t seed = 42);

    /** Expected number of writes under this profile. */
    std::uint64_t expectedWrites() const;

    /** Popular-value pool size in values. */
    std::uint64_t popularPoolSize() const;

    /** Write footprint in pages (excludes the cold-read region). */
    std::uint64_t footprintPages() const;

    /** Expected number of reads under this profile. */
    std::uint64_t expectedReads() const;

    /** Cold-read region size in pages ([0, coldReadPages) in LPNs). */
    std::uint64_t coldReadPages() const;

    /** Total LPN space a trace may touch (cold region + footprint). */
    std::uint64_t totalLpnSpace() const;

    /** Fatal on inconsistent parameters (user config error). */
    void validate() const;
};

/**
 * The nine day-traces of Figures 1 and 5: m1..m3, h1..h3, w1..w3.
 * Short label ("m2") plus the calibrated profile.
 */
struct DayTrace
{
    std::string label;
    WorkloadProfile profile;
};

std::vector<DayTrace> fiuDayTraces(std::uint64_t requests_per_day,
                                   std::uint64_t seed = 42);

} // namespace zombie

#endif // ZOMBIE_TRACE_PROFILE_HH
