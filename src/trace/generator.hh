/**
 * @file
 * Synthetic content-trace generator.
 *
 * Reproduces the three properties of the FIU/OSU traces that the
 * dead-value-pool mechanism depends on (DESIGN.md section 2):
 *
 *  1. write ratio and unique-value fractions per Table II,
 *  2. Zipf value popularity in writes (Fig 3a: ~20% of values take
 *     ~80% of writes), with read popularity decoupled from writes,
 *  3. a death/rebirth process: updates to logical pages invalidate
 *     prior copies of popular values, which the Zipf value sampler
 *     then rewrites later (Figs 3b/3c/4).
 *
 * Generation is streaming and deterministic in the profile's seed.
 */

#ifndef ZOMBIE_TRACE_GENERATOR_HH
#define ZOMBIE_TRACE_GENERATOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hash/hasher.hh"
#include "trace/profile.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "util/random.hh"
#include "util/zipf.hh"

namespace zombie
{

/** Counters the generator maintains while emitting records. */
struct GeneratorStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t newLpnWrites = 0;
    std::uint64_t updateWrites = 0;
    std::uint64_t sameValueRewrites = 0;
    std::uint64_t freshValueWrites = 0;
    std::uint64_t distinctPoolValuesWritten = 0;
    std::uint64_t distinctValuesRead = 0;

    double
    measuredWriteRatio() const
    {
        const auto total = reads + writes;
        return total ? static_cast<double>(writes) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Table II "Unique Value WR" column equivalent. */
    double
    uniqueWriteValueFraction() const
    {
        if (writes == 0)
            return 0.0;
        return static_cast<double>(freshValueWrites +
                                   distinctPoolValuesWritten) /
               static_cast<double>(writes);
    }

    /** Table II "Unique Value RD" column equivalent. */
    double
    uniqueReadValueFraction() const
    {
        if (reads == 0)
            return 0.0;
        return static_cast<double>(distinctValuesRead) /
               static_cast<double>(reads);
    }
};

/** Streaming trace generator; one instance per trace/day. */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    /**
     * Value-id namespace for the cold-read region: the LPN range
     * [0, coldReadPages) holds never-written unique content with id
     * kColdValueBase + lpn. Write-footprint LPNs start above it.
     */
    static constexpr std::uint64_t kColdValueBase =
        0xC01D'0000'0000'0000ULL;

    explicit SyntheticTraceGenerator(WorkloadProfile profile);

    /**
     * Produce the next record. @return false once the profile's
     * request budget is exhausted.
     */
    bool next(TraceRecord &out) override;

    /** Materialize the entire trace (convenience for analyses). */
    std::vector<TraceRecord> generateAll();

    const WorkloadProfile &profile() const { return prof; }
    const GeneratorStats &stats() const { return gstats; }

    /** Number of distinct LPNs written so far. */
    std::uint64_t lpnsUsed() const { return lpnContent.size(); }

    /** First LPN of the write footprint (== coldReadPages()). */
    Lpn footprintBase() const { return coldPages; }

    /** Content currently stored at @p lpn (cold or written). */
    std::uint64_t contentAt(Lpn lpn) const;

  private:
    void emitWrite(TraceRecord &out);
    void emitRead(TraceRecord &out);
    Tick nextArrivalDelta();
    std::uint64_t pickValue(bool updating, std::uint64_t current_vid);

    WorkloadProfile prof;
    ContentHasher hasher;
    Xoshiro256 rng;
    ZipfDistribution valueZipf;
    ZipfDistribution updateZipf;
    ZipfDistribution readZipf;

    /** lpnContent[lpn] = value id currently stored there. */
    std::vector<std::uint64_t> lpnContent;
    std::vector<bool> poolValueWritten;
    std::unordered_set<std::uint64_t> readValues;

    std::uint64_t emitted = 0;
    std::uint64_t freshCounter;
    std::uint64_t coldPages;
    std::uint64_t burstRemaining = 0;
    Tick clock = 0;
    GeneratorStats gstats;
};

} // namespace zombie

#endif // ZOMBIE_TRACE_GENERATOR_HH
