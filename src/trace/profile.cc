#include "trace/profile.hh"

#include <cmath>

#include "util/logging.hh"

namespace zombie
{

Workload
workloadFromString(const std::string &name)
{
    if (name == "web")
        return Workload::Web;
    if (name == "home")
        return Workload::Home;
    if (name == "mail")
        return Workload::Mail;
    if (name == "hadoop")
        return Workload::Hadoop;
    if (name == "trans")
        return Workload::Trans;
    if (name == "desktop")
        return Workload::Desktop;
    zombie_fatal("unknown workload '", name,
                 "' (web|home|mail|hadoop|trans|desktop)");
}

std::string
toString(Workload w)
{
    switch (w) {
      case Workload::Web:
        return "web";
      case Workload::Home:
        return "home";
      case Workload::Mail:
        return "mail";
      case Workload::Hadoop:
        return "hadoop";
      case Workload::Trans:
        return "trans";
      case Workload::Desktop:
        return "desktop";
    }
    zombie_panic("unreachable workload");
}

std::vector<Workload>
allWorkloads()
{
    return {Workload::Web, Workload::Home, Workload::Mail,
            Workload::Hadoop, Workload::Trans, Workload::Desktop};
}

TableIiRow
tableIi(Workload w)
{
    // Verbatim from the paper's Table II.
    switch (w) {
      case Workload::Web:
        return {0.77, 0.42, 0.32};
      case Workload::Home:
        return {0.96, 0.66, 0.80};
      case Workload::Mail:
        return {0.77, 0.08, 0.80};
      case Workload::Hadoop:
        return {0.30, 0.639, 0.175};
      case Workload::Trans:
        return {0.55, 0.774, 0.138};
      case Workload::Desktop:
        return {0.42, 0.747, 0.497};
    }
    zombie_panic("unreachable workload");
}

WorkloadProfile
WorkloadProfile::preset(Workload w, int day, std::uint64_t requests,
                        std::uint64_t seed)
{
    zombie_assert(day >= 1, "trace day index is 1-based");

    WorkloadProfile p;
    p.requests = requests;
    const TableIiRow row = tableIi(w);
    p.writeRatio = row.writeRatio;

    // Calibrated so measured Table II columns land near the paper's
    // (validated by tests/trace/test_table2.cc and bench/table2).
    switch (w) {
      case Workload::Web:
        p.newValueProb = 0.33;
        p.popularPoolFrac = 0.12;
        p.valueAlpha = 1.00;
        p.footprintFrac = 0.30;
        p.updateLpnAlpha = 0.75;
        p.readLpnAlpha = 1.10;
        p.coldReadFrac = 0.12;
        p.meanInterarrivalUs = 30.0;
        break;
      case Workload::Home:
        p.newValueProb = 0.58;
        p.popularPoolFrac = 0.10;
        p.valueAlpha = 0.90;
        p.footprintFrac = 0.45;
        p.updateLpnAlpha = 0.70;
        p.readLpnAlpha = 0.30;
        p.coldReadFrac = 0.85;
        p.meanInterarrivalUs = 40.0;
        break;
      case Workload::Mail:
        // Highest write redundancy of the set (unique writes = 8%) and
        // the largest footprint; the paper's headline workload.
        p.newValueProb = 0.02;
        p.popularPoolFrac = 0.08;
        p.valueAlpha = 1.20;
        p.footprintFrac = 0.50;
        p.updateLpnAlpha = 0.80;
        p.readLpnAlpha = 0.30;
        p.coldReadFrac = 0.85;
        p.meanInterarrivalUs = 35.0;
        break;
      case Workload::Hadoop:
        p.newValueProb = 0.56;
        p.popularPoolFrac = 0.10;
        p.valueAlpha = 0.90;
        p.footprintFrac = 0.40;
        p.updateLpnAlpha = 0.70;
        p.readLpnAlpha = 1.10;
        p.meanInterarrivalUs = 25.0;
        break;
      case Workload::Trans:
        p.newValueProb = 0.71;
        p.popularPoolFrac = 0.08;
        p.valueAlpha = 0.80;
        p.footprintFrac = 0.30;
        p.updateLpnAlpha = 0.70;
        p.readLpnAlpha = 1.40;
        p.meanInterarrivalUs = 25.0;
        break;
      case Workload::Desktop:
        p.newValueProb = 0.68;
        p.popularPoolFrac = 0.08;
        p.valueAlpha = 0.80;
        p.footprintFrac = 0.35;
        p.updateLpnAlpha = 0.70;
        p.readLpnAlpha = 0.95;
        p.coldReadFrac = 0.38;
        p.meanInterarrivalUs = 30.0;
        break;
    }

    // Multi-day collections: each day is a fresh arrival process over
    // the same underlying content population, with small drift.
    p.seed = seed + static_cast<std::uint64_t>(day) * 1000003ULL;
    const double drift = 0.015 * static_cast<double>(day - 1);
    p.newValueProb = std::min(0.95, p.newValueProb + drift);
    p.valueAlpha = std::max(0.5, p.valueAlpha - drift);

    p.name = toString(w) + std::to_string(day);
    p.validate();
    return p;
}

std::uint64_t
WorkloadProfile::expectedWrites() const
{
    return static_cast<std::uint64_t>(
        std::llround(writeRatio * static_cast<double>(requests)));
}

std::uint64_t
WorkloadProfile::popularPoolSize() const
{
    const auto pool = static_cast<std::uint64_t>(
        std::llround(popularPoolFrac *
                     static_cast<double>(expectedWrites())));
    return std::max<std::uint64_t>(pool, 16);
}

std::uint64_t
WorkloadProfile::footprintPages() const
{
    const auto pages = static_cast<std::uint64_t>(
        std::llround(footprintFrac *
                     static_cast<double>(expectedWrites())));
    return std::max<std::uint64_t>(pages, 64);
}

std::uint64_t
WorkloadProfile::expectedReads() const
{
    return requests - expectedWrites();
}

std::uint64_t
WorkloadProfile::coldReadPages() const
{
    if (coldReadFrac <= 0.0)
        return 0;
    // 3x the expected cold-read count keeps repeat probability low,
    // so nearly every cold read returns distinct content.
    const auto pages = static_cast<std::uint64_t>(
        std::llround(3.0 * coldReadFrac *
                     static_cast<double>(expectedReads())));
    return std::max<std::uint64_t>(pages, 16);
}

std::uint64_t
WorkloadProfile::totalLpnSpace() const
{
    return coldReadPages() + footprintPages();
}

void
WorkloadProfile::validate() const
{
    if (requests == 0)
        zombie_fatal("profile '", name, "': requests must be > 0");
    if (writeRatio < 0.0 || writeRatio > 1.0)
        zombie_fatal("profile '", name, "': writeRatio out of [0,1]");
    if (newValueProb < 0.0 || newValueProb > 1.0)
        zombie_fatal("profile '", name, "': newValueProb out of [0,1]");
    if (sameValueProb < 0.0 || sameValueProb > 1.0)
        zombie_fatal("profile '", name, "': sameValueProb out of [0,1]");
    if (popularPoolFrac <= 0.0 || popularPoolFrac > 1.0)
        zombie_fatal("profile '", name, "': popularPoolFrac out of (0,1]");
    if (footprintFrac <= 0.0 || footprintFrac > 1.0)
        zombie_fatal("profile '", name, "': footprintFrac out of (0,1]");
    if (coldReadFrac < 0.0 || coldReadFrac > 1.0)
        zombie_fatal("profile '", name, "': coldReadFrac out of [0,1]");
    if (meanInterarrivalUs <= 0.0)
        zombie_fatal("profile '", name, "': interarrival must be > 0");
    if (burstProb < 0.0 || burstProb > 1.0)
        zombie_fatal("profile '", name, "': burstProb out of [0,1]");
}

std::vector<DayTrace>
fiuDayTraces(std::uint64_t requests_per_day, std::uint64_t seed)
{
    std::vector<DayTrace> traces;
    const struct
    {
        Workload w;
        char letter;
    } kinds[] = {
        {Workload::Mail, 'm'},
        {Workload::Home, 'h'},
        {Workload::Web, 'w'},
    };
    for (const auto &kind : kinds) {
        for (int day = 1; day <= 3; ++day) {
            DayTrace t;
            t.label = std::string(1, kind.letter) + std::to_string(day);
            t.profile = WorkloadProfile::preset(kind.w, day,
                                                requests_per_day, seed);
            traces.push_back(std::move(t));
        }
    }
    return traces;
}

} // namespace zombie
