/**
 * @file
 * Deterministic adapters lowering external block traces into the
 * simulator's 4KB content-trace shape (DESIGN.md section 7.16).
 *
 * The chain, innermost first:
 *
 *  1. ExternalPageSource — splits each raw byte extent into aligned
 *     4KB records and fills content fingerprints: native hashes pass
 *     through (pages past the first of a multi-page extent mix the
 *     hash with the page index), hashless formats synthesize the
 *     fingerprint from (LBA, version). Versions are per-LPN write
 *     counters — optionally wrapping modulo a period, so content
 *     recurs and dedup/DVP behaviour stays meaningful — and the
 *     synthesis is seedless: the same record stream always yields
 *     the same fingerprints.
 *  2. WindowSource / StrideSource — optional skip/limit windowing
 *     and 1-in-N downsampling, both positional and seedless.
 *  3. CompactingSource — remaps the sparse device LBA space onto
 *     dense [0, footprint) in first-appearance order, using the
 *     remap table built by a streaming first-pass scan
 *     (scanExternalTrace), so the simulated drive is sized by the
 *     trace's real footprint instead of its address-space span.
 *
 * Every stage is strictly streaming; the only O(trace)-shaped state
 * is the per-LPN version map and the remap table, both
 * O(footprint-index), never O(records).
 */

#ifndef ZOMBIE_TRACE_ADAPTERS_HH
#define ZOMBIE_TRACE_ADAPTERS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "hash/hasher.hh"
#include "trace/formats.hh"
#include "trace/source.hh"
#include "trace/summary.hh"
#include "util/flat_map.hh"

namespace zombie
{

/**
 * Synthesize the fingerprint of version @p version of page @p lpn
 * through the zombie::hash engine. Injective over lpn < 2^40 and
 * version < 2^24, so distinct (LBA, version) pairs never alias.
 * A non-zero @p tenant salts the id in the top byte (and narrows
 * versions to < 2^16), so per-tenant content spaces stay disjoint —
 * mirroring MultiTenantTraceGenerator::saltValueId. Tenant 0 is the
 * identity: single-device traces keep their historical bytes.
 */
Fingerprint synthesizeFingerprint(Lpn lpn, std::uint32_t version,
                                  std::uint32_t tenant = 0);

/** Derive page @p page_index's fingerprint of a multi-page extent
 *  from the extent's native hash (page 0 keeps it verbatim). */
Fingerprint pageFingerprint(const Fingerprint &native,
                            std::uint64_t page_index);

/** Split raw extents into 4KB records and fill fingerprints. */
class ExternalPageSource : public TraceSource
{
  public:
    /**
     * @param raw the format parser to lower.
     * @param version_period wrap per-LPN version counters modulo
     *        this period (>= 2 models periodically recurring
     *        content: an overwritten version eventually returns, so
     *        the DVP has zombies to revive); 0 keeps versions
     *        monotone (every write is fresh content).
     * @param device_tenants route each record's source device (MSR
     *        DiskNumber) onto a tenant namespace: devices get dense
     *        tenant ids in first-appearance order (fatal past
     *        kMaxTenants), version counters and synthesized content
     *        become per-tenant, and records carry the tenant id.
     */
    ExternalPageSource(std::unique_ptr<RawTraceSource> raw,
                       std::uint32_t version_period = 0,
                       bool device_tenants = false);

    bool next(TraceRecord &out) override;

    /** Distinct (tenant, LPN) pairs seen (version-map occupancy). */
    std::uint64_t lpnsSeen() const { return versions.size(); }

  private:
    std::unique_ptr<RawTraceSource> src;
    std::uint32_t period;
    bool deviceTenants;

    /** Extent currently being split. */
    RawIoRecord cur;
    std::uint32_t tenant = 0;
    Lpn page = 0;
    Lpn lastPage = 0;
    std::uint64_t pageIndex = 0;
    bool active = false;

    /** Dense first-appearance tenant id per source device. */
    FlatMap<std::uint32_t, std::uint32_t> devices;

    /** versions[(tenant << 48) | lpn] = writes observed (possibly
     *  wrapped); plain lpn keys when device_tenants is off. */
    FlatMap<Lpn, std::uint32_t> versions;
};

/** Skip the first @p skip records, then emit at most @p limit. */
class WindowSource : public TraceSource
{
  public:
    WindowSource(std::unique_ptr<TraceSource> inner,
                 std::uint64_t skip, std::uint64_t limit)
        : src(std::move(inner)), toSkip(skip), remaining(limit),
          bounded(limit != 0)
    {
    }

    bool next(TraceRecord &out) override;

  private:
    std::unique_ptr<TraceSource> src;
    std::uint64_t toSkip;
    std::uint64_t remaining;
    bool bounded;
};

/** Keep record 0 and every @p stride-th record after it. */
class StrideSource : public TraceSource
{
  public:
    StrideSource(std::unique_ptr<TraceSource> inner,
                 std::uint64_t stride)
        : src(std::move(inner)), stride_(stride ? stride : 1)
    {
    }

    bool next(TraceRecord &out) override;

  private:
    std::unique_ptr<TraceSource> src;
    std::uint64_t stride_;
    std::uint64_t index = 0;
};

/**
 * First-appearance-order LBA remap table. Keys are
 * (tenant << 48) | lpn — plain LPNs for single-tenant traces —
 * and values are final dense LPNs (per-tenant namespace base plus
 * per-tenant first-appearance index).
 */
using LpnRemap = FlatMap<Lpn, Lpn>;

/** Remap each record's LPN through a prebuilt compaction table. */
class CompactingSource : public TraceSource
{
  public:
    CompactingSource(std::unique_ptr<TraceSource> inner,
                     std::shared_ptr<const LpnRemap> remap)
        : src(std::move(inner)), map(std::move(remap))
    {
    }

    bool next(TraceRecord &out) override;

  private:
    std::unique_ptr<TraceSource> src;
    std::shared_ptr<const LpnRemap> map;
};

/** Replay configuration for one external (or native) trace file. */
struct ExternalTraceConfig
{
    std::string path;
    ExternalFormat format = ExternalFormat::GenericCsv;

    /** Window/downsample decorators (post-split record counts). */
    std::uint64_t skip = 0;
    std::uint64_t limit = 0; //!< 0 = unbounded
    std::uint64_t stride = 1;

    /** ExternalPageSource version-wrap period (0 = monotone). */
    std::uint32_t versionPeriod = 0;

    /** Route source devices (MSR DiskNumber) onto tenant
     *  namespaces; requires compact (the namespace layout is built
     *  from per-tenant footprints). */
    bool deviceTenants = false;

    /** Remap the LBA space to dense [0, footprint). The default:
     *  external address spaces are sparse and device-sized. */
    bool compact = true;

    /** Accumulate the full Table-II value-distinct summary during
     *  the scan pass. Its distinct-fingerprint sets are O(distinct
     *  values) heap — disable for 100M-record replays where only
     *  the footprint and record count matter. */
    bool summarize = true;
};

/** Everything the replay needs to size and drive a simulated SSD. */
struct ScannedTrace
{
    /** Rebuilds the full adapter chain (compaction included). */
    TraceSourceFactory factory;

    /** Post-adapter record count (what the factory will emit). */
    std::uint64_t records = 0;

    /** Drive footprint: LPNs in [0, footprintPages) cover every
     *  record the factory emits. */
    std::uint64_t footprintPages = 0;

    /** Table-II style aggregate over the emitted records. */
    TraceSummary summary;

    /**
     * Per-tenant namespace sizes in pages (tenant order), non-empty
     * only when deviceTenants found more than one device. Their
     * prefix sums are the namespace base LPNs the compacted stream
     * already honours — SsdConfig::namespacePages shaped.
     */
    std::vector<std::uint64_t> tenantPages;
};

/**
 * Build the adapter chain for @p cfg sans compaction. Each call
 * opens the file afresh; deterministic, so successive sources
 * produce byte-identical streams.
 */
TraceSourceFactory
makeExternalSourceFactory(const ExternalTraceConfig &cfg);

/**
 * Streaming first pass over @p cfg: counts records, accumulates the
 * Table-II summary, and (when cfg.compact) builds the LBA remap, so
 * the returned factory emits the final simulator-ready stream. Heap
 * cost is O(footprint-index) — the remap, version and summary
 * tables — independent of trace length.
 */
ScannedTrace scanExternalTrace(const ExternalTraceConfig &cfg);

} // namespace zombie

#endif // ZOMBIE_TRACE_ADAPTERS_HH
