/**
 * @file
 * Decode-ahead prefetch stage for trace replay.
 *
 * PrefetchSource runs its inner TraceSource — the whole
 * parse/adapter chain for an external trace — on a producer thread
 * that stays ahead of the simulator, handing records over in
 * fixed-size batches through a bounded SPSC ring
 * (util/spsc_ring.hh). While the engine services one batch the
 * producer is already parsing the next, so file decode (and gzip
 * inflation, the expensive case) overlaps simulation instead of
 * serializing with it.
 *
 * Determinism: the ring is FIFO and batches are drained in order, so
 * the consumer observes exactly the inner source's record sequence —
 * the prefetched replay is byte-identical to the inline pull by
 * construction, for any batch size or ring depth (DESIGN.md section
 * 7.17). Batch boundaries only affect when the producer blocks,
 * never what the simulator sees.
 *
 * Memory: ring depth x batch size records, recycled via the ring's
 * swap hand-off — after the first few batches the consumer side of
 * the pipeline allocates nothing.
 */

#ifndef ZOMBIE_TRACE_PREFETCH_HH
#define ZOMBIE_TRACE_PREFETCH_HH

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "trace/source.hh"
#include "util/spsc_ring.hh"

namespace zombie
{

/** Run an inner TraceSource ahead on a producer thread. */
class PrefetchSource : public TraceSource
{
  public:
    /** Records per hand-off batch when the caller has no opinion. */
    static constexpr std::size_t kDefaultBatch = 4096;

    /** Ring depth: batches parsed ahead of the consumer. */
    static constexpr std::size_t kDefaultDepth = 4;

    /**
     * @param inner the source to decode ahead (owned; its next() is
     *        only ever called from the producer thread).
     * @param batch_records records per batch (minimum 1).
     * @param depth ring slots, i.e. maximum batches in flight.
     */
    explicit PrefetchSource(std::unique_ptr<TraceSource> inner,
                            std::size_t batch_records = kDefaultBatch,
                            std::size_t depth = kDefaultDepth);

    /** Cancels the ring and joins the producer thread. */
    ~PrefetchSource() override;

    bool next(TraceRecord &out) override;

  private:
    using Batch = std::vector<TraceRecord>;

    void producerLoop();

    std::unique_ptr<TraceSource> src;
    std::size_t batchRecords;
    SpscRing<Batch> ring;

    /** Batch currently being drained (consumer thread only). */
    Batch cur;
    std::size_t pos = 0;

    std::thread producer;
};

/**
 * Wrap @p inner in a PrefetchSource with @p batch_records per batch;
 * batch_records == 0 means "inline" and returns @p inner unchanged.
 */
std::unique_ptr<TraceSource>
maybePrefetch(std::unique_ptr<TraceSource> inner,
              std::size_t batch_records);

} // namespace zombie

#endif // ZOMBIE_TRACE_PREFETCH_HH
