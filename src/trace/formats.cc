#include "trace/formats.hh"

#include <algorithm>
#include <charconv>
#include <cctype>

#include "util/logging.hh"
#include "util/types.hh"

namespace zombie
{

namespace
{

/**
 * Split @p line on @p sep (the space separator also folds runs of
 * whitespace, matching the blkio column convention) into at most
 * @p max fields. @return the field count, which may exceed @p max by
 * one to signal trailing garbage.
 */
std::size_t
splitFields(std::string_view line, char sep, std::string_view *out,
            std::size_t max)
{
    const char *p = line.data();
    const char *end = p + line.size();
    std::size_t n = 0;
    while (p < end) {
        if (sep == ' ') {
            while (p < end && std::isspace(
                                  static_cast<unsigned char>(*p)))
                ++p;
            if (p == end)
                break;
        }
        const char *start = p;
        if (sep == ' ') {
            while (p < end && !std::isspace(
                                  static_cast<unsigned char>(*p)))
                ++p;
        } else {
            while (p < end && *p != sep)
                ++p;
        }
        if (n < max)
            out[n] = std::string_view(start,
                                      static_cast<std::size_t>(
                                          p - start));
        if (++n > max)
            return n;
        if (sep != ' ' && p < end)
            ++p; // skip the separator; empty trailing field is fine
    }
    return n;
}

bool
allHexDigits(std::string_view s)
{
    return std::all_of(s.begin(), s.end(), [](char c) {
        return std::isxdigit(static_cast<unsigned char>(c)) != 0;
    });
}

} // namespace

ExternalFormat
externalFormatFromString(const std::string &name)
{
    if (name == "native")
        return ExternalFormat::Native;
    if (name == "fiu")
        return ExternalFormat::FiuBlkio;
    if (name == "msr")
        return ExternalFormat::MsrCsv;
    if (name == "csv" || name == "generic")
        return ExternalFormat::GenericCsv;
    zombie_fatal("unknown trace format '", name,
                 "' (native|fiu|msr|csv)");
}

std::string
toString(ExternalFormat format)
{
    switch (format) {
      case ExternalFormat::Native:
        return "native";
      case ExternalFormat::FiuBlkio:
        return "fiu";
      case ExternalFormat::MsrCsv:
        return "msr";
      case ExternalFormat::GenericCsv:
        return "csv";
    }
    zombie_panic("unreachable format");
}

LineTraceSource::LineTraceSource(const std::string &path,
                                 const char *format_name)
    : reader(openByteSource(path)), path_(path), fmtName(format_name)
{
}

void
LineTraceSource::fail(const std::string &what,
                      std::string_view line) const
{
    zombie_fatal("malformed ", fmtName, " record at ", path_, ":",
                 lineNumber(), " (", what, "): '", std::string(line),
                 "'");
}

std::uint64_t
LineTraceSource::parseUint(std::string_view field,
                           std::string_view line) const
{
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(
        field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size())
        fail("expected unsigned integer, got '" +
                 std::string(field) + "'",
             line);
    return value;
}

bool
LineTraceSource::isHeader(std::string_view) const
{
    return false;
}

bool
LineTraceSource::next(RawIoRecord &out)
{
    std::string_view text;
    while (reader.nextLine(text)) {
        if (text.empty() || text[0] == '#')
            continue;
        if (!sawFirst && isHeader(text))
            continue;
        out = RawIoRecord{};
        parseLine(text, out);

        // Normalize: the first record's wall-clock timestamp maps to
        // tick 0, and small reorderings (real traces carry them)
        // clamp to nondecreasing — the host-queue submit contract.
        if (!sawFirst) {
            sawFirst = true;
            firstRaw = rawTimestamp;
        }
        const std::uint64_t delta =
            rawTimestamp > firstRaw ? rawTimestamp - firstRaw : 0;
        Tick arrival = delta * arrivalUnitNs();
        arrival = std::max(arrival, lastArrival);
        lastArrival = arrival;
        out.arrival = arrival;
        return true;
    }
    return false;
}

FiuBlkioSource::FiuBlkioSource(const std::string &path)
    : LineTraceSource(path, "fiu-blkio")
{
}

void
FiuBlkioSource::parseLine(std::string_view line, RawIoRecord &out)
{
    // "timestamp pid process lba size op major minor [md5]" —
    // FILETIME ticks, 512-byte sectors, one MD5 per 4KB block.
    std::string_view f[9];
    const std::size_t n = splitFields(line, ' ', f, 9);
    if (n != 8 && n != 9)
        fail("expected 8 or 9 columns, got " + std::to_string(n),
             line);
    rawTimestamp = parseUint(f[0], line);
    const std::uint64_t lba = parseUint(f[3], line);
    const std::uint64_t sectors = parseUint(f[4], line);
    if (f[5].size() != 1)
        fail("bad op column '" + std::string(f[5]) + "'", line);
    switch (f[5][0]) {
      case 'W':
      case 'w':
        out.write = true;
        break;
      case 'R':
      case 'r':
        out.write = false;
        break;
      default:
        fail("bad op '" + std::string(f[5]) + "'", line);
    }
    out.offset = lba * 512;
    out.length = sectors * 512;
    if (n == 9) {
        if (f[8].size() != 32 || !allHexDigits(f[8]))
            fail("md5 column is not 32 hex digits", line);
        out.hasFingerprint = true;
        out.fp = Fingerprint::fromHex(f[8]);
    }
}

MsrCsvSource::MsrCsvSource(const std::string &path)
    : LineTraceSource(path, "msr-csv")
{
}

bool
MsrCsvSource::isHeader(std::string_view line) const
{
    // The distributed CSVs often lead with a column-name row.
    return line.rfind("Timestamp", 0) == 0 ||
           line.rfind("timestamp", 0) == 0;
}

void
MsrCsvSource::parseLine(std::string_view line, RawIoRecord &out)
{
    // "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
    // — FILETIME ticks and byte offsets/sizes; no content hashes.
    std::string_view f[7];
    const std::size_t n = splitFields(line, ',', f, 7);
    if (n != 7)
        fail("expected 7 columns, got " + std::to_string(n), line);
    rawTimestamp = parseUint(f[0], line);
    out.device = static_cast<std::uint32_t>(parseUint(f[2], line));
    if (f[3].empty())
        fail("empty Type column", line);
    switch (f[3][0]) {
      case 'W':
      case 'w':
        out.write = true;
        break;
      case 'R':
      case 'r':
        out.write = false;
        break;
      default:
        fail("bad Type '" + std::string(f[3]) + "'", line);
    }
    out.offset = parseUint(f[4], line);
    out.length = parseUint(f[5], line);
    out.hasFingerprint = false;
}

GenericCsvSource::GenericCsvSource(const std::string &path)
    : LineTraceSource(path, "generic-csv")
{
}

bool
GenericCsvSource::isHeader(std::string_view line) const
{
    return line.rfind("lba", 0) == 0;
}

void
GenericCsvSource::parseLine(std::string_view line, RawIoRecord &out)
{
    // "lba,size,op,ts" — lba in 4KB pages, size in bytes, ts in ns.
    std::string_view f[4];
    const std::size_t n = splitFields(line, ',', f, 4);
    if (n != 4)
        fail("expected 4 columns, got " + std::to_string(n), line);
    const std::uint64_t lba = parseUint(f[0], line);
    out.offset = lba * kPageSize;
    out.length = parseUint(f[1], line);
    if (f[2].size() != 1)
        fail("bad op column '" + std::string(f[2]) + "'", line);
    switch (f[2][0]) {
      case 'W':
      case 'w':
        out.write = true;
        break;
      case 'R':
      case 'r':
        out.write = false;
        break;
      default:
        fail("bad op '" + std::string(f[2]) + "'", line);
    }
    rawTimestamp = parseUint(f[3], line);
    out.hasFingerprint = false;
}

GenericCsvWriter::GenericCsvWriter(const std::string &path)
    : out(path)
{
    if (!out)
        zombie_fatal("cannot open CSV trace for writing: ", path);
    out << "lba,size,op,ts\n";
}

GenericCsvWriter::~GenericCsvWriter()
{
    close();
}

void
GenericCsvWriter::write(const TraceRecord &rec)
{
    out << rec.lpn << ",4096," << (rec.isWrite() ? 'W' : 'R') << ','
        << rec.arrival << '\n';
    ++count;
}

void
GenericCsvWriter::close()
{
    if (out.is_open())
        out.close();
}

} // namespace zombie
