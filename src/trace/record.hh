/**
 * @file
 * One trace record = one 4KB request, in the FIU trace tradition.
 *
 * The paper's traces carry, per request: an arrival timestamp, the
 * operation, the logical address, and a 16B hash of the 4KB content.
 * The synthetic generator additionally records the dense value id the
 * fingerprint was derived from, which the offline analyses use as a
 * cheap stand-in for the hash.
 */

#ifndef ZOMBIE_TRACE_RECORD_HH
#define ZOMBIE_TRACE_RECORD_HH

#include <cstdint>

#include "hash/fingerprint.hh"
#include "util/types.hh"

namespace zombie
{

/** Request direction. */
enum class OpType : std::uint8_t
{
    Read = 0,
    Write = 1,
};

/**
 * Ceiling on host-visible tenants (NVMe-style namespaces). Sixteen
 * keeps per-tenant value-id salts (tenant << 56) clear of the
 * generator's cold-read (0xC0..) and prefill (0xF0..) id regions.
 */
constexpr std::uint32_t kMaxTenants = 16;

/** A single 4KB I/O request. */
struct TraceRecord
{
    /** Arrival time in ticks (ns) from trace start. */
    Tick arrival = 0;

    OpType op = OpType::Read;

    /** Logical page (4KB-aligned address / kPageSize). */
    Lpn lpn = kInvalidLpn;

    /** 16B content hash of the 4KB chunk. */
    Fingerprint fp{};

    /**
     * Dense content id for synthetic traces (kNoValueId when the
     * record came from an external trace file).
     */
    std::uint64_t valueId = kNoValueId;

    /** Submitting tenant (namespace index); 0 for single-tenant. */
    std::uint16_t tenant = 0;

    static constexpr std::uint64_t kNoValueId = ~0ULL;

    bool isWrite() const { return op == OpType::Write; }
    bool isRead() const { return op == OpType::Read; }
};

} // namespace zombie

#endif // ZOMBIE_TRACE_RECORD_HH
