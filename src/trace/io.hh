/**
 * @file
 * Trace (de)serialization.
 *
 * Two interchangeable formats:
 *  - text: one request per line, "ts_ns OP lpn fp_hex value_id"
 *    (value_id = "-" for external traces) plus a trailing tenant
 *    column when the record belongs to a tenant other than 0, easy
 *    to inspect/diff;
 *  - binary: packed little-endian records behind a magic header,
 *    ~10x smaller and faster for multi-million-request traces.
 */

#ifndef ZOMBIE_TRACE_IO_HH
#define ZOMBIE_TRACE_IO_HH

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/source.hh"
#include "util/buffered_reader.hh"
#include "util/byte_source.hh"

namespace zombie
{

/** On-disk trace format selector. */
enum class TraceFormat
{
    Text,
    Binary,
};

/** Streaming writer; fatal on I/O errors (user environment problem). */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, TraceFormat format);
    ~TraceWriter();

    void write(const TraceRecord &rec);
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::ofstream out;
    TraceFormat fmt;
    std::uint64_t count = 0;
};

/**
 * Streaming reader mirroring TraceWriter. Reads through
 * util/byte_source, so gzip/zstd-compressed traces (text or binary)
 * replay transparently; text lines come from the zero-copy buffered
 * reader (CRLF-tolerant), binary records from a chunked refill
 * buffer — no istream machinery on the per-record path.
 */
class TraceReader : public TraceSource
{
  public:
    explicit TraceReader(const std::string &path);

    /** @return false at end of trace; fatal on malformed input. */
    bool next(TraceRecord &out) override;

    /** Drain the remainder of the trace. */
    std::vector<TraceRecord> readAll();

    TraceFormat format() const { return fmt; }

  private:
    /** Refill the binary chunk buffer; @return bytes available. */
    std::size_t binAvail(std::size_t need);

    /** Binary-record byte stream; null in text mode. */
    std::unique_ptr<ByteSource> bin;
    std::vector<char> buf;
    std::size_t pos = 0;
    std::size_t limit = 0;

    /** Text-line stream; null in binary mode. */
    std::unique_ptr<BufferedLineReader> lines;

    std::string path_;
    TraceFormat fmt;
    std::uint64_t line = 0;
};

/** Convenience: write a whole trace in one call. */
void writeTraceFile(const std::string &path, TraceFormat format,
                    const std::vector<TraceRecord> &records);

} // namespace zombie

#endif // ZOMBIE_TRACE_IO_HH
