#include "trace/summary.hh"

namespace zombie
{

void
TraceSummarizer::observe(const TraceRecord &rec)
{
    if (first) {
        summary.firstArrival = rec.arrival;
        first = false;
    }
    summary.lastArrival = rec.arrival;

    if (lpns.insert(rec.lpn).second)
        ++summary.distinctLpns;

    if (rec.isWrite()) {
        ++summary.writes;
        if (writeValues.insert(rec.fp).second)
            ++summary.distinctWriteValues;
    } else {
        ++summary.reads;
        if (readValues.insert(rec.fp).second)
            ++summary.distinctReadValues;
    }
}

TraceSummary
summarizeTrace(const std::vector<TraceRecord> &records)
{
    TraceSummarizer s;
    s.reserve(records.size());
    for (const auto &rec : records)
        s.observe(rec);
    return s.finish();
}

} // namespace zombie
