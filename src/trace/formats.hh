/**
 * @file
 * Streaming parsers for public block-trace formats.
 *
 * The paper's evaluation runs on real content traces; public block
 * traces come in several flavors, so each parser lowers its format
 * into one raw shape — a byte-addressed extent with an arrival
 * timestamp, a direction, and (when the format carries one) a native
 * content fingerprint — and the adapters in trace/adapters.hh turn
 * that into the 4KB TraceRecord stream the simulator replays.
 *
 * Supported formats:
 *
 *  - FIU SRCMap blkio (the paper's own trace family): one record per
 *    line, "timestamp pid process lba size op major minor [md5]";
 *    timestamps are Windows FILETIME ticks (100ns), lba/size are in
 *    512-byte sectors, and the md5 column is the native 16-byte
 *    fingerprint of the 4KB block.
 *  - MSR-Cambridge CSV: "Timestamp,Hostname,DiskNumber,Type,Offset,
 *    Size,ResponseTime"; FILETIME timestamps, byte offsets/sizes, no
 *    content hashes.
 *  - Generic CSV: "lba,size,op,ts" with lba a 4KB page index, size
 *    in bytes, op R|W, ts in nanoseconds; an optional header line
 *    and '#' comments are skipped. The simplest interchange format,
 *    and the one GenericCsvWriter emits for round-trip fixtures.
 *
 * Parsers are strictly streaming (one line of lookahead, bounded
 * memory) and strictly validating: a malformed line is a
 * zombie_fatal naming the file and line, never a garbage record.
 */

#ifndef ZOMBIE_TRACE_FORMATS_HH
#define ZOMBIE_TRACE_FORMATS_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "hash/fingerprint.hh"
#include "trace/record.hh"
#include "util/buffered_reader.hh"

namespace zombie
{

/** External block-trace formats with a streaming parser. */
enum class ExternalFormat
{
    Native,     //!< this repo's own text/binary format (trace/io.hh)
    FiuBlkio,   //!< FIU SRCMap blkio with native MD5 fingerprints
    MsrCsv,     //!< MSR-Cambridge block-trace CSV
    GenericCsv, //!< "lba,size,op,ts" interchange CSV
};

/** Parse "native" / "fiu" / "msr" / "csv"; fatal otherwise. */
ExternalFormat externalFormatFromString(const std::string &name);
std::string toString(ExternalFormat format);

/** One parsed request before 4KB lowering: a raw byte extent. */
struct RawIoRecord
{
    /** Arrival in ns, already normalized to the trace start. */
    Tick arrival = 0;

    bool write = false;

    /** Byte extent on the device (need not be 4KB aligned). */
    std::uint64_t offset = 0;
    std::uint64_t length = 0;

    /** Source device (MSR DiskNumber); 0 for single-device formats.
     *  --msr-disk-tenants routes devices onto tenant namespaces. */
    std::uint32_t device = 0;

    /** Native content fingerprint, when the format carries one. */
    bool hasFingerprint = false;
    Fingerprint fp{};
};

/** Pull interface over a raw (pre-lowering) request stream. */
class RawTraceSource
{
  public:
    virtual ~RawTraceSource() = default;

    /** @return false at end of stream; fatal on malformed input. */
    virtual bool next(RawIoRecord &out) = 0;
};

/**
 * Shared line-oriented plumbing: open-or-fatal (with transparent
 * gzip/zstd input via util/byte_source), zero-copy buffered line
 * reading, line counting, and the timestamp normalization every
 * wall-clock format needs (first timestamp maps to 0; real traces
 * carry small reorderings, so later arrivals clamp to nondecreasing
 * — the submit() contract). CRLF line endings are stripped by the
 * reader, so Windows-produced CSVs parse exactly like Unix ones.
 */
class LineTraceSource : public RawTraceSource
{
  public:
    bool next(RawIoRecord &out) override;

  protected:
    LineTraceSource(const std::string &path, const char *format_name);

    /**
     * Parse one non-empty, non-comment line into @p out, with
     * arrival still in raw trace units. The view aliases the read
     * buffer and dies with the next line. Implementations call
     * fail() (fatal) on any malformed field.
     */
    virtual void parseLine(std::string_view line,
                           RawIoRecord &out) = 0;

    /** Raw-timestamp unit in ns (100 for FILETIME formats). */
    virtual Tick arrivalUnitNs() const = 0;

    /** Whether @p line is a header/comment to skip (first line). */
    virtual bool isHeader(std::string_view line) const;

    /** Fatal parse error naming the file and 1-based line. */
    [[noreturn]] void fail(const std::string &what,
                           std::string_view line) const;

    /** Parse helpers; fatal via fail() on malformed fields. */
    std::uint64_t parseUint(std::string_view field,
                            std::string_view line) const;

    const std::string &path() const { return path_; }
    std::uint64_t lineNumber() const { return reader.lineNumber(); }

  private:
    BufferedLineReader reader;
    std::string path_;
    const char *fmtName;

    /** Raw-unit timestamp of the first record (normalization base). */
    bool sawFirst = false;
    std::uint64_t firstRaw = 0;

    /** Last normalized arrival emitted (monotonicity clamp). */
    Tick lastArrival = 0;

    /** Raw timestamp of the line just parsed (set by parseLine). */
  protected:
    std::uint64_t rawTimestamp = 0;
};

/** FIU SRCMap blkio parser (native MD5 fingerprints). */
class FiuBlkioSource : public LineTraceSource
{
  public:
    explicit FiuBlkioSource(const std::string &path);

  protected:
    void parseLine(std::string_view line, RawIoRecord &out) override;
    Tick arrivalUnitNs() const override { return 100; }
};

/** MSR-Cambridge CSV parser (no content hashes). */
class MsrCsvSource : public LineTraceSource
{
  public:
    explicit MsrCsvSource(const std::string &path);

  protected:
    void parseLine(std::string_view line, RawIoRecord &out) override;
    Tick arrivalUnitNs() const override { return 100; }
    bool isHeader(std::string_view line) const override;
};

/** Generic "lba,size,op,ts" CSV parser. */
class GenericCsvSource : public LineTraceSource
{
  public:
    explicit GenericCsvSource(const std::string &path);

  protected:
    void parseLine(std::string_view line, RawIoRecord &out) override;
    Tick arrivalUnitNs() const override { return 1; }
    bool isHeader(std::string_view line) const override;
};

/**
 * Round-trip writer for the generic CSV format: one "lba,size,op,ts"
 * line per 4KB record, so tests and scripts can emit fixture traces
 * from the synthetic generator and re-ingest them through
 * GenericCsvSource. Content hashes are not representable in this
 * format — re-ingest synthesizes fingerprints from (LBA, version) —
 * so a round trip preserves the request stream, not the content
 * stream.
 */
class GenericCsvWriter
{
  public:
    explicit GenericCsvWriter(const std::string &path);
    ~GenericCsvWriter();

    void write(const TraceRecord &rec);
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::ofstream out;
    std::uint64_t count = 0;
};

} // namespace zombie

#endif // ZOMBIE_TRACE_FORMATS_HH
