#include "dedup/fingerprint_store.hh"

#include <algorithm>

#include "util/logging.hh"

namespace zombie
{

FingerprintStore::FingerprintStore(std::uint64_t expected_pages)
{
    const std::uint64_t expected =
        std::min<std::uint64_t>(expected_pages, 1u << 22);
    byFp.reserve(expected);
    byPpn.reserve(expected);
}

std::optional<Ppn>
FingerprintStore::lookup(const Fingerprint &fp)
{
    ++dstats.lookups;
    auto it = byFp.find(fp);
    if (it == byFp.end())
        return std::nullopt;
    return it->second.ppn;
}

void
FingerprintStore::registerPage(const Fingerprint &fp, Ppn ppn)
{
    zombie_assert(!byFp.count(fp),
                  "fingerprint already live: ", fp.hex());
    zombie_assert(!byPpn.count(ppn), "PPN already indexed: ", ppn);
    byFp[fp] = Record{ppn, 1, 1};
    byPpn[ppn] = fp;
    ++dstats.registered;
}

std::uint8_t
FingerprintStore::addReference(const Fingerprint &fp)
{
    auto it = byFp.find(fp);
    zombie_assert(it != byFp.end(), "addReference to unknown content");
    ++it->second.refs;
    it->second.pop = it->second.pop == 255
                         ? it->second.pop
                         : static_cast<std::uint8_t>(it->second.pop + 1);
    ++dstats.hits;
    return it->second.pop;
}

std::uint32_t
FingerprintStore::releaseReference(Ppn ppn)
{
    auto pit = byPpn.find(ppn);
    zombie_assert(pit != byPpn.end(),
                  "releaseReference on untracked PPN ", ppn);
    auto fit = byFp.find(pit->second);
    zombie_assert(fit != byFp.end(), "fingerprint store desync");
    zombie_assert(fit->second.refs > 0, "refcount underflow");

    const std::uint32_t remaining = --fit->second.refs;
    if (remaining == 0) {
        byFp.erase(fit);
        byPpn.erase(pit);
        ++dstats.lastRefDrops;
    }
    return remaining;
}

void
FingerprintStore::relocate(Ppn from, Ppn to)
{
    auto pit = byPpn.find(from);
    zombie_assert(pit != byPpn.end(), "relocate of untracked PPN ", from);
    const Fingerprint fp = pit->second;
    byPpn.erase(pit);
    zombie_assert(!byPpn.count(to), "relocate target already indexed");
    byPpn[to] = fp;
    byFp[fp].ppn = to;
}

std::uint32_t
FingerprintStore::refCount(Ppn ppn) const
{
    auto pit = byPpn.find(ppn);
    if (pit == byPpn.end())
        return 0;
    return byFp.at(pit->second).refs;
}

std::uint8_t
FingerprintStore::popularity(const Fingerprint &fp) const
{
    auto it = byFp.find(fp);
    return it == byFp.end() ? 0 : it->second.pop;
}

bool
FingerprintStore::contains(const Fingerprint &fp) const
{
    return byFp.count(fp) > 0;
}

void
FingerprintStore::registerStats(StatRegistry &registry) const
{
    registry.addCounter("dedup.lookups", &dstats.lookups);
    registry.addCounter("dedup.hits", &dstats.hits);
    registry.addCounter("dedup.registered", &dstats.registered);
    registry.addCounter("dedup.last_ref_drops", &dstats.lastRefDrops);
    registry.addGauge("dedup.live_entries", [this] {
        return static_cast<double>(size());
    });
}

} // namespace zombie
