/**
 * @file
 * Refcounted fingerprint store for in-line deduplication.
 *
 * Implements the CAFTL/value-locality style device-level dedup the
 * paper uses as its Dedup baseline (references [4], [5]): a live
 * physical page is indexed by its content hash; a write whose hash is
 * already live maps the LPN onto the existing PPN (many-to-one) and
 * bumps a reference count. A physical page becomes garbage only when
 * its last reference is dropped (paper section VII).
 */

#ifndef ZOMBIE_DEDUP_FINGERPRINT_STORE_HH
#define ZOMBIE_DEDUP_FINGERPRINT_STORE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/fingerprint.hh"
#include "telemetry/stat_registry.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace zombie
{

/** Dedup bookkeeping counters. */
struct DedupStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0; //!< writes absorbed by an existing page
    std::uint64_t registered = 0;
    std::uint64_t lastRefDrops = 0; //!< pages that became garbage

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Live-content index: fingerprint -> (PPN, refcount, popularity). */
class FingerprintStore
{
  public:
    /**
     * @param expected_pages expected number of live fingerprints;
     * pre-sizes the hash tables so steady-state inserts never rehash
     * (0 leaves the tables to grow on demand).
     */
    explicit FingerprintStore(std::uint64_t expected_pages = 0);

    /**
     * Look up live content; counts a dedup lookup. @return the PPN
     * holding this content, or nullopt.
     */
    std::optional<Ppn> lookup(const Fingerprint &fp);

    /** Register newly programmed (or revived) content with ref 1. */
    void registerPage(const Fingerprint &fp, Ppn ppn);

    /**
     * A further LPN now references this live content; counts a dedup
     * hit. @return the popularity degree after the bump.
     */
    std::uint8_t addReference(const Fingerprint &fp);

    /**
     * An LPN stopped referencing the content at @p ppn.
     * @return remaining references; 0 means the physical page just
     * became garbage (and is dropped from the store).
     */
    std::uint32_t releaseReference(Ppn ppn);

    /** GC moved live content from @p from to @p to. */
    void relocate(Ppn from, Ppn to);

    /** Current references to the content at @p ppn (0 if untracked). */
    std::uint32_t refCount(Ppn ppn) const;

    /** Write-popularity degree of live content (0 if untracked). */
    std::uint8_t popularity(const Fingerprint &fp) const;

    bool contains(const Fingerprint &fp) const;
    std::uint64_t size() const { return byFp.size(); }
    const DedupStats &stats() const { return dstats; }

    /**
     * Register the store's counters and live-entry gauge under
     * "dedup.". Counter storage lives in this store; registrations
     * stay valid for its lifetime.
     */
    void registerStats(StatRegistry &registry) const;

  private:
    struct Record
    {
        Ppn ppn = 0;
        std::uint32_t refs = 0;
        std::uint8_t pop = 0;
    };

    FlatMap<Fingerprint, Record, FingerprintHash> byFp;
    FlatMap<Ppn, Fingerprint> byPpn;
    DedupStats dstats;
};

} // namespace zombie

#endif // ZOMBIE_DEDUP_FINGERPRINT_STORE_HH
