#!/bin/sh
# Build and test both configurations: the standard RelWithDebInfo
# tree (tier-1 gate) and the ASan+UBSan tree. Run from the repo root:
#
#   scripts/check.sh            # both configs
#   scripts/check.sh default    # just the standard build
#   scripts/check.sh asan-ubsan # just the sanitizer build
set -eu

cd "$(dirname "$0")/.."

presets="${1:-default asan-ubsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

for preset in $presets; do
    echo "==> configure [$preset]"
    cmake --preset "$preset"
    echo "==> build [$preset]"
    cmake --build --preset "$preset" -j "$jobs"
    echo "==> ctest [$preset]"
    ctest --preset "$preset" -j "$jobs"
done

echo "==> all checks passed"
