#!/bin/sh
# Build and test both configurations: the standard RelWithDebInfo
# tree (tier-1 gate) and the ASan+UBSan tree. Run from the repo root:
#
#   scripts/check.sh            # both configs
#   scripts/check.sh default    # just the standard build
#   scripts/check.sh asan-ubsan # just the sanitizer build
#   scripts/check.sh tsan       # thread sanitizer (parallel harness)
set -eu

cd "$(dirname "$0")/.."

presets="${1:-default asan-ubsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Build tree per configure preset (CMakePresets.json binaryDir).
bindir_for() {
    case "$1" in
        default) echo build ;;
        asan-ubsan) echo build-asan ;;
        tsan) echo build-tsan ;;
        *) echo "build-$1" ;;
    esac
}

for preset in $presets; do
    echo "==> configure [$preset]"
    cmake --preset "$preset"
    echo "==> build [$preset]"
    cmake --build --preset "$preset" -j "$jobs"
    echo "==> ctest [$preset]"
    ctest --preset "$preset" -j "$jobs"

    # Smoke-run every bench at a tiny request count with the parallel
    # harness engaged (--jobs 2), so harness regressions and data
    # races surface here (especially under the tsan preset). The
    # micro_* benches take no arguments and are skipped.
    bindir="$(bindir_for "$preset")"
    echo "==> smoke benches [$preset]"
    for bench in "$bindir"/bench/*; do
        [ -f "$bench" ] && [ -x "$bench" ] || continue
        case "$(basename "$bench")" in
            micro_*) continue ;;
        esac
        echo "  -> $(basename "$bench")"
        "$bench" --requests 2000 --jobs 2 >/dev/null
    done
done

echo "==> all checks passed"
