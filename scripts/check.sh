#!/bin/sh
# Build and test both configurations: the standard RelWithDebInfo
# tree (tier-1 gate) and the ASan+UBSan tree. Run from the repo root:
#
#   scripts/check.sh            # both configs
#   scripts/check.sh default    # just the standard build
#   scripts/check.sh asan-ubsan # just the sanitizer build
#   scripts/check.sh tsan       # thread sanitizer (parallel harness)
set -eu

cd "$(dirname "$0")/.."

presets="${1:-default asan-ubsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

# Build tree per configure preset (CMakePresets.json binaryDir).
bindir_for() {
    case "$1" in
        default) echo build ;;
        asan-ubsan) echo build-asan ;;
        tsan) echo build-tsan ;;
        *) echo "build-$1" ;;
    esac
}

for preset in $presets; do
    echo "==> configure [$preset]"
    cmake --preset "$preset"
    echo "==> build [$preset]"
    cmake --build --preset "$preset" -j "$jobs"
    echo "==> ctest [$preset]"
    ctest --preset "$preset" -j "$jobs"

    # Smoke-run every bench at a tiny request count with the parallel
    # harness engaged (--jobs 2), so harness regressions and data
    # races surface here (especially under the tsan preset), and
    # byte-diff stdout against the committed goldens: the simulated
    # results are deterministic, so any drift — across presets,
    # optimization levels or hot-path rewrites — is a bug. The
    # micro_* benches take no arguments and are skipped.
    bindir="$(bindir_for "$preset")"
    golden=tests/golden/smoke
    echo "==> smoke benches [$preset]"
    for bench in "$bindir"/bench/*; do
        [ -f "$bench" ] && [ -x "$bench" ] || continue
        name="$(basename "$bench")"
        case "$name" in
            micro_*) continue ;;
        esac
        echo "  -> $name"
        "$bench" --requests 2000 --jobs 2 > "$bindir/$name.smoke.txt"
        if [ -f "$golden/$name.txt" ]; then
            diff -u "$golden/$name.txt" "$bindir/$name.smoke.txt"
        else
            echo "     (no golden: $golden/$name.txt)" >&2
        fi
    done

    # Telemetry smoke: one small cell with the epoch sampler, the op
    # tracer and the registry dump all engaged. Both JSON artifacts
    # must parse, and the end-of-run stat dump is deterministic, so
    # it diffs against a golden like the bench stdout above.
    echo "==> telemetry smoke [$preset]"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 20000 --seed 42 --stats-interval 20000 \
        --stats-csv "$bindir/telemetry.smoke.csv" \
        --stats-json "$bindir/telemetry.smoke.json" \
        --trace-out "$bindir/telemetry.smoke.trace.json" \
        --dump-stats "$bindir/telemetry.smoke.stats.txt" \
        > /dev/null
    python3 -m json.tool "$bindir/telemetry.smoke.json" > /dev/null
    python3 -m json.tool "$bindir/telemetry.smoke.trace.json" \
        > /dev/null
    diff -u tests/golden/telemetry/simulate_trace_stats.txt \
        "$bindir/telemetry.smoke.stats.txt"

    # Multi-tenant smoke: two namespaces behind a 3:1 weighted
    # arbiter with partitioned pools. Deterministic like the rest,
    # so the whole stdout (drive-wide stats, tenant.N.* block and
    # per-tenant table) diffs against a golden.
    echo "==> multi-tenant smoke [$preset]"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 20000 --seed 42 --tenants 2 --arbiter wrr:3,1 \
        --dvp-scope partitioned --queue-depth 8 \
        > "$bindir/multi_tenant.smoke.txt"
    diff -u tests/golden/smoke/multi_tenant.txt \
        "$bindir/multi_tenant.smoke.txt"

    # External-trace replay smoke: generate a 50k-record generic-CSV
    # fixture with awk (pure arithmetic, so the bytes are identical
    # on every host), stream it through the trace frontend
    # (DESIGN.md section 7.16) and diff against the committed golden,
    # then require the --materialize run to reproduce the streamed
    # stdout byte-for-byte. The fixture lives at a fixed /tmp path so
    # the "replaying <path>" banner matches across presets.
    echo "==> trace replay smoke [$preset]"
    fixture=/tmp/zombie_replay_smoke.csv
    awk 'BEGIN {
        print "lba,size,op,ts"
        for (i = 0; i < 50000; i++) {
            lba = (i * 7919) % 4096
            op = (i % 4 == 3) ? "R" : "W"
            size = (i % 5 == 0) ? 12288 : 4096
            printf "%d,%d,%s,%d\n", lba, size, op, i * 3000
        }
    }' > "$fixture"
    "$bindir"/examples/simulate_trace --trace-file "$fixture" \
        --trace-format csv --version-period 3 --system dvp \
        --queue-depth 8 > "$bindir/replay_csv.smoke.txt"
    diff -u tests/golden/smoke/replay_csv.txt \
        "$bindir/replay_csv.smoke.txt"
    "$bindir"/examples/simulate_trace --trace-file "$fixture" \
        --trace-format csv --version-period 3 --system dvp \
        --queue-depth 8 --materialize \
        > "$bindir/replay_csv.materialized.txt"
    diff -u "$bindir/replay_csv.smoke.txt" \
        "$bindir/replay_csv.materialized.txt"

    # Decode-ahead differential (DESIGN.md section 7.17): the
    # streamed run above uses the default prefetch pipeline, so
    # diffing an inline (--no-prefetch) run and an awkward batch
    # size against it proves the producer thread is invisible —
    # and under the tsan preset the default run doubles as the
    # data-race probe for the hand-off ring.
    echo "==> prefetch differential [$preset]"
    "$bindir"/examples/simulate_trace --trace-file "$fixture" \
        --trace-format csv --version-period 3 --system dvp \
        --queue-depth 8 --no-prefetch \
        > "$bindir/replay_csv.noprefetch.txt"
    diff -u "$bindir/replay_csv.smoke.txt" \
        "$bindir/replay_csv.noprefetch.txt"
    "$bindir"/examples/simulate_trace --trace-file "$fixture" \
        --trace-format csv --version-period 3 --system dvp \
        --queue-depth 8 --prefetch 7 \
        > "$bindir/replay_csv.prefetch7.txt"
    diff -u "$bindir/replay_csv.smoke.txt" \
        "$bindir/replay_csv.prefetch7.txt"

    # Gzipped-input smoke: compress the fixture *in place* — the
    # byte source sniffs container magic, not file extensions, so
    # the same path now decodes through zlib and must reproduce
    # the same golden byte-for-byte (banner included).
    if command -v gzip > /dev/null 2>&1; then
        echo "==> gzip replay smoke [$preset]"
        gzip -n -c "$fixture" > "$fixture.tmp"
        mv "$fixture.tmp" "$fixture"
        "$bindir"/examples/simulate_trace --trace-file "$fixture" \
            --trace-format csv --version-period 3 --system dvp \
            --queue-depth 8 > "$bindir/replay_csv.gz.txt"
        diff -u tests/golden/smoke/replay_csv.txt \
            "$bindir/replay_csv.gz.txt"
    else
        echo "==> gzip replay smoke [$preset] (skipped: no gzip)" >&2
    fi

    # Scan-once grid smoke: a 2x2 sweep from the (now gzipped)
    # fixture, two cells at a time. Deterministic like everything
    # else — the whole stdout (per-cell stats and summary table)
    # diffs against a golden; under tsan this is the race probe
    # for the cell fan-out and the shared spool.
    echo "==> grid sweep smoke [$preset]"
    "$bindir"/examples/simulate_trace --trace-file "$fixture" \
        --trace-format csv --version-period 3 --system dvp \
        --grid "system=dvp,baseline;depth=1,8" --jobs 2 \
        > "$bindir/replay_grid.smoke.txt"
    grep -v '^grid wall:' "$bindir/replay_grid.smoke.txt" \
        > "$bindir/replay_grid.filtered.txt"
    diff -u tests/golden/smoke/replay_grid.txt \
        "$bindir/replay_grid.filtered.txt"

    # Sharded flash-phase differential: the channel-sharded issue
    # path must reproduce the serial run byte-for-byte. Run under
    # every preset — under tsan this is also the data-race probe for
    # the worker band (small request count: tsan is ~10x slower).
    echo "==> sharded differential [$preset]"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 100000 --seed 42 --queue-depth 8 \
        > "$bindir/sharded.serial.txt"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 100000 --seed 42 --queue-depth 8 --shards 4 \
        > "$bindir/sharded.smoke.txt"
    diff -u "$bindir/sharded.serial.txt" "$bindir/sharded.smoke.txt"

    # Epoch-engine differential: the speculative per-channel lanes
    # must also reproduce the serial run byte-for-byte, alone and
    # stacked on the sharded flash phase (the worker band then runs
    # both the parallel drain and the GC issue — the tsan preset
    # makes this the race probe for the epoch machinery). The third
    # cell arms the sampler at a boundary short enough that mid-epoch
    # StatsSample re-arms force genuine speculation rollbacks.
    echo "==> epoch differential [$preset]"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 100000 --seed 42 --queue-depth 8 --engine epoch \
        > "$bindir/epoch.smoke.txt"
    diff -u "$bindir/sharded.serial.txt" "$bindir/epoch.smoke.txt"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 100000 --seed 42 --queue-depth 8 --engine epoch \
        --shards 4 > "$bindir/epoch.sharded.smoke.txt"
    diff -u "$bindir/sharded.serial.txt" \
        "$bindir/epoch.sharded.smoke.txt"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 20000 --seed 42 --stats-interval 100 \
        > "$bindir/epoch.rollback.serial.txt"
    "$bindir"/examples/simulate_trace --workload mail --system dvp \
        --requests 20000 --seed 42 --stats-interval 100 \
        --engine epoch --wall-json "$bindir/epoch.rollback.json" \
        > "$bindir/epoch.rollback.txt"
    grep -v '^wrote ' "$bindir/epoch.rollback.txt" \
        > "$bindir/epoch.rollback.filtered.txt"
    diff -u "$bindir/epoch.rollback.serial.txt" \
        "$bindir/epoch.rollback.filtered.txt"
    awk '/"rolled_back_epochs":/ {
            v = $0; sub(/.*"rolled_back_epochs": /, "", v)
            sub(/[^0-9].*/, "", v)
            printf "    rolled-back epochs: %d\n", v
            if (v + 0 == 0) {
                print "FATAL: rollback cell rolled nothing back"
                exit 1
            }
        }' "$bindir/epoch.rollback.json"

    # Single-trace latency guard (default preset only): best-of-1
    # probe of the committed 1M-request cell, warning (non-fatally,
    # like the harness guard below) when the serial requests/sec
    # drop more than 20% below BENCH_singletrace.json.
    if [ "$preset" = default ] && [ -f BENCH_singletrace.json ]; then
        echo "==> single-trace guard [$preset]"
        BINDIR="$bindir" RUNS=1 OUT="$bindir/singletrace.probe.json" \
            scripts/singletrace_probe.sh > /dev/null 2>&1
        awk '
            FNR == 1 { file += 1 }
            /"serial":/ {
                v = $0; sub(/.*"reqs_per_s": /, "", v)
                sub(/[^0-9.].*/, "", v)
                if (!(file in rate))
                    rate[file] = v + 0
            }
            END {
                printf "    serial reqs/s: now %.0f, committed %.0f\n", \
                    rate[1], rate[2]
                if (rate[2] > 0 && rate[1] < 0.8 * rate[2])
                    printf "WARNING: single-trace throughput " \
                        "regressed >20%% vs BENCH_singletrace.json\n"
            }' "$bindir/singletrace.probe.json" \
            BENCH_singletrace.json | tee "$bindir/singletrace.guard.txt"
    fi

    # Harness-throughput guard (default preset only; sanitizer
    # builds are expected to be slow). Re-run the wall-clock report
    # into the build tree and compare the aggregate events/sec
    # against the committed baseline. A >20% drop is almost always a
    # hot-path regression, but wall clock depends on the host and
    # its load, so this warns rather than fails.
    if [ "$preset" = default ] && [ -f BENCH_throughput.json ]; then
        echo "==> throughput guard [$preset]"
        BINDIR="$bindir" OUTDIR="$bindir/bench-report" \
            scripts/bench_report.sh > /dev/null
        awk '
            FNR == 1 { file += 1 }
            /"events_per_s":/ && !(file in rate) {
                v = $0; sub(/.*"events_per_s": /, "", v)
                sub(/[^0-9.].*/, "", v)
                rate[file] = v + 0
            }
            END {
                printf "    events/s: now %.0f, committed %.0f\n", \
                    rate[1], rate[2]
                if (rate[2] > 0 && rate[1] < 0.8 * rate[2])
                    printf "WARNING: harness throughput regressed " \
                        ">20%% vs BENCH_throughput.json\n"
            }' "$bindir/bench-report/BENCH_throughput.json" \
            BENCH_throughput.json | tee "$bindir/throughput.guard.txt"
    fi
done

# Re-surface any throughput warning next to the final verdict so it
# is not buried above the ctest output.
for preset in $presets; do
    bindir="$(bindir_for "$preset")"
    [ -f "$bindir/throughput.guard.txt" ] &&
        grep WARNING "$bindir/throughput.guard.txt" || true
    [ -f "$bindir/singletrace.guard.txt" ] &&
        grep WARNING "$bindir/singletrace.guard.txt" || true
done

echo "==> all checks passed"
