#!/bin/sh
# Harness-throughput report: run the six full-simulation figure
# benches with the wall-clock side channel enabled and merge the
# per-cell records into results/BENCH_throughput.json (per-workload
# mean requests/sec plus totals). Simulated-time results are
# untouched; this measures the *harness*, so it is the number to
# watch when changing hot paths (DESIGN.md section 7.9).
#
#   scripts/bench_report.sh
#   REQUESTS=100000 JOBS=0 scripts/bench_report.sh   # bigger, parallel
#
# Plain shell + awk only; no python/jq dependency.
set -eu

cd "$(dirname "$0")/.."

bindir="${BINDIR:-build}"
requests="${REQUESTS:-50000}"
jobs="${JOBS:-1}"
outdir="${OUTDIR:-results}"

benches="fig09_write_reduction fig10_erase_reduction \
fig11_mean_latency fig12_tail_latency fig14_dedup_combination \
fig15_dedup_latency"

mkdir -p "$outdir/wall"

for bench in $benches; do
    echo "==> $bench (requests=$requests jobs=$jobs)"
    "$bindir/bench/$bench" --requests "$requests" --jobs "$jobs" \
        --wall-json "$outdir/wall/$bench.json" >/dev/null
done

report="$outdir/BENCH_throughput.json"

# Merge every per-bench cell record; emit per-workload means in the
# fixed workload order the benches use.
awk -v requests="$requests" -v jobs="$jobs" '
/"workload":/ {
    w = $0; sub(/.*"workload": "/, "", w); sub(/".*/, "", w)
    s = $0; sub(/.*"wall_s": /, "", s); sub(/,.*/, "", s)
    r = $0; sub(/.*"reqs_per_s": /, "", r); sub(/[^0-9.].*/, "", r)
    e = $0; sub(/.*"events": /, "", e); sub(/[^0-9].*/, "", e)
    count[w] += 1
    rate[w] += r
    wall[w] += s
    events[w] += e
    cells += 1
    total += s
    events_total += e
}
END {
    n = split("web home mail hadoop trans desktop", order, " ")
    printf "{\n"
    printf "  \"generated_by\": \"scripts/bench_report.sh\",\n"
    printf "  \"requests_per_cell\": %d,\n", requests
    printf "  \"jobs\": %d,\n", jobs
    printf "  \"cells\": %d,\n", cells
    printf "  \"total_wall_s\": %.3f,\n", total
    printf "  \"total_events\": %d,\n", events_total
    printf "  \"events_per_s\": %.1f,\n", \
        (total > 0 ? events_total / total : 0)
    printf "  \"workloads\": [\n"
    first = 1
    for (i = 1; i <= n; i++) {
        w = order[i]
        if (!(w in count))
            continue
        if (!first)
            printf ",\n"
        first = 0
        printf "    {\"workload\": \"%s\", \"cells\": %d, " \
               "\"mean_reqs_per_s\": %.1f, \"wall_s\": %.3f, " \
               "\"events_per_s\": %.1f}", \
               w, count[w], rate[w] / count[w], wall[w], \
               (wall[w] > 0 ? events[w] / wall[w] : 0)
    }
    printf "\n  ]\n}\n"
}
' "$outdir"/wall/*.json > "$report"

# The repo root keeps a copy so the headline harness-throughput
# number is visible without digging into results/. Skipped when
# OUTDIR is overridden (e.g. the check.sh throughput guard probes
# into the build tree and must not touch the committed baseline).
if [ "$outdir" = results ]; then
    cp "$report" BENCH_throughput.json
fi

echo "==> wrote $report (and ./BENCH_throughput.json)"
cat "$report"
