#!/bin/sh
# Single-trace latency probe (DESIGN.md section 7.14): time the
# 1M-request mail/dvp cell through simulate_trace — serial and with
# the channel-sharded flash phase — byte-diff the sharded stdout
# against the serial stdout, and write the wall-clock record.
#
#   scripts/singletrace_probe.sh                 # refresh baseline
#   BINDIR=build-x OUT=/tmp/p.json RUNS=1 scripts/singletrace_probe.sh
#
# Wall clock is host- and load-dependent (the reference host shows
# ~15% jitter), so each configuration runs RUNS times and the best
# run is recorded. Plain shell + awk only; no python/jq dependency.
set -eu

cd "$(dirname "$0")/.."

bindir="${BINDIR:-build}"
requests="${REQUESTS:-1000000}"
shards="${SHARDS:-4}"
runs="${RUNS:-3}"
out="${OUT:-BENCH_singletrace.json}"
scratch="${SCRATCH:-$bindir}"

# Best-of-$runs wall seconds for one shard count; stdout of the last
# run lands in $2 for the byte-identity diff below.
time_cell() {
    best=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        start="$(date +%s.%N)"
        "$bindir"/examples/simulate_trace --workload mail \
            --system dvp --requests "$requests" --seed 42 \
            --shards "$1" > "$2"
        end="$(date +%s.%N)"
        best="$(awk -v a="$start" -v b="$end" -v best="${best:-0}" \
            'BEGIN { w = b - a
                     printf "%.3f", (best > 0 && best < w) ? best : w }')"
        i=$((i + 1))
    done
    echo "$best"
}

echo "==> single-trace probe (requests=$requests runs=$runs)" >&2
serial_s="$(time_cell 1 "$scratch/singletrace.serial.txt")"
sharded_s="$(time_cell "$shards" "$scratch/singletrace.sharded.txt")"

# The sharded run must reproduce the serial run byte-for-byte; any
# drift is a determinism bug, not a tuning matter.
diff -u "$scratch/singletrace.serial.txt" \
    "$scratch/singletrace.sharded.txt"

awk -v requests="$requests" -v shards="$shards" -v runs="$runs" \
    -v serial="$serial_s" -v sharded="$sharded_s" '
BEGIN {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/singletrace_probe.sh\",\n"
    printf "  \"workload\": \"mail\",\n"
    printf "  \"system\": \"dvp\",\n"
    printf "  \"requests\": %d,\n", requests
    printf "  \"runs_per_config\": %d,\n", runs
    printf "  \"serial\": {\"shards\": 1, \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f},\n", serial, requests / serial
    printf "  \"sharded\": {\"shards\": %d, \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f}\n", shards, sharded, \
           requests / sharded
    printf "}\n"
}' > "$out"

echo "==> wrote $out" >&2
cat "$out"
