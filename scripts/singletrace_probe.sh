#!/bin/sh
# Single-trace latency probe (DESIGN.md sections 7.14/7.15): time the
# 1M-request mail/dvp cell through simulate_trace — serial, with the
# channel-sharded flash phase, and with the epoch-sharded event
# engine — byte-diff each variant's stdout against the serial stdout,
# and write the wall-clock record. A fourth row times the same
# request count streamed through the external generic-CSV frontend
# (parse + adapt + replay, DESIGN.md section 7.16) inline on the
# simulation thread; a fifth repeats it with the decode-ahead
# prefetch pipeline (section 7.17). Both are byte-diffed against
# each other and the --materialize run.
#
#   scripts/singletrace_probe.sh                 # refresh baseline
#   BINDIR=build-x OUT=/tmp/p.json RUNS=1 scripts/singletrace_probe.sh
#
# Wall clock is host- and load-dependent (the reference host shows
# ~15% jitter), so each configuration runs RUNS times and the best
# run is recorded. Plain shell + awk only; no python/jq dependency.
set -eu

cd "$(dirname "$0")/.."

bindir="${BINDIR:-build}"
requests="${REQUESTS:-1000000}"
shards="${SHARDS:-4}"
runs="${RUNS:-3}"
out="${OUT:-BENCH_singletrace.json}"
scratch="${SCRATCH:-$bindir}"

# Best-of-$runs wall seconds for one (engine, shards) cell; stdout
# of the last run lands in $3 for the byte-identity diff below, and
# its wall-clock JSON (event count, engine counters) in $3.wall.json.
time_cell() {
    best=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        start="$(date +%s.%N)"
        "$bindir"/examples/simulate_trace --workload mail \
            --system dvp --requests "$requests" --seed 42 \
            --engine "$1" --shards "$2" \
            --wall-json "$3.wall.json" > "$3"
        end="$(date +%s.%N)"
        best="$(awk -v a="$start" -v b="$end" -v best="${best:-0}" \
            'BEGIN { w = b - a
                     printf "%.3f", (best > 0 && best < w) ? best : w }')"
        i=$((i + 1))
    done
    echo "$best"
}

# Byte-identity: $1 must match the serial stdout except the trailing
# "wrote <path>" line naming the per-cell wall-json.
diff_cell() {
    grep -v '^wrote ' "$scratch/singletrace.serial.txt" \
        > "$scratch/singletrace.diff.a"
    grep -v '^wrote ' "$1" > "$scratch/singletrace.diff.b"
    if ! diff -u "$scratch/singletrace.diff.a" \
        "$scratch/singletrace.diff.b"; then
        echo "FATAL: $1 diverged from the serial run" >&2
        exit 1
    fi
}

echo "==> single-trace probe (requests=$requests runs=$runs)" >&2
serial_s="$(time_cell serial 1 "$scratch/singletrace.serial.txt")"
sharded_s="$(time_cell serial "$shards" \
    "$scratch/singletrace.sharded.txt")"
epoch_s="$(time_cell epoch 1 "$scratch/singletrace.epoch.txt")"

# Every variant must reproduce the serial run byte-for-byte; any
# drift is a determinism bug, not a tuning matter.
diff_cell "$scratch/singletrace.sharded.txt"
diff_cell "$scratch/singletrace.epoch.txt"

# Streamed-replay row: one request per CSV line (4KB, no splitting)
# so reqs_per_s is comparable with the generator rows above. awk
# arithmetic only, so the fixture bytes are host-independent.
fixture="$scratch/singletrace.replay.csv"
awk -v n="$requests" 'BEGIN {
    print "lba,size,op,ts"
    for (i = 0; i < n; i++) {
        lba = (i * 7919) % 65536
        op = (i % 4 == 3) ? "R" : "W"
        printf "%d,4096,%s,%d\n", lba, op, i * 2500
    }
}' > "$fixture"
# Best-of-$runs for one replay variant; extra flags in $2.., stdout
# in $1.
time_replay() {
    replay_out="$1"
    shift
    best=""
    i=0
    while [ "$i" -lt "$runs" ]; do
        start="$(date +%s.%N)"
        "$bindir"/examples/simulate_trace --trace-file "$fixture" \
            --trace-format csv --version-period 8 --system dvp \
            --queue-depth 8 "$@" > "$replay_out"
        end="$(date +%s.%N)"
        best="$(awk -v a="$start" -v b="$end" -v best="${best:-0}" \
            'BEGIN { w = b - a
                     printf "%.3f", (best > 0 && best < w) ? best : w }')"
        i=$((i + 1))
    done
    echo "$best"
}

# Inline row: the parse/adapter chain runs on the simulation thread.
replay_s="$(time_replay "$scratch/singletrace.replay.txt" \
    --no-prefetch)"
# Decode-ahead row (DESIGN.md section 7.17): the default prefetch
# pipeline overlaps parsing with simulation; byte-identity with the
# inline run is part of the materialize diff below.
prefetch_s="$(time_replay "$scratch/singletrace.prefetch.txt")"
if ! diff -u "$scratch/singletrace.replay.txt" \
    "$scratch/singletrace.prefetch.txt"; then
    echo "FATAL: prefetched replay diverged from inline" >&2
    exit 1
fi

# The streamed pump must reproduce the materialized replay
# byte-for-byte, just like the engine variants above.
"$bindir"/examples/simulate_trace --trace-file "$fixture" \
    --trace-format csv --version-period 8 --system dvp \
    --queue-depth 8 --materialize \
    > "$scratch/singletrace.replay.mat.txt"
if ! diff -u "$scratch/singletrace.replay.txt" \
    "$scratch/singletrace.replay.mat.txt"; then
    echo "FATAL: streamed replay diverged from materialized" >&2
    exit 1
fi

# Simulated event count (identical across variants — checked above).
events="$(awk '/"events":/ { v = $0
    sub(/.*"events": /, "", v); sub(/[^0-9].*/, "", v)
    print v; exit }' "$scratch/singletrace.serial.txt.wall.json")"

awk -v requests="$requests" -v shards="$shards" -v runs="$runs" \
    -v events="$events" -v serial="$serial_s" \
    -v sharded="$sharded_s" -v epoch="$epoch_s" \
    -v replay="$replay_s" -v prefetch="$prefetch_s" '
BEGIN {
    printf "{\n"
    printf "  \"generated_by\": \"scripts/singletrace_probe.sh\",\n"
    printf "  \"workload\": \"mail\",\n"
    printf "  \"system\": \"dvp\",\n"
    printf "  \"requests\": %d,\n", requests
    printf "  \"events\": %d,\n", events
    printf "  \"runs_per_config\": %d,\n", runs
    printf "  \"serial\": {\"shards\": 1, \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f, \"events_per_s\": %.1f},\n", \
           serial, requests / serial, events / serial
    printf "  \"sharded\": {\"shards\": %d, \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f, \"events_per_s\": %.1f},\n", \
           shards, sharded, requests / sharded, events / sharded
    printf "  \"epoch\": {\"shards\": 1, \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f, \"events_per_s\": %.1f},\n", \
           epoch, requests / epoch, events / epoch
    printf "  \"replay\": {\"format\": \"csv\", \"wall_s\": %.3f, " \
           "\"reqs_per_s\": %.1f},\n", replay, requests / replay
    printf "  \"replay_prefetch\": {\"format\": \"csv\", " \
           "\"wall_s\": %.3f, \"reqs_per_s\": %.1f}\n", \
           prefetch, requests / prefetch
    printf "}\n"
}' > "$out"

echo "==> wrote $out" >&2
cat "$out"
