/**
 * @file
 * Figure 9: reduction in the number of flash writes achieved by the
 * MQ dead-value pool, for pool sizes equivalent to the paper's
 * 100K/200K/300K entries, plus the infinite-pool Ideal, normalized
 * to the Baseline — across all six workloads.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 9: write reduction vs dead-value pool size", "250000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");

    banner("Figure 9", "reduction in the number of writes");

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");

    const double mid = args.getDouble("pool-frac");
    const std::vector<std::pair<std::string, double>> pools = {
        {"100K-eq", mid / 2.0},
        {"200K-eq", mid},
        {"300K-eq", mid * 1.5},
    };
    std::vector<std::string> labels;
    for (const auto &[label, frac] : pools)
        labels.push_back(label);
    labels.push_back("ideal");

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        labels,
        [&](const std::string &label, ExperimentOptions &opts) {
            if (label == "ideal")
                return SystemKind::Ideal;
            for (const auto &[name, frac] : pools) {
                if (name == label)
                    opts.poolCapacity = scaledPool(requests, frac);
            }
            return SystemKind::MqDvp;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "baseline writes", "100K-eq",
                     "200K-eq", "300K-eq", "ideal"});
    std::vector<double> mid_reductions;
    for (const auto &row : rows) {
        std::vector<std::string> cells{
            toString(row.workload),
            std::to_string(row.baseline.flashPrograms)};
        for (const std::string &label : labels) {
            const double red =
                writeReduction(row.systems.at(label), row.baseline);
            cells.push_back("-" + TextTable::pct(red));
            if (label == "200K-eq")
                mid_reductions.push_back(red);
        }
        table.addRow(std::move(cells));
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean write reduction at the 200K-equivalent pool: "
                "%s (paper: 29%% mean, up to 70%% on mail)\n",
                TextTable::pct(meanOf(mid_reductions)).c_str());

    paperShape(
        "write-intensive, redundant traces (mail, web, home) benefit "
        "most; desktop/trans least. Gains grow from the 100K- to the "
        "200K-equivalent pool and flatten beyond it, approaching the "
        "ideal infinite pool.");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
