/**
 * @file
 * Microbenchmarks (google-benchmark) for dead-value-pool operations:
 * the per-write costs the device controller pays. The paper argues
 * the scheme "can scale very well with the increased SSD capacity" —
 * these benches quantify the per-operation constants.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "dvp/lru_dvp.hh"
#include "dvp/lx_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "util/random.hh"

namespace
{

using namespace zombie;

std::unique_ptr<DeadValuePool>
makePool(const std::string &kind, std::uint64_t capacity)
{
    if (kind == "mq") {
        MqDvpConfig cfg;
        cfg.capacity = capacity;
        return std::make_unique<MqDvp>(cfg);
    }
    if (kind == "lru")
        return std::make_unique<LruDvp>(capacity);
    if (kind == "lx")
        return std::make_unique<LxDvp>(capacity);
    return std::make_unique<InfiniteDvp>();
}

/** Steady-state mixed workload: insert a death, look up a write. */
void
runMixed(benchmark::State &state, const std::string &kind)
{
    const auto capacity = static_cast<std::uint64_t>(state.range(0));
    auto pool = makePool(kind, capacity);
    Xoshiro256 rng(7);
    const std::uint64_t values = capacity * 2;
    Ppn next_ppn = 0;

    // Warm the pool to capacity.
    for (std::uint64_t i = 0; i < capacity; ++i) {
        pool->insertGarbage(Fingerprint::fromValueId(i % values), i,
                            next_ppn++, static_cast<std::uint8_t>(i));
    }

    for (auto _ : state) {
        const std::uint64_t v = rng.nextBounded(values);
        pool->insertGarbage(Fingerprint::fromValueId(v), v,
                            next_ppn++,
                            static_cast<std::uint8_t>(v & 0xff));
        const auto r =
            pool->lookupForWrite(Fingerprint::fromValueId(
                                     rng.nextBounded(values)),
                                 v);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}

void
BM_MqDvpMixed(benchmark::State &state)
{
    runMixed(state, "mq");
}

void
BM_LruDvpMixed(benchmark::State &state)
{
    runMixed(state, "lru");
}

void
BM_LxDvpMixed(benchmark::State &state)
{
    runMixed(state, "lx");
}

void
BM_MqDvpOnErase(benchmark::State &state)
{
    MqDvpConfig cfg;
    cfg.capacity = static_cast<std::uint64_t>(state.range(0));
    MqDvp pool(cfg);
    Ppn next_ppn = 0;
    for (std::uint64_t i = 0; i < cfg.capacity; ++i) {
        pool.insertGarbage(Fingerprint::fromValueId(i), i, next_ppn++,
                           1);
    }
    Ppn probe = 0;
    for (auto _ : state) {
        pool.onErase(probe % next_ppn); // mostly stale after a while
        ++probe;
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_MqDvpMixed)->Arg(10'000)->Arg(200'000);
BENCHMARK(BM_LruDvpMixed)->Arg(10'000)->Arg(200'000);
BENCHMARK(BM_LxDvpMixed)->Arg(10'000)->Arg(200'000);
BENCHMARK(BM_MqDvpOnErase)->Arg(200'000);

BENCHMARK_MAIN();
