/**
 * @file
 * Figure 1: probability of reusing garbage pages to service incoming
 * writes, with an infinite buffer, for the nine FIU day-traces
 * (m1..m3, h1..h3, w1..w3) — with and without deduplication.
 */

#include <cstdio>

#include "analysis/lifecycle.hh"
#include "bench_common.hh"
#include "trace/generator.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 1: garbage-page reuse probability (infinite buffer)",
        "200000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const std::uint64_t seed = args.getUint("seed");

    bench::banner("Figure 1",
                  "P(incoming write reusable from garbage pool)");

    TextTable table({"trace", "writes", "reusable", "P(reuse)",
                     "P(reuse) after dedup"});
    for (const DayTrace &day : fiuDayTraces(requests, seed)) {
        SyntheticTraceGenerator gen(day.profile);
        LifecycleTracker tracker;
        TraceRecord rec;
        while (gen.next(rec))
            tracker.observe(rec);
        const LifecycleSummary s = tracker.summary();
        table.addRow({day.label, std::to_string(s.writes),
                      std::to_string(s.reusableWrites),
                      TextTable::pct(s.reuseProbability()),
                      TextTable::pct(s.reuseProbabilityAfterDedup())});
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "mail days show the highest reuse probability (up to ~86% in "
        "the paper), web/home lower; the opportunity shrinks but does "
        "not vanish after deduplication.");
    return 0;
}
