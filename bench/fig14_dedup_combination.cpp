/**
 * @file
 * Figure 14: number of flash writes, normalized to Baseline, for
 * Dedup alone, DVP alone, and DVP layered on Dedup (section VII).
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 14: writes under Dedup / DVP / DVP+Dedup", "250000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");

    banner("Figure 14", "normalized writes: dedup vs dvp vs combined");

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");
    base.poolCapacity = scaledPool(requests, args.getDouble("pool-frac"));

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        std::vector<std::string>{"dedup", "dvp", "dvp+dedup"},
        [&](const std::string &label, ExperimentOptions &) {
            if (label == "dedup")
                return SystemKind::Dedup;
            if (label == "dvp")
                return SystemKind::MqDvp;
            return SystemKind::DvpDedup;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "dedup writes", "dvp writes",
                     "dvp+dedup writes", "combined vs dedup alone"});
    std::vector<double> dedup_reductions, extra_reductions;
    for (const auto &row : rows) {
        const SimResult &dedup = row.systems.at("dedup");
        const SimResult &dvp = row.systems.at("dvp");
        const SimResult &both = row.systems.at("dvp+dedup");
        auto normalized = [&](const SimResult &r) {
            return TextTable::pct(
                row.baseline.flashPrograms
                    ? static_cast<double>(r.flashPrograms) /
                          static_cast<double>(
                              row.baseline.flashPrograms)
                    : 0.0);
        };
        const double extra = writeReduction(both, dedup);
        dedup_reductions.push_back(
            writeReduction(dedup, row.baseline));
        extra_reductions.push_back(extra);
        table.addRow({toString(row.workload), normalized(dedup),
                      normalized(dvp), normalized(both),
                      "-" + TextTable::pct(extra)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean: dedup removes %s of baseline writes "
                "(paper: 40.5%%); layering DVP on dedup removes a "
                "further %s (paper: another 11%%)\n",
                TextTable::pct(meanOf(dedup_reductions)).c_str(),
                TextTable::pct(meanOf(extra_reductions)).c_str());

    paperShape(
        "the mechanisms are complementary: DVP+Dedup always writes "
        "less than either alone, because dedup only covers live "
        "duplicates while the dead-value pool covers content whose "
        "copies are all garbage (the Figure 13 window).");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
