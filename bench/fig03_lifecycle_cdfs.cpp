/**
 * @file
 * Figure 3: cumulative share of (a) writes, (b) invalidations and
 * (c) rebirths held by unique values sorted by write popularity.
 * The paper's reading: ~20% of values account for ~80% of writes,
 * and the invalidation/rebirth distributions track write popularity.
 */

#include <cstdio>

#include "analysis/lifecycle.hh"
#include "bench_common.hh"
#include "trace/generator.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 3: writes/invalidations/rebirths per unique value",
        "300000");
    args.addOption("workload", "mail", "workload to characterize");
    args.parse(argc, argv);

    const Workload w = workloadFromString(args.getString("workload"));
    const WorkloadProfile profile = WorkloadProfile::preset(
        w, 1, args.getUint("requests"), args.getUint("seed"));

    bench::banner("Figure 3", "value-popularity share curves (" +
                                  toString(w) + ")");

    LifecycleTracker tracker;
    tracker.observeAll(SyntheticTraceGenerator(profile).generateAll());
    const auto rows = tracker.valuesByPopularity();

    // All three series use the same x-order: values sorted by writes.
    std::vector<std::uint64_t> writes, invalidations, rebirths;
    for (const auto &v : rows) {
        writes.push_back(v.writes);
        invalidations.push_back(v.invalidations);
        rebirths.push_back(v.reuses);
    }
    auto cum_share = [](const std::vector<std::uint64_t> &series,
                        double item_fraction) {
        double total = 0.0, head = 0.0;
        const auto cut = static_cast<std::size_t>(
            item_fraction * static_cast<double>(series.size()));
        for (std::size_t i = 0; i < series.size(); ++i) {
            total += static_cast<double>(series[i]);
            if (i < cut)
                head += static_cast<double>(series[i]);
        }
        return total > 0.0 ? head / total : 0.0;
    };

    TextTable table({"top values", "(a) share of writes",
                     "(b) share of invalidations",
                     "(c) share of rebirths"});
    for (double frac : {0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00}) {
        table.addRow({TextTable::pct(frac, 0),
                      TextTable::pct(cum_share(writes, frac)),
                      TextTable::pct(cum_share(invalidations, frac)),
                      TextTable::pct(cum_share(rebirths, frac))});
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "around 20% of values account for ~80% of writes, and the "
        "same popular values dominate invalidations and rebirths "
        "(write popularity predicts rebirth).");
    return 0;
}
