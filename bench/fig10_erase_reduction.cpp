/**
 * @file
 * Figure 10: reduction in erase counts for the 200K-equivalent
 * dead-value pool and the Ideal system, normalized to Baseline.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 10: reduction in erase counts", "250000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");

    banner("Figure 10", "reduction in erase counts");

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");
    base.poolCapacity = scaledPool(requests, args.getDouble("pool-frac"));

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        std::vector<std::string>{"dvp", "ideal"},
        [&](const std::string &label, ExperimentOptions &) {
            return label == "ideal" ? SystemKind::Ideal
                                    : SystemKind::MqDvp;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "baseline erases", "dvp erases",
                     "dvp reduction", "ideal reduction"});
    std::vector<double> reductions;
    for (const auto &row : rows) {
        const SimResult &dvp = row.systems.at("dvp");
        const SimResult &ideal = row.systems.at("ideal");
        const double red = eraseReduction(dvp, row.baseline);
        reductions.push_back(red);
        table.addRow({toString(row.workload),
                      std::to_string(row.baseline.flashErases),
                      std::to_string(dvp.flashErases),
                      "-" + TextTable::pct(red),
                      "-" + TextTable::pct(
                          eraseReduction(ideal, row.baseline))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean erase reduction: %s (paper: 35.5%% mean, up "
                "to 59.2%% on mail)\n",
                TextTable::pct(meanOf(reductions)).c_str());

    paperShape(
        "erase reductions track the Figure 9 write reductions — "
        "revived garbage pages no longer need to be erased; mail "
        "benefits most.");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
