/**
 * @file
 * QoS isolation scenario: one streaming writer sharing a drive with
 * two latency-sensitive readers, swept across submission-queue
 * arbiters (rr vs weighted rr) and dead-value pool tenancy (shared
 * vs partitioned).
 *
 * This is the multi-tenant frontend's acceptance scenario: the
 * arbiter weights are the isolation knob, so weighting the readers
 * up must measurably pull their p99.9 read latency down versus
 * plain round-robin, while the drive-wide request totals stay
 * identical across arbiters (arbitration reorders admission, it
 * never adds or drops work).
 */

#include <cstdio>

#include "sim_bench.hh"
#include "trace/multi_tenant.hh"

using namespace zombie;
using namespace zombie::bench;

namespace
{

/** The three tenants: a streaming writer and two readers. */
std::vector<WorkloadProfile>
tenantProfiles(std::uint64_t requests, std::uint64_t seed)
{
    // Tenant 0: sequential-ish streaming writer, bursty, write-heavy
    // — the noisy neighbor generating GC pressure.
    WorkloadProfile writer;
    writer.name = "writer";
    writer.requests = requests * 2 / 5;
    writer.seed = seed;
    writer.writeRatio = 0.95;
    writer.newValueProb = 0.8;
    writer.meanInterarrivalUs = 12.0;
    writer.burstProb = 0.02;
    writer.burstLength = 64;
    writer.burstInterarrivalUs = 0.5;

    // Tenants 1/2: read-mostly, latency-sensitive, lighter load.
    auto reader = [&](const char *name, std::uint64_t s) {
        WorkloadProfile p;
        p.name = name;
        p.requests = requests * 3 / 10;
        p.seed = s;
        p.writeRatio = 0.15;
        p.readLpnAlpha = 0.9;
        p.meanInterarrivalUs = 25.0;
        return p;
    };
    return {writer, reader("reader1", seed + 1),
            reader("reader2", seed + 2)};
}

struct Cell
{
    std::string arbiter;
    std::string scope;
};

} // namespace

int
main(int argc, char **argv)
{
    // 40K requests holds the drive near saturation without tipping
    // into open-loop collapse; past ~100K every cell's tail is the
    // same backlog storm and the arbiters become indistinguishable.
    ArgParser args = standardArgs(
        "Noisy neighbor: writer vs readers across arbiters and DVP "
        "tenancy",
        "40000");
    args.parse(argc, argv);

    banner("noisy neighbor", "multi-tenant QoS isolation");

    ExperimentOptions base = standardOptions(args);
    // Deep queue: arbitration only matters while tags are contended.
    if (base.queueDepth < 8)
        base.queueDepth = 8;

    const std::vector<Cell> cells = {
        {"rr", "shared"},          {"rr", "partitioned"},
        {"wrr:1,4,4", "shared"},   {"wrr:1,4,4", "partitioned"},
        {"wrr:1,8,8", "shared"},   {"wrr:1,8,8", "partitioned"},
    };
    const auto profiles = tenantProfiles(base.requests, base.seed);

    const unsigned jobs = benchJobs(args);
    std::fprintf(stderr, "  running %zu cells, %u at a time...\n",
                 cells.size(), jobs);
    auto results =
        parallelMap(jobs, cells.size(), [&](std::size_t i) {
            ExperimentOptions opts = base;
            opts.arbiter = cells[i].arbiter;
            opts.dvpScope = cells[i].scope;
            std::fprintf(stderr, "  running %-9s %-11s...\n",
                         cells[i].arbiter.c_str(),
                         cells[i].scope.c_str());
            return runTenantProfiles(profiles, SystemKind::MqDvp,
                                     opts);
        });

    auto us = [](Tick t) { return static_cast<double>(t) / 1e3; };

    // The victim metric: reader read-latency tails per cell.
    TextTable tails({"arbiter", "dvp-scope", "wr p99 (us)",
                     "r1 p99 (us)", "r1 p99.9 (us)", "r2 p99 (us)",
                     "r2 p99.9 (us)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SimResult &r = results[i];
        const TenantResult &wr = r.tenantResults[0];
        const TenantResult &r1 = r.tenantResults[1];
        const TenantResult &r2 = r.tenantResults[2];
        tails.addRow(
            {cells[i].arbiter, cells[i].scope,
             TextTable::num(us(wr.writeLatency.percentile(0.99)), 1),
             TextTable::num(us(r1.readLatency.percentile(0.99)), 1),
             TextTable::num(us(r1.readLatency.percentile(0.999)), 1),
             TextTable::num(us(r2.readLatency.percentile(0.99)), 1),
             TextTable::num(us(r2.readLatency.percentile(0.999)),
                            1)});
    }
    std::printf("%s", tails.render().c_str());

    // Admission pressure: who waited at the arbiter's door.
    TextTable admission({"arbiter", "dvp-scope", "wr blocked",
                         "r1 blocked", "r2 blocked", "wr wait (us)",
                         "r1 wait (us)", "r2 wait (us)"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SimResult &r = results[i];
        auto wait_us = [&us](const TenantResult &t) {
            return t.submitted
                       ? us(t.admissionWait) /
                             static_cast<double>(t.submitted)
                       : 0.0;
        };
        admission.addRow(
            {cells[i].arbiter, cells[i].scope,
             std::to_string(r.tenantResults[0].blockedAdmissions),
             std::to_string(r.tenantResults[1].blockedAdmissions),
             std::to_string(r.tenantResults[2].blockedAdmissions),
             TextTable::num(wait_us(r.tenantResults[0])),
             TextTable::num(wait_us(r.tenantResults[1])),
             TextTable::num(wait_us(r.tenantResults[2]))});
    }
    std::printf("\nadmission pressure:\n%s",
                admission.render().c_str());

    // Work-conservation invariant: the trace fixes the request mix,
    // so drive-wide totals must agree across every cell.
    TextTable totals({"arbiter", "dvp-scope", "requests", "reads",
                      "writes", "dvp revivals"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SimResult &r = results[i];
        totals.addRow({cells[i].arbiter, cells[i].scope,
                       std::to_string(r.requests),
                       std::to_string(r.reads),
                       std::to_string(r.writes),
                       std::to_string(r.dvpRevivals)});
    }
    std::printf("\ndrive-wide totals (request counts identical "
                "across arbiters):\n%s",
                totals.render().c_str());

    paperShape(
        "weighting the readers up (wrr:1,4,4 and wrr:1,8,8) lowers "
        "their p99.9 read latency versus plain rr and shifts "
        "admission blocking onto the writer; partitioning the DVP "
        "fences the readers' pool slice from the writer's churn. "
        "Drive-wide request totals are identical across arbiters — "
        "arbitration reorders work, it never adds or drops it.");
    return 0;
}
