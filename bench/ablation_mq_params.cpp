/**
 * @file
 * Ablation bench for the design decisions DESIGN.md section 5 calls
 * out (the paper's section V footnote mentions an extensive
 * parameter study):
 *
 *  1. number of MQ queues (1 = pure LRU .. 16),
 *  2. popularity-aware vs greedy GC victim selection under the DVP,
 *  3. one-queue-at-a-time vs direct-to-target promotion.
 *
 * All on the mail workload, which exercises the pool hardest.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Ablation: MQ queue count, GC policy, promotion rule",
        "250000");
    args.addOption("workload", "mail", "workload to ablate on");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const Workload w = workloadFromString(args.getString("workload"));

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");
    base.poolCapacity =
        scaledPool(requests, args.getDouble("pool-frac"));

    // The replacement policy only matters under capacity pressure;
    // run the queue-count sweep with a deliberately tight pool.
    ExperimentOptions tight = base;
    tight.poolCapacity = scaledPool(requests, kDefaultPoolFrac / 16.0);

    banner("Ablation 1/5",
           "MQ queue count under a tight pool (1 = plain LRU queue)");
    std::fprintf(stderr, "  running baseline...\n");
    const SimResult baseline = runSystem(w, SystemKind::Baseline, base);
    {
        TextTable table({"queues", "write reduction", "dvp hit rate",
                         "mean latency improvement"});
        for (const std::uint32_t queues : {1u, 2u, 4u, 8u, 16u}) {
            ExperimentOptions opts = tight;
            opts.mqQueues = queues;
            std::fprintf(stderr, "  running %u queues...\n", queues);
            const SimResult r = runSystem(w, SystemKind::MqDvp, opts);
            table.addRow(
                {std::to_string(queues),
                 TextTable::pct(writeReduction(r, baseline)),
                 TextTable::pct(r.dvpStats.hitRate()),
                 TextTable::pct(
                     meanLatencyImprovement(r, baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("more queues separate popularity bands better; "
                   "gains saturate around the paper's 8 queues.");
    }

    banner("Ablation 2/5", "GC victim policy under the DVP");
    {
        TextTable table({"gc policy", "write reduction",
                         "pool entries lost to GC",
                         "mean latency improvement"});
        for (const std::string policy : {"greedy", "popularity"}) {
            ExperimentOptions opts = base;
            opts.gcPolicy = policy;
            std::fprintf(stderr, "  running gc=%s...\n",
                         policy.c_str());
            const SimResult r = runSystem(w, SystemKind::MqDvp, opts);
            table.addRow(
                {policy, TextTable::pct(writeReduction(r, baseline)),
                 std::to_string(r.dvpStats.gcEvictions),
                 TextTable::pct(
                     meanLatencyImprovement(r, baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("popularity-aware victim selection (section IV-D) "
                   "erases fewer popular garbage pages, preserving "
                   "pool entries for revival.");
    }

    banner("Ablation 3/5", "promotion rule");
    {
        TextTable table({"promotion", "write reduction",
                         "dvp hit rate"});
        for (const bool direct : {false, true}) {
            ExperimentOptions opts = base;
            opts.tweak = [direct](SsdConfig &cfg) {
                cfg.mq.directPromotion = direct;
            };
            std::fprintf(stderr, "  running direct=%d...\n", direct);
            const SimResult r = runSystem(w, SystemKind::MqDvp, opts);
            table.addRow(
                {direct ? "direct-to-target" : "one-queue-at-a-time",
                 TextTable::pct(writeReduction(r, baseline)),
                 TextTable::pct(r.dvpStats.hitRate())});
        }
        std::printf("%s", table.render().c_str());
        paperShape("the paper promotes one queue per access; jumping "
                   "straight to the log2 target behaves similarly at "
                   "steady state.");
    }

    banner("Ablation 4/5",
           "adaptive pool capacity (the paper's footnote-5 future "
           "work)");
    {
        // Start with a deliberately undersized pool; the adaptive
        // variant may grow it when ghost-list regrets accumulate.
        const std::uint64_t small_pool =
            scaledPool(requests, kDefaultPoolFrac / 8.0);
        TextTable table({"pool", "final capacity", "write reduction",
                         "dvp hit rate"});
        for (const bool adaptive : {false, true}) {
            ExperimentOptions opts = base;
            opts.poolCapacity = small_pool;
            opts.tweak = [adaptive, small_pool](SsdConfig &cfg) {
                cfg.mq.adaptive = adaptive;
                cfg.mq.adaptiveMin = small_pool / 4;
                cfg.mq.adaptiveMax = small_pool * 32;
                cfg.mq.adaptiveWindow = 5'000;
            };
            std::fprintf(stderr, "  running adaptive=%d...\n",
                         adaptive);
            const SimResult r = runSystem(w, SystemKind::MqDvp, opts);
            table.addRow(
                {adaptive ? "adaptive" : "fixed (undersized)",
                 adaptive ? "(grown on demand)"
                          : std::to_string(small_pool),
                 TextTable::pct(writeReduction(r, baseline)),
                 TextTable::pct(r.dvpStats.hitRate())});
        }
        std::printf("%s", table.render().c_str());
        paperShape("an undersized fixed pool loses revivals to "
                   "capacity evictions; the adaptive pool grows until "
                   "the ghost-list regret rate subsides.");
    }

    banner("Ablation 5/5",
           "hot/cold stream separation (popularity-byte driven)");
    {
        // The third write point consumes a block per plane, so this
        // comparison runs at moderate utilization where neither
        // variant is at the exhaustion cliff; the baseline is
        // recomputed with the same preconditioning for fairness.
        ExperimentOptions hc_base = base;
        hc_base.tweak = [](SsdConfig &cfg) {
            cfg.prefillFraction = 0.55;
        };
        std::fprintf(stderr, "  running hot/cold baseline...\n");
        const SimResult hc_baseline =
            runSystem(w, SystemKind::Baseline, hc_base);
        TextTable table({"streams", "write reduction",
                         "gc relocations per erase",
                         "mean latency improvement"});
        for (const bool separated : {false, true}) {
            ExperimentOptions opts = base;
            opts.tweak = [separated](SsdConfig &cfg) {
                cfg.prefillFraction = 0.55;
                cfg.hotColdSeparation = separated;
            };
            std::fprintf(stderr, "  running hot/cold=%d...\n",
                         separated);
            const SimResult r = runSystem(w, SystemKind::MqDvp, opts);
            const double reloc_per_erase =
                r.flashErases ? static_cast<double>(r.gcRelocations) /
                                    static_cast<double>(r.flashErases)
                              : 0.0;
            table.addRow(
                {separated ? "hot/cold separated" : "single stream",
                 TextTable::pct(writeReduction(r, hc_baseline)),
                 TextTable::num(reloc_per_erase, 1),
                 TextTable::pct(
                     meanLatencyImprovement(r, hc_baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("negative result: classic hot/cold wisdom inverts "
                   "under revival. Separation concentrates popular "
                   "garbage into a few blocks that become prime GC "
                   "victims and are erased before their values are "
                   "reborn, slashing revivals - exactly the loss the "
                   "paper's popularity-aware GC (section IV-D) "
                   "guards against, overwhelmed by concentration.");
    }
    return 0;
}
