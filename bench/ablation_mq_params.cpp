/**
 * @file
 * Ablation bench for the design decisions DESIGN.md section 5 calls
 * out (the paper's section V footnote mentions an extensive
 * parameter study):
 *
 *  1. number of MQ queues (1 = pure LRU .. 16),
 *  2. popularity-aware vs greedy GC victim selection under the DVP,
 *  3. one-queue-at-a-time vs direct-to-target promotion.
 *
 * All on the mail workload, which exercises the pool hardest.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Ablation: MQ queue count, GC policy, promotion rule",
        "250000");
    args.addOption("workload", "mail", "workload to ablate on");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const Workload w = workloadFromString(args.getString("workload"));
    const unsigned jobs = benchJobs(args);

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");
    base.poolCapacity =
        scaledPool(requests, args.getDouble("pool-frac"));

    // The replacement policy only matters under capacity pressure;
    // run the queue-count sweep with a deliberately tight pool.
    ExperimentOptions tight = base;
    tight.poolCapacity = scaledPool(requests, kDefaultPoolFrac / 16.0);

    banner("Ablation 1/5",
           "MQ queue count under a tight pool (1 = plain LRU queue)");
    // Cell 0 is the shared baseline; cells 1..n sweep the queue
    // count. All are independent sims, so they run concurrently.
    const std::vector<std::uint32_t> queue_counts{1, 2, 4, 8, 16};
    const auto sweep1 = parallelMap(
        jobs, queue_counts.size() + 1, [&](std::size_t i) {
            if (i == 0) {
                std::fprintf(stderr, "  running baseline...\n");
                return runSystem(w, SystemKind::Baseline, base);
            }
            ExperimentOptions opts = tight;
            opts.mqQueues = queue_counts[i - 1];
            std::fprintf(stderr, "  running %u queues...\n",
                         opts.mqQueues);
            return runSystem(w, SystemKind::MqDvp, opts);
        });
    const SimResult &baseline = sweep1.front();
    {
        TextTable table({"queues", "write reduction", "dvp hit rate",
                         "mean latency improvement"});
        for (std::size_t i = 0; i < queue_counts.size(); ++i) {
            const SimResult &r = sweep1[i + 1];
            table.addRow(
                {std::to_string(queue_counts[i]),
                 TextTable::pct(writeReduction(r, baseline)),
                 TextTable::pct(r.dvpStats.hitRate()),
                 TextTable::pct(
                     meanLatencyImprovement(r, baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("more queues separate popularity bands better; "
                   "gains saturate around the paper's 8 queues.");
    }

    banner("Ablation 2/5", "GC victim policy under the DVP");
    {
        TextTable table({"gc policy", "write reduction",
                         "pool entries lost to GC",
                         "mean latency improvement"});
        const std::vector<std::string> policies{"greedy",
                                               "popularity"};
        const auto sweep = parallelMap(
            jobs, policies.size(), [&](std::size_t i) {
                ExperimentOptions opts = base;
                opts.gcPolicy = policies[i];
                std::fprintf(stderr, "  running gc=%s...\n",
                             policies[i].c_str());
                return runSystem(w, SystemKind::MqDvp, opts);
            });
        for (std::size_t i = 0; i < policies.size(); ++i) {
            const SimResult &r = sweep[i];
            table.addRow(
                {policies[i],
                 TextTable::pct(writeReduction(r, baseline)),
                 std::to_string(r.dvpStats.gcEvictions),
                 TextTable::pct(
                     meanLatencyImprovement(r, baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("popularity-aware victim selection (section IV-D) "
                   "erases fewer popular garbage pages, preserving "
                   "pool entries for revival.");
    }

    banner("Ablation 3/5", "promotion rule");
    {
        TextTable table({"promotion", "write reduction",
                         "dvp hit rate"});
        const auto sweep = parallelMap(jobs, 2, [&](std::size_t i) {
            const bool direct = i == 1;
            ExperimentOptions opts = base;
            opts.tweak = [direct](SsdConfig &cfg) {
                cfg.mq.directPromotion = direct;
            };
            std::fprintf(stderr, "  running direct=%d...\n", direct);
            return runSystem(w, SystemKind::MqDvp, opts);
        });
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            table.addRow(
                {i == 1 ? "direct-to-target" : "one-queue-at-a-time",
                 TextTable::pct(writeReduction(sweep[i], baseline)),
                 TextTable::pct(sweep[i].dvpStats.hitRate())});
        }
        std::printf("%s", table.render().c_str());
        paperShape("the paper promotes one queue per access; jumping "
                   "straight to the log2 target behaves similarly at "
                   "steady state.");
    }

    banner("Ablation 4/5",
           "adaptive pool capacity (the paper's footnote-5 future "
           "work)");
    {
        // Start with a deliberately undersized pool; the adaptive
        // variant may grow it when ghost-list regrets accumulate.
        const std::uint64_t small_pool =
            scaledPool(requests, kDefaultPoolFrac / 8.0);
        TextTable table({"pool", "final capacity", "write reduction",
                         "dvp hit rate"});
        const auto sweep = parallelMap(jobs, 2, [&](std::size_t i) {
            const bool adaptive = i == 1;
            ExperimentOptions opts = base;
            opts.poolCapacity = small_pool;
            opts.tweak = [adaptive, small_pool](SsdConfig &cfg) {
                cfg.mq.adaptive = adaptive;
                cfg.mq.adaptiveMin = small_pool / 4;
                cfg.mq.adaptiveMax = small_pool * 32;
                cfg.mq.adaptiveWindow = 5'000;
            };
            std::fprintf(stderr, "  running adaptive=%d...\n",
                         adaptive);
            return runSystem(w, SystemKind::MqDvp, opts);
        });
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const bool adaptive = i == 1;
            table.addRow(
                {adaptive ? "adaptive" : "fixed (undersized)",
                 adaptive ? "(grown on demand)"
                          : std::to_string(small_pool),
                 TextTable::pct(writeReduction(sweep[i], baseline)),
                 TextTable::pct(sweep[i].dvpStats.hitRate())});
        }
        std::printf("%s", table.render().c_str());
        paperShape("an undersized fixed pool loses revivals to "
                   "capacity evictions; the adaptive pool grows until "
                   "the ghost-list regret rate subsides.");
    }

    banner("Ablation 5/5",
           "hot/cold stream separation (popularity-byte driven)");
    {
        // The third write point consumes a block per plane, so this
        // comparison runs at moderate utilization where neither
        // variant is at the exhaustion cliff; the baseline is
        // recomputed with the same preconditioning for fairness.
        // Cell 0 is the section's own preconditioned baseline; cells
        // 1..2 are the single-stream / separated variants.
        const auto sweep = parallelMap(jobs, 3, [&](std::size_t i) {
            if (i == 0) {
                ExperimentOptions hc_base = base;
                hc_base.tweak = [](SsdConfig &cfg) {
                    cfg.prefillFraction = 0.55;
                };
                std::fprintf(stderr,
                             "  running hot/cold baseline...\n");
                return runSystem(w, SystemKind::Baseline, hc_base);
            }
            const bool separated = i == 2;
            ExperimentOptions opts = base;
            opts.tweak = [separated](SsdConfig &cfg) {
                cfg.prefillFraction = 0.55;
                cfg.hotColdSeparation = separated;
            };
            std::fprintf(stderr, "  running hot/cold=%d...\n",
                         separated);
            return runSystem(w, SystemKind::MqDvp, opts);
        });
        const SimResult &hc_baseline = sweep.front();
        TextTable table({"streams", "write reduction",
                         "gc relocations per erase",
                         "mean latency improvement"});
        for (std::size_t i = 1; i < sweep.size(); ++i) {
            const SimResult &r = sweep[i];
            const double reloc_per_erase =
                r.flashErases ? static_cast<double>(r.gcRelocations) /
                                    static_cast<double>(r.flashErases)
                              : 0.0;
            table.addRow(
                {i == 2 ? "hot/cold separated" : "single stream",
                 TextTable::pct(writeReduction(r, hc_baseline)),
                 TextTable::num(reloc_per_erase, 1),
                 TextTable::pct(
                     meanLatencyImprovement(r, hc_baseline))});
        }
        std::printf("%s", table.render().c_str());
        paperShape("negative result: classic hot/cold wisdom inverts "
                   "under revival. Separation concentrates popular "
                   "garbage into a few blocks that become prime GC "
                   "victims and are erased before their values are "
                   "reborn, slashing revivals - exactly the loss the "
                   "paper's popularity-aware GC (section IV-D) "
                   "guards against, overwhelmed by concentration.");
    }
    return 0;
}
