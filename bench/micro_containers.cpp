/**
 * @file
 * Microbenchmarks (google-benchmark) for the flat metadata
 * containers against their node-based std counterparts, on the hot
 * path's shapes: fingerprint-sized keys at DVP pool sizes with a
 * mixed insert/find/erase churn, and LRU chain maintenance.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "hash/fingerprint.hh"
#include "util/flat_map.hh"
#include "util/intrusive_lru.hh"
#include "util/random.hh"

namespace
{

using namespace zombie;

/**
 * DVP-index churn: a pool of `size` fingerprints at steady state,
 * each op either looks up a hot key, inserts a fresh one, or erases
 * one (the MQ index does all three per simulated write).
 */
template <typename Map>
void
churnFingerprintMap(benchmark::State &state)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    Map map;
    map.reserve(size);
    Xoshiro256 rng(42);

    std::uint64_t next_id = 0;
    for (; next_id < size; ++next_id)
        map[Fingerprint::fromValueId(next_id)] = next_id;

    std::uint64_t hits = 0;
    for (auto _ : state) {
        const std::uint64_t roll = rng.nextBounded(4);
        if (roll == 0) {
            // Replace: erase a (probably present) older key, insert
            // a fresh one — the pool's eviction/insert pattern.
            map.erase(
                Fingerprint::fromValueId(rng.nextBounded(next_id)));
            map[Fingerprint::fromValueId(next_id)] = next_id;
            ++next_id;
        } else {
            auto it =
                map.find(Fingerprint::fromValueId(rng.nextBounded(next_id)));
            hits += it != map.end();
        }
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FlatMapChurn(benchmark::State &state)
{
    churnFingerprintMap<
        FlatMap<Fingerprint, std::uint64_t, FingerprintHash>>(state);
}

void
BM_UnorderedMapChurn(benchmark::State &state)
{
    churnFingerprintMap<
        std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash>>(
        state);
}

/** LRU recency churn over a resident population of `size` entries. */
void
BM_IntrusiveLruTouch(benchmark::State &state)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    LruSlab<std::uint64_t> slab;
    LruChain chain;
    slab.reserve(size);
    std::vector<std::uint32_t> handles;
    handles.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
        const std::uint32_t h = slab.acquire();
        slab[h] = i;
        slab.pushBack(chain, h);
        handles.push_back(h);
    }

    Xoshiro256 rng(7);
    for (auto _ : state) {
        slab.moveToBack(chain, handles[rng.nextBounded(size)]);
        benchmark::DoNotOptimize(chain.tail);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_StdListTouch(benchmark::State &state)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    std::list<std::uint64_t> lru;
    std::vector<std::list<std::uint64_t>::iterator> handles;
    handles.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
        lru.push_back(i);
        handles.push_back(std::prev(lru.end()));
    }

    Xoshiro256 rng(7);
    for (auto _ : state) {
        lru.splice(lru.end(), lru, handles[rng.nextBounded(size)]);
        benchmark::DoNotOptimize(lru.back());
    }
    state.SetItemsProcessed(state.iterations());
}

/** Eviction + reinsertion cycle: the slab reuses slots, the list
 * reallocates nodes. */
void
BM_IntrusiveLruEvictInsert(benchmark::State &state)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    LruSlab<std::uint64_t> slab;
    LruChain chain;
    slab.reserve(size);
    for (std::uint64_t i = 0; i < size; ++i) {
        const std::uint32_t h = slab.acquire();
        slab[h] = i;
        slab.pushBack(chain, h);
    }

    for (auto _ : state) {
        const std::uint32_t victim = chain.head;
        slab.unlink(chain, victim);
        slab.release(victim);
        const std::uint32_t h = slab.acquire();
        slab.pushBack(chain, h);
        benchmark::DoNotOptimize(chain.head);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_StdListEvictInsert(benchmark::State &state)
{
    const auto size = static_cast<std::uint64_t>(state.range(0));
    std::list<std::uint64_t> lru;
    for (std::uint64_t i = 0; i < size; ++i)
        lru.push_back(i);

    for (auto _ : state) {
        lru.pop_front();
        lru.push_back(0);
        benchmark::DoNotOptimize(lru.back());
    }
    state.SetItemsProcessed(state.iterations());
}

// DVP-sized populations: the paper's default MQ pool is 200k entries.
BENCHMARK(BM_FlatMapChurn)->Arg(20000)->Arg(200000);
BENCHMARK(BM_UnorderedMapChurn)->Arg(20000)->Arg(200000);
BENCHMARK(BM_IntrusiveLruTouch)->Arg(20000)->Arg(200000);
BENCHMARK(BM_StdListTouch)->Arg(20000)->Arg(200000);
BENCHMARK(BM_IntrusiveLruEvictInsert)->Arg(200000);
BENCHMARK(BM_StdListEvictInsert)->Arg(200000);

} // namespace

BENCHMARK_MAIN();
