/**
 * @file
 * Figure 2: CDF of per-value invalidation counts for the mail
 * workload. The paper's headline reading: only ~30% of values written
 * during the trace are still live at the end (x = 0 invalidations).
 */

#include <cstdio>

#include "analysis/lifecycle.hh"
#include "bench_common.hh"
#include "trace/generator.hh"
#include "util/stats.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 2: CDF of invalidation counts (mail)", "300000");
    args.addOption("workload", "mail", "workload to characterize");
    args.parse(argc, argv);

    const Workload w = workloadFromString(args.getString("workload"));
    const WorkloadProfile profile = WorkloadProfile::preset(
        w, 1, args.getUint("requests"), args.getUint("seed"));

    bench::banner("Figure 2", "CDF of invalidation counts (" +
                                  toString(w) + ")");

    LifecycleTracker tracker;
    tracker.observeAll(SyntheticTraceGenerator(profile).generateAll());

    std::vector<double> counts;
    for (const auto &[fp, v] : tracker.values())
        counts.push_back(static_cast<double>(v.invalidations));
    const auto cdf = thinCdf(buildCdf(std::move(counts)), 16);

    TextTable table({"invalidations <=", "fraction of values"});
    for (const CdfPoint &p : cdf) {
        table.addRow({TextTable::num(p.x, 0),
                      TextTable::pct(p.fraction)});
    }
    std::printf("%s", table.render().c_str());

    const LifecycleSummary s = tracker.summary();
    std::printf("\nvalues never invalidated (still live): %s of %llu "
                "unique values\n",
                TextTable::pct(static_cast<double>(s.liveValues) /
                               static_cast<double>(s.uniqueValues))
                    .c_str(),
                static_cast<unsigned long long>(s.uniqueValues));

    bench::paperShape(
        "a minority of values are never invalidated (~30% in the "
        "paper's mail trace); the CDF has a long tail of values "
        "invalidated many times.");
    return 0;
}
