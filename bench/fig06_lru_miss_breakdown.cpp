/**
 * @file
 * Figure 6: average number of capacity misses in a small LRU
 * dead-value buffer, per value-popularity degree, for the m2 trace.
 * The paper's reading: plain LRU loses precisely the popular values
 * the mechanism should keep — the motivation for the MQ design.
 */

#include <cstdio>

#include "analysis/reuse.hh"
#include "bench_common.hh"
#include "dvp/lru_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "trace/generator.hh"

using namespace zombie;

namespace
{

std::vector<MissBreakdownBin>
replay(const std::vector<TraceRecord> &trace,
       std::unique_ptr<DeadValuePool> pool)
{
    ReuseAnalyzer analyzer(std::move(pool));
    analyzer.observeAll(trace);
    return analyzer.missBreakdown();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 6: LRU capacity misses per popularity degree (m2)",
        "200000");
    args.addOption("buffer-frac", "0.01",
                   "buffer entries as a fraction of requests "
                   "(the paper's 100K entries vs day-long traces)");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const auto capacity = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                args.getDouble("buffer-frac") *
                static_cast<double>(requests)));

    bench::banner("Figure 6", "avg buffer misses vs popularity degree");

    // m2 = mail, day 2 (the trace the paper studies here).
    const WorkloadProfile profile = WorkloadProfile::preset(
        Workload::Mail, 2, requests, args.getUint("seed"));
    const auto trace = SyntheticTraceGenerator(profile).generateAll();

    const auto lru_bins =
        replay(trace, std::make_unique<LruDvp>(capacity));
    MqDvpConfig mq_cfg;
    mq_cfg.capacity = capacity;
    const auto mq_bins =
        replay(trace, std::make_unique<MqDvp>(mq_cfg));

    TextTable table({"popularity degree", "values",
                     "avg LRU misses", "avg MQ misses"});
    for (std::size_t i = 0; i < lru_bins.size(); ++i) {
        const auto &bin = lru_bins[i];
        const double mq_misses =
            i < mq_bins.size() ? mq_bins[i].avgMisses : 0.0;
        table.addRow({std::to_string(bin.popularityDegree),
                      std::to_string(bin.valueCount),
                      TextTable::num(bin.avgMisses, 2),
                      TextTable::num(mq_misses, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nbuffer capacity: %llu entries\n",
                static_cast<unsigned long long>(capacity));

    bench::paperShape(
        "LRU misses concentrate on popular values (average misses "
        "grow with the popularity degree); the MQ replacement cuts "
        "exactly those misses.");
    return 0;
}
