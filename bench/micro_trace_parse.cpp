/**
 * @file
 * Microbenchmarks (google-benchmark) for the external block-trace
 * frontend: records/s through each streaming parser (FIU blkio, MSR
 * CSV, generic CSV), the full adapter chain (split + fingerprint
 * synthesis + compaction), and — after the microbenches — a
 * streamed-vs-materialized replay comparison on a one-million-record
 * fixture, the wall-clock and allocation numbers behind the
 * bounded-memory replay claim (DESIGN.md section 7.16).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "sim/ssd.hh"
#include "trace/adapters.hh"
#include "trace/formats.hh"
#include "trace/prefetch.hh"
#include "util/alloc_counter.hh"
#include "util/buffered_reader.hh"
#include "util/byte_source.hh"
#include "util/random.hh"

#if BENCH_HAVE_ZLIB
#include <zlib.h>
#endif

namespace
{

using namespace zombie;

constexpr std::uint64_t kParseRecords = 200'000;
constexpr std::uint64_t kReplayRecords = 1'000'000;
constexpr std::uint64_t kFootprintPages = 20'000;

std::string
fixtureDir()
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp ? tmp : "/tmp") + "/";
}

/** Deterministic request shape shared by every fixture writer. */
struct FixtureRequest
{
    std::uint64_t page;
    std::uint64_t pages;
    bool write;
    std::uint64_t ts; //!< ns
};

FixtureRequest
fixtureRequest(Xoshiro256 &rng, std::uint64_t index)
{
    FixtureRequest req;
    req.page = rng.nextBounded(kFootprintPages);
    req.pages = 1 + rng.nextBounded(3);
    req.write = rng.nextBounded(100) < 70;
    req.ts = index * 2'500 + rng.nextBounded(500);
    return req;
}

/** Write the fixture once; reused across iterations and runs. */
const std::string &
csvFixture(std::uint64_t records)
{
    static std::string path;
    static std::uint64_t written = 0;
    if (written == records)
        return path;
    path = fixtureDir() + "zombie_parse_bench_" +
           std::to_string(records) + ".csv";
    std::ofstream out(path);
    out << "lba,size,op,ts\n";
    Xoshiro256 rng(7);
    for (std::uint64_t i = 0; i < records; ++i) {
        const FixtureRequest req = fixtureRequest(rng, i);
        out << req.page << ',' << req.pages * kPageSize << ','
            << (req.write ? 'W' : 'R') << ',' << req.ts << '\n';
    }
    written = records;
    return path;
}

const std::string &
fiuFixture(std::uint64_t records)
{
    static std::string path;
    static std::uint64_t written = 0;
    if (written == records)
        return path;
    path = fixtureDir() + "zombie_parse_bench_" +
           std::to_string(records) + ".blkio";
    std::ofstream out(path);
    Xoshiro256 rng(7);
    for (std::uint64_t i = 0; i < records; ++i) {
        const FixtureRequest req = fixtureRequest(rng, i);
        // FILETIME ticks, 512B sectors, one MD5 per record.
        out << req.ts / 100 << " 1234 bench " << req.page * 8 << ' '
            << req.pages * 8 << ' ' << (req.write ? 'W' : 'R')
            << " 8 0 "
            << Fingerprint::fromValueId(rng.nextBounded(50'000)).hex()
            << '\n';
    }
    written = records;
    return path;
}

const std::string &
msrFixture(std::uint64_t records)
{
    static std::string path;
    static std::uint64_t written = 0;
    if (written == records)
        return path;
    path = fixtureDir() + "zombie_parse_bench_" +
           std::to_string(records) + ".msr";
    std::ofstream out(path);
    out << "Timestamp,Hostname,DiskNumber,Type,Offset,Size,"
           "ResponseTime\n";
    Xoshiro256 rng(7);
    constexpr std::uint64_t kFiletimeBase = 128166372000000000ULL;
    for (std::uint64_t i = 0; i < records; ++i) {
        const FixtureRequest req = fixtureRequest(rng, i);
        out << kFiletimeBase + req.ts / 100 << ",bench,0,"
            << (req.write ? "Write" : "Read") << ','
            << req.page * kPageSize << ',' << req.pages * kPageSize
            << ",100\n";
    }
    written = records;
    return path;
}

/** Gzip the CSV fixture once; empty path when built without zlib. */
const std::string &
gzCsvFixture(std::uint64_t records)
{
    static std::string path;
    static std::uint64_t written = 0;
    if (written == records)
        return path;
#if BENCH_HAVE_ZLIB
    const std::string &plain = csvFixture(records);
    path = plain + ".gz";
    std::ifstream in(plain, std::ios::binary);
    gzFile out = gzopen(path.c_str(), "wb1");
    char block[1 << 16];
    while (in.read(block, sizeof(block)) || in.gcount() > 0)
        gzwrite(out, block, static_cast<unsigned>(in.gcount()));
    gzclose(out);
#else
    path.clear();
#endif
    written = records;
    return path;
}

/** Drain one raw parser; return records parsed. */
template <typename Source>
std::uint64_t
drainParser(const std::string &path)
{
    Source src(path);
    RawIoRecord rec;
    std::uint64_t n = 0;
    while (src.next(rec))
        ++n;
    return n;
}

void
BM_ParseFiuBlkio(benchmark::State &state)
{
    const std::string &path = fiuFixture(kParseRecords);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drainParser<FiuBlkioSource>(path));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kParseRecords));
}

void
BM_ParseMsrCsv(benchmark::State &state)
{
    const std::string &path = msrFixture(kParseRecords);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drainParser<MsrCsvSource>(path));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kParseRecords));
}

void
BM_ParseGenericCsv(benchmark::State &state)
{
    const std::string &path = csvFixture(kParseRecords);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drainParser<GenericCsvSource>(path));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kParseRecords));
}

/** Raw line-split rate of the buffered reader, no field parsing. */
void
BM_BufferedLineReader(benchmark::State &state)
{
    const std::string &path = csvFixture(kParseRecords);
    std::uint64_t lines = 0;
    for (auto _ : state) {
        BufferedLineReader reader(openByteSource(path));
        std::string_view line;
        lines = 0;
        while (reader.nextLine(line))
            ++lines;
        benchmark::DoNotOptimize(lines);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(lines));
}

/** Transparent gzip decode + line split (the `.csv.gz` ingest path). */
void
BM_GzipDecodeLines(benchmark::State &state)
{
    if (!compressionSupported(Compression::Gzip)) {
        state.SkipWithError("built without zlib");
        return;
    }
    const std::string &path = gzCsvFixture(kParseRecords);
    std::uint64_t lines = 0;
    for (auto _ : state) {
        BufferedLineReader reader(openByteSource(path));
        std::string_view line;
        lines = 0;
        while (reader.nextLine(line))
            ++lines;
        benchmark::DoNotOptimize(lines);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(lines));
}

/** Full generic-CSV parse fed through the gzip decoder. */
void
BM_ParseGenericCsvGz(benchmark::State &state)
{
    if (!compressionSupported(Compression::Gzip)) {
        state.SkipWithError("built without zlib");
        return;
    }
    const std::string &path = gzCsvFixture(kParseRecords);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drainParser<GenericCsvSource>(path));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kParseRecords));
}

/** The full chain: parse + 4KB split + synthesis + compaction. */
void
BM_AdapterChain(benchmark::State &state)
{
    ExternalTraceConfig cfg;
    cfg.path = csvFixture(kParseRecords);
    cfg.format = ExternalFormat::GenericCsv;
    cfg.versionPeriod = 8;
    const ScannedTrace scan = scanExternalTrace(cfg);
    std::uint64_t emitted = 0;
    for (auto _ : state) {
        const auto src = scan.factory();
        TraceRecord rec;
        emitted = 0;
        while (src->next(rec))
            ++emitted;
        benchmark::DoNotOptimize(emitted);
    }
    state.counters["records_out"] =
        benchmark::Counter(static_cast<double>(emitted));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(emitted));
}

/**
 * Replay the one-million-record fixture streamed and materialized
 * and report wall clock plus allocator traffic for both: the same
 * byte-identical result, with the streamed path's heap bounded by
 * the footprint instead of the trace.
 */
void
reportReplayComparison()
{
    ExternalTraceConfig cfg;
    cfg.path = csvFixture(kReplayRecords);
    cfg.format = ExternalFormat::GenericCsv;
    cfg.versionPeriod = 8;
    cfg.summarize = false; // scan cost only where replay needs it
    const ScannedTrace scan = scanExternalTrace(cfg);

    struct Row
    {
        const char *mode;
        double wall_s;
        std::uint64_t allocs;
        std::uint64_t requests;
    };
    enum Mode { Prefetch, Streamed, Materialized, kModes };
    Row rows[kModes];
    for (int mode = 0; mode < kModes; ++mode) {
        SsdConfig ssd_cfg = SsdConfig::forFootprint(
            scan.footprintPages, SystemKind::Baseline);
        ssd_cfg.queueDepth = 8;
        const std::uint64_t allocs_before = heapAllocCount();
        const auto start = std::chrono::steady_clock::now();
        Ssd ssd(ssd_cfg);
        std::uint64_t requests = 0;
        if (mode == Prefetch) {
            const auto src =
                maybePrefetch(scan.factory(),
                              PrefetchSource::kDefaultBatch);
            ssd.run(*src);
        } else if (mode == Streamed) {
            const auto src = scan.factory();
            ssd.run(*src);
        } else {
            const auto src = scan.factory();
            const auto records = drainSource(*src);
            ssd.run(records);
        }
        requests = ssd.result().requests;
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        static const char *const kNames[kModes] = {
            "prefetch", "streamed-inline", "materialized"};
        rows[mode] = Row{kNames[mode], wall_s,
                         heapAllocCount() - allocs_before, requests};
    }

    std::printf("\nreplay comparison (%llu-record generic CSV, "
                "footprint %llu pages, baseline system):\n",
                static_cast<unsigned long long>(scan.records),
                static_cast<unsigned long long>(scan.footprintPages));
    TextTable table({"mode", "requests", "wall_s", "req_per_s",
                     "heap_allocs"});
    for (const Row &row : rows) {
        table.addRow(
            {row.mode, std::to_string(row.requests),
             TextTable::num(row.wall_s),
             TextTable::num(row.wall_s > 0.0
                                ? static_cast<double>(row.requests) /
                                      row.wall_s
                                : 0.0),
             std::to_string(row.allocs)});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

BENCHMARK(BM_BufferedLineReader);
BENCHMARK(BM_GzipDecodeLines);
BENCHMARK(BM_ParseFiuBlkio);
BENCHMARK(BM_ParseMsrCsv);
BENCHMARK(BM_ParseGenericCsv);
BENCHMARK(BM_ParseGenericCsvGz);
BENCHMARK(BM_AdapterChain);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    reportReplayComparison();

    bench::paperShape(
        "all three parsers sustain millions of records/s, so ingest "
        "never gates replay, and gzip decode costs only a modest "
        "fraction of the plain-text line rate; the prefetched, "
        "inline-streamed and materialized runs finish in comparable "
        "wall time with identical results, but the streaming paths' "
        "allocator traffic is footprint-sized while the materialized "
        "path pays an extra O(trace) for the record vector — the gap "
        "that makes 10-100M-request replays fit in memory.");
    return 0;
}
