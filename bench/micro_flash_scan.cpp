/**
 * @file
 * Microbenchmarks (google-benchmark) for the SoA flash-state layout
 * (DESIGN.md section 7.14): the GC inner loops — valid-page
 * relocation cursor, garbage-page purge cursor, victim-score gather —
 * against a faithful AoS reference (one 24-byte struct per page /
 * block, byte-state scans), quantifying what the bitmap word scans
 * and dense counter arrays buy per collection.
 */

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "nand/flash_array.hh"
#include "nand/geometry.hh"
#include "util/random.hh"

namespace
{

using namespace zombie;

/** The pre-7.14 layout: one struct per page, scanned byte-wise. */
struct AosPage
{
    PageState state = PageState::Free;
    std::uint8_t popularity = 0;
};

/** The pre-7.14 per-block record (mirrors the old BlockInfo array). */
struct AosBlock
{
    std::uint32_t writePtr = 0;
    std::uint32_t validCount = 0;
    std::uint32_t invalidCount = 0;
    std::uint32_t eraseCount = 0;
    std::uint64_t garbagePopularity = 0;
};

/** Deterministic mixed page population: ~45% valid, ~45% garbage. */
template <typename Setter>
void
populate(const Geometry &geom, Setter &&set)
{
    Xoshiro256 rng(7);
    for (Ppn ppn = 0; ppn < geom.totalPages(); ++ppn) {
        const std::uint64_t r = rng.nextBounded(100);
        if (r < 45)
            set(ppn, PageState::Valid);
        else if (r < 90)
            set(ppn, PageState::Invalid);
    }
}

Geometry
benchGeometry()
{
    return Geometry::tableI(16);
}

/** AoS baseline: walk every block's pages byte-by-byte, visiting
 *  valid pages (the relocation loop shape before the bitmaps). */
void
BM_ScanValidAos(benchmark::State &state)
{
    const Geometry geom = benchGeometry();
    std::vector<AosPage> pages(geom.totalPages());
    populate(geom, [&](Ppn ppn, PageState s) {
        pages[ppn].state = s;
    });
    const std::uint32_t per_block = geom.pagesPerBlock();

    for (auto _ : state) {
        std::uint64_t visited = 0;
        for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
            const Ppn base = b * per_block;
            for (std::uint32_t p = 0; p < per_block; ++p) {
                if (pages[base + p].state == PageState::Valid)
                    visited += base + p;
            }
        }
        benchmark::DoNotOptimize(visited);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(geom.totalPages()));
}

/** SoA bitmap scan: the same visit via nextValidPage word scans. */
void
BM_ScanValidSoa(benchmark::State &state)
{
    const Geometry geom = benchGeometry();
    FlashArray array(geom);
    // Same rng stream as the AoS population: program every page in
    // order and kill the non-valid ones, so the valid sets the two
    // scans visit are identical (the scan reads only the valid
    // bitmap, making Free-vs-Invalid immaterial here).
    Xoshiro256 rng(7);
    for (Ppn ppn = 0; ppn < geom.totalPages(); ++ppn) {
        array.programPage(geom.blockOfPpn(ppn));
        if (rng.nextBounded(100) >= 45)
            array.invalidatePage(ppn, 1);
    }
    const std::uint32_t per_block = geom.pagesPerBlock();

    for (auto _ : state) {
        std::uint64_t visited = 0;
        for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
            const Ppn base = b * per_block;
            for (std::uint32_t p = array.nextValidPage(b, 0);
                 p < per_block; p = array.nextValidPage(b, p + 1)) {
                visited += base + p;
            }
        }
        benchmark::DoNotOptimize(visited);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(geom.totalPages()));
}

/** AoS victim scoring: stride through 24-byte block structs. */
void
BM_VictimScoreAos(benchmark::State &state)
{
    const Geometry geom = benchGeometry();
    std::vector<AosBlock> blocks(geom.totalBlocks());
    Xoshiro256 rng(13);
    for (AosBlock &blk : blocks) {
        blk.invalidCount = static_cast<std::uint32_t>(
            rng.nextBounded(geom.pagesPerBlock()));
        blk.garbagePopularity = blk.invalidCount * 3ull;
    }

    for (auto _ : state) {
        std::uint64_t best = 0, best_score = 0;
        for (std::uint64_t b = 0; b < blocks.size(); ++b) {
            const std::uint64_t score =
                2ull * blocks[b].invalidCount +
                blocks[b].garbagePopularity;
            if (score > best_score) {
                best_score = score;
                best = b;
            }
        }
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(geom.totalBlocks()));
}

/** SoA victim scoring: gather from the dense counter arrays. */
void
BM_VictimScoreSoa(benchmark::State &state)
{
    const Geometry geom = benchGeometry();
    FlashArray array(geom);
    Xoshiro256 rng(13);
    for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
        const auto garbage = static_cast<std::uint32_t>(
            rng.nextBounded(geom.pagesPerBlock()));
        for (std::uint32_t p = 0; p < garbage; ++p)
            array.invalidatePage(array.programPage(b), 3);
    }
    const std::uint32_t *invalid = array.invalidCounts();
    const std::uint64_t *pop = array.garbagePopularities();

    for (auto _ : state) {
        std::uint64_t best = 0, best_score = 0;
        for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
            const std::uint64_t score = 2ull * invalid[b] + pop[b];
            if (score > best_score) {
                best_score = score;
                best = b;
            }
        }
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(geom.totalBlocks()));
}

BENCHMARK(BM_ScanValidAos);
BENCHMARK(BM_ScanValidSoa);
BENCHMARK(BM_VictimScoreAos);
BENCHMARK(BM_VictimScoreSoa);

} // namespace

BENCHMARK_MAIN();
