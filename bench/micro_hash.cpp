/**
 * @file
 * Microbenchmarks (google-benchmark) for the content hashers. The
 * paper charges 12us for hashing a 4KB chunk in dedicated hardware
 * [35]; these benches report what the software implementations cost.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "hash/hasher.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace
{

using namespace zombie;

std::vector<std::uint8_t>
makePage()
{
    std::vector<std::uint8_t> page(kPageSize);
    Xoshiro256 rng(3);
    for (auto &b : page)
        b = static_cast<std::uint8_t>(rng());
    return page;
}

void
runHasher(benchmark::State &state, HashAlgo algo)
{
    const auto page = makePage();
    ContentHasher hasher(algo);
    for (auto _ : state) {
        const Fingerprint fp = hasher.hash(page.data(), page.size());
        benchmark::DoNotOptimize(fp);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kPageSize));
}

void
BM_Md5Page(benchmark::State &state)
{
    runHasher(state, HashAlgo::Md5);
}

void
BM_Sha1Page(benchmark::State &state)
{
    runHasher(state, HashAlgo::Sha1);
}

void
BM_SyntheticPage(benchmark::State &state)
{
    runHasher(state, HashAlgo::Synthetic);
}

void
BM_ValueIdFingerprint(benchmark::State &state)
{
    std::uint64_t id = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(Fingerprint::fromValueId(id++));
    }
}

} // namespace

BENCHMARK(BM_Md5Page);
BENCHMARK(BM_Sha1Page);
BENCHMARK(BM_SyntheticPage);
BENCHMARK(BM_ValueIdFingerprint);

BENCHMARK_MAIN();
