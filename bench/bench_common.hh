/**
 * @file
 * Shared scaffolding for the figure-reproduction benches.
 *
 * Every bench prints: a banner naming the paper artifact it
 * regenerates, the modeled-SSD description (Table I at simulation
 * scale), the measured series as an ASCII table, and a "paper shape"
 * note stating what qualitative result the series should show.
 */

#ifndef ZOMBIE_BENCH_COMMON_HH
#define ZOMBIE_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "util/args.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace zombie::bench
{

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &what)
{
    std::printf("%s", sectionBanner(artifact + " - " + what).c_str());
}

/** Print the expected qualitative result quoted from the paper. */
inline void
paperShape(const std::string &note)
{
    std::printf("\npaper shape: %s\n", note.c_str());
}

/** ArgParser preloaded with the options every bench shares. */
inline ArgParser
standardArgs(const std::string &description,
             const std::string &default_requests)
{
    ArgParser args(description);
    args.addOption("requests", default_requests,
                   "requests per generated trace");
    args.addOption("seed", "42", "trace generator seed");
    args.addOption("pool-frac", "0.02",
                   "dead-value pool entries as a fraction of the "
                   "trace length (0.02 ~ the paper's 200K entries "
                   "at day-trace scale)");
    args.addOption("queue-depth", "1",
                   "host-interface queue depth (NCQ-style dispatch "
                   "contexts; 1 reproduces the classic serialized "
                   "dispatcher)");
    args.addOption("engine", "serial",
                   "event-engine strategy: serial | epoch "
                   "(execution only; results are byte-identical)");
    args.addOption("csv", "", "also write the series to this CSV file");
    args.addOption("jobs", "1",
                   "experiment cells to run concurrently (0 = one "
                   "per hardware thread); results are byte-identical "
                   "for any value");
    args.addOption("wall-json", "",
                   "also write the wall-clock side channel (per-cell "
                   "wall time and requests/sec) to this JSON file");
    args.addOption("stats-interval", "0",
                   "epoch-sampler interval in simulated microseconds "
                   "(0 = telemetry sampling off)");
    args.addOption("stats-csv", "",
                   "write each cell's epoch time-series to this CSV "
                   "path (cell tag inserted before the extension)");
    args.addOption("stats-json", "",
                   "write each cell's epoch time-series to this JSON "
                   "path (cell tag inserted before the extension)");
    args.addOption("trace-out", "",
                   "record flash-op spans and write a Perfetto "
                   "trace_event JSON per cell to this path");
    args.addOption("span-limit", "1000000",
                   "maximum spans kept per cell trace");
    args.addOption("dump-stats", "",
                   "write each cell's end-of-run stat-registry dump "
                   "to this path (cell tag inserted)");
    return args;
}

/** The --jobs request resolved to a worker count. */
inline unsigned
benchJobs(const ArgParser &args)
{
    return ThreadPool::resolveJobs(args.getUint("jobs"));
}

} // namespace zombie::bench

#endif // ZOMBIE_BENCH_COMMON_HH
