/**
 * @file
 * Figure 11: mean latency improvement of the MQ dead-value pool over
 * Baseline, with the LX-SSD prior-work comparison [20].
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 11: mean latency improvement (incl. LX-SSD)",
        "250000");
    args.parse(argc, argv);

    banner("Figure 11", "mean latency improvement");

    ExperimentOptions base = standardOptions(args);

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        std::vector<std::string>{"dvp", "lx-ssd"},
        [&](const std::string &label, ExperimentOptions &) {
            return label == "lx-ssd" ? SystemKind::LxSsd
                                     : SystemKind::MqDvp;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "baseline mean (us)", "dvp mean (us)",
                     "dvp improvement", "lx-ssd improvement"});
    std::vector<double> dvp_improvements, lx_improvements;
    for (const auto &row : rows) {
        const SimResult &dvp = row.systems.at("dvp");
        const SimResult &lx = row.systems.at("lx-ssd");
        const double dvp_imp = meanLatencyImprovement(dvp, row.baseline);
        const double lx_imp = meanLatencyImprovement(lx, row.baseline);
        dvp_improvements.push_back(dvp_imp);
        lx_improvements.push_back(lx_imp);
        table.addRow(
            {toString(row.workload),
             TextTable::num(row.baseline.allLatency.mean() / 1e3, 1),
             TextTable::num(dvp.allLatency.mean() / 1e3, 1),
             TextTable::pct(dvp_imp), TextTable::pct(lx_imp)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean improvement: dvp %s, lx-ssd %s "
                "(paper: dvp 24.5%% mean / up to 52%%; dvp beats "
                "lx-ssd by ~2x on average, ~3x on mail)\n",
                TextTable::pct(meanOf(dvp_improvements)).c_str(),
                TextTable::pct(meanOf(lx_improvements)).c_str());

    paperShape(
        "write-intensive traces benefit most (mail the maximum, "
        "desktop the minimum); LX-SSD trails the MQ dead-value pool "
        "everywhere because its LBA-keyed recency pool cannot catch "
        "cross-address rebirths.");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
