/**
 * @file
 * Figure 5: number of writes remaining after reuse through a simple
 * LRU dead-value buffer of 100K..1M entries, per FIU day-trace,
 * against the infinite-buffer lower bound.
 *
 * Buffer sizes scale with --requests so the capacity-pressure shape
 * survives at small trace scale (the paper's 100K..1M entries pair
 * with multi-million-request day traces).
 */

#include <cstdio>

#include "analysis/lifecycle.hh"
#include "analysis/reuse.hh"
#include "bench_common.hh"
#include "trace/generator.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 5: writes vs LRU dead-value buffer size", "200000");
    args.addFlag("paper-sizes",
                 "use the paper's absolute buffer sizes (100K..1M) "
                 "instead of request-scaled ones");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const std::uint64_t seed = args.getUint("seed");

    bench::banner("Figure 5",
                  "writes remaining with LRU buffers vs infinite");

    // The paper's sweep is 100K..1M entries against day traces of
    // millions of requests; scale the sizes to the trace length.
    std::vector<std::pair<std::string, std::uint64_t>> sizes;
    if (args.getFlag("paper-sizes")) {
        sizes = {{"100K", 100'000}, {"250K", 250'000},
                 {"500K", 500'000}, {"1M", 1'000'000}};
    } else {
        const auto scale = [&](double f) {
            return std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(
                        f * static_cast<double>(requests)));
        };
        sizes = {{"0.5%", scale(0.005)},
                 {"1%", scale(0.01)},
                 {"2.5%", scale(0.025)},
                 {"10%", scale(0.10)}};
    }

    std::vector<std::string> header{"trace", "writes"};
    for (const auto &[label, entries] : sizes)
        header.push_back("lru " + label);
    header.push_back("infinite");
    TextTable table(std::move(header));

    for (const DayTrace &day : fiuDayTraces(requests, seed)) {
        const auto trace =
            SyntheticTraceGenerator(day.profile).generateAll();

        std::vector<std::string> row{day.label};
        LifecycleTracker ideal;
        ideal.observeAll(trace);
        const LifecycleSummary s = ideal.summary();
        row.push_back(std::to_string(s.writes));

        for (const auto &[label, entries] : sizes) {
            const ReuseResult r = analyzeLruReuse(trace, entries);
            row.push_back(std::to_string(r.actualWrites()));
        }
        row.push_back(std::to_string(s.writes - s.reusableWrites));
        table.addRow(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "even a small LRU buffer removes a large share of writes (up "
        "to ~62% in the paper); large-footprint traces (mail days) "
        "keep a visible gap to the infinite buffer that shrinks as "
        "the buffer grows.");
    return 0;
}
