/**
 * @file
 * Figure 15: mean latency improvement over Baseline for DVP, Dedup,
 * and DVP+Dedup (section VII-A latency analysis).
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 15: latency under Dedup / DVP / DVP+Dedup", "250000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");

    banner("Figure 15", "mean latency improvement: combined systems");

    ExperimentOptions base;
    base.requests = requests;
    base.seed = args.getUint("seed");
    base.poolCapacity = scaledPool(requests, args.getDouble("pool-frac"));

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        std::vector<std::string>{"dvp", "dedup", "dvp+dedup"},
        [&](const std::string &label, ExperimentOptions &) {
            if (label == "dedup")
                return SystemKind::Dedup;
            if (label == "dvp")
                return SystemKind::MqDvp;
            return SystemKind::DvpDedup;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "dvp", "dedup", "dvp+dedup",
                     "combined vs dedup alone"});
    std::vector<double> extra_improvements;
    for (const auto &row : rows) {
        const SimResult &dvp = row.systems.at("dvp");
        const SimResult &dedup = row.systems.at("dedup");
        const SimResult &both = row.systems.at("dvp+dedup");
        const double extra = meanLatencyImprovement(both, dedup);
        extra_improvements.push_back(extra);
        table.addRow(
            {toString(row.workload),
             TextTable::pct(meanLatencyImprovement(dvp, row.baseline)),
             TextTable::pct(
                 meanLatencyImprovement(dedup, row.baseline)),
             TextTable::pct(meanLatencyImprovement(both, row.baseline)),
             TextTable::pct(extra)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean further improvement of dvp+dedup over dedup "
                "alone: %s (paper: 9.8%% mean, up to 15%%)\n",
                TextTable::pct(meanOf(extra_improvements)).c_str());

    paperShape(
        "dedup already improves latency substantially (up to ~58.5%% "
        "in the paper); adding the dead-value pool improves it "
        "further on every workload.");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
