/**
 * @file
 * Ablation: sensitivity of the dead-value-pool benefit to drive
 * utilization (preconditioning level). GC pressure — and therefore
 * both the cost of a flash write and the risk of pool entries being
 * erased before revival — grows with utilization; this bench sweeps
 * it on the mail workload.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Ablation: DVP benefit vs drive utilization", "200000");
    args.addOption("workload", "mail", "workload to sweep");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const Workload w = workloadFromString(args.getString("workload"));
    const unsigned jobs = benchJobs(args);

    banner("Ablation", "drive utilization (preconditioning) sweep");

    // 4 prefill levels x {Baseline, MqDvp} = 8 independent cells;
    // even cells are baselines, odd cells the matching DVP run.
    const std::vector<double> prefills{0.40, 0.55, 0.70, 0.85};
    const auto cells = parallelMap(
        jobs, prefills.size() * 2, [&](std::size_t i) {
            const double prefill = prefills[i / 2];
            const SystemKind kind =
                i % 2 == 0 ? SystemKind::Baseline : SystemKind::MqDvp;
            ExperimentOptions opts;
            opts.requests = requests;
            opts.seed = args.getUint("seed");
            opts.poolCapacity =
                scaledPool(requests, args.getDouble("pool-frac"));
            opts.tweak = [prefill](SsdConfig &cfg) {
                cfg.prefillFraction = prefill;
            };
            std::fprintf(stderr, "  running prefill=%.2f %s...\n",
                         prefill,
                         i % 2 == 0 ? "baseline" : "mq-dvp");
            return runSystem(w, kind, opts);
        });

    TextTable table({"prefill", "base WA", "base mean (us)",
                     "write reduction", "erase reduction",
                     "latency improvement", "pool lost to GC"});
    for (std::size_t i = 0; i < prefills.size(); ++i) {
        const SimResult &base = cells[i * 2];
        const SimResult &dvp = cells[i * 2 + 1];

        const double wa =
            base.writes
                ? static_cast<double>(base.flashPrograms) /
                      static_cast<double>(base.writes)
                : 0.0;
        table.addRow(
            {TextTable::pct(prefills[i], 0), TextTable::num(wa, 2),
             TextTable::num(base.allLatency.mean() / 1e3, 1),
             TextTable::pct(writeReduction(dvp, base)),
             TextTable::pct(eraseReduction(dvp, base)),
             TextTable::pct(meanLatencyImprovement(dvp, base)),
             std::to_string(dvp.dvpStats.gcEvictions)});
    }
    std::printf("%s", table.render().c_str());

    paperShape(
        "higher utilization means more GC per host write, which both "
        "raises the baseline's cost (bigger absolute savings for the "
        "pool) and erases more pool entries before revival (GC "
        "evictions grow) - the tension section IV-D's popularity-"
        "aware victim selection addresses.");
    return 0;
}
