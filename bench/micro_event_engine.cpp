/**
 * @file
 * Microbenchmarks (google-benchmark) for the typed event engine: raw
 * schedule/dispatch throughput, the heap behaviour under the
 * controller-like pattern of chained rescheduling, and the epoch
 * engine's channel-lane drain. These are the per-event constants
 * behind the simulator's events/sec figure.
 *
 * After the microbenches, a real simulation cell (mail on MQ-DVP)
 * runs once per engine strategy and reports the per-kind dispatch
 * histogram plus the epoch-occupancy profile — the two numbers that
 * explain where `--engine=epoch` gets its speedup: the share of
 * events that are channel-local, and how many of them each serial
 * horizon ride covers.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>

#include "bench_common.hh"
#include "sim/ssd.hh"
#include "trace/generator.hh"
#include "util/alloc_counter.hh"
#include "util/random.hh"

namespace
{

using namespace zombie;

/** Sink that counts dispatches and optionally chains a future event. */
struct CountingSink : public EventSink
{
    EventEngine *engine = nullptr;
    std::uint64_t count = 0;
    std::uint64_t chain = 0; //!< events each dispatch reschedules

    void
    event(Tick now, EventKind, std::uint32_t, std::uint64_t arg) override
    {
        ++count;
        if (chain && arg) {
            engine->schedule(now + 3, EventKind::FlashDone, 0,
                             arg - 1);
        }
    }
};

/** Fill the heap with n events at scattered ticks, then drain it. */
void
BM_ScheduleDrain(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    EventEngine engine;
    CountingSink sink;
    engine.setSink(&sink);
    engine.reserve(n);
    Xoshiro256 rng(11);

    for (auto _ : state) {
        const Tick base = engine.now();
        for (std::uint64_t i = 0; i < n; ++i) {
            engine.schedule(base + 1 + rng.nextBounded(1024),
                            EventKind::FlashDone, 0, 0);
        }
        engine.run();
        benchmark::DoNotOptimize(sink.count);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

/**
 * Epoch-engine counterpart of BM_ScheduleDrain: the same scattered
 * batch, but channel-local and drained through the per-channel lanes
 * and the k-way commit merge instead of the global heap.
 */
void
BM_EpochScheduleDrain(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    constexpr std::uint32_t kChannels = 8;
    EventEngine engine;
    CountingSink sink;
    engine.setSink(&sink);
    engine.configureEpoch(kChannels, nullptr, 1);
    engine.reserve(n);
    Xoshiro256 rng(11);

    for (auto _ : state) {
        const Tick base = engine.now();
        for (std::uint64_t i = 0; i < n; ++i) {
            engine.scheduleLocal(
                base + 1 + rng.nextBounded(1024),
                EventKind::FlashDone, 0, 0,
                static_cast<std::uint32_t>(i % kChannels));
        }
        engine.run();
        benchmark::DoNotOptimize(sink.count);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

/**
 * Controller-like pattern: a small window of in-flight events, each
 * dispatch rescheduling the next — the heap stays shallow and hot.
 */
void
BM_ChainedDispatch(benchmark::State &state)
{
    const auto window = static_cast<std::uint64_t>(state.range(0));
    const std::uint64_t hops = 1024;
    EventEngine engine;
    CountingSink sink;
    sink.engine = &engine;
    sink.chain = 1;
    engine.setSink(&sink);
    engine.reserve(window);

    for (auto _ : state) {
        const Tick base = engine.now();
        for (std::uint64_t w = 0; w < window; ++w)
            engine.schedule(base + 1 + w, EventKind::FlashDone, 0,
                            hops);
        engine.run();
        benchmark::DoNotOptimize(sink.count);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * window * hops));
}

/** Steady-state allocation count per drained batch (must be zero). */
void
BM_SteadyStateAllocs(benchmark::State &state)
{
    const std::uint64_t n = 4096;
    EventEngine engine;
    CountingSink sink;
    engine.setSink(&sink);
    engine.reserve(n);
    Xoshiro256 rng(13);

    // Warm the heap to its high-water mark.
    for (std::uint64_t i = 0; i < n; ++i)
        engine.schedule(1 + rng.nextBounded(64), EventKind::Admit);
    engine.run();

    std::uint64_t allocs = 0;
    for (auto _ : state) {
        const Tick base = engine.now();
        const std::uint64_t before = heapAllocCount();
        for (std::uint64_t i = 0; i < n; ++i) {
            engine.schedule(base + 1 + rng.nextBounded(64),
                            EventKind::Admit);
        }
        engine.run();
        allocs += heapAllocCount() - before;
    }
    state.counters["allocs_per_batch"] =
        benchmark::Counter(static_cast<double>(allocs) /
                           static_cast<double>(state.iterations()));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::HostArrival:  return "HostArrival";
      case EventKind::Admit:        return "Admit";
      case EventKind::DispatchDone: return "DispatchDone";
      case EventKind::FlashDone:    return "FlashDone";
      case EventKind::GcTail:       return "GcTail";
      case EventKind::StatsSample:  return "StatsSample";
    }
    return "?";
}

/** Affinity class of a kind under the epoch split (DESIGN.md 7.15). */
const char *
kindAffinity(EventKind kind)
{
    switch (kind) {
      case EventKind::HostArrival:
      case EventKind::Admit:
      case EventKind::DispatchDone:
        return "global";
      default:
        return "channel";
    }
}

/**
 * Run mail on MQ-DVP once with the given engine strategy and report
 * the dispatch histogram and (for epoch mode) epoch occupancy.
 */
void
reportRealCell(EngineMode mode, std::uint64_t requests)
{
    const WorkloadProfile profile =
        WorkloadProfile::preset(Workload::Mail, 1, requests, 42);
    SsdConfig cfg = SsdConfig::forProfile(profile, SystemKind::MqDvp);
    cfg.mq.capacity = 5'000;
    cfg.queueDepth = 8;
    cfg.engineMode = mode;

    Ssd ssd(cfg);
    ssd.prefill();
    ssd.run(SyntheticTraceGenerator(profile).generateAll());
    const SimResult result = ssd.result();
    const EventEngine &engine = ssd.events();

    std::printf("\ndispatch histogram (%s engine, mail/mq-dvp, "
                "%llu requests):\n",
                toString(mode).c_str(),
                static_cast<unsigned long long>(requests));
    TextTable table({"kind", "affinity", "dispatched", "share"});
    const double total = static_cast<double>(result.events);
    for (std::uint32_t k = 0; k < kNumEventKinds; ++k) {
        const auto kind = static_cast<EventKind>(k);
        const std::uint64_t n = engine.dispatchedOfKind(kind);
        table.addRow({kindName(kind), kindAffinity(kind),
                      std::to_string(n),
                      TextTable::pct(total > 0.0
                                         ? static_cast<double>(n) /
                                               total
                                         : 0.0)});
    }
    std::printf("%s", table.render().c_str());

    if (mode == EngineMode::Epoch) {
        const double epochs =
            static_cast<double>(engine.epochs());
        std::printf("\nepoch occupancy: %llu epochs, %llu "
                    "speculated events (%.2f per epoch, max span "
                    "%llu), %llu rolled back\n",
                    static_cast<unsigned long long>(engine.epochs()),
                    static_cast<unsigned long long>(
                        engine.speculatedEvents()),
                    epochs > 0.0
                        ? static_cast<double>(
                              engine.speculatedEvents()) / epochs
                        : 0.0,
                    static_cast<unsigned long long>(
                        engine.maxEpochSpan()),
                    static_cast<unsigned long long>(
                        engine.rolledBackEpochs()));
    }
}

} // namespace

BENCHMARK(BM_ScheduleDrain)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK(BM_EpochScheduleDrain)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ChainedDispatch)->Arg(1)->Arg(32);
BENCHMARK(BM_SteadyStateAllocs);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    reportRealCell(EngineMode::Serial, 30'000);
    reportRealCell(EngineMode::Epoch, 30'000);

    bench::paperShape(
        "every flash completion (FlashDone, GcTail, and StatsSample "
        "when sampling) is channel-local, so the epoch engine "
        "speculates that whole slice of the mix off the serial "
        "spine; occupancy above 1 event/epoch with rare rollbacks "
        "is what turns into the events/sec gain, and both engines' "
        "histograms match exactly (byte-identical execution).");
    return 0;
}
