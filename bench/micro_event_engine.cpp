/**
 * @file
 * Microbenchmarks (google-benchmark) for the typed event engine: raw
 * schedule/dispatch throughput and the heap behaviour under the
 * controller-like pattern of chained rescheduling. These are the
 * per-event constants behind the simulator's events/sec figure.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "sim/event.hh"
#include "util/alloc_counter.hh"
#include "util/random.hh"

namespace
{

using namespace zombie;

/** Sink that counts dispatches and optionally chains a future event. */
struct CountingSink : public EventSink
{
    EventEngine *engine = nullptr;
    std::uint64_t count = 0;
    std::uint64_t chain = 0; //!< events each dispatch reschedules

    void
    event(Tick now, EventKind, std::uint32_t, std::uint64_t arg) override
    {
        ++count;
        if (chain && arg) {
            engine->schedule(now + 3, EventKind::FlashDone, 0,
                             arg - 1);
        }
    }
};

/** Fill the heap with n events at scattered ticks, then drain it. */
void
BM_ScheduleDrain(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    EventEngine engine;
    CountingSink sink;
    engine.setSink(&sink);
    engine.reserve(n);
    Xoshiro256 rng(11);

    for (auto _ : state) {
        const Tick base = engine.now();
        for (std::uint64_t i = 0; i < n; ++i) {
            engine.schedule(base + 1 + rng.nextBounded(1024),
                            EventKind::FlashDone, 0, 0);
        }
        engine.run();
        benchmark::DoNotOptimize(sink.count);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

/**
 * Controller-like pattern: a small window of in-flight events, each
 * dispatch rescheduling the next — the heap stays shallow and hot.
 */
void
BM_ChainedDispatch(benchmark::State &state)
{
    const auto window = static_cast<std::uint64_t>(state.range(0));
    const std::uint64_t hops = 1024;
    EventEngine engine;
    CountingSink sink;
    sink.engine = &engine;
    sink.chain = 1;
    engine.setSink(&sink);
    engine.reserve(window);

    for (auto _ : state) {
        const Tick base = engine.now();
        for (std::uint64_t w = 0; w < window; ++w)
            engine.schedule(base + 1 + w, EventKind::FlashDone, 0,
                            hops);
        engine.run();
        benchmark::DoNotOptimize(sink.count);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * window * hops));
}

/** Steady-state allocation count per drained batch (must be zero). */
void
BM_SteadyStateAllocs(benchmark::State &state)
{
    const std::uint64_t n = 4096;
    EventEngine engine;
    CountingSink sink;
    engine.setSink(&sink);
    engine.reserve(n);
    Xoshiro256 rng(13);

    // Warm the heap to its high-water mark.
    for (std::uint64_t i = 0; i < n; ++i)
        engine.schedule(1 + rng.nextBounded(64), EventKind::Admit);
    engine.run();

    std::uint64_t allocs = 0;
    for (auto _ : state) {
        const Tick base = engine.now();
        const std::uint64_t before = heapAllocCount();
        for (std::uint64_t i = 0; i < n; ++i) {
            engine.schedule(base + 1 + rng.nextBounded(64),
                            EventKind::Admit);
        }
        engine.run();
        allocs += heapAllocCount() - before;
    }
    state.counters["allocs_per_batch"] =
        benchmark::Counter(static_cast<double>(allocs) /
                           static_cast<double>(state.iterations()));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

} // namespace

BENCHMARK(BM_ScheduleDrain)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK(BM_ChainedDispatch)->Arg(1)->Arg(32);
BENCHMARK(BM_SteadyStateAllocs);

BENCHMARK_MAIN();
