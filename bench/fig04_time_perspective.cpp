/**
 * @file
 * Figure 4: the time perspective of value life-cycles, measured (as
 * in the paper) in intervening writes — (a) creation to death,
 * (b) death to rebirth, (c) rebirth count — binned by popularity
 * degree.
 */

#include <bit>
#include <cstdio>
#include <map>

#include "analysis/lifecycle.hh"
#include "bench_common.hh"
#include "trace/generator.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Figure 4: life-cycle timing vs popularity degree", "300000");
    args.addOption("workload", "mail", "workload to characterize");
    args.parse(argc, argv);

    const Workload w = workloadFromString(args.getString("workload"));
    const WorkloadProfile profile = WorkloadProfile::preset(
        w, 1, args.getUint("requests"), args.getUint("seed"));

    bench::banner("Figure 4",
                  "creation->death / death->rebirth vs popularity (" +
                      toString(w) + ")");

    LifecycleTracker tracker;
    tracker.observeAll(SyntheticTraceGenerator(profile).generateAll());

    struct Bin
    {
        std::uint64_t values = 0;
        std::uint64_t deaths = 0;
        std::uint64_t rebirths = 0;
        std::uint64_t reuses = 0;
        std::uint64_t sumToDeath = 0;
        std::uint64_t sumToRebirth = 0;
    };
    // Popularity degree bins: powers of two of the write count.
    std::map<std::uint64_t, Bin> bins;
    for (const auto &[fp, v] : tracker.values()) {
        const std::uint64_t degree =
            std::uint64_t{1} << (std::bit_width(v.writes) - 1);
        Bin &bin = bins[degree];
        ++bin.values;
        bin.deaths += v.deaths;
        bin.rebirths += v.rebirths;
        bin.reuses += v.reuses;
        bin.sumToDeath += v.sumCreationToDeath;
        bin.sumToRebirth += v.sumDeathToRebirth;
    }

    TextTable table({"popularity degree", "values",
                     "(a) writes creation->death",
                     "(b) writes death->rebirth",
                     "(c) rebirths per value"});
    for (const auto &[degree, bin] : bins) {
        const double to_death =
            bin.deaths ? static_cast<double>(bin.sumToDeath) /
                             static_cast<double>(bin.deaths)
                       : 0.0;
        const double to_rebirth =
            bin.rebirths ? static_cast<double>(bin.sumToRebirth) /
                               static_cast<double>(bin.rebirths)
                         : 0.0;
        const double rebirths_per_value =
            static_cast<double>(bin.reuses) /
            static_cast<double>(bin.values);
        table.addRow({std::to_string(degree),
                      std::to_string(bin.values),
                      TextTable::num(to_death, 0),
                      TextTable::num(to_rebirth, 0),
                      TextTable::num(rebirths_per_value, 2)});
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "highly popular values die and are reborn more quickly "
        "(columns a/b shrink as the degree grows) and accumulate far "
        "more rebirths (column c grows with the degree).");
    return 0;
}
