/**
 * @file
 * Shared runner for the full-simulation benches (Figures 9-12/14/15).
 *
 * Pool sizes: the paper sweeps 100K-300K entries against day-long
 * traces of millions of requests. At bench scale the pool is sized
 * as a fraction of the trace length so the same capacity-pressure
 * regime is reproduced; --pool-frac adjusts it.
 */

#ifndef ZOMBIE_BENCH_SIM_BENCH_HH
#define ZOMBIE_BENCH_SIM_BENCH_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "util/csv.hh"

namespace zombie::bench
{

/** Paper-equivalent pool size: fraction of the trace length. */
inline std::uint64_t
scaledPool(std::uint64_t requests, double frac)
{
    return std::max<std::uint64_t>(
        256,
        static_cast<std::uint64_t>(frac *
                                   static_cast<double>(requests)));
}

/** The fraction standing in for the paper's 200K-entry default. */
inline constexpr double kDefaultPoolFrac = 0.02;

/** ExperimentOptions filled from the standardArgs() options. */
inline ExperimentOptions
standardOptions(const ArgParser &args)
{
    ExperimentOptions opts;
    opts.requests = args.getUint("requests");
    opts.seed = args.getUint("seed");
    opts.poolCapacity =
        scaledPool(opts.requests, args.getDouble("pool-frac"));
    opts.queueDepth =
        static_cast<std::uint32_t>(args.getUint("queue-depth"));
    return opts;
}

/** Results for one workload across several systems. */
struct WorkloadRow
{
    Workload workload;
    SimResult baseline;
    std::map<std::string, SimResult> systems;
};

/**
 * Run @p variants (label -> (system, options tweak)) over all six
 * workloads, printing progress to stderr.
 */
template <typename ConfigureFn>
std::vector<WorkloadRow>
runAcrossWorkloads(const std::vector<std::string> &labels,
                   ConfigureFn &&configure,
                   const ExperimentOptions &base_opts)
{
    std::vector<WorkloadRow> rows;
    for (const Workload w : allWorkloads()) {
        WorkloadRow row;
        row.workload = w;
        std::fprintf(stderr, "  running %-8s baseline...\n",
                     toString(w).c_str());
        row.baseline =
            runSystem(w, SystemKind::Baseline, base_opts);
        for (const std::string &label : labels) {
            ExperimentOptions opts = base_opts;
            const SystemKind kind = configure(label, opts);
            std::fprintf(stderr, "  running %-8s %s...\n",
                         toString(w).c_str(), label.c_str());
            row.systems.emplace(label, runSystem(w, kind, opts));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Optional CSV export: when --csv was given, write one row per
 * workload x system with the core metrics, for plotting.
 */
inline void
maybeWriteCsv(const ArgParser &args,
              const std::vector<WorkloadRow> &rows)
{
    const std::string path = args.getString("csv");
    if (path.empty())
        return;
    CsvWriter csv(path,
                  {"workload", "system", "flash_programs",
                   "flash_erases", "mean_latency_us", "p99_latency_us",
                   "dvp_revivals", "dedup_hits"});
    auto emit = [&csv](Workload w, const SimResult &r) {
        csv.addRow({toString(w), r.system,
                    std::to_string(r.flashPrograms),
                    std::to_string(r.flashErases),
                    std::to_string(r.allLatency.mean() / 1e3),
                    std::to_string(
                        static_cast<double>(
                            r.allLatency.percentile(0.99)) / 1e3),
                    std::to_string(r.dvpRevivals),
                    std::to_string(r.dedupHits)});
    };
    for (const auto &row : rows) {
        emit(row.workload, row.baseline);
        for (const auto &[label, result] : row.systems)
            emit(row.workload, result);
    }
    std::printf("\nwrote CSV to %s\n", path.c_str());
}

/** Mean of a column of improvement fractions. */
inline double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace zombie::bench

#endif // ZOMBIE_BENCH_SIM_BENCH_HH
