/**
 * @file
 * Shared runner for the full-simulation benches (Figures 9-12/14/15).
 *
 * Pool sizes: the paper sweeps 100K-300K entries against day-long
 * traces of millions of requests. At bench scale the pool is sized
 * as a fraction of the trace length so the same capacity-pressure
 * regime is reproduced; --pool-frac adjusts it.
 */

#ifndef ZOMBIE_BENCH_SIM_BENCH_HH
#define ZOMBIE_BENCH_SIM_BENCH_HH

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "util/alloc_counter.hh"
#include "util/csv.hh"
#include "util/thread_pool.hh"

namespace zombie::bench
{

/** Paper-equivalent pool size: fraction of the trace length. */
inline std::uint64_t
scaledPool(std::uint64_t requests, double frac)
{
    return std::max<std::uint64_t>(
        256,
        static_cast<std::uint64_t>(frac *
                                   static_cast<double>(requests)));
}

/** The fraction standing in for the paper's 200K-entry default. */
inline constexpr double kDefaultPoolFrac = 0.02;

/** ExperimentOptions filled from the standardArgs() options. */
inline ExperimentOptions
standardOptions(const ArgParser &args)
{
    ExperimentOptions opts;
    opts.requests = args.getUint("requests");
    opts.seed = args.getUint("seed");
    opts.poolCapacity =
        scaledPool(opts.requests, args.getDouble("pool-frac"));
    opts.queueDepth =
        static_cast<std::uint32_t>(args.getUint("queue-depth"));
    opts.engine = args.getString("engine");
    opts.statsInterval = ticksFromUs(args.getDouble("stats-interval"));
    opts.traceLimit = args.getUint("span-limit");
    opts.statsCsv = args.getString("stats-csv");
    opts.statsJson = args.getString("stats-json");
    opts.traceOut = args.getString("trace-out");
    opts.statsDump = args.getString("dump-stats");
    return opts;
}

/**
 * Telemetry outputs are per cell: tag a base path with the cell's
 * workload and system label, keeping the extension ("stats.csv" ->
 * "stats-mail-dvp.csv") so a whole bench sweep writes distinct files.
 */
inline std::string
cellTelemetryPath(const std::string &base, const std::string &workload,
                  const std::string &label)
{
    if (base.empty())
        return base;
    const std::string tag = "-" + workload + "-" + label;
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + tag;
    return base.substr(0, dot) + tag + base.substr(dot);
}

/** Rewrite every telemetry output path in @p opts for one cell. */
inline void
tagCellTelemetry(ExperimentOptions &opts, Workload workload,
                 const std::string &label)
{
    const std::string w = toString(workload);
    opts.statsCsv = cellTelemetryPath(opts.statsCsv, w, label);
    opts.statsJson = cellTelemetryPath(opts.statsJson, w, label);
    opts.traceOut = cellTelemetryPath(opts.traceOut, w, label);
    opts.statsDump = cellTelemetryPath(opts.statsDump, w, label);
}

/** Results for one workload across several systems. */
struct WorkloadRow
{
    Workload workload;
    SimResult baseline;
    std::map<std::string, SimResult> systems;

    /**
     * Wall-clock side channel: host seconds each cell took, keyed by
     * system label ("baseline" included). Never feeds back into any
     * simulated-time number — it exists purely so the harness can
     * report its own requests/sec (DESIGN.md section 7.9).
     */
    std::map<std::string, double> wallSeconds;

    /**
     * Heap allocations (operator-new calls) observed during each
     * cell, keyed like wallSeconds. The counter is process-wide, so
     * with --jobs > 1 concurrent cells bleed into each other's
     * deltas; the number is exact only at --jobs 1. Side channel
     * only — never feeds back into simulated time.
     */
    std::map<std::string, std::uint64_t> heapAllocs;
};

/**
 * Run @p labels (label -> (system, options tweak)) over all six
 * workloads with @p jobs cells in flight, assembling the rows in
 * fixed (workload, label) order. Every cell is an independent,
 * seed-deterministic simulation, so the tables and CSV output are
 * byte-identical for any jobs value; only the per-cell wall clock
 * (a side channel) varies run to run.
 */
template <typename ConfigureFn>
std::vector<WorkloadRow>
runAcrossWorkloadsParallel(const std::vector<std::string> &labels,
                           ConfigureFn &&configure,
                           const ExperimentOptions &base_opts,
                           unsigned jobs)
{
    struct Cell
    {
        Workload workload;
        std::string label;
        SystemKind kind;
        ExperimentOptions opts;
    };
    std::vector<Cell> cells;
    for (const Workload w : allWorkloads()) {
        ExperimentOptions base_cell = base_opts;
        tagCellTelemetry(base_cell, w, "baseline");
        cells.push_back({w, "baseline", SystemKind::Baseline,
                         std::move(base_cell)});
        for (const std::string &label : labels) {
            ExperimentOptions opts = base_opts;
            const SystemKind kind = configure(label, opts);
            tagCellTelemetry(opts, w, label);
            cells.push_back({w, label, kind, std::move(opts)});
        }
    }

    std::fprintf(stderr, "  running %zu cells, %u at a time...\n",
                 cells.size(), jobs);
    struct CellResult
    {
        SimResult result;
        double wallSeconds;
        std::uint64_t heapAllocs;
    };
    auto results =
        parallelMap(jobs, cells.size(), [&cells](std::size_t i) {
            const Cell &cell = cells[i];
            std::fprintf(stderr, "  running %-8s %s...\n",
                         toString(cell.workload).c_str(),
                         cell.label.c_str());
            const std::uint64_t allocs0 = heapAllocCount();
            const auto start = std::chrono::steady_clock::now();
            SimResult r =
                runSystem(cell.workload, cell.kind, cell.opts);
            const std::chrono::duration<double> wall =
                std::chrono::steady_clock::now() - start;
            return CellResult{std::move(r), wall.count(),
                              heapAllocCount() - allocs0};
        });

    std::vector<WorkloadRow> rows;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].label == "baseline") {
            rows.emplace_back();
            rows.back().workload = cells[i].workload;
            rows.back().baseline = std::move(results[i].result);
        } else {
            rows.back().systems.emplace(
                cells[i].label, std::move(results[i].result));
        }
        rows.back().wallSeconds.emplace(cells[i].label,
                                        results[i].wallSeconds);
        rows.back().heapAllocs.emplace(cells[i].label,
                                       results[i].heapAllocs);
    }
    return rows;
}

/** Serial convenience wrapper (historical entry point). */
template <typename ConfigureFn>
std::vector<WorkloadRow>
runAcrossWorkloads(const std::vector<std::string> &labels,
                   ConfigureFn &&configure,
                   const ExperimentOptions &base_opts)
{
    return runAcrossWorkloadsParallel(
        labels, std::forward<ConfigureFn>(configure), base_opts, 1);
}

/**
 * Write one CSV row per workload x system with the core metrics.
 * Cell order and formatting are part of the byte-identity contract
 * pinned by tests/sim/test_parallel_harness.cc.
 */
inline void
writeCsvRows(const std::string &path,
             const std::vector<WorkloadRow> &rows)
{
    CsvWriter csv(path,
                  {"workload", "system", "flash_programs",
                   "flash_erases", "mean_latency_us", "p99_latency_us",
                   "dvp_revivals", "dedup_hits"});
    auto emit = [&csv](Workload w, const SimResult &r) {
        csv.addRow({toString(w), r.system,
                    std::to_string(r.flashPrograms),
                    std::to_string(r.flashErases),
                    std::to_string(r.allLatency.mean() / 1e3),
                    std::to_string(
                        static_cast<double>(
                            r.allLatency.percentile(0.99)) / 1e3),
                    std::to_string(r.dvpRevivals),
                    std::to_string(r.dedupHits)});
    };
    for (const auto &row : rows) {
        emit(row.workload, row.baseline);
        for (const auto &[label, result] : row.systems)
            emit(row.workload, result);
    }
}

/**
 * Optional CSV export: when --csv was given, write one row per
 * workload x system with the core metrics, for plotting.
 */
inline void
maybeWriteCsv(const ArgParser &args,
              const std::vector<WorkloadRow> &rows)
{
    const std::string path = args.getString("csv");
    if (path.empty())
        return;
    writeCsvRows(path, rows);
    std::printf("\nwrote CSV to %s\n", path.c_str());
}

/**
 * Wall-clock side channel, printed to stderr so the simulated-time
 * tables on stdout stay byte-identical across runs and --jobs
 * values: per-cell host wall time and simulated requests/sec.
 */
inline void
reportWallClock(const std::vector<WorkloadRow> &rows, unsigned jobs)
{
    std::fprintf(stderr,
                 "\nwall-clock side channel (host time, jobs=%u; "
                 "simulated-time results above are unaffected):\n",
                 jobs);
    double total = 0.0;
    auto emit = [&total](Workload w, const std::string &label,
                         const SimResult &r, double seconds) {
        const double rate =
            seconds > 0.0 ? static_cast<double>(r.requests) / seconds
                          : 0.0;
        const double erate =
            seconds > 0.0 ? static_cast<double>(r.events) / seconds
                          : 0.0;
        std::fprintf(stderr,
                     "  %-8s %-10s %8.2f s %12.0f req/s "
                     "%12.0f ev/s\n",
                     toString(w).c_str(), label.c_str(), seconds,
                     rate, erate);
        total += seconds;
    };
    for (const auto &row : rows) {
        emit(row.workload, "baseline", row.baseline,
             row.wallSeconds.at("baseline"));
        for (const auto &[label, result] : row.systems)
            emit(row.workload, label, result,
                 row.wallSeconds.at(label));
    }
    std::fprintf(stderr, "  %-8s %-10s %8.2f s (sum of cells)\n", "",
                 "total", total);
}

/**
 * Optional --wall-json export consumed by scripts/bench_report.sh:
 * one record per cell with wall seconds, requests/sec, engine
 * events/sec and the heap-allocation count (exact at --jobs 1; see
 * WorkloadRow::heapAllocs for the concurrency caveat).
 */
inline void
maybeWriteWallJson(const ArgParser &args,
                   const std::vector<WorkloadRow> &rows,
                   unsigned jobs)
{
    const std::string path = args.getString("wall-json");
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write wall-json %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"jobs\": %u,\n"
                    "  \"cells\": [\n",
                 args.programName().c_str(), jobs);
    bool first = true;
    auto emit = [f, &first](Workload w, const std::string &label,
                            const SimResult &r, double seconds,
                            std::uint64_t allocs) {
        const double rate =
            seconds > 0.0 ? static_cast<double>(r.requests) / seconds
                          : 0.0;
        const double erate =
            seconds > 0.0 ? static_cast<double>(r.events) / seconds
                          : 0.0;
        std::fprintf(f,
                     "%s    {\"workload\": \"%s\", \"system\": "
                     "\"%s\", \"wall_s\": %.6f, \"requests\": %llu, "
                     "\"reqs_per_s\": %.1f, \"events\": %llu, "
                     "\"events_per_s\": %.1f, "
                     "\"heap_allocs\": %llu, "
                     "\"epochs\": %llu, "
                     "\"rolled_back_epochs\": %llu, "
                     "\"sharded_bursts\": %llu, "
                     "\"serial_forced\": %llu, "
                     "\"p99_9_us\": %.3f, \"max_us\": %.3f}",
                     first ? "" : ",\n", toString(w).c_str(),
                     label.c_str(), seconds,
                     static_cast<unsigned long long>(r.requests),
                     rate,
                     static_cast<unsigned long long>(r.events),
                     erate,
                     static_cast<unsigned long long>(allocs),
                     static_cast<unsigned long long>(r.epochs),
                     static_cast<unsigned long long>(
                         r.rolledBackEpochs),
                     static_cast<unsigned long long>(r.shardedBursts),
                     static_cast<unsigned long long>(
                         r.serialForcedBursts),
                     static_cast<double>(
                         r.allLatency.percentile(0.999)) / 1e3,
                     static_cast<double>(
                         r.allLatency.maxValue()) / 1e3);
        first = false;
    };
    for (const auto &row : rows) {
        emit(row.workload, "baseline", row.baseline,
             row.wallSeconds.at("baseline"),
             row.heapAllocs.at("baseline"));
        for (const auto &[label, result] : row.systems)
            emit(row.workload, label, result,
                 row.wallSeconds.at(label),
                 row.heapAllocs.at(label));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote wall-clock JSON to %s\n",
                 path.c_str());
}

/** Mean of a column of improvement fractions. */
inline double
meanOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

} // namespace zombie::bench

#endif // ZOMBIE_BENCH_SIM_BENCH_HH
