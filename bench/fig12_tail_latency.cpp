/**
 * @file
 * Figure 12: tail (99th percentile) latency improvement of the MQ
 * dead-value pool over Baseline, across reads and writes, plus the
 * deeper p99.9/max tail from the same histograms.
 */

#include <cstdio>

#include "sim_bench.hh"

using namespace zombie;
using namespace zombie::bench;

int
main(int argc, char **argv)
{
    ArgParser args = standardArgs(
        "Figure 12: tail (p99) latency improvement", "250000");
    args.parse(argc, argv);

    banner("Figure 12", "p99 latency improvement");

    ExperimentOptions base = standardOptions(args);

    const unsigned jobs = benchJobs(args);
    const auto rows = runAcrossWorkloadsParallel(
        std::vector<std::string>{"dvp"},
        [&](const std::string &, ExperimentOptions &) {
            return SystemKind::MqDvp;
        },
        base, jobs);
    maybeWriteCsv(args, rows);

    TextTable table({"workload", "baseline p99 (us)", "dvp p99 (us)",
                     "improvement", "read p99 impr", "write p99 impr"});
    std::vector<double> improvements;
    for (const auto &row : rows) {
        const SimResult &dvp = row.systems.at("dvp");
        const double imp = tailLatencyImprovement(dvp, row.baseline);
        improvements.push_back(imp);
        auto pct_of = [](const LatencyHistogram &a,
                         const LatencyHistogram &b) {
            const double base_p99 =
                static_cast<double>(b.percentile(0.99));
            if (base_p99 <= 0.0)
                return 0.0;
            return 1.0 - static_cast<double>(a.percentile(0.99)) /
                             base_p99;
        };
        table.addRow(
            {toString(row.workload),
             TextTable::num(static_cast<double>(
                                row.baseline.allLatency.percentile(
                                    0.99)) / 1e3, 1),
             TextTable::num(static_cast<double>(
                                dvp.allLatency.percentile(0.99)) / 1e3,
                            1),
             TextTable::pct(imp),
             TextTable::pct(pct_of(dvp.readLatency,
                                   row.baseline.readLatency)),
             TextTable::pct(pct_of(dvp.writeLatency,
                                   row.baseline.writeLatency))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nmean p99 improvement: %s (paper: 22%% mean, up to "
                "43.1%%)\n",
                TextTable::pct(meanOf(improvements)).c_str());

    // Deeper tail: the p99.9 and max of the same latency histograms.
    // GC-induced queueing episodes are rare enough that their damage
    // concentrates past p99; the extreme tail shows whether the DVP
    // removed them or merely shifted them.
    TextTable deep({"workload", "baseline p99.9 (us)", "dvp p99.9 (us)",
                    "baseline max (us)", "dvp max (us)"});
    for (const auto &row : rows) {
        const SimResult &dvp = row.systems.at("dvp");
        deep.addRow(
            {toString(row.workload),
             TextTable::num(static_cast<double>(
                                row.baseline.allLatency.percentile(
                                    0.999)) / 1e3, 1),
             TextTable::num(static_cast<double>(
                                dvp.allLatency.percentile(0.999)) / 1e3,
                            1),
             TextTable::num(static_cast<double>(
                                row.baseline.allLatency.maxValue()) /
                                1e3, 1),
             TextTable::num(static_cast<double>(
                                dvp.allLatency.maxValue()) / 1e3, 1)});
    }
    std::printf("\nextreme tail (same histograms):\n%s",
                deep.render().c_str());

    paperShape(
        "tail improvements are similar in shape to the Figure 11 mean "
        "improvements: fewer programs and erases mean fewer episodes "
        "of GC-induced queueing behind a busy die.");
    reportWallClock(rows, jobs);
    maybeWriteWallJson(args, rows, jobs);
    return 0;
}
