/**
 * @file
 * Table II: workload characteristics — write ratio and unique-value
 * fractions for writes and reads — paper values vs the synthetic
 * generator's measurements. This is the calibration contract for the
 * trace substitution (DESIGN.md section 2).
 */

#include <cstdio>

#include "bench_common.hh"
#include "trace/generator.hh"
#include "trace/summary.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Table II: workload characteristics, paper vs measured",
        "200000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const std::uint64_t seed = args.getUint("seed");

    bench::banner("Table II", "workload characteristics");

    TextTable table({"trace", "WR% paper", "WR% meas",
                     "uniqW% paper", "uniqW% meas", "uniqR% paper",
                     "uniqR% meas"});
    for (const Workload w : allWorkloads()) {
        const WorkloadProfile profile =
            WorkloadProfile::preset(w, 1, requests, seed);
        SyntheticTraceGenerator gen(profile);
        TraceSummarizer summarizer;
        TraceRecord rec;
        while (gen.next(rec))
            summarizer.observe(rec);
        const TraceSummary s = summarizer.finish();
        const TableIiRow paper = tableIi(w);

        table.addRow({toString(w),
                      TextTable::pct(paper.writeRatio, 1),
                      TextTable::pct(s.writeRatio(), 1),
                      TextTable::pct(paper.uniqueWriteValue, 1),
                      TextTable::pct(s.uniqueWriteValueFraction(), 1),
                      TextTable::pct(paper.uniqueReadValue, 1),
                      TextTable::pct(s.uniqueReadValueFraction(), 1)});
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "measured columns should sit near the paper's Table II; mail "
        "stands out with very low unique write values (high write "
        "redundancy) but high unique read values.");
    return 0;
}
