/**
 * @file
 * Table II: workload characteristics — write ratio and unique-value
 * fractions for writes and reads — paper values vs the synthetic
 * generator's measurements. This is the calibration contract for the
 * trace substitution (DESIGN.md section 2).
 */

#include <cstdio>

#include "bench_common.hh"
#include "trace/generator.hh"
#include "trace/summary.hh"

using namespace zombie;

int
main(int argc, char **argv)
{
    ArgParser args = bench::standardArgs(
        "Table II: workload characteristics, paper vs measured",
        "200000");
    args.parse(argc, argv);
    const std::uint64_t requests = args.getUint("requests");
    const std::uint64_t seed = args.getUint("seed");

    bench::banner("Table II", "workload characteristics");

    // Each workload's trace generation + summarization is an
    // independent, seed-deterministic cell; run them concurrently
    // and emit the rows in fixed workload order.
    const std::vector<Workload> workloads = allWorkloads();
    const auto summaries = parallelMap(
        bench::benchJobs(args), workloads.size(),
        [&workloads, requests, seed](std::size_t i) {
            const WorkloadProfile profile = WorkloadProfile::preset(
                workloads[i], 1, requests, seed);
            SyntheticTraceGenerator gen(profile);
            TraceSummarizer summarizer;
            TraceRecord rec;
            while (gen.next(rec))
                summarizer.observe(rec);
            return summarizer.finish();
        });

    TextTable table({"trace", "WR% paper", "WR% meas",
                     "uniqW% paper", "uniqW% meas", "uniqR% paper",
                     "uniqR% meas"});
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload w = workloads[i];
        const TraceSummary &s = summaries[i];
        const TableIiRow paper = tableIi(w);

        table.addRow({toString(w),
                      TextTable::pct(paper.writeRatio, 1),
                      TextTable::pct(s.writeRatio(), 1),
                      TextTable::pct(paper.uniqueWriteValue, 1),
                      TextTable::pct(s.uniqueWriteValueFraction(), 1),
                      TextTable::pct(paper.uniqueReadValue, 1),
                      TextTable::pct(s.uniqueReadValueFraction(), 1)});
    }
    std::printf("%s", table.render().c_str());

    bench::paperShape(
        "measured columns should sit near the paper's Table II; mail "
        "stands out with very low unique write values (high write "
        "redundancy) but high unique read values.");
    return 0;
}
