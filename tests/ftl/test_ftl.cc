/**
 * @file
 * Tests for the FTL write/read paths, zombie revival, and GC — the
 * non-deduplicated configurations (Baseline / DVP).
 */

#include <gtest/gtest.h>

#include <memory>

#include "dvp/mq_dvp.hh"
#include "ftl/ftl.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

struct Rig
{
    explicit Rig(bool with_dvp, std::uint64_t logical = 40,
                 std::uint32_t blocks = 8)
        : flash(Geometry(1, 1, 1, 1, blocks, 8)),
          ftl(flash, FtlConfig{.logicalPages = logical,
                               .gcSoftWater = 3,
                               .gcLowWater = 2,
                               .gcPagesPerStep = 8,
                               .gcPolicy = "greedy",
                               .gcPopWeight = 1.0,
                               .gcMinInvalid = 6})
    {
        if (with_dvp) {
            MqDvpConfig cfg;
            cfg.capacity = 64;
            cfg.numQueues = 4;
            pool = std::make_unique<MqDvp>(cfg);
            ftl.attachDvp(pool.get());
        }
    }

    HostOpResult
    write(Lpn lpn, const Fingerprint &f)
    {
        return ftl.write(lpn, f, steps);
    }

    HostOpResult
    read(Lpn lpn)
    {
        return ftl.read(lpn, steps);
    }

    FlashArray flash;
    Ftl ftl;
    FlashStepBuffer steps;
    std::unique_ptr<MqDvp> pool;
};

TEST(Ftl, FirstWriteProgramsOnePage)
{
    Rig rig(false);
    const HostOpResult r = rig.write(0, fp(1));
    EXPECT_FALSE(r.shortCircuit);
    ASSERT_EQ(rig.steps.userSteps.size(), 1u);
    EXPECT_EQ(rig.steps.userSteps[0].op, FlashOp::Program);
    EXPECT_TRUE(rig.ftl.mapping().isMapped(0));
    EXPECT_EQ(rig.ftl.stats().programs, 1u);
}

TEST(Ftl, UpdateInvalidatesOldPage)
{
    Rig rig(false);
    rig.write(0, fp(1));
    const Ppn old = rig.ftl.mapping().ppnOf(0);
    rig.write(0, fp(2));
    EXPECT_EQ(rig.flash.state(old), PageState::Invalid);
    EXPECT_NE(rig.ftl.mapping().ppnOf(0), old);
    EXPECT_EQ(rig.flash.counters().invalidations, 1u);
}

TEST(Ftl, ReadReturnsMappedPage)
{
    Rig rig(false);
    rig.write(5, fp(9));
    const HostOpResult r = rig.read(5);
    EXPECT_TRUE(r.ok);
    ASSERT_EQ(rig.steps.userSteps.size(), 1u);
    EXPECT_EQ(rig.steps.userSteps[0].op, FlashOp::Read);
    EXPECT_EQ(rig.steps.userSteps[0].ppn, rig.ftl.mapping().ppnOf(5));
}

TEST(Ftl, ReadOfUnmappedLpnFailsGracefully)
{
    Rig rig(false);
    const HostOpResult r = rig.read(7);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(rig.steps.userSteps.empty());
    EXPECT_EQ(rig.ftl.stats().unmappedReads, 1u);
}

TEST(Ftl, SameContentRewriteRevivesOwnGarbage)
{
    // The Figure 13 pattern without dedup: rewriting the same content
    // to the same LPN invalidates the old copy and immediately
    // revives it from the dead-value pool.
    Rig rig(true);
    rig.write(0, fp(1));
    const Ppn original = rig.ftl.mapping().ppnOf(0);
    const HostOpResult r = rig.write(0, fp(1));
    EXPECT_TRUE(r.shortCircuit);
    EXPECT_TRUE(r.dvpRevival);
    EXPECT_TRUE(rig.steps.userSteps.empty());
    EXPECT_EQ(rig.ftl.mapping().ppnOf(0), original);
    EXPECT_EQ(rig.flash.state(original), PageState::Valid);
    EXPECT_EQ(rig.ftl.stats().dvpRevivals, 1u);
}

TEST(Ftl, CrossLpnRebirthIsRecycled)
{
    // Value dies at LPN 0 and is reborn at LPN 1: the paper's core
    // scenario. The physical page moves between logical owners with
    // no program.
    Rig rig(true);
    rig.write(0, fp(42));
    const Ppn page = rig.ftl.mapping().ppnOf(0);
    rig.write(0, fp(43)); // value 42 dies
    ASSERT_EQ(rig.flash.state(page), PageState::Invalid);

    const HostOpResult r = rig.write(1, fp(42)); // rebirth
    EXPECT_TRUE(r.dvpRevival);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(1), page);
    EXPECT_EQ(rig.flash.state(page), PageState::Valid);
    EXPECT_EQ(rig.ftl.mapping().lpnOf(page), 1u);
}

TEST(Ftl, RevivalUpdatesPopularityByte)
{
    Rig rig(true);
    rig.write(0, fp(1));
    rig.write(0, fp(1)); // revival #1: pop 1 -> 2
    rig.write(0, fp(1)); // revival #2: pop 2 -> 3
    EXPECT_EQ(rig.ftl.mapping().popularity(0), 3);
}

TEST(Ftl, BaselineNeverShortCircuits)
{
    Rig rig(false);
    rig.write(0, fp(1));
    const HostOpResult r = rig.write(0, fp(1));
    EXPECT_FALSE(r.shortCircuit);
    EXPECT_EQ(rig.ftl.stats().dvpRevivals, 0u);
}

TEST(Ftl, WritesTriggerGcUnderPressure)
{
    Rig rig(false);
    Xoshiro256 rng(3);
    // Hammer updates into a small logical space until GC must run.
    for (int i = 0; i < 400; ++i)
        rig.write(rng.nextBounded(40), fp(1000 + i));
    EXPECT_GT(rig.ftl.stats().gcInvocations, 0u);
    EXPECT_GT(rig.flash.counters().erases, 0u);
    EXPECT_GT(rig.ftl.stats().gcRelocations, 0u);
    rig.ftl.checkConsistency();
}

TEST(Ftl, GcStepsComeInReadProgramPairsPlusErase)
{
    Rig rig(false);
    Xoshiro256 rng(4);
    std::uint64_t reads = 0, programs = 0, erases = 0;
    for (int i = 0; i < 600; ++i) {
        rig.write(rng.nextBounded(40), fp(5000 + i));
        for (const FlashStep &s : rig.steps.gcSteps) {
            reads += s.op == FlashOp::Read;
            programs += s.op == FlashOp::Program;
            erases += s.op == FlashOp::Erase;
        }
    }
    EXPECT_EQ(reads, programs); // every relocation is read + program
    EXPECT_GT(erases, 0u);
    EXPECT_EQ(reads, rig.ftl.stats().gcRelocations);
}

TEST(Ftl, GcEvictsPoolEntriesOfErasedPages)
{
    Rig rig(true);
    Xoshiro256 rng(5);
    for (int i = 0; i < 600; ++i)
        rig.write(rng.nextBounded(40), fp(9000 + i));
    // Every value written once: no revivals possible, so any pool
    // shrinkage must come from GC erases.
    EXPECT_GT(rig.pool->stats().gcEvictions, 0u);
    rig.ftl.checkConsistency();
}

TEST(Ftl, ZombieRevivalReducesPrograms)
{
    // Same update stream with heavy content redundancy: the DVP rig
    // must program measurably fewer pages than the baseline rig.
    // Roomier drive (16 blocks) so GC does not erase garbage pages
    // before their values are reborn.
    Rig base(false, 40, 16), dvp(true, 40, 16);
    Xoshiro256 rng_a(6), rng_b(6);
    for (int i = 0; i < 500; ++i) {
        const Lpn lpn_a = rng_a.nextBounded(40);
        const std::uint64_t v_a = rng_a.nextBounded(8);
        base.write(lpn_a, fp(v_a));
        const Lpn lpn_b = rng_b.nextBounded(40);
        const std::uint64_t v_b = rng_b.nextBounded(8);
        dvp.write(lpn_b, fp(v_b));
    }
    EXPECT_LT(static_cast<double>(dvp.ftl.stats().programs),
              0.6 * static_cast<double>(base.ftl.stats().programs));
    EXPECT_LT(dvp.flash.counters().erases,
              base.flash.counters().erases + 1);
    base.ftl.checkConsistency();
    dvp.ftl.checkConsistency();
}

TEST(Ftl, ConsistencyHoldsUnderRandomMixedWorkload)
{
    Rig rig(true);
    Xoshiro256 rng(7);
    for (int i = 0; i < 3000; ++i) {
        const Lpn lpn = rng.nextBounded(40);
        if (rng.nextBool(0.7)) {
            rig.write(lpn, fp(rng.nextBounded(30)));
        } else {
            rig.read(lpn);
        }
        if (i % 500 == 0)
            rig.ftl.checkConsistency();
    }
    rig.ftl.checkConsistency();

    // Census: mapped LPNs == valid pages (no dedup sharing here).
    EXPECT_EQ(rig.ftl.mapping().mappedCount(),
              rig.flash.totalValidPages());
}

TEST(Ftl, OwnersOfReportsSingleOwnerWithoutDedup)
{
    Rig rig(false);
    rig.write(3, fp(1));
    const Ppn ppn = rig.ftl.mapping().ppnOf(3);
    const auto owners = rig.ftl.ownersOf(ppn);
    ASSERT_EQ(owners.size(), 1u);
    EXPECT_EQ(owners[0], 3u);
    EXPECT_TRUE(rig.ftl.ownersOf(ppn + 1).empty());
}

TEST(FtlDeath, WriteBeyondLogicalSpacePanics)
{
    Rig rig(false);
    EXPECT_DEATH(rig.write(40, fp(1)), "beyond logical");
}

TEST(FtlDeath, OversubscribedLogicalSpaceIsFatal)
{
    FlashArray flash(Geometry(1, 1, 1, 1, 2, 8));
    EXPECT_EXIT(
        {
            Ftl ftl(flash, FtlConfig{.logicalPages = 64});
        },
        testing::ExitedWithCode(1), "smaller than logical");
}

TEST(FtlDeath, ZeroGcStepBudgetIsFatal)
{
    FlashArray flash(Geometry(1, 1, 1, 1, 4, 8));
    EXPECT_EXIT(
        {
            Ftl ftl(flash, FtlConfig{.logicalPages = 16,
                                     .gcPagesPerStep = 0});
        },
        testing::ExitedWithCode(1), "gcPagesPerStep");
}

} // namespace
} // namespace zombie
