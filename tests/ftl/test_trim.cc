/**
 * @file
 * Tests for the trim/discard path and its dead-value-pool interplay:
 * trimmed content is dead content, so a later write of the same
 * value revives the trimmed page.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dvp/mq_dvp.hh"
#include "ftl/ftl.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

struct TrimRig
{
    explicit TrimRig(bool with_dvp, bool with_dedup = false)
        : flash(Geometry(1, 1, 1, 1, 8, 8)),
          ftl(flash, FtlConfig{.logicalPages = 40})
    {
        if (with_dedup)
            ftl.attachDedup(&store);
        if (with_dvp) {
            MqDvpConfig cfg;
            cfg.capacity = 64;
            pool = std::make_unique<MqDvp>(cfg);
            ftl.attachDvp(pool.get());
        }
    }

    HostOpResult
    write(Lpn lpn, const Fingerprint &f)
    {
        return ftl.write(lpn, f, steps);
    }

    HostOpResult
    read(Lpn lpn)
    {
        return ftl.read(lpn, steps);
    }

    HostOpResult
    trim(Lpn lpn)
    {
        return ftl.trim(lpn, steps);
    }

    FlashArray flash;
    FingerprintStore store;
    Ftl ftl;
    FlashStepBuffer steps;
    std::unique_ptr<MqDvp> pool;
};

TEST(Trim, UnmapsAndInvalidates)
{
    TrimRig rig(false);
    rig.write(3, fp(1));
    const Ppn ppn = rig.ftl.mapping().ppnOf(3);
    const HostOpResult r = rig.trim(3);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(rig.ftl.mapping().isMapped(3));
    EXPECT_EQ(rig.flash.state(ppn), PageState::Invalid);
    EXPECT_EQ(rig.ftl.stats().trims, 1u);
    rig.ftl.checkConsistency();
}

TEST(Trim, UnmappedLpnIsGracefulNoOp)
{
    TrimRig rig(false);
    const HostOpResult r = rig.trim(5);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(rig.ftl.stats().trims, 1u);
}

TEST(Trim, OutOfRangeLpnIsGracefulNoOp)
{
    TrimRig rig(false);
    EXPECT_FALSE(rig.trim(40).ok);
}

TEST(Trim, TrimmedContentEntersDeadValuePool)
{
    TrimRig rig(true);
    rig.write(3, fp(7));
    const Ppn ppn = rig.ftl.mapping().ppnOf(3);
    rig.trim(3);

    // Writing the same content elsewhere revives the trimmed page.
    const HostOpResult r = rig.write(9, fp(7));
    EXPECT_TRUE(r.dvpRevival);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(9), ppn);
    EXPECT_EQ(rig.flash.state(ppn), PageState::Valid);
    rig.ftl.checkConsistency();
}

TEST(Trim, ReadAfterTrimFails)
{
    TrimRig rig(false);
    rig.write(3, fp(1));
    rig.trim(3);
    EXPECT_FALSE(rig.read(3).ok);
}

TEST(Trim, SharedDedupPageSurvivesSingleTrim)
{
    TrimRig rig(false, true);
    rig.write(0, fp(7));
    rig.write(1, fp(7));
    const Ppn shared = rig.ftl.mapping().ppnOf(0);
    rig.trim(0);
    EXPECT_EQ(rig.flash.state(shared), PageState::Valid);
    EXPECT_EQ(rig.store.refCount(shared), 1u);
    EXPECT_TRUE(rig.ftl.mapping().isMapped(1));
    rig.trim(1);
    EXPECT_EQ(rig.flash.state(shared), PageState::Invalid);
    rig.ftl.checkConsistency();
}

TEST(Trim, PopularityByteResets)
{
    TrimRig rig(true);
    rig.write(3, fp(1));
    rig.write(3, fp(1)); // revival bumps popularity to 2
    ASSERT_GT(rig.ftl.mapping().popularity(3), 1);
    rig.trim(3);
    EXPECT_EQ(rig.ftl.mapping().popularity(3), 0);
}

TEST(Trim, RepeatedTrimWriteCyclesStayConsistent)
{
    // Discard-then-restore cycles (e.g. a file deleted and restored
    // from a snapshot): the rewrite arrives while the trimmed pages
    // are still in the pool and revives them.
    TrimRig rig(true);
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (Lpn l = 0; l < 10; ++l)
            rig.write(l, fp(l));
        for (Lpn l = 0; l < 10; l += 2)
            rig.trim(l);
        for (Lpn l = 0; l < 10; l += 2)
            rig.write(l, fp(l)); // restore the same content
    }
    rig.ftl.checkConsistency();
    EXPECT_GT(rig.ftl.stats().dvpRevivals, 100u);
}

} // namespace
} // namespace zombie
