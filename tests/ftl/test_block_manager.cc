/**
 * @file
 * Tests for free-block pools, write points and plane striping.
 */

#include <gtest/gtest.h>

#include "ftl/block_manager.hh"

namespace zombie
{
namespace
{

/** 2 channels x 2 chips, 1 die, 1 plane -> 4 planes of 4 blocks. */
Geometry
smallGeom()
{
    return Geometry(2, 2, 1, 1, 4, 8);
}

TEST(BlockManager, RoundRobinStripesChannelsFirst)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    // Planes 0,1 are channel 0; planes 2,3 channel 1. Channel-first
    // order alternates channels: 0, 2, 1, 3.
    EXPECT_EQ(mgr.nextUserPlane(), 0u);
    EXPECT_EQ(mgr.nextUserPlane(), 2u);
    EXPECT_EQ(mgr.nextUserPlane(), 1u);
    EXPECT_EQ(mgr.nextUserPlane(), 3u);
    EXPECT_EQ(mgr.nextUserPlane(), 0u); // wraps
}

TEST(BlockManager, AllocatePageProgramsSequentially)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const Ppn a = mgr.allocatePage(0, false);
    const Ppn b = mgr.allocatePage(0, false);
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(flash.state(a), PageState::Valid);
}

TEST(BlockManager, ActiveBlockRollsOverWhenFull)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const std::uint32_t before = mgr.freeBlocks(0);
    Ppn last = kInvalidPpn;
    for (int i = 0; i < 9; ++i)
        last = mgr.allocatePage(0, false);
    // Ninth page lands in a second block.
    EXPECT_EQ(flash.geometry().blockOfPpn(last), 1u);
    EXPECT_EQ(mgr.freeBlocks(0), before - 2);
}

TEST(BlockManager, GcAndUserWritePointsAreSeparate)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const Ppn user = mgr.allocatePage(0, false);
    const Ppn gc = mgr.allocatePage(0, true);
    EXPECT_NE(flash.geometry().blockOfPpn(user),
              flash.geometry().blockOfPpn(gc));
}

TEST(BlockManager, FreeBlockAccounting)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    // One block per plane is set aside as the GC reserve.
    EXPECT_EQ(mgr.freeBlocks(0), 3u);
    EXPECT_EQ(mgr.minFreeBlocks(), 3u);
    mgr.allocatePage(0, false); // pops one block for the write point
    EXPECT_EQ(mgr.freeBlocks(0), 2u);
    EXPECT_EQ(mgr.minFreeBlocks(), 2u);
}

TEST(BlockManager, ReleaseReturnsErasedBlock)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const Ppn p = mgr.allocatePage(0, false);
    const std::uint64_t blk = flash.geometry().blockOfPpn(p);
    flash.invalidatePage(p, 0);
    flash.eraseBlock(blk);
    mgr.releaseBlock(blk);
    EXPECT_EQ(mgr.freeBlocks(0), 3u);
    EXPECT_FALSE(mgr.isActive(blk));
}

TEST(BlockManager, IsActiveTracksWritePoints)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const Ppn user = mgr.allocatePage(0, false);
    const Ppn gc = mgr.allocatePage(0, true);
    EXPECT_TRUE(mgr.isActive(flash.geometry().blockOfPpn(user)));
    EXPECT_TRUE(mgr.isActive(flash.geometry().blockOfPpn(gc)));
    EXPECT_FALSE(mgr.isActive(3));
}

TEST(BlockManager, VictimCandidatesRequireFullBlocksWithGarbage)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    EXPECT_TRUE(mgr.victimCandidates(0).empty());

    // Fill one block completely and invalidate a page in it.
    Ppn first = kInvalidPpn;
    for (int i = 0; i < 8; ++i) {
        const Ppn p = mgr.allocatePage(0, false);
        if (i == 0)
            first = p;
    }
    // Block is full but still the active block until the next
    // allocation rolls over.
    flash.invalidatePage(first, 1);
    mgr.allocatePage(0, false); // roll to a new active block
    const auto candidates = mgr.victimCandidates(0);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], flash.geometry().blockOfPpn(first));
}

TEST(BlockManager, LoadProbeSteersTowardIdlePlanes)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    // Plane 2 reports the lowest load.
    mgr.setLoadProbe([](std::uint64_t plane) {
        return plane == 2 ? Tick{0} : Tick{1000};
    });
    EXPECT_EQ(mgr.nextUserPlane(), 2u);
    EXPECT_EQ(mgr.nextUserPlane(), 2u);
}

TEST(BlockManager, LoadProbeTiesPreserveStriping)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    mgr.setLoadProbe([](std::uint64_t) { return Tick{5}; });
    // All equal: falls back to strict less-than scan from the RR
    // cursor, which yields the channel-striped order.
    EXPECT_EQ(mgr.nextUserPlane(), 0u);
    EXPECT_EQ(mgr.nextUserPlane(), 2u);
    EXPECT_EQ(mgr.nextUserPlane(), 1u);
}

TEST(BlockManager, LoadProbeSkipsPlanesWithoutRoom)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    mgr.setLoadProbe([](std::uint64_t) { return Tick{0}; });
    // Exhaust plane 0's user-visible blocks (3 of 4; one is the GC
    // reserve).
    for (int i = 0; i < 24; ++i)
        mgr.allocatePage(0, false);
    ASSERT_EQ(mgr.freeBlocks(0), 0u);
    // Dynamic allocation must avoid plane 0 now.
    for (int i = 0; i < 8; ++i)
        EXPECT_NE(mgr.nextUserPlane(), 0u);
}

TEST(BlockManagerDeath, ExhaustedPlanePanics)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    for (int i = 0; i < 24; ++i)
        mgr.allocatePage(0, false);
    // User allocation cannot dip into the GC reserve.
    EXPECT_DEATH((void)mgr.allocatePage(0, false), "out of free");
}

TEST(BlockManagerDeath, ReleaseNonErasedBlockPanics)
{
    FlashArray flash(smallGeom());
    BlockManager mgr(flash);
    const Ppn p = mgr.allocatePage(0, false);
    EXPECT_DEATH(mgr.releaseBlock(flash.geometry().blockOfPpn(p)),
                 "non-erased");
}

} // namespace
} // namespace zombie
