/**
 * @file
 * Tests for GC victim selection, including the paper's
 * popularity-aware metric (section IV-D).
 */

#include <gtest/gtest.h>

#include "ftl/gc_policy.hh"

namespace zombie
{
namespace
{

Geometry
tinyGeom()
{
    return Geometry(1, 1, 1, 1, 4, 8);
}

/** Fill a block and invalidate n pages with a given popularity. */
void
makeVictim(FlashArray &flash, std::uint64_t block, int invalid,
           std::uint8_t pop)
{
    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < flash.geometry().pagesPerBlock(); ++i)
        pages.push_back(flash.programPage(block));
    for (int i = 0; i < invalid; ++i)
        flash.invalidatePage(pages[static_cast<std::size_t>(i)], pop);
}

TEST(GreedyGc, PicksMostInvalidBlock)
{
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 2, 0);
    makeVictim(flash, 1, 6, 0);
    makeVictim(flash, 2, 4, 0);
    GreedyGcPolicy policy;
    EXPECT_EQ(policy.selectVictim(flash, {0, 1, 2}), 1u);
}

TEST(GreedyGc, FirstWinsOnTies)
{
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 3, 0);
    makeVictim(flash, 1, 3, 0);
    GreedyGcPolicy policy;
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 0u);
    EXPECT_EQ(policy.selectVictim(flash, {1, 0}), 1u);
}

TEST(PopularityAwareGc, AvoidsPopularGarbage)
{
    // Two blocks with equal invalid counts; the one whose garbage is
    // popular (likely to be revived) must be spared.
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 4, 250); // popular garbage
    makeVictim(flash, 1, 4, 1);   // cold garbage
    PopularityAwareGcPolicy policy(1.0);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 1u);
}

TEST(PopularityAwareGc, StillPrefersClearlyBetterVictims)
{
    // A hugely invalid block wins even if its garbage is warm.
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 8, 60); // all invalid, warm
    makeVictim(flash, 1, 1, 0);  // barely invalid, cold
    PopularityAwareGcPolicy policy(1.0);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 0u);
}

TEST(PopularityAwareGc, ScoreFormula)
{
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 2, 100); // invalid=2, popSum=200
    PopularityAwareGcPolicy policy(2.0);
    EXPECT_DOUBLE_EQ(policy.score(flash, 0),
                     2.0 - 2.0 * 200.0 / 255.0);
}

TEST(PopularityAwareGc, ZeroWeightDegeneratesToGreedy)
{
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 5, 255);
    makeVictim(flash, 1, 4, 0);
    PopularityAwareGcPolicy policy(0.0);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 0u);
}

TEST(GcPolicyFactory, BuildsBothPolicies)
{
    EXPECT_EQ(makeGcPolicy("greedy")->name(), "greedy");
    EXPECT_EQ(makeGcPolicy("popularity", 3.0)->name(),
              "popularity-aware");
}

TEST(GcPolicyFactory, WearPrefixWrapsBasePolicy)
{
    EXPECT_EQ(makeGcPolicy("wear:greedy")->name(),
              "wear-aware(greedy)");
    EXPECT_EQ(makeGcPolicy("wear:popularity", 3.0)->name(),
              "wear-aware(popularity-aware)");
}

TEST(GcPolicyFactory, WearWrappedGreedyStillPicksMostInvalid)
{
    FlashArray flash(tinyGeom());
    makeVictim(flash, 0, 2, 0);
    makeVictim(flash, 1, 6, 0);
    auto policy = makeGcPolicy("wear:greedy");
    EXPECT_EQ(policy->selectVictim(flash, {0, 1}), 1u);
}

TEST(GcPolicyFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)makeGcPolicy("random"),
                testing::ExitedWithCode(1), "unknown GC policy");
    EXPECT_EXIT((void)makeGcPolicy("wear:random"),
                testing::ExitedWithCode(1), "unknown GC policy");
}

TEST(GcPolicyDeath, EmptyCandidatesPanics)
{
    FlashArray flash(tinyGeom());
    GreedyGcPolicy greedy;
    PopularityAwareGcPolicy pop;
    EXPECT_DEATH((void)greedy.selectVictim(flash, {}), "no");
    EXPECT_DEATH((void)pop.selectVictim(flash, {}), "no");
}

} // namespace
} // namespace zombie
