/**
 * @file
 * Tests for hot/cold write-stream separation.
 */

#include <gtest/gtest.h>

#include "ftl/ftl.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

Geometry
roomyGeom()
{
    return Geometry(1, 1, 1, 1, 16, 8);
}

/** Test-local write helper: a throwaway step buffer per call. */
HostOpResult
write(Ftl &ftl, Lpn lpn, const Fingerprint &f)
{
    FlashStepBuffer steps;
    return ftl.write(lpn, f, steps);
}

FtlConfig
separatedConfig()
{
    return FtlConfig{.logicalPages = 64,
                     .gcMinInvalid = 6,
                     .hotColdSeparation = true,
                     .hotThreshold = 2};
}

TEST(Streams, BlockManagerKeepsThreeWritePoints)
{
    FlashArray flash(roomyGeom());
    BlockManager mgr(flash);
    const Ppn cold = mgr.allocatePage(0, Stream::UserCold);
    const Ppn hot = mgr.allocatePage(0, Stream::UserHot);
    const Ppn gc = mgr.allocatePage(0, Stream::Gc);
    const auto &geom = flash.geometry();
    EXPECT_NE(geom.blockOfPpn(cold), geom.blockOfPpn(hot));
    EXPECT_NE(geom.blockOfPpn(cold), geom.blockOfPpn(gc));
    EXPECT_NE(geom.blockOfPpn(hot), geom.blockOfPpn(gc));
    EXPECT_TRUE(mgr.isActive(geom.blockOfPpn(hot)));
}

TEST(Streams, HotStreamIsLazilyAllocated)
{
    FlashArray flash(roomyGeom());
    BlockManager mgr(flash);
    EXPECT_EQ(mgr.freeBlocks(0), 15u); // 16 minus the GC reserve
    mgr.allocatePage(0, Stream::UserCold);
    EXPECT_EQ(mgr.freeBlocks(0), 14u);
    mgr.allocatePage(0, Stream::UserHot);
    EXPECT_EQ(mgr.freeBlocks(0), 13u);
}

TEST(Streams, FrequentlyUpdatedLpnsMigrateToHotBlocks)
{
    FlashArray flash(roomyGeom());
    Ftl ftl(flash, separatedConfig());

    // Make LPN 0 popular via revival-free updates (no DVP attached,
    // so popularity accrues only through the hot path decision using
    // the byte; here pop stays 1 per write... use distinct values so
    // every write programs). With no DVP the popularity byte is reset
    // to 1 per write, so drive it above threshold via the mapping
    // table directly — the unit under test is the stream choice.
    write(ftl, 0, fp(1));
    const Ppn cold_ppn = ftl.mapping().ppnOf(0);

    // Mark the LPN hot and update: the new page must land in a
    // different (hot) block.
    const_cast<MappingTable &>(ftl.mapping()).setPopularity(0, 10);
    write(ftl, 0, fp(2));
    const Ppn hot_ppn = ftl.mapping().ppnOf(0);
    EXPECT_NE(flash.geometry().blockOfPpn(cold_ppn),
              flash.geometry().blockOfPpn(hot_ppn));
    ftl.checkConsistency();
}

TEST(Streams, ColdWritesShareTheColdBlock)
{
    FlashArray flash(roomyGeom());
    Ftl ftl(flash, separatedConfig());
    write(ftl, 0, fp(1));
    write(ftl, 1, fp(2));
    EXPECT_EQ(flash.geometry().blockOfPpn(ftl.mapping().ppnOf(0)),
              flash.geometry().blockOfPpn(ftl.mapping().ppnOf(1)));
}

TEST(Streams, DisabledSeparationUsesOneUserStream)
{
    FlashArray flash(roomyGeom());
    FtlConfig cfg = separatedConfig();
    cfg.hotColdSeparation = false;
    Ftl ftl(flash, cfg);
    write(ftl, 0, fp(1));
    const_cast<MappingTable &>(ftl.mapping()).setPopularity(0, 10);
    write(ftl, 0, fp(2));
    write(ftl, 1, fp(3));
    // Hot update and cold write land in the same block.
    EXPECT_EQ(flash.geometry().blockOfPpn(ftl.mapping().ppnOf(0)),
              flash.geometry().blockOfPpn(ftl.mapping().ppnOf(1)));
}

TEST(Streams, ConsistencyUnderSeparatedWorkload)
{
    FlashArray flash(roomyGeom());
    Ftl ftl(flash, separatedConfig());
    // Hammer a small hot set and a wide cold set.
    for (int i = 0; i < 800; ++i) {
        const Lpn hot_lpn = static_cast<Lpn>(i % 4);
        const Lpn cold_lpn = 8 + static_cast<Lpn>(i % 56);
        write(ftl, hot_lpn, fp(static_cast<std::uint64_t>(i)));
        const_cast<MappingTable &>(ftl.mapping())
            .setPopularity(hot_lpn, 50);
        write(ftl, cold_lpn, fp(10'000 + static_cast<std::uint64_t>(i)));
    }
    ftl.checkConsistency();
    EXPECT_GT(ftl.stats().gcInvocations, 0u);
}

} // namespace
} // namespace zombie
