/**
 * @file
 * Tests for wear accounting and the wear-aware GC decorator.
 */

#include <gtest/gtest.h>

#include "ftl/wear.hh"

namespace zombie
{
namespace
{

Geometry
tinyGeom()
{
    return Geometry(1, 1, 1, 1, 4, 8);
}

TEST(WearSummary, FreshDriveHasNoWear)
{
    FlashArray flash(tinyGeom());
    const WearSummary s = summarizeWear(flash);
    EXPECT_EQ(s.minErase, 0u);
    EXPECT_EQ(s.maxErase, 0u);
    EXPECT_EQ(s.skew(), 0u);
    EXPECT_DOUBLE_EQ(s.meanErase, 0.0);
    EXPECT_DOUBLE_EQ(s.stddevErase, 0.0);
}

TEST(WearSummary, TracksSkewedErases)
{
    FlashArray flash(tinyGeom());
    for (int i = 0; i < 6; ++i)
        flash.eraseBlock(0);
    for (int i = 0; i < 2; ++i)
        flash.eraseBlock(1);
    const WearSummary s = summarizeWear(flash);
    EXPECT_EQ(s.minErase, 0u);
    EXPECT_EQ(s.maxErase, 6u);
    EXPECT_EQ(s.skew(), 6u);
    EXPECT_DOUBLE_EQ(s.meanErase, 2.0); // (6+2+0+0)/4
    EXPECT_GT(s.stddevErase, 0.0);
}

/** Fill a block and invalidate n pages. */
void
makeVictim(FlashArray &flash, std::uint64_t block, int invalid)
{
    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < flash.geometry().pagesPerBlock(); ++i)
        pages.push_back(flash.programPage(block));
    for (int i = 0; i < invalid; ++i)
        flash.invalidatePage(pages[static_cast<std::size_t>(i)], 0);
}

TEST(WearAwareGc, BreaksNearTiesTowardLessWornBlock)
{
    FlashArray flash(tinyGeom());
    // Block 0: slightly more garbage but much more worn.
    for (int i = 0; i < 10; ++i)
        flash.eraseBlock(0);
    makeVictim(flash, 0, 6);
    makeVictim(flash, 1, 4); // within tolerance 4, unworn
    WearAwareGcPolicy policy(std::make_unique<GreedyGcPolicy>(), 4);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 1u);
}

TEST(WearAwareGc, RespectsClearlyBetterVictims)
{
    FlashArray flash(tinyGeom());
    for (int i = 0; i < 10; ++i)
        flash.eraseBlock(0);
    makeVictim(flash, 0, 8); // far outside tolerance
    makeVictim(flash, 1, 1);
    WearAwareGcPolicy policy(std::make_unique<GreedyGcPolicy>(), 4);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 0u);
}

TEST(WearAwareGc, ZeroToleranceIsBasePolicy)
{
    FlashArray flash(tinyGeom());
    for (int i = 0; i < 10; ++i)
        flash.eraseBlock(0);
    makeVictim(flash, 0, 5);
    makeVictim(flash, 1, 4);
    WearAwareGcPolicy policy(std::make_unique<GreedyGcPolicy>(), 0);
    EXPECT_EQ(policy.selectVictim(flash, {0, 1}), 0u);
}

TEST(WearAwareGc, NameReflectsBasePolicy)
{
    WearAwareGcPolicy policy(makeGcPolicy("popularity"), 4);
    EXPECT_EQ(policy.name(), "wear-aware(popularity-aware)");
    EXPECT_EQ(policy.base().name(), "popularity-aware");
}

TEST(WearAwareGcDeath, NullBasePolicyPanics)
{
    EXPECT_DEATH({ WearAwareGcPolicy policy(nullptr, 4); },
                 "base policy");
}

} // namespace
} // namespace zombie
