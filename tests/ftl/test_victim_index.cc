/**
 * @file
 * Equivalence tests for the incremental victim index: after any
 * randomized mix of writes, invalidations, revivals and erases, each
 * plane's victimCandidates() must match a brute-force rescan applying
 * the candidate predicate (the pre-index implementation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ftl/block_manager.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

/** 2 channels x 2 chips, 1 die, 1 plane -> 4 planes of 6 blocks. */
Geometry
testGeom()
{
    return Geometry(2, 2, 1, 1, 6, 8);
}

/** The original full-plane rescan the index replaced. */
std::vector<std::uint64_t>
rescanCandidates(const FlashArray &flash, const BlockManager &mgr,
                 std::uint64_t plane)
{
    const Geometry &geom = flash.geometry();
    std::vector<std::uint64_t> found;
    for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
        if (geom.planeOfBlock(b) != plane)
            continue;
        const BlockInfo &info = flash.block(b);
        if (info.invalidCount > 0 &&
            info.writePtr == geom.pagesPerBlock() &&
            !mgr.isActive(b)) {
            found.push_back(b);
        }
    }
    return found;
}

void
expectIndexMatchesRescan(const FlashArray &flash,
                         const BlockManager &mgr)
{
    const Geometry &geom = flash.geometry();
    for (std::uint64_t p = 0; p < geom.totalPlanes(); ++p) {
        const auto &indexed = mgr.victimCandidates(p);
        EXPECT_TRUE(std::is_sorted(indexed.begin(), indexed.end()));
        EXPECT_EQ(indexed, rescanCandidates(flash, mgr, p))
            << "plane " << p;
    }
}

TEST(VictimIndex, EmptyDriveHasNoCandidates)
{
    FlashArray flash(testGeom());
    BlockManager mgr(flash);
    expectIndexMatchesRescan(flash, mgr);
    for (std::uint64_t p = 0; p < testGeom().totalPlanes(); ++p)
        EXPECT_TRUE(mgr.victimCandidates(p).empty());
}

TEST(VictimIndex, BlockEntersIndexOnlyWhenFullInactiveAndDirty)
{
    FlashArray flash(testGeom());
    BlockManager mgr(flash);
    const Geometry &geom = flash.geometry();

    // Fill the first active block on plane 0; invalidate one page.
    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < geom.pagesPerBlock(); ++i)
        pages.push_back(mgr.allocatePage(0, false));
    const std::uint64_t block = geom.blockOfPpn(pages.front());

    // Full but still the active write point: not a candidate.
    flash.invalidatePage(pages[0], 1);
    EXPECT_TRUE(mgr.isActive(block));
    EXPECT_TRUE(mgr.victimCandidates(0).empty());

    // The next allocation rolls the write point to a new block, which
    // retires this one into the index.
    mgr.allocatePage(0, false);
    EXPECT_FALSE(mgr.isActive(block));
    ASSERT_EQ(mgr.victimCandidates(0).size(), 1u);
    EXPECT_EQ(mgr.victimCandidates(0).front(), block);
    expectIndexMatchesRescan(flash, mgr);
}

TEST(VictimIndex, ReviveOfLastGarbagePageRemovesCandidate)
{
    FlashArray flash(testGeom());
    BlockManager mgr(flash);
    const Geometry &geom = flash.geometry();

    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < geom.pagesPerBlock(); ++i)
        pages.push_back(mgr.allocatePage(0, false));
    flash.invalidatePage(pages[3], 2);
    mgr.allocatePage(0, false); // retire the block
    ASSERT_EQ(mgr.victimCandidates(0).size(), 1u);

    flash.revivePage(pages[3]);
    EXPECT_TRUE(mgr.victimCandidates(0).empty());
    expectIndexMatchesRescan(flash, mgr);
}

TEST(VictimIndex, EraseRemovesCandidate)
{
    FlashArray flash(testGeom());
    BlockManager mgr(flash);
    const Geometry &geom = flash.geometry();

    std::vector<Ppn> pages;
    for (std::uint32_t i = 0; i < geom.pagesPerBlock(); ++i)
        pages.push_back(mgr.allocatePage(0, false));
    for (const Ppn p : pages)
        flash.invalidatePage(p, 1);
    mgr.allocatePage(0, false); // retire the block
    const std::uint64_t victim = geom.blockOfPpn(pages.front());
    ASSERT_EQ(mgr.victimCandidates(0).front(), victim);

    flash.eraseBlock(victim);
    mgr.releaseBlock(victim);
    EXPECT_TRUE(mgr.victimCandidates(0).empty());
    expectIndexMatchesRescan(flash, mgr);
}

TEST(VictimIndex, RandomizedOpsMatchFullRescan)
{
    FlashArray flash(testGeom());
    BlockManager mgr(flash);
    const Geometry &geom = flash.geometry();
    Xoshiro256 rng(20260805);

    std::vector<Ppn> valid;
    std::vector<Ppn> garbage;
    auto dropBlockPages = [&geom](std::vector<Ppn> &list,
                                  std::uint64_t block) {
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](Ppn p) {
                                      return geom.blockOfPpn(p) ==
                                             block;
                                  }),
                   list.end());
    };

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t plane =
            rng.nextBounded(geom.totalPlanes());
        switch (rng.nextBounded(8)) {
          case 0:
          case 1:
          case 2: // host write
            if (mgr.streamHasRoom(plane, Stream::UserCold) ||
                mgr.freeBlocks(plane) > 0) {
                valid.push_back(mgr.allocatePage(plane, false));
            }
            break;
          case 3:
          case 4:
          case 5: // out-of-place update / trim
            if (!valid.empty()) {
                const std::size_t i = rng.nextBounded(valid.size());
                const Ppn p = valid[i];
                valid[i] = valid.back();
                valid.pop_back();
                flash.invalidatePage(
                    p, static_cast<std::uint8_t>(rng.nextBounded(8)));
                garbage.push_back(p);
            }
            break;
          case 6: // dead-value-pool revival
            if (!garbage.empty()) {
                const std::size_t i = rng.nextBounded(garbage.size());
                const Ppn p = garbage[i];
                garbage[i] = garbage.back();
                garbage.pop_back();
                flash.revivePage(p);
                valid.push_back(p);
            }
            break;
          case 7: // GC: relocate-by-invalidate, erase, release
            if (!mgr.victimCandidates(plane).empty()) {
                const auto &cands = mgr.victimCandidates(plane);
                const std::uint64_t victim =
                    cands[rng.nextBounded(cands.size())];
                for (const Ppn p : valid) {
                    if (geom.blockOfPpn(p) == victim)
                        flash.invalidatePage(p, 0);
                }
                dropBlockPages(valid, victim);
                dropBlockPages(garbage, victim);
                flash.eraseBlock(victim);
                mgr.releaseBlock(victim);
            }
            break;
        }
        expectIndexMatchesRescan(flash, mgr);
        if (HasFailure())
            FAIL() << "diverged at step " << step;
    }
}

} // namespace
} // namespace zombie
