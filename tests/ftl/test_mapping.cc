/**
 * @file
 * Tests for the LPN-to-PPN mapping table (paper Figure 8).
 */

#include <gtest/gtest.h>

#include "ftl/mapping.hh"

namespace zombie
{
namespace
{

TEST(Mapping, StartsUnmapped)
{
    MappingTable map(16, 32);
    for (Lpn l = 0; l < 16; ++l) {
        EXPECT_FALSE(map.isMapped(l));
        EXPECT_EQ(map.ppnOf(l), kInvalidPpn);
    }
    EXPECT_EQ(map.mappedCount(), 0u);
}

TEST(Mapping, MapAndReverse)
{
    MappingTable map(16, 32);
    map.map(3, 20);
    EXPECT_TRUE(map.isMapped(3));
    EXPECT_EQ(map.ppnOf(3), 20u);
    EXPECT_EQ(map.lpnOf(20), 3u);
    EXPECT_EQ(map.mappedCount(), 1u);
}

TEST(Mapping, RemapUpdatesCountOnce)
{
    MappingTable map(16, 32);
    map.map(3, 20);
    map.map(3, 21);
    EXPECT_EQ(map.mappedCount(), 1u);
    EXPECT_EQ(map.ppnOf(3), 21u);
    EXPECT_EQ(map.lpnOf(21), 3u);
}

TEST(Mapping, UnmapClearsBothDirections)
{
    MappingTable map(16, 32);
    map.map(3, 20);
    map.unmap(3);
    EXPECT_FALSE(map.isMapped(3));
    EXPECT_EQ(map.lpnOf(20), kInvalidLpn);
    EXPECT_EQ(map.mappedCount(), 0u);
    map.unmap(3); // idempotent
    EXPECT_EQ(map.mappedCount(), 0u);
}

TEST(Mapping, ClearReverseLeavesForwardIntact)
{
    MappingTable map(16, 32);
    map.map(3, 20);
    map.clearReverse(20);
    EXPECT_EQ(map.lpnOf(20), kInvalidLpn);
    EXPECT_EQ(map.ppnOf(3), 20u);
}

TEST(Mapping, PopularityByteRoundTrips)
{
    MappingTable map(16, 32);
    EXPECT_EQ(map.popularity(5), 0);
    map.setPopularity(5, 200);
    EXPECT_EQ(map.popularity(5), 200);
}

TEST(Mapping, FingerprintShadowRoundTrips)
{
    MappingTable map(16, 32);
    const Fingerprint f = Fingerprint::fromValueId(77);
    map.setFingerprint(2, f);
    EXPECT_EQ(map.fingerprintOf(2), f);
}

TEST(Mapping, EntryCostMatchesFigure8)
{
    // Figure 8: PPN plus a 1-byte popularity degree per LPN.
    EXPECT_EQ(MappingTable::bytesPerEntry(), sizeof(Ppn) + 1);
}

TEST(MappingDeath, LogicalSpaceLargerThanPhysicalIsFatal)
{
    EXPECT_EXIT({ MappingTable map(64, 32); },
                testing::ExitedWithCode(1), "smaller than logical");
}

TEST(MappingDeath, EmptyLogicalSpaceIsFatal)
{
    EXPECT_EXIT({ MappingTable map(0, 32); },
                testing::ExitedWithCode(1), "non-empty");
}

TEST(MappingDeath, OutOfBoundsAccessPanics)
{
    MappingTable map(16, 32);
    EXPECT_DEATH((void)map.ppnOf(16), "out of bounds");
    EXPECT_DEATH(map.map(0, 32), "out of bounds");
    EXPECT_DEATH((void)map.lpnOf(32), "out of bounds");
}

} // namespace
} // namespace zombie
