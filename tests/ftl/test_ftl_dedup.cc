/**
 * @file
 * Tests for the deduplicated FTL configurations (Dedup / DVP+Dedup),
 * covering the paper's section VII semantics: many-to-one mapping,
 * garbage only at last-reference drop, and the combined system.
 */

#include <gtest/gtest.h>

#include <memory>

#include "dvp/mq_dvp.hh"
#include "ftl/ftl.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

struct DedupRig
{
    explicit DedupRig(bool with_dvp)
        : flash(Geometry(1, 1, 1, 1, 8, 8)),
          ftl(flash, FtlConfig{.logicalPages = 40,
                               .gcSoftWater = 3,
                               .gcLowWater = 2,
                               .gcPagesPerStep = 8,
                               .gcPolicy = "greedy",
                               .gcPopWeight = 1.0,
                               .gcMinInvalid = 2})
    {
        ftl.attachDedup(&store);
        if (with_dvp) {
            MqDvpConfig cfg;
            cfg.capacity = 64;
            cfg.numQueues = 4;
            pool = std::make_unique<MqDvp>(cfg);
            ftl.attachDvp(pool.get());
        }
    }

    HostOpResult
    write(Lpn lpn, const Fingerprint &f)
    {
        return ftl.write(lpn, f, steps);
    }

    HostOpResult
    read(Lpn lpn)
    {
        return ftl.read(lpn, steps);
    }

    FlashArray flash;
    FingerprintStore store;
    Ftl ftl;
    FlashStepBuffer steps;
    std::unique_ptr<MqDvp> pool;
};

TEST(FtlDedup, DuplicateContentSharesOnePhysicalPage)
{
    DedupRig rig(false);
    rig.write(0, fp(7));
    const HostOpResult r = rig.write(1, fp(7));
    EXPECT_TRUE(r.shortCircuit);
    EXPECT_TRUE(r.dedupHit);
    EXPECT_TRUE(rig.steps.userSteps.empty());
    EXPECT_EQ(rig.ftl.mapping().ppnOf(0), rig.ftl.mapping().ppnOf(1));
    EXPECT_EQ(rig.flash.counters().programs, 1u);
    EXPECT_EQ(rig.store.refCount(rig.ftl.mapping().ppnOf(0)), 2u);
}

TEST(FtlDedup, OwnersListTracksAllSharers)
{
    DedupRig rig(false);
    rig.write(0, fp(7));
    rig.write(1, fp(7));
    rig.write(2, fp(7));
    const auto owners = rig.ftl.ownersOf(rig.ftl.mapping().ppnOf(0));
    EXPECT_EQ(owners.size(), 3u);
}

TEST(FtlDedup, SameContentSameLpnIsPureNoOp)
{
    DedupRig rig(false);
    rig.write(0, fp(7));
    const Ppn ppn = rig.ftl.mapping().ppnOf(0);
    const HostOpResult r = rig.write(0, fp(7));
    EXPECT_TRUE(r.dedupHit);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(0), ppn);
    EXPECT_EQ(rig.store.refCount(ppn), 1u);
    EXPECT_EQ(rig.flash.counters().invalidations, 0u);
}

TEST(FtlDedup, PageBecomesGarbageOnlyAtLastReference)
{
    DedupRig rig(false);
    rig.write(0, fp(7));
    rig.write(1, fp(7));
    const Ppn shared = rig.ftl.mapping().ppnOf(0);

    rig.write(0, fp(8)); // drop one reference
    EXPECT_EQ(rig.flash.state(shared), PageState::Valid);
    EXPECT_EQ(rig.store.refCount(shared), 1u);

    rig.write(1, fp(9)); // drop the last reference
    EXPECT_EQ(rig.flash.state(shared), PageState::Invalid);
    EXPECT_EQ(rig.store.refCount(shared), 0u);
}

TEST(FtlDedup, ReverseMapSurvivesPrimaryOwnerDeath)
{
    DedupRig rig(false);
    rig.write(0, fp(7));
    rig.write(1, fp(7));
    const Ppn shared = rig.ftl.mapping().ppnOf(0);
    rig.write(0, fp(8)); // primary owner leaves
    EXPECT_EQ(rig.ftl.mapping().lpnOf(shared), 1u);
    rig.ftl.checkConsistency();
}

TEST(FtlDedup, DvpRevivesDeadDuplicateContent)
{
    // Section VII / Figure 13: after the last reference drops, dedup
    // alone would program the content again; the combined system
    // revives the garbage page instead.
    DedupRig dedup_only(false), combined(true);

    for (DedupRig *rig : {&dedup_only, &combined}) {
        rig->write(0, fp(7));
        rig->write(0, fp(8)); // content 7 now garbage
    }

    const HostOpResult r1 = dedup_only.write(1, fp(7));
    EXPECT_FALSE(r1.shortCircuit); // dedup alone must program

    const HostOpResult r2 = combined.write(1, fp(7));
    EXPECT_TRUE(r2.shortCircuit);
    EXPECT_TRUE(r2.dvpRevival);
    combined.ftl.checkConsistency();
}

TEST(FtlDedup, RevivedPageRejoinsFingerprintStore)
{
    DedupRig rig(true);
    rig.write(0, fp(7));
    rig.write(0, fp(8));           // 7 dies
    rig.write(1, fp(7));           // revived
    const HostOpResult r = rig.write(2, fp(7)); // dedup again!
    EXPECT_TRUE(r.dedupHit);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(1), rig.ftl.mapping().ppnOf(2));
}

TEST(FtlDedup, GcRelocatesSharedPagesUpdatingAllOwners)
{
    DedupRig rig(false);
    rig.write(0, fp(100));
    rig.write(1, fp(100));
    rig.write(2, fp(100));

    // Force GC by updating a window of other LPNs until erases occur.
    Xoshiro256 rng(11);
    for (int i = 0; i < 800; ++i)
        rig.write(3 + rng.nextBounded(37), fp(1000 + i));
    ASSERT_GT(rig.flash.counters().erases, 0u);

    // The shared content must still be intact and consistent.
    const Ppn shared = rig.ftl.mapping().ppnOf(0);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(1), shared);
    EXPECT_EQ(rig.ftl.mapping().ppnOf(2), shared);
    EXPECT_EQ(rig.store.refCount(shared), 3u);
    EXPECT_EQ(rig.flash.state(shared), PageState::Valid);
    rig.ftl.checkConsistency();
}

TEST(FtlDedup, DedupReducesProgramsOnRedundantStream)
{
    DedupRig rig(false);
    Xoshiro256 rng(12);
    for (int i = 0; i < 500; ++i)
        rig.write(rng.nextBounded(40), fp(rng.nextBounded(6)));
    // Only a handful of distinct values exist; programs must be a
    // small fraction of writes.
    EXPECT_LT(rig.ftl.stats().programs, 50u);
    EXPECT_GT(rig.ftl.stats().dedupHits, 400u);
    rig.ftl.checkConsistency();
}

TEST(FtlDedup, CombinedSystemBeatsDedupAlone)
{
    // Redundant content cycling through life and death: DVP+Dedup
    // must program strictly less than Dedup alone (paper Figure 14).
    DedupRig dedup_only(false), combined(true);
    Xoshiro256 rng_a(13), rng_b(13);
    for (int i = 0; i < 1500; ++i) {
        const Lpn la = rng_a.nextBounded(40);
        const std::uint64_t va = rng_a.nextBounded(40);
        dedup_only.write(la, fp(va));
        const Lpn lb = rng_b.nextBounded(40);
        const std::uint64_t vb = rng_b.nextBounded(40);
        combined.write(lb, fp(vb));
    }
    EXPECT_LT(combined.ftl.stats().programs,
              dedup_only.ftl.stats().programs);
    EXPECT_GT(combined.ftl.stats().dvpRevivals, 0u);
    dedup_only.ftl.checkConsistency();
    combined.ftl.checkConsistency();
}

TEST(FtlDedup, MixedReadsAndWritesStayConsistent)
{
    DedupRig rig(true);
    Xoshiro256 rng(14);
    for (int i = 0; i < 3000; ++i) {
        const Lpn lpn = rng.nextBounded(40);
        if (rng.nextBool(0.6))
            rig.write(lpn, fp(rng.nextBounded(25)));
        else
            rig.read(lpn);
        if (i % 500 == 0)
            rig.ftl.checkConsistency();
    }
    rig.ftl.checkConsistency();
}

} // namespace
} // namespace zombie
