/**
 * @file
 * Perfetto trace-writer tests: escaping, the span cap, well-formed
 * JSON output and monotonically nondecreasing timestamps per track
 * (the die-serialization property Perfetto's track view relies on).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "sim/ssd.hh"
#include "telemetry/perfetto_trace.hh"
#include "trace/generator.hh"

namespace zombie
{
namespace
{

/**
 * Minimal JSON well-formedness checker: validates the value grammar
 * (objects, arrays, strings with escapes, numbers, literals) without
 * building a document. Returns true when the whole input is one
 * valid JSON value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos;
        while (pos < s.size()) {
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control chars must be escaped
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
                const char e = s[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + i >= s.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s[pos + i])))
                            return false;
                    }
                    pos += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
        if (peek() == '.') {
            ++pos;
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            while (pos < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[pos])))
                ++pos;
        }
        return pos > start;
    }

    bool
    literal(const std::string &word)
    {
        if (s.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    char
    peek() const
    {
        return pos < s.size() ? s[pos] : '\0';
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Extract the numeric value following @p key in an event line. */
double
fieldOf(const std::string &line, const std::string &key)
{
    const std::size_t at = line.find("\"" + key + "\": ");
    EXPECT_NE(at, std::string::npos) << key << " in " << line;
    return std::stod(line.substr(at + key.size() + 4));
}

TEST(PerfettoTrace, EscapeJson)
{
    EXPECT_EQ(PerfettoTraceWriter::escapeJson("plain"), "plain");
    EXPECT_EQ(PerfettoTraceWriter::escapeJson("a\"b\\c"),
              "a\\\"b\\\\c");
    EXPECT_EQ(PerfettoTraceWriter::escapeJson("x\n\r\ty"),
              "x\\n\\r\\ty");
    EXPECT_EQ(PerfettoTraceWriter::escapeJson(std::string(1, '\x01')),
              "\\u0001");
}

TEST(PerfettoTrace, SpanLimitKeepsFirstSpans)
{
    PerfettoTraceWriter writer(3);
    writer.declareTrack(0, "chan0.chip0.die0");
    for (int i = 0; i < 10; ++i)
        writer.span(0, "read", "host",
                    static_cast<Tick>(i) * 100,
                    static_cast<Tick>(i) * 100 + 50);
    EXPECT_EQ(writer.recorded(), 10u);
    EXPECT_EQ(writer.kept(), 3u);

    std::ostringstream os;
    writer.writeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid());
    // The three earliest spans survive; later ones were dropped.
    EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 0.200"), std::string::npos);
    EXPECT_EQ(json.find("\"ts\": 0.300"), std::string::npos);
}

TEST(PerfettoTrace, TickExactMicrosecondRendering)
{
    PerfettoTraceWriter writer;
    writer.span(0, "program", "gc", 1'234'567, 1'234'567 + 1'001);
    std::ostringstream os;
    writer.writeJson(os);
    const std::string json = os.str();
    // Ticks are ns; ts/dur print as microseconds with three exact
    // decimals, so no precision is lost.
    EXPECT_NE(json.find("\"ts\": 1234.567"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 1.001"), std::string::npos);
}

TEST(PerfettoTrace, CellTraceIsValidJsonWithMonotoneTracks)
{
    const WorkloadProfile profile =
        WorkloadProfile::preset(Workload::Mail, 1, 6'000, 11);
    SsdConfig cfg = SsdConfig::forProfile(profile, SystemKind::MqDvp);
    cfg.mq.capacity = 2'000;
    cfg.opTrace = true;
    Ssd ssd(cfg);
    ssd.prefill();
    SyntheticTraceGenerator gen(profile);
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    (void)ssd.result();

    const PerfettoTraceWriter *tracer = ssd.tracer();
    ASSERT_NE(tracer, nullptr);
    EXPECT_GT(tracer->kept(), 1'000u);

    std::ostringstream os;
    tracer->writeJson(os);
    const std::string json = os.str();
    EXPECT_TRUE(JsonChecker(json).valid());

    // One thread_name metadata record per die track.
    EXPECT_NE(json.find("\"name\": \"chan0.chip0.die0\""),
              std::string::npos);

    // Spans on one track cover die-occupancy phases, which serialize
    // through the die's busy-until horizon: per tid, ts never goes
    // backwards in emission order and spans never overlap.
    std::vector<double> lastEnd(cfg.geom.totalDies(), -1.0);
    std::istringstream lines(json);
    std::string line;
    std::uint64_t spans = 0;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        ++spans;
        const auto tid = static_cast<std::size_t>(
            fieldOf(line, "tid"));
        ASSERT_LT(tid, lastEnd.size());
        const double ts = fieldOf(line, "ts");
        const double dur = fieldOf(line, "dur");
        EXPECT_GE(ts, lastEnd[tid]) << "overlap on track " << tid;
        lastEnd[tid] = ts + dur;
    }
    EXPECT_EQ(spans, tracer->kept());
}

TEST(PerfettoTrace, GcSpansCarryGcCategory)
{
    // Mirror the golden cell (Mail x MqDvp, 60k requests, seed 99,
    // pool 6000), which is known to invoke GC during measurement.
    const WorkloadProfile profile =
        WorkloadProfile::preset(Workload::Mail, 1, 60'000, 99);
    SsdConfig cfg = SsdConfig::forProfile(profile, SystemKind::MqDvp);
    cfg.mq.capacity = 6'000;
    cfg.opTrace = true;
    Ssd ssd(cfg);
    ssd.prefill();
    SyntheticTraceGenerator gen(profile);
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    const SimResult r = ssd.result();
    ASSERT_GT(r.gcRelocations, 0u) << "cell too small to trigger GC";

    std::ostringstream os;
    ssd.tracer()->writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"cat\": \"gc\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"host\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"erase\""), std::string::npos);
}

} // namespace
} // namespace zombie
