/**
 * @file
 * Unit tests for the hierarchical stat registry: registration,
 * path validation, value reads and the stable dump format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/stat_registry.hh"
#include "util/stats.hh"

namespace zombie
{
namespace
{

TEST(StatRegistry, CounterRegistrationAndValue)
{
    StatRegistry reg;
    std::uint64_t hits = 0;
    reg.addCounter("dvp.mq.hits", &hits);
    EXPECT_TRUE(reg.has("dvp.mq.hits"));
    EXPECT_FALSE(reg.has("dvp.mq.misses"));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("dvp.mq.hits"), 0.0);

    // The registry reads the component's storage live: no snapshot,
    // no hot-path call needed to keep it current.
    hits = 42;
    EXPECT_DOUBLE_EQ(reg.value("dvp.mq.hits"), 42.0);
}

TEST(StatRegistry, GaugeSamplesThroughCallback)
{
    StatRegistry reg;
    double depth = 1.5;
    reg.addGauge("ctrl.outstanding", [&depth] { return depth; });
    EXPECT_DOUBLE_EQ(reg.value("ctrl.outstanding"), 1.5);
    depth = 7.0;
    EXPECT_DOUBLE_EQ(reg.value("ctrl.outstanding"), 7.0);
}

TEST(StatRegistry, DumpIsSortedAndStable)
{
    StatRegistry reg;
    std::uint64_t a = 3, b = 11;
    reg.addCounter("zeta.last", &a);
    reg.addCounter("alpha.first", &b);
    reg.addGauge("mid.gauge", [] { return 0.25; });

    std::ostringstream once, twice;
    reg.dump(once);
    reg.dump(twice);
    EXPECT_EQ(once.str(), twice.str());
    EXPECT_EQ(once.str(),
              "alpha.first 11\n"
              "mid.gauge 0.25\n"
              "zeta.last 3\n");
}

TEST(StatRegistry, HistogramExpandsIntoSubStats)
{
    StatRegistry reg;
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v * 1000);
    reg.addHistogram("ctrl.latency.all", &h);

    std::ostringstream os;
    reg.dump(os);
    const std::string dump = os.str();
    for (const char *sub :
         {".count ", ".mean ", ".min ", ".p50 ", ".p99 ", ".p999 ",
          ".max "}) {
        EXPECT_NE(dump.find(std::string("ctrl.latency.all") + sub),
                  std::string::npos)
            << "missing sub-stat " << sub;
    }
    EXPECT_NE(dump.find("ctrl.latency.all.count 100\n"),
              std::string::npos);
    EXPECT_NE(dump.find("ctrl.latency.all.min 1000\n"),
              std::string::npos);
    EXPECT_NE(dump.find("ctrl.latency.all.max 100000\n"),
              std::string::npos);
}

TEST(StatRegistry, SnapshotOrderMatchesPathOrder)
{
    StatRegistry reg;
    std::uint64_t x = 1, y = 2, z = 3;
    reg.addCounter("b.mid", &y);
    reg.addCounter("c.last", &z);
    reg.addCounter("a.first", &x);
    reg.addGauge("a.gauge", [] { return 9.0; });

    const auto paths = reg.counterPaths();
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_EQ(paths[0], "a.first");
    EXPECT_EQ(paths[1], "b.mid");
    EXPECT_EQ(paths[2], "c.last");

    std::vector<std::uint64_t> values;
    reg.counterValues(values);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[0], 1u);
    EXPECT_EQ(values[1], 2u);
    EXPECT_EQ(values[2], 3u);

    std::vector<double> gauges;
    reg.gaugeValues(gauges);
    ASSERT_EQ(gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(gauges[0], 9.0);
}

TEST(StatRegistryDeath, DuplicatePathPanics)
{
    StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("dup.path", &v);
    EXPECT_DEATH(reg.addCounter("dup.path", &v), "duplicate");
}

TEST(StatRegistryDeath, MalformedPathPanics)
{
    StatRegistry reg;
    std::uint64_t v = 0;
    EXPECT_DEATH(reg.addCounter("", &v), "malformed");
    EXPECT_DEATH(reg.addCounter(".leading", &v), "malformed");
    EXPECT_DEATH(reg.addCounter("trailing.", &v), "malformed");
    EXPECT_DEATH(reg.addCounter("two..dots", &v), "malformed");
    EXPECT_DEATH(reg.addCounter("bad char", &v), "malformed");
}

TEST(StatRegistryDeath, UnknownPathPanics)
{
    StatRegistry reg;
    EXPECT_DEATH((void)reg.value("no.such.stat"), "unknown");
}

} // namespace
} // namespace zombie
