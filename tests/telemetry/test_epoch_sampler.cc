/**
 * @file
 * Epoch-sampler tests: boundary alignment on the absolute tick grid,
 * seed independence of that grid, and the end-to-end contract that
 * per-epoch delta sums equal the run's SimResult counters exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/ssd.hh"
#include "telemetry/epoch_sampler.hh"
#include "trace/generator.hh"

namespace zombie
{
namespace
{

constexpr Tick kInterval = ticksFromUs(20'000); // 20ms epochs

/** Run one Mail x MqDvp cell with the sampler on. */
Ssd &
runCell(Ssd &ssd, std::uint64_t requests, std::uint64_t seed)
{
    const WorkloadProfile profile =
        WorkloadProfile::preset(Workload::Mail, 1, requests, seed);
    SyntheticTraceGenerator gen(profile);
    ssd.prefill();
    TraceRecord rec;
    while (gen.next(rec))
        ssd.process(rec);
    return ssd;
}

SsdConfig
cellConfig(std::uint64_t requests, std::uint64_t seed)
{
    const WorkloadProfile profile =
        WorkloadProfile::preset(Workload::Mail, 1, requests, seed);
    SsdConfig cfg = SsdConfig::forProfile(profile, SystemKind::MqDvp);
    cfg.mq.capacity = 2'000;
    cfg.statsInterval = kInterval;
    return cfg;
}

TEST(EpochSampler, UnitBoundaryMath)
{
    StatRegistry reg;
    std::uint64_t c = 0;
    reg.addCounter("c", &c);
    EpochSampler sampler(reg, 100);

    EXPECT_EQ(sampler.nextBoundary(0), 100u);
    EXPECT_EQ(sampler.nextBoundary(1), 100u);
    EXPECT_EQ(sampler.nextBoundary(99), 100u);
    EXPECT_EQ(sampler.nextBoundary(100), 200u); // strictly after
    EXPECT_EQ(sampler.nextBoundary(250), 300u);
}

TEST(EpochSampler, DeltasAndFinishFlushPartialEpoch)
{
    StatRegistry reg;
    std::uint64_t c = 0;
    reg.addGauge("g", [&c] { return static_cast<double>(c); });
    reg.addCounter("c", &c);
    EpochSampler sampler(reg, 100);

    sampler.begin(30);
    c = 5;
    sampler.sample(100);
    c = 12;
    sampler.sample(200);
    sampler.sample(200); // duplicate boundary: no-op
    c = 14;
    sampler.finish(250); // partial trailing epoch
    sampler.finish(300); // idempotent

    const auto &rows = sampler.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].start, 30u);
    EXPECT_EQ(rows[0].end, 100u);
    EXPECT_EQ(rows[0].deltas[0], 5u);
    EXPECT_DOUBLE_EQ(rows[0].gauges[0], 5.0);
    EXPECT_EQ(rows[1].start, 100u);
    EXPECT_EQ(rows[1].end, 200u);
    EXPECT_EQ(rows[1].deltas[0], 7u);
    EXPECT_EQ(rows[2].start, 200u);
    EXPECT_EQ(rows[2].end, 250u);
    EXPECT_EQ(rows[2].deltas[0], 2u);
    EXPECT_EQ(sampler.totalOf("c"), 14u);
}

TEST(EpochSampler, BaselineExcludesPreBeginActivity)
{
    StatRegistry reg;
    std::uint64_t c = 1'000; // "prefill" activity
    reg.addCounter("c", &c);
    EpochSampler sampler(reg, 100);
    sampler.begin(0);
    sampler.begin(50); // idempotent: first begin wins
    c += 4;
    sampler.finish(70);
    ASSERT_EQ(sampler.rows().size(), 1u);
    EXPECT_EQ(sampler.totalOf("c"), 4u);
}

TEST(EpochSampler, BoundariesSitOnAbsoluteGridAcrossSeeds)
{
    for (const std::uint64_t seed : {7ull, 17ull}) {
        Ssd ssd(cellConfig(8'000, seed));
        runCell(ssd, 8'000, seed);
        (void)ssd.result();
        const EpochSampler *sampler = ssd.sampler();
        ASSERT_NE(sampler, nullptr);
        const auto &rows = sampler->rows();
        ASSERT_GE(rows.size(), 3u) << "cell too short for the test";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            // Every boundary except the final flush is a multiple of
            // the interval — the grid is absolute, not seed- or
            // arrival-relative.
            if (i + 1 < rows.size())
                EXPECT_EQ(rows[i].end % kInterval, 0u)
                    << "epoch " << i << " seed " << seed;
            if (i > 0)
                EXPECT_EQ(rows[i].start, rows[i - 1].end);
        }
    }
}

TEST(EpochSampler, EpochTotalsMatchSimResultExactly)
{
    Ssd ssd(cellConfig(12'000, 17));
    runCell(ssd, 12'000, 17);
    const SimResult r = ssd.result();
    const EpochSampler *sampler = ssd.sampler();
    ASSERT_NE(sampler, nullptr);

    // The sampler baselines at measurement start, exactly where the
    // SimResult's prefill-excluding snapshots are taken, and finish()
    // flushes the trailing partial epoch — so column sums equal the
    // end-of-run result with no tolerance.
    EXPECT_EQ(sampler->totalOf("flash.programs"), r.flashPrograms);
    EXPECT_EQ(sampler->totalOf("flash.reads"), r.flashReads);
    EXPECT_EQ(sampler->totalOf("flash.erases"), r.flashErases);
    EXPECT_EQ(sampler->totalOf("ftl.gc.invocations"),
              r.gcInvocations);
    EXPECT_EQ(sampler->totalOf("ftl.gc.relocations"),
              r.gcRelocations);
    EXPECT_EQ(sampler->totalOf("ftl.dvp_revivals"), r.dvpRevivals);
    EXPECT_EQ(sampler->totalOf("ftl.dedup_hits"), r.dedupHits);
    EXPECT_EQ(sampler->totalOf("ctrl.reads"), r.reads);
    EXPECT_EQ(sampler->totalOf("ctrl.writes"), r.writes);
    EXPECT_EQ(sampler->totalOf("ctrl.reads") +
                  sampler->totalOf("ctrl.writes"),
              r.requests);
}

TEST(EpochSampler, SeriesIsSeedDeterministic)
{
    std::ostringstream first, second;
    for (std::ostringstream *out : {&first, &second}) {
        Ssd ssd(cellConfig(6'000, 5));
        runCell(ssd, 6'000, 5);
        (void)ssd.result();
        ssd.sampler()->writeCsv(*out);
    }
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("epoch,start_ns,end_ns,"),
              std::string::npos);
}

TEST(EpochSampler, DisabledByDefault)
{
    SsdConfig cfg = cellConfig(1'000, 3);
    cfg.statsInterval = 0;
    Ssd ssd(cfg);
    runCell(ssd, 1'000, 3);
    (void)ssd.result();
    EXPECT_EQ(ssd.sampler(), nullptr);
    EXPECT_EQ(ssd.tracer(), nullptr);
}

} // namespace
} // namespace zombie
