/**
 * @file
 * Tests for the multi-tenant trace frontend: profile splitting, the
 * deterministic k-way merge, namespace/value-id disjointness, and
 * the single-tenant identity guarantee.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/generator.hh"
#include "trace/multi_tenant.hh"
#include "util/thread_pool.hh"

namespace zombie
{
namespace
{

WorkloadProfile
baseProfile(std::uint64_t requests = 2000, std::uint64_t seed = 7)
{
    return WorkloadProfile::preset(Workload::Mail, 1, requests, seed);
}

TEST(SplitProfile, PreservesTotalRequests)
{
    const auto profiles = splitProfileAcrossTenants(baseProfile(), 3);
    ASSERT_EQ(profiles.size(), 3u);
    std::uint64_t total = 0;
    for (const auto &p : profiles)
        total += p.requests;
    EXPECT_EQ(total, 2000u);
}

TEST(SplitProfile, RemainderGoesToEarlierTenants)
{
    const auto profiles =
        splitProfileAcrossTenants(baseProfile(1001), 3);
    EXPECT_EQ(profiles[0].requests, 334u);
    EXPECT_EQ(profiles[1].requests, 334u);
    EXPECT_EQ(profiles[2].requests, 333u);
}

TEST(SplitProfile, SeedsAreDecorrelatedAndTenantZeroKeepsBase)
{
    const auto profiles = splitProfileAcrossTenants(baseProfile(), 4);
    EXPECT_EQ(profiles[0].seed, baseProfile().seed);
    for (std::size_t a = 0; a < profiles.size(); ++a)
        for (std::size_t b = a + 1; b < profiles.size(); ++b)
            EXPECT_NE(profiles[a].seed, profiles[b].seed);
}

TEST(SplitProfile, RejectsBadTenantCounts)
{
    EXPECT_EXIT((void)splitProfileAcrossTenants(baseProfile(), 0),
                testing::ExitedWithCode(1), "tenant count");
    EXPECT_EXIT(
        (void)splitProfileAcrossTenants(baseProfile(), kMaxTenants + 1),
        testing::ExitedWithCode(1), "tenant count");
}

TEST(MultiTenantGenerator, SingleTenantIsIdentity)
{
    // One profile must reproduce the plain generator's stream
    // byte-for-byte: tenant 0, base 0, no value-id salt.
    const WorkloadProfile p = baseProfile();
    auto expected = SyntheticTraceGenerator(p).generateAll();
    auto merged = MultiTenantTraceGenerator({p}).generateAll();
    ASSERT_EQ(merged.size(), expected.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].arrival, expected[i].arrival);
        EXPECT_EQ(merged[i].op, expected[i].op);
        EXPECT_EQ(merged[i].lpn, expected[i].lpn);
        EXPECT_EQ(merged[i].valueId, expected[i].valueId);
        EXPECT_EQ(merged[i].fp, expected[i].fp);
        EXPECT_EQ(merged[i].tenant, 0u);
    }
}

TEST(MultiTenantGenerator, MergeIsOrderedWithLowTenantTieBreak)
{
    MultiTenantTraceGenerator gen(
        splitProfileAcrossTenants(baseProfile(3000), 3));
    const auto records = gen.generateAll();
    ASSERT_EQ(records.size(), 3000u);
    for (std::size_t i = 1; i < records.size(); ++i) {
        ASSERT_LE(records[i - 1].arrival, records[i].arrival);
        if (records[i - 1].arrival == records[i].arrival) {
            // Equal arrivals must emit in ascending tenant order.
            ASSERT_LE(records[i - 1].tenant, records[i].tenant);
        }
    }
}

TEST(MultiTenantGenerator, NamespacesAndValueIdsAreDisjoint)
{
    MultiTenantTraceGenerator gen(
        splitProfileAcrossTenants(baseProfile(3000), 3));
    const auto records = gen.generateAll();
    std::vector<std::set<std::uint64_t>> ids(3);
    for (const auto &rec : records) {
        const std::uint32_t t = rec.tenant;
        const Lpn base = gen.namespaceBase(t);
        ASSERT_GE(rec.lpn, base);
        ASSERT_LT(rec.lpn, base + gen.namespacePages(t));
        if (rec.valueId != TraceRecord::kNoValueId)
            ids[t].insert(rec.valueId);
    }
    // No value id may appear under two tenants: cross-tenant dedup
    // would otherwise couple the namespaces through content.
    for (std::size_t a = 0; a < ids.size(); ++a) {
        for (std::size_t b = a + 1; b < ids.size(); ++b) {
            for (const std::uint64_t id : ids[a])
                ASSERT_EQ(ids[b].count(id), 0u);
        }
    }
}

TEST(MultiTenantGenerator, SaltedFingerprintsMatchSaltedIds)
{
    // Content engines key on the fingerprint: it must be recomputed
    // from the salted id, not carried over from the unsalted one.
    const auto profiles =
        splitProfileAcrossTenants(baseProfile(1000), 2);
    MultiTenantTraceGenerator gen(profiles);
    const ContentHasher hasher(profiles[1].hashAlgo);
    TraceRecord rec;
    while (gen.next(rec)) {
        if (rec.tenant == 1 &&
            rec.valueId != TraceRecord::kNoValueId)
            ASSERT_EQ(rec.fp, hasher.hashValueId(rec.valueId));
    }
}

TEST(MultiTenantGenerator, StreamMatchesGenerateAll)
{
    const auto profiles =
        splitProfileAcrossTenants(baseProfile(1500), 3);
    auto all = MultiTenantTraceGenerator(profiles).generateAll();
    MultiTenantTraceGenerator streaming(profiles);
    TraceRecord rec;
    std::size_t i = 0;
    while (streaming.next(rec)) {
        ASSERT_LT(i, all.size());
        EXPECT_EQ(rec.arrival, all[i].arrival);
        EXPECT_EQ(rec.tenant, all[i].tenant);
        EXPECT_EQ(rec.lpn, all[i].lpn);
        EXPECT_EQ(rec.valueId, all[i].valueId);
        ++i;
    }
    EXPECT_EQ(i, all.size());
}

TEST(MultiTenantGenerator, DeterministicAcrossConcurrentBuilds)
{
    // Concurrent regeneration (the bench harness pattern) must yield
    // byte-identical streams: the merge is a pure function of the
    // profiles with no shared or global state.
    const auto profiles =
        splitProfileAcrossTenants(baseProfile(2000), 4);
    auto streams = parallelMap(4, 4, [&profiles](std::size_t) {
        return MultiTenantTraceGenerator(profiles).generateAll();
    });
    for (std::size_t j = 1; j < streams.size(); ++j) {
        ASSERT_EQ(streams[j].size(), streams[0].size());
        for (std::size_t i = 0; i < streams[0].size(); ++i) {
            ASSERT_EQ(streams[j][i].arrival, streams[0][i].arrival);
            ASSERT_EQ(streams[j][i].tenant, streams[0][i].tenant);
            ASSERT_EQ(streams[j][i].lpn, streams[0][i].lpn);
            ASSERT_EQ(streams[j][i].valueId, streams[0][i].valueId);
            ASSERT_EQ(streams[j][i].fp, streams[0][i].fp);
        }
    }
}

TEST(MultiTenantGenerator, TotalLpnSpaceIsSumOfNamespaces)
{
    MultiTenantTraceGenerator gen(
        splitProfileAcrossTenants(baseProfile(), 3));
    std::uint64_t sum = 0;
    for (std::uint32_t t = 0; t < gen.tenants(); ++t)
        sum += gen.namespacePages(t);
    EXPECT_EQ(gen.totalLpnSpace(), sum);
    EXPECT_EQ(gen.allNamespacePages().size(), 3u);
}

TEST(MultiTenantGeneratorDeath, RejectsEmptyProfileList)
{
    EXPECT_EXIT((void)MultiTenantTraceGenerator({}),
                testing::ExitedWithCode(1), "multi-tenant");
}

} // namespace
} // namespace zombie
