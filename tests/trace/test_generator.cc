/**
 * @file
 * Tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "trace/generator.hh"

namespace zombie
{
namespace
{

WorkloadProfile
smallProfile(Workload w = Workload::Mail, std::uint64_t requests = 20000)
{
    return WorkloadProfile::preset(w, 1, requests, 99);
}

TEST(Generator, EmitsExactlyRequestedCount)
{
    SyntheticTraceGenerator gen(smallProfile());
    EXPECT_EQ(gen.generateAll().size(), 20000u);
}

TEST(Generator, NextReturnsFalseWhenExhausted)
{
    WorkloadProfile p = smallProfile();
    p.requests = 3;
    SyntheticTraceGenerator gen(p);
    TraceRecord rec;
    EXPECT_TRUE(gen.next(rec));
    EXPECT_TRUE(gen.next(rec));
    EXPECT_TRUE(gen.next(rec));
    EXPECT_FALSE(gen.next(rec));
    EXPECT_FALSE(gen.next(rec));
}

TEST(Generator, DeterministicForSameSeed)
{
    SyntheticTraceGenerator a(smallProfile());
    SyntheticTraceGenerator b(smallProfile());
    const auto ta = a.generateAll();
    const auto tb = b.generateAll();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].arrival, tb[i].arrival);
        EXPECT_EQ(ta[i].op, tb[i].op);
        EXPECT_EQ(ta[i].lpn, tb[i].lpn);
        EXPECT_EQ(ta[i].fp, tb[i].fp);
        EXPECT_EQ(ta[i].valueId, tb[i].valueId);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadProfile p1 = smallProfile();
    WorkloadProfile p2 = smallProfile();
    p2.seed += 1;
    const auto t1 = SyntheticTraceGenerator(p1).generateAll();
    const auto t2 = SyntheticTraceGenerator(p2).generateAll();
    int diff = 0;
    for (std::size_t i = 0; i < t1.size(); ++i)
        diff += t1[i].lpn != t2[i].lpn || t1[i].op != t2[i].op;
    EXPECT_GT(diff, 1000);
}

TEST(Generator, FirstRecordIsAlwaysAWrite)
{
    for (Workload w : allWorkloads()) {
        WorkloadProfile p = smallProfile(w, 10);
        SyntheticTraceGenerator gen(p);
        TraceRecord rec;
        ASSERT_TRUE(gen.next(rec));
        EXPECT_TRUE(rec.isWrite()) << toString(w);
    }
}

TEST(Generator, ArrivalsAreStrictlyIncreasing)
{
    SyntheticTraceGenerator gen(smallProfile());
    TraceRecord rec;
    Tick prev = 0;
    while (gen.next(rec)) {
        ASSERT_GT(rec.arrival, prev);
        prev = rec.arrival;
    }
}

TEST(Generator, LpnsStayWithinTotalSpace)
{
    WorkloadProfile p = smallProfile();
    SyntheticTraceGenerator gen(p);
    TraceRecord rec;
    while (gen.next(rec)) {
        ASSERT_LT(rec.lpn, p.totalLpnSpace());
        if (rec.isWrite())
            ASSERT_GE(rec.lpn, p.coldReadPages());
    }
}

TEST(Generator, ColdReadsReturnStableUniqueContent)
{
    WorkloadProfile p = smallProfile();
    ASSERT_GT(p.coldReadPages(), 0u);
    SyntheticTraceGenerator gen(p);
    TraceRecord rec;
    std::uint64_t cold_reads = 0;
    while (gen.next(rec)) {
        if (rec.isRead() && rec.lpn < gen.footprintBase()) {
            ++cold_reads;
            ASSERT_EQ(rec.valueId,
                      SyntheticTraceGenerator::kColdValueBase + rec.lpn);
        }
    }
    EXPECT_GT(cold_reads, 0u);
}

TEST(Generator, WriteRatioMatchesProfile)
{
    for (Workload w : {Workload::Mail, Workload::Hadoop}) {
        WorkloadProfile p = smallProfile(w, 50000);
        SyntheticTraceGenerator gen(p);
        std::uint64_t writes = 0;
        TraceRecord rec;
        while (gen.next(rec))
            writes += rec.isWrite();
        EXPECT_NEAR(writes / 50000.0, p.writeRatio, 0.02)
            << toString(w);
    }
}

TEST(Generator, FingerprintDerivesFromValueId)
{
    WorkloadProfile p = smallProfile();
    SyntheticTraceGenerator gen(p);
    ContentHasher hasher(p.hashAlgo);
    TraceRecord rec;
    while (gen.next(rec))
        ASSERT_EQ(rec.fp, hasher.hashValueId(rec.valueId));
}

TEST(Generator, ReadsReturnCurrentContentOfLpn)
{
    // Replay the trace maintaining lpn -> last written value; every
    // warm read must carry exactly that value.
    SyntheticTraceGenerator gen(smallProfile());
    std::unordered_map<Lpn, std::uint64_t> shadow;
    TraceRecord rec;
    while (gen.next(rec)) {
        if (rec.isWrite()) {
            shadow[rec.lpn] = rec.valueId;
        } else if (rec.lpn >= gen.footprintBase()) {
            auto it = shadow.find(rec.lpn);
            ASSERT_NE(it, shadow.end());
            ASSERT_EQ(it->second, rec.valueId);
        }
    }
}

TEST(Generator, StatsAreInternallyConsistent)
{
    SyntheticTraceGenerator gen(smallProfile());
    const auto records = gen.generateAll();
    const GeneratorStats &s = gen.stats();
    EXPECT_EQ(s.reads + s.writes, records.size());
    EXPECT_EQ(s.newLpnWrites + s.updateWrites, s.writes);
    EXPECT_EQ(s.newLpnWrites, gen.lpnsUsed());
    EXPECT_LE(s.distinctPoolValuesWritten,
              gen.profile().popularPoolSize());
}

TEST(Generator, MailIsHighlyRedundant)
{
    // Table II: mail's unique-write-value fraction is 8%.
    SyntheticTraceGenerator gen(smallProfile(Workload::Mail, 60000));
    gen.generateAll();
    EXPECT_LT(gen.stats().uniqueWriteValueFraction(), 0.25);
}

TEST(Generator, TransIsMostlyUniqueContent)
{
    // Table II: trans's unique-write-value fraction is 77.4%.
    SyntheticTraceGenerator gen(smallProfile(Workload::Trans, 60000));
    gen.generateAll();
    EXPECT_GT(gen.stats().uniqueWriteValueFraction(), 0.6);
}

TEST(Generator, SameValueRewritesHappen)
{
    WorkloadProfile p = smallProfile();
    p.sameValueProb = 0.5;
    SyntheticTraceGenerator gen(p);
    gen.generateAll();
    EXPECT_GT(gen.stats().sameValueRewrites, 0u);
}

TEST(Generator, ContentAtTracksLastWrite)
{
    WorkloadProfile p = smallProfile();
    p.requests = 500;
    SyntheticTraceGenerator gen(p);
    TraceRecord rec;
    std::unordered_map<Lpn, std::uint64_t> shadow;
    while (gen.next(rec)) {
        if (rec.isWrite())
            shadow[rec.lpn] = rec.valueId;
    }
    for (const auto &[lpn, vid] : shadow)
        EXPECT_EQ(gen.contentAt(lpn), vid);
}

TEST(Generator, BurstsCompressInterarrivals)
{
    WorkloadProfile bursty = smallProfile();
    bursty.burstProb = 0.5;
    bursty.burstLength = 16;
    bursty.burstInterarrivalUs = 0.5;
    WorkloadProfile calm = smallProfile();
    calm.burstProb = 0.0;

    const auto tb = SyntheticTraceGenerator(bursty).generateAll();
    const auto tc = SyntheticTraceGenerator(calm).generateAll();
    EXPECT_LT(tb.back().arrival, tc.back().arrival);
}

} // namespace
} // namespace zombie
