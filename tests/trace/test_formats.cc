/**
 * @file
 * Tests for the external block-trace parsers (FIU blkio, MSR CSV,
 * generic CSV) and the generic-CSV round-trip writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/formats.hh"
#include "util/types.hh"

namespace zombie
{
namespace
{

class TraceFormatsTest : public testing::Test
{
  protected:
    std::string
    tempPath()
    {
        return testing::TempDir() + "zombie_trace_formats_test.trc";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }

    void
    writeFile(const std::string &content)
    {
        std::ofstream out(tempPath());
        out << content;
    }

    std::vector<RawIoRecord>
    drainRaw(RawTraceSource &src)
    {
        std::vector<RawIoRecord> records;
        RawIoRecord rec;
        while (src.next(rec))
            records.push_back(rec);
        return records;
    }
};

TEST_F(TraceFormatsTest, FormatNamesRoundTrip)
{
    for (const auto fmt :
         {ExternalFormat::Native, ExternalFormat::FiuBlkio,
          ExternalFormat::MsrCsv, ExternalFormat::GenericCsv})
        EXPECT_EQ(externalFormatFromString(toString(fmt)), fmt);
    EXPECT_EQ(externalFormatFromString("generic"),
              ExternalFormat::GenericCsv);
    EXPECT_EXIT((void)externalFormatFromString("tape"),
                testing::ExitedWithCode(1), "unknown trace format");
}

TEST_F(TraceFormatsTest, FiuBlkioParsesSectorsAndMd5)
{
    const std::string md5 = "0123456789abcdef0123456789abcdef";
    writeFile("1000 42 maild 16 8 W 8 0 " + md5 + "\n"
              "1020 42 maild 24 16 R 8 0\n");
    FiuBlkioSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].arrival, 0u); // first timestamp -> tick 0
    EXPECT_TRUE(records[0].write);
    EXPECT_EQ(records[0].offset, 16u * 512);
    EXPECT_EQ(records[0].length, 8u * 512);
    ASSERT_TRUE(records[0].hasFingerprint);
    EXPECT_EQ(records[0].fp, Fingerprint::fromHex(md5));
    // FILETIME: 20 ticks of 100ns each.
    EXPECT_EQ(records[1].arrival, 2000u);
    EXPECT_FALSE(records[1].write);
    EXPECT_FALSE(records[1].hasFingerprint);
}

TEST_F(TraceFormatsTest, FiuBlkioRejectsMalformedLines)
{
    struct Case
    {
        const char *line;
        const char *diagnostic;
    };
    const Case cases[] = {
        {"1000 42 maild 16 8\n", "expected 8 or 9 columns"},
        {"1000 42 maild 16 8 W 8 0 junk junk\n",
         "expected 8 or 9 columns"},
        {"1000 42 maild 16 8 Q 8 0\n", "bad op"},
        {"xyz 42 maild 16 8 W 8 0\n", "expected unsigned integer"},
        {"1000 42 maild 16 8 W 8 0 deadbeef\n",
         "md5 column is not 32 hex digits"},
    };
    for (const Case &c : cases) {
        writeFile(c.line);
        FiuBlkioSource src(tempPath());
        RawIoRecord rec;
        EXPECT_EXIT((void)src.next(rec), testing::ExitedWithCode(1),
                    c.diagnostic)
            << c.line;
    }
}

TEST_F(TraceFormatsTest, FatalNamesFileAndLine)
{
    writeFile("# comment\n"
              "1000 42 maild 16 8 W 8 0\n"
              "garbage\n");
    FiuBlkioSource src(tempPath());
    RawIoRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EXIT((void)src.next(rec), testing::ExitedWithCode(1),
                ":3 ");
}

TEST_F(TraceFormatsTest, MsrCsvParsesBytesAndSkipsHeader)
{
    writeFile("Timestamp,Hostname,DiskNumber,Type,Offset,Size,"
              "ResponseTime\n"
              "128166372003061629,srv0,0,Write,8192,4096,100\n"
              "128166372003061729,srv0,0,Read,16384,8192,80\n");
    MsrCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].write);
    EXPECT_EQ(records[0].offset, 8192u);
    EXPECT_EQ(records[0].length, 4096u);
    EXPECT_FALSE(records[0].hasFingerprint);
    EXPECT_EQ(records[1].arrival, 10000u); // 100 FILETIME ticks
    EXPECT_FALSE(records[1].write);
}

TEST_F(TraceFormatsTest, CrlfLinesParseIdenticallyToUnix)
{
    // MSR CSVs ship with Windows line endings; the reader must
    // strip the trailing \r instead of folding it into the last
    // column (which used to make ResponseTime unparseable).
    writeFile("Timestamp,Hostname,DiskNumber,Type,Offset,Size,"
              "ResponseTime\r\n"
              "128166372003061629,srv0,2,Write,8192,4096,100\r\n"
              "128166372003061729,srv0,2,Read,16384,8192,80\r\n");
    MsrCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].write);
    EXPECT_EQ(records[0].device, 2u);
    EXPECT_EQ(records[0].length, 4096u);
    EXPECT_EQ(records[1].arrival, 10000u);
}

TEST_F(TraceFormatsTest, CrlfGenericCsvAndMissingFinalNewline)
{
    writeFile("lba,size,op,ts\r\n"
              "7,4096,W,0\r\n"
              "9,8192,R,1500"); // no terminator on the last line
    GenericCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].offset, 7u * kPageSize);
    EXPECT_EQ(records[1].length, 8192u);
    EXPECT_EQ(records[1].arrival, 1500u);
}

TEST_F(TraceFormatsTest, MsrCsvCapturesDiskNumber)
{
    writeFile("128166372003061629,srv0,0,Write,8192,4096,100\n"
              "128166372003061630,srv0,5,Write,8192,4096,100\n"
              "128166372003061631,srv0,0,Read,8192,4096,100\n");
    MsrCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].device, 0u);
    EXPECT_EQ(records[1].device, 5u);
    EXPECT_EQ(records[2].device, 0u);
}

TEST_F(TraceFormatsTest, SingleDeviceFormatsReportDeviceZero)
{
    writeFile("7,4096,W,0\n");
    GenericCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].device, 0u);
}

TEST_F(TraceFormatsTest, MsrCsvRejectsWrongColumnCount)
{
    writeFile("128166372003061629,srv0,0,Write,8192\n");
    MsrCsvSource src(tempPath());
    RawIoRecord rec;
    EXPECT_EXIT((void)src.next(rec), testing::ExitedWithCode(1),
                "expected 7 columns");
}

TEST_F(TraceFormatsTest, GenericCsvParsesPagesAndSkipsHeader)
{
    writeFile("lba,size,op,ts\n"
              "# a comment\n"
              "7,4096,W,0\n"
              "9,8192,R,1500\n");
    GenericCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].offset, 7u * kPageSize);
    EXPECT_EQ(records[0].length, 4096u);
    EXPECT_TRUE(records[0].write);
    EXPECT_EQ(records[1].arrival, 1500u); // ts already in ns
    EXPECT_FALSE(records[1].write);
}

TEST_F(TraceFormatsTest, OutOfOrderTimestampsClampMonotone)
{
    writeFile("5,4096,W,1000\n"
              "6,4096,W,400\n" // reordered: earlier raw timestamp
              "7,4096,W,2000\n");
    GenericCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].arrival, 0u);
    EXPECT_EQ(records[1].arrival, 0u); // clamped, not negative
    EXPECT_EQ(records[2].arrival, 1000u);
}

TEST_F(TraceFormatsTest, GenericCsvWriterRoundTrips)
{
    {
        GenericCsvWriter writer(tempPath());
        TraceRecord rec;
        rec.arrival = 10;
        rec.op = OpType::Write;
        rec.lpn = 3;
        writer.write(rec);
        rec.arrival = 25;
        rec.op = OpType::Read;
        rec.lpn = 4;
        writer.write(rec);
        EXPECT_EQ(writer.recordsWritten(), 2u);
    }
    GenericCsvSource src(tempPath());
    const auto records = drainRaw(src);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].offset, 3u * kPageSize);
    EXPECT_EQ(records[0].length, kPageSize);
    EXPECT_TRUE(records[0].write);
    EXPECT_EQ(records[0].arrival, 0u);
    EXPECT_EQ(records[1].arrival, 15u); // normalized to first ts
    EXPECT_FALSE(records[1].write);
}

TEST(TraceFormatsDeath, MissingFileIsFatal)
{
    EXPECT_EXIT({ GenericCsvSource src("/no/such/file.csv"); },
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace zombie
