/**
 * @file
 * Tests for the external-trace adapter chain: 4KB splitting,
 * fingerprint synthesis, windowing/downsampling and streaming LBA
 * compaction (trace/adapters.hh).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/adapters.hh"
#include "util/types.hh"

namespace zombie
{
namespace
{

class TraceAdaptersTest : public testing::Test
{
  protected:
    std::string
    tempPath()
    {
        return testing::TempDir() + "zombie_trace_adapters_test.csv";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }

    void
    writeCsv(const std::string &content)
    {
        std::ofstream out(tempPath());
        out << content;
    }

    ExternalTraceConfig
    csvConfig()
    {
        ExternalTraceConfig cfg;
        cfg.path = tempPath();
        cfg.format = ExternalFormat::GenericCsv;
        return cfg;
    }
};

TEST(FingerprintSynthesis, DeterministicAndInjective)
{
    // Same (LBA, version) always yields the same fingerprint: the
    // synthesis is seedless and carries no hidden state, so replays
    // agree across runs, processes and --jobs settings.
    EXPECT_EQ(synthesizeFingerprint(7, 3), synthesizeFingerprint(7, 3));
    EXPECT_NE(synthesizeFingerprint(7, 3), synthesizeFingerprint(7, 4));
    EXPECT_NE(synthesizeFingerprint(7, 3), synthesizeFingerprint(8, 3));
    // The (version << 40) | lpn packing must not alias across the
    // field boundary: the largest LPN and the smallest non-zero
    // version sit in adjacent id bits.
    EXPECT_NE(synthesizeFingerprint((1ULL << 40) - 1, 0),
              synthesizeFingerprint(0, 1));
}

TEST(FingerprintSynthesis, PageDerivationKeepsPageZeroVerbatim)
{
    const Fingerprint native = Fingerprint::fromValueId(99);
    EXPECT_EQ(pageFingerprint(native, 0), native);
    EXPECT_NE(pageFingerprint(native, 1), native);
    EXPECT_NE(pageFingerprint(native, 1), pageFingerprint(native, 2));
    EXPECT_EQ(pageFingerprint(native, 1), pageFingerprint(native, 1));
}

TEST_F(TraceAdaptersTest, SplitsExtentsIntoAlignedPages)
{
    // 8KB at page 3 -> two records; 1 byte past a page boundary
    // still touches two pages.
    writeCsv("3,8192,W,0\n");
    auto src = makeExternalSourceFactory(csvConfig())();
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.lpn, 3u);
    EXPECT_TRUE(rec.isWrite());
    EXPECT_EQ(rec.valueId, TraceRecord::kNoValueId);
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.lpn, 4u);
    EXPECT_FALSE(src->next(rec));
}

TEST_F(TraceAdaptersTest, SplitPagesShareArrivalDistinctContent)
{
    writeCsv("10,12288,W,500\n");
    auto src = makeExternalSourceFactory(csvConfig())();
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (src->next(rec))
        records.push_back(rec);
    ASSERT_EQ(records.size(), 3u);
    for (const auto &r : records)
        EXPECT_EQ(r.arrival, records[0].arrival);
    EXPECT_NE(records[0].fp, records[1].fp);
    EXPECT_NE(records[1].fp, records[2].fp);
}

TEST_F(TraceAdaptersTest, WritesBumpVersionsReadsObserveThem)
{
    writeCsv("5,4096,R,0\n"  // read before any write: version 0
             "5,4096,W,1\n"  // version 1
             "5,4096,R,2\n"  // sees version 1
             "5,4096,W,3\n"  // version 2
             "5,4096,R,4\n");
    auto src = makeExternalSourceFactory(csvConfig())();
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (src->next(rec))
        records.push_back(rec);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[0].fp, synthesizeFingerprint(5, 0));
    EXPECT_EQ(records[1].fp, synthesizeFingerprint(5, 1));
    EXPECT_EQ(records[2].fp, records[1].fp);
    EXPECT_EQ(records[3].fp, synthesizeFingerprint(5, 2));
    EXPECT_NE(records[3].fp, records[1].fp);
    EXPECT_EQ(records[4].fp, records[3].fp);
}

TEST_F(TraceAdaptersTest, VersionPeriodMakesContentRecur)
{
    // Period 2: versions cycle 1, 0, 1, ... so the third write of a
    // page carries the first write's exact content — the overwritten
    // value comes back, which is what gives the DVP zombies to
    // revive on hashless traces.
    writeCsv("5,4096,W,0\n"
             "5,4096,W,1\n"
             "5,4096,W,2\n"
             "5,4096,W,3\n");
    ExternalTraceConfig cfg = csvConfig();
    cfg.versionPeriod = 2;
    auto src = makeExternalSourceFactory(cfg)();
    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (src->next(rec))
        records.push_back(rec);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_NE(records[0].fp, records[1].fp);
    EXPECT_EQ(records[2].fp, records[0].fp);
    EXPECT_EQ(records[3].fp, records[1].fp);
}

TEST_F(TraceAdaptersTest, WindowSkipsAndLimits)
{
    writeCsv("0,4096,W,0\n1,4096,W,1\n2,4096,W,2\n"
             "3,4096,W,3\n4,4096,W,4\n");
    ExternalTraceConfig cfg = csvConfig();
    cfg.skip = 1;
    cfg.limit = 2;
    auto src = makeExternalSourceFactory(cfg)();
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.lpn, 1u);
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.lpn, 2u);
    EXPECT_FALSE(src->next(rec));
}

TEST_F(TraceAdaptersTest, StrideDownsamples)
{
    writeCsv("0,4096,W,0\n1,4096,W,1\n2,4096,W,2\n"
             "3,4096,W,3\n4,4096,W,4\n");
    ExternalTraceConfig cfg = csvConfig();
    cfg.stride = 2;
    auto src = makeExternalSourceFactory(cfg)();
    std::vector<Lpn> lpns;
    TraceRecord rec;
    while (src->next(rec))
        lpns.push_back(rec.lpn);
    EXPECT_EQ(lpns, (std::vector<Lpn>{0, 2, 4}));
}

TEST_F(TraceAdaptersTest, CompactionRemapsFirstAppearanceOrder)
{
    writeCsv("900,4096,W,0\n"
             "100,4096,W,1\n"
             "900,4096,R,2\n"
             "500,4096,W,3\n");
    const ScannedTrace scan = scanExternalTrace(csvConfig());
    EXPECT_EQ(scan.records, 4u);
    EXPECT_EQ(scan.footprintPages, 3u);
    auto src = scan.factory();
    std::vector<Lpn> lpns;
    TraceRecord rec;
    while (src->next(rec))
        lpns.push_back(rec.lpn);
    EXPECT_EQ(lpns, (std::vector<Lpn>{0, 1, 0, 2}));
}

TEST_F(TraceAdaptersTest, NoCompactKeepsRawFootprint)
{
    writeCsv("900,4096,W,0\n100,4096,W,1\n");
    ExternalTraceConfig cfg = csvConfig();
    cfg.compact = false;
    const ScannedTrace scan = scanExternalTrace(cfg);
    EXPECT_EQ(scan.footprintPages, 901u);
    auto src = scan.factory();
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec));
    EXPECT_EQ(rec.lpn, 900u);
}

TEST_F(TraceAdaptersTest, ScanSummaryMatchesStream)
{
    writeCsv("1,4096,W,0\n1,4096,R,10\n2,8192,W,20\n");
    const ScannedTrace scan = scanExternalTrace(csvConfig());
    // The 8KB write splits: 4 records total, 3 writes.
    EXPECT_EQ(scan.records, 4u);
    EXPECT_EQ(scan.summary.total(), 4u);
    EXPECT_EQ(scan.summary.writes, 3u);
    EXPECT_EQ(scan.summary.reads, 1u);
    EXPECT_EQ(scan.summary.distinctLpns, 3u);
    EXPECT_EQ(scan.summary.lastArrival, 20u);
}

TEST_F(TraceAdaptersTest, SummaryOffStillCountsAndSizes)
{
    writeCsv("1,4096,W,0\n1,4096,R,10\n2,8192,W,20\n");
    ExternalTraceConfig cfg = csvConfig();
    cfg.summarize = false;
    const ScannedTrace scan = scanExternalTrace(cfg);
    EXPECT_EQ(scan.records, 4u);
    EXPECT_EQ(scan.summary.writes, 3u);
    EXPECT_EQ(scan.summary.reads, 1u);
    EXPECT_EQ(scan.summary.distinctLpns, 3u);
    EXPECT_EQ(scan.summary.lastArrival, 20u);
    EXPECT_EQ(scan.summary.distinctWriteValues, 0u); // skipped
}

TEST_F(TraceAdaptersTest, FactoryRebuildsIdenticalStreams)
{
    writeCsv("900,8192,W,0\n100,4096,R,1\n900,4096,W,2\n");
    const ScannedTrace scan = scanExternalTrace(csvConfig());
    auto a = scan.factory();
    auto b = scan.factory();
    const auto ra = drainSource(*a);
    const auto rb = drainSource(*b);
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_EQ(ra.size(), scan.records);
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].arrival, rb[i].arrival);
        EXPECT_EQ(ra[i].op, rb[i].op);
        EXPECT_EQ(ra[i].lpn, rb[i].lpn);
        EXPECT_EQ(ra[i].fp, rb[i].fp);
    }
}

class DeviceTenantsTest : public TraceAdaptersTest
{
  protected:
    ExternalTraceConfig
    msrConfig()
    {
        ExternalTraceConfig cfg;
        cfg.path = tempPath();
        cfg.format = ExternalFormat::MsrCsv;
        cfg.deviceTenants = true;
        return cfg;
    }

    /** "ts,host,disk,type,offset,size,rt" rows for three disks. */
    void
    writeThreeDiskMsr()
    {
        std::string text;
        for (int i = 0; i < 60; ++i) {
            const int disk = (i % 3 == 0) ? 4 : (i % 3); // 4,1,2,...
            text += std::to_string(128166372003061629ULL + i * 100) +
                    ",srv0," + std::to_string(disk) +
                    (i % 4 == 1 ? ",Read," : ",Write,") +
                    std::to_string(((i * 13) % 20) * 4096) +
                    ",4096,100\n";
        }
        writeCsv(text);
    }
};

TEST_F(DeviceTenantsTest, DevicesMapToDisjointNamespaces)
{
    writeThreeDiskMsr();
    const ScannedTrace scan = scanExternalTrace(msrConfig());
    ASSERT_EQ(scan.tenantPages.size(), 3u);

    // Namespace bases are the prefix sums of tenantPages; every
    // record of tenant t must fall inside [base[t], base[t] +
    // tenantPages[t]) and nowhere else — per-tenant record
    // disjointness down to the LPN ranges.
    std::vector<Lpn> base(scan.tenantPages.size(), 0);
    for (std::size_t t = 1; t < base.size(); ++t)
        base[t] = base[t - 1] + scan.tenantPages[t - 1];

    auto src = scan.factory();
    const auto records = drainSource(*src);
    ASSERT_EQ(records.size(), scan.records);
    std::vector<std::uint64_t> seen(scan.tenantPages.size(), 0);
    for (const auto &rec : records) {
        ASSERT_LT(rec.tenant, scan.tenantPages.size());
        EXPECT_GE(rec.lpn, base[rec.tenant]);
        EXPECT_LT(rec.lpn,
                  base[rec.tenant] + scan.tenantPages[rec.tenant]);
        ++seen[rec.tenant];
    }
    for (const std::uint64_t count : seen)
        EXPECT_GT(count, 0u); // all three devices produced records
    EXPECT_EQ(scan.footprintPages,
              base.back() + scan.tenantPages.back());
}

TEST_F(DeviceTenantsTest, TenantsGetFirstAppearanceIds)
{
    // Disk numbers 4, 1, 2 appear in that order; dense tenant ids
    // follow appearance, not the numeric disk id.
    writeThreeDiskMsr();
    const ScannedTrace scan = scanExternalTrace(msrConfig());
    auto src = scan.factory();
    TraceRecord rec;
    ASSERT_TRUE(src->next(rec)); // disk 4
    EXPECT_EQ(rec.tenant, 0u);
    ASSERT_TRUE(src->next(rec)); // disk 1
    EXPECT_EQ(rec.tenant, 1u);
    ASSERT_TRUE(src->next(rec)); // disk 2
    EXPECT_EQ(rec.tenant, 2u);
}

TEST_F(DeviceTenantsTest, PerTenantContentStaysDisjoint)
{
    // Two disks writing the same offsets with the same versions
    // must synthesize different content — tenant-salted ids.
    writeCsv("128166372003061629,srv0,0,Write,4096,4096,100\n"
             "128166372003061630,srv0,1,Write,4096,4096,100\n");
    const ScannedTrace scan = scanExternalTrace(msrConfig());
    auto src = scan.factory();
    TraceRecord a, b;
    ASSERT_TRUE(src->next(a));
    ASSERT_TRUE(src->next(b));
    EXPECT_NE(a.fp, b.fp);
    EXPECT_NE(a.lpn, b.lpn);
}

TEST_F(DeviceTenantsTest, SingleDeviceKeepsHistoricalStream)
{
    // One disk: routing on must be a no-op (tenant 0, no
    // tenantPages, identical records to routing off).
    writeCsv("128166372003061629,srv0,3,Write,8192,8192,100\n"
             "128166372003061729,srv0,3,Read,8192,4096,80\n");
    ExternalTraceConfig off = msrConfig();
    off.deviceTenants = false;
    const ScannedTrace with = scanExternalTrace(msrConfig());
    const ScannedTrace without = scanExternalTrace(off);
    EXPECT_TRUE(with.tenantPages.empty());
    auto sa = with.factory();
    auto sb = without.factory();
    const auto ra = drainSource(*sa);
    const auto rb = drainSource(*sb);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].lpn, rb[i].lpn);
        EXPECT_EQ(ra[i].fp, rb[i].fp);
        EXPECT_EQ(ra[i].tenant, rb[i].tenant);
    }
}

TEST_F(DeviceTenantsTest, RoutingWithoutCompactionIsFatal)
{
    writeCsv("128166372003061629,srv0,0,Write,8192,4096,100\n");
    ExternalTraceConfig cfg = msrConfig();
    cfg.compact = false;
    EXPECT_EXIT((void)scanExternalTrace(cfg),
                testing::ExitedWithCode(1), "compaction");
}

} // namespace
} // namespace zombie
