/**
 * @file
 * Tests for workload profiles and Table II presets.
 */

#include <gtest/gtest.h>

#include "trace/profile.hh"

namespace zombie
{
namespace
{

TEST(Workload, NameRoundTrip)
{
    for (Workload w : allWorkloads())
        EXPECT_EQ(workloadFromString(toString(w)), w);
}

TEST(WorkloadDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)workloadFromString("floppy"),
                testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workload, AllWorkloadsHasSixEntries)
{
    EXPECT_EQ(allWorkloads().size(), 6u);
}

TEST(TableIi, PaperValuesAreEncoded)
{
    // Spot-check the rows quoted verbatim from the paper.
    EXPECT_DOUBLE_EQ(tableIi(Workload::Mail).writeRatio, 0.77);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Mail).uniqueWriteValue, 0.08);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Mail).uniqueReadValue, 0.80);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Home).writeRatio, 0.96);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Hadoop).writeRatio, 0.30);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Trans).uniqueWriteValue, 0.774);
    EXPECT_DOUBLE_EQ(tableIi(Workload::Desktop).uniqueReadValue, 0.497);
}

TEST(Profile, PresetsValidateAndCarryWriteRatio)
{
    for (Workload w : allWorkloads()) {
        const WorkloadProfile p = WorkloadProfile::preset(w, 1, 1000, 7);
        EXPECT_DOUBLE_EQ(p.writeRatio, tableIi(w).writeRatio);
        EXPECT_EQ(p.requests, 1000u);
    }
}

TEST(Profile, DayVariantsDifferInSeedAndDrift)
{
    const WorkloadProfile d1 =
        WorkloadProfile::preset(Workload::Mail, 1, 1000, 7);
    const WorkloadProfile d2 =
        WorkloadProfile::preset(Workload::Mail, 2, 1000, 7);
    EXPECT_NE(d1.seed, d2.seed);
    EXPECT_NE(d1.newValueProb, d2.newValueProb);
    EXPECT_EQ(d1.name, "mail1");
    EXPECT_EQ(d2.name, "mail2");
}

TEST(Profile, DerivedSizesScaleWithRequests)
{
    const WorkloadProfile small =
        WorkloadProfile::preset(Workload::Web, 1, 10'000, 7);
    const WorkloadProfile big =
        WorkloadProfile::preset(Workload::Web, 1, 1'000'000, 7);
    EXPECT_LT(small.footprintPages(), big.footprintPages());
    EXPECT_LT(small.popularPoolSize(), big.popularPoolSize());
    EXPECT_NEAR(static_cast<double>(big.footprintPages()) /
                    static_cast<double>(small.footprintPages()),
                100.0, 1.0);
}

TEST(Profile, ExpectedWritesMatchesRatio)
{
    const WorkloadProfile p =
        WorkloadProfile::preset(Workload::Home, 1, 100'000, 7);
    EXPECT_NEAR(static_cast<double>(p.expectedWrites()), 96'000.0, 1.0);
}

TEST(Profile, MinimumSizesEnforcedForTinyTraces)
{
    const WorkloadProfile p =
        WorkloadProfile::preset(Workload::Desktop, 1, 10, 7);
    EXPECT_GE(p.footprintPages(), 64u);
    EXPECT_GE(p.popularPoolSize(), 16u);
}

TEST(ProfileDeath, ValidateRejectsBadParameters)
{
    WorkloadProfile p = WorkloadProfile::preset(Workload::Web, 1, 100, 7);
    p.writeRatio = 1.5;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "writeRatio");

    p = WorkloadProfile::preset(Workload::Web, 1, 100, 7);
    p.requests = 0;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "requests");

    p = WorkloadProfile::preset(Workload::Web, 1, 100, 7);
    p.meanInterarrivalUs = 0.0;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1), "interarrival");

    p = WorkloadProfile::preset(Workload::Web, 1, 100, 7);
    p.footprintFrac = 0.0;
    EXPECT_EXIT(p.validate(), testing::ExitedWithCode(1),
                "footprintFrac");
}

TEST(ProfileDeath, DayMustBePositive)
{
    EXPECT_DEATH((void)WorkloadProfile::preset(Workload::Web, 0, 100, 7),
                 "1-based");
}

TEST(FiuDayTraces, NineLabeledTraces)
{
    const auto traces = fiuDayTraces(5000, 3);
    ASSERT_EQ(traces.size(), 9u);
    EXPECT_EQ(traces[0].label, "m1");
    EXPECT_EQ(traces[2].label, "m3");
    EXPECT_EQ(traces[3].label, "h1");
    EXPECT_EQ(traces[8].label, "w3");
    for (const auto &t : traces)
        EXPECT_EQ(t.profile.requests, 5000u);
}

TEST(FiuDayTraces, SeedsAreDistinct)
{
    const auto traces = fiuDayTraces(100, 42);
    for (std::size_t i = 0; i < traces.size(); ++i) {
        for (std::size_t j = i + 1; j < traces.size(); ++j) {
            if (traces[i].label[0] == traces[j].label[0])
                EXPECT_NE(traces[i].profile.seed, traces[j].profile.seed);
        }
    }
}

} // namespace
} // namespace zombie
