/**
 * @file
 * Calibration test: the synthetic generator must reproduce the
 * paper's Table II workload characteristics (write ratio and the
 * unique-value fractions for reads and writes) within tolerance.
 *
 * The dead-value-pool results depend directly on these statistics,
 * so this is the contract between the trace substitution and every
 * downstream experiment (see DESIGN.md section 2).
 */

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/summary.hh"

namespace zombie
{
namespace
{

class TableIiFidelity : public testing::TestWithParam<Workload>
{
};

TEST_P(TableIiFidelity, MeasuredColumnsMatchPaper)
{
    const Workload w = GetParam();
    const WorkloadProfile profile =
        WorkloadProfile::preset(w, 1, 120'000, 42);
    SyntheticTraceGenerator gen(profile);

    TraceSummarizer summarizer;
    TraceRecord rec;
    while (gen.next(rec))
        summarizer.observe(rec);
    const TraceSummary s = summarizer.finish();
    const TableIiRow paper = tableIi(w);

    EXPECT_NEAR(s.writeRatio(), paper.writeRatio, 0.02)
        << "write ratio for " << toString(w);
    EXPECT_NEAR(s.uniqueWriteValueFraction(), paper.uniqueWriteValue,
                0.10)
        << "unique write-value fraction for " << toString(w);
    EXPECT_NEAR(s.uniqueReadValueFraction(), paper.uniqueReadValue,
                0.15)
        << "unique read-value fraction for " << toString(w);
}

TEST_P(TableIiFidelity, GeneratorCountersAgreeWithSummarizer)
{
    // The generator's internal distinct-value accounting and the
    // fingerprint-keyed summarizer are independent implementations;
    // they must agree.
    const Workload w = GetParam();
    const WorkloadProfile profile =
        WorkloadProfile::preset(w, 1, 30'000, 17);
    SyntheticTraceGenerator gen(profile);
    TraceSummarizer summarizer;
    TraceRecord rec;
    while (gen.next(rec))
        summarizer.observe(rec);
    const TraceSummary s = summarizer.finish();

    EXPECT_EQ(s.writes, gen.stats().writes);
    EXPECT_EQ(s.reads, gen.stats().reads);
    EXPECT_EQ(s.distinctWriteValues,
              gen.stats().freshValueWrites +
                  gen.stats().distinctPoolValuesWritten);
    EXPECT_EQ(s.distinctReadValues, gen.stats().distinctValuesRead);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, TableIiFidelity,
                         testing::ValuesIn(allWorkloads()),
                         [](const auto &info) {
                             return toString(info.param);
                         });

} // namespace
} // namespace zombie
