/**
 * @file
 * Tests for trace serialization (text and binary formats).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/generator.hh"
#include "trace/io.hh"

namespace zombie
{
namespace
{

class TraceIoTest : public testing::Test
{
  protected:
    std::string
    tempPath()
    {
        return testing::TempDir() + "zombie_trace_io_test.trc";
    }

    void TearDown() override { std::remove(tempPath().c_str()); }

    std::vector<TraceRecord>
    sampleTrace(std::uint64_t n = 500)
    {
        WorkloadProfile p =
            WorkloadProfile::preset(Workload::Web, 1, n, 5);
        return SyntheticTraceGenerator(p).generateAll();
    }

    static void
    expectEqualTraces(const std::vector<TraceRecord> &a,
                      const std::vector<TraceRecord> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].arrival, b[i].arrival);
            EXPECT_EQ(a[i].op, b[i].op);
            EXPECT_EQ(a[i].lpn, b[i].lpn);
            EXPECT_EQ(a[i].fp, b[i].fp);
            EXPECT_EQ(a[i].valueId, b[i].valueId);
        }
    }
};

TEST_F(TraceIoTest, TextRoundTrip)
{
    const auto trace = sampleTrace();
    writeTraceFile(tempPath(), TraceFormat::Text, trace);
    TraceReader reader(tempPath());
    EXPECT_EQ(reader.format(), TraceFormat::Text);
    expectEqualTraces(trace, reader.readAll());
}

TEST_F(TraceIoTest, BinaryRoundTrip)
{
    const auto trace = sampleTrace();
    writeTraceFile(tempPath(), TraceFormat::Binary, trace);
    TraceReader reader(tempPath());
    EXPECT_EQ(reader.format(), TraceFormat::Binary);
    expectEqualTraces(trace, reader.readAll());
}

TEST_F(TraceIoTest, BinaryIsSmallerThanText)
{
    const auto trace = sampleTrace(2000);
    const std::string text_path = tempPath() + ".txt";
    writeTraceFile(text_path, TraceFormat::Text, trace);
    writeTraceFile(tempPath(), TraceFormat::Binary, trace);
    std::ifstream t(text_path, std::ios::ate | std::ios::binary);
    std::ifstream b(tempPath(), std::ios::ate | std::ios::binary);
    EXPECT_LT(b.tellg(), t.tellg());
    std::remove(text_path.c_str());
}

TEST_F(TraceIoTest, TextSkipsCommentsAndBlankLines)
{
    {
        std::ofstream out(tempPath());
        out << "# header comment\n\n";
        out << "100 W 5 " << Fingerprint::fromValueId(1).hex()
            << " 1\n";
        out << "# trailing comment\n";
        out << "200 R 5 " << Fingerprint::fromValueId(1).hex()
            << " -\n";
    }
    TraceReader reader(tempPath());
    const auto records = reader.readAll();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].isWrite());
    EXPECT_EQ(records[0].valueId, 1u);
    EXPECT_TRUE(records[1].isRead());
    EXPECT_EQ(records[1].valueId, TraceRecord::kNoValueId);
}

TEST_F(TraceIoTest, TextAcceptsLowercaseOps)
{
    {
        std::ofstream out(tempPath());
        out << "1 w 0 " << Fingerprint::fromValueId(9).hex() << " 9\n";
        out << "2 r 0 " << Fingerprint::fromValueId(9).hex() << " 9\n";
    }
    const auto records = TraceReader(tempPath()).readAll();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].isWrite());
    EXPECT_TRUE(records[1].isRead());
}

TEST_F(TraceIoTest, WriterCountsRecords)
{
    TraceWriter writer(tempPath(), TraceFormat::Binary);
    TraceRecord rec;
    rec.fp = Fingerprint::fromValueId(1);
    writer.write(rec);
    writer.write(rec);
    EXPECT_EQ(writer.recordsWritten(), 2u);
}

TEST_F(TraceIoTest, TenantRoundTripsInBothFormats)
{
    auto trace = sampleTrace(100);
    for (std::size_t i = 0; i < trace.size(); ++i)
        trace[i].tenant = static_cast<std::uint16_t>(i % 3);
    for (const TraceFormat fmt :
         {TraceFormat::Text, TraceFormat::Binary}) {
        writeTraceFile(tempPath(), fmt, trace);
        const auto back = TraceReader(tempPath()).readAll();
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            EXPECT_EQ(back[i].tenant, trace[i].tenant);
    }
}

TEST_F(TraceIoTest, TextWithoutTenantColumnReadsTenantZero)
{
    // Pre-multi-tenant trace files have no trailing tenant column;
    // they must keep parsing as tenant 0.
    {
        std::ofstream out(tempPath());
        out << "100 W 5 " << Fingerprint::fromValueId(1).hex()
            << " 1\n";
        out << "200 W 6 " << Fingerprint::fromValueId(2).hex()
            << " 2 3\n";
    }
    const auto records = TraceReader(tempPath()).readAll();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].tenant, 0u);
    EXPECT_EQ(records[1].tenant, 3u);
}

TEST_F(TraceIoTest, MalformedTextLineIsFatal)
{
    {
        std::ofstream out(tempPath());
        out << "not a trace line\n";
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec), testing::ExitedWithCode(1),
                "malformed");
}

TEST_F(TraceIoTest, BadOpCharacterIsFatal)
{
    {
        std::ofstream out(tempPath());
        out << "1 X 0 " << Fingerprint::fromValueId(1).hex() << " 1\n";
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec), testing::ExitedWithCode(1),
                "bad op");
}

TEST_F(TraceIoTest, BadValueIdIsFatalNotAnException)
{
    // std::stoull would throw here; the reader must diagnose the
    // file and line instead.
    {
        std::ofstream out(tempPath());
        out << "1 W 0 " << Fingerprint::fromValueId(1).hex()
            << " banana\n";
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec), testing::ExitedWithCode(1),
                "bad value id 'banana' at line 1");
}

TEST_F(TraceIoTest, ValueIdWithTrailingGarbageIsFatal)
{
    {
        std::ofstream out(tempPath());
        out << "1 W 0 " << Fingerprint::fromValueId(1).hex()
            << " 12x\n";
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec), testing::ExitedWithCode(1),
                "bad value id");
}

TEST_F(TraceIoTest, ShortFingerprintIsFatalWithLineNumber)
{
    {
        std::ofstream out(tempPath());
        out << "1 W 0 abc123 7\n";
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT((void)reader.next(rec), testing::ExitedWithCode(1),
                "bad fingerprint 'abc123' at line 1");
}

TEST_F(TraceIoTest, TruncatedBinaryIsFatal)
{
    writeTraceFile(tempPath(), TraceFormat::Binary, sampleTrace(4));
    // Chop off the last few bytes.
    std::ifstream in(tempPath(), std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::string data(size - 5, '\0');
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    in.close();
    {
        std::ofstream out(tempPath(), std::ios::binary);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
    }
    TraceReader reader(tempPath());
    TraceRecord rec;
    EXPECT_EXIT(
        {
            while (reader.next(rec)) {
            }
        },
        testing::ExitedWithCode(1), "truncated.*record 4");
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT({ TraceReader reader("/no/such/file.trc"); },
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace zombie
