/**
 * @file
 * Tests for the trace summarizer on hand-crafted record streams.
 */

#include <gtest/gtest.h>

#include "trace/summary.hh"

namespace zombie
{
namespace
{

TraceRecord
rec(Tick at, OpType op, Lpn lpn, std::uint64_t vid)
{
    TraceRecord r;
    r.arrival = at;
    r.op = op;
    r.lpn = lpn;
    r.valueId = vid;
    r.fp = Fingerprint::fromValueId(vid);
    return r;
}

TEST(TraceSummary, EmptyTrace)
{
    const TraceSummary s = summarizeTrace({});
    EXPECT_EQ(s.total(), 0u);
    EXPECT_DOUBLE_EQ(s.writeRatio(), 0.0);
    EXPECT_DOUBLE_EQ(s.uniqueWriteValueFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.uniqueReadValueFraction(), 0.0);
}

TEST(TraceSummary, CountsOpsAndDistincts)
{
    const TraceSummary s = summarizeTrace({
        rec(10, OpType::Write, 0, 100),
        rec(20, OpType::Write, 1, 100), // duplicate content
        rec(30, OpType::Write, 2, 200),
        rec(40, OpType::Read, 0, 100),
        rec(50, OpType::Read, 2, 200),
        rec(60, OpType::Read, 0, 100), // repeat read value
    });
    EXPECT_EQ(s.writes, 3u);
    EXPECT_EQ(s.reads, 3u);
    EXPECT_EQ(s.distinctWriteValues, 2u);
    EXPECT_EQ(s.distinctReadValues, 2u);
    EXPECT_EQ(s.distinctLpns, 3u);
    EXPECT_DOUBLE_EQ(s.writeRatio(), 0.5);
    EXPECT_NEAR(s.uniqueWriteValueFraction(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(s.uniqueReadValueFraction(), 2.0 / 3.0, 1e-12);
}

TEST(TraceSummary, TracksArrivalWindow)
{
    const TraceSummary s = summarizeTrace({
        rec(42, OpType::Write, 0, 1),
        rec(99, OpType::Read, 0, 1),
    });
    EXPECT_EQ(s.firstArrival, 42u);
    EXPECT_EQ(s.lastArrival, 99u);
}

TEST(TraceSummary, ReadAndWriteValueSetsAreIndependent)
{
    // Reading a value never makes it "written".
    const TraceSummary s = summarizeTrace({
        rec(1, OpType::Write, 0, 7),
        rec(2, OpType::Read, 0, 7),
        rec(3, OpType::Read, 0, 7),
    });
    EXPECT_EQ(s.distinctWriteValues, 1u);
    EXPECT_EQ(s.distinctReadValues, 1u);
    EXPECT_DOUBLE_EQ(s.uniqueWriteValueFraction(), 1.0);
    EXPECT_DOUBLE_EQ(s.uniqueReadValueFraction(), 0.5);
}

} // namespace
} // namespace zombie
