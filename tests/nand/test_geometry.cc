/**
 * @file
 * Tests for the geometry address codec.
 */

#include <gtest/gtest.h>

#include "nand/geometry.hh"

namespace zombie
{
namespace
{

TEST(Geometry, TableIStructure)
{
    const Geometry g = Geometry::tableI(64);
    EXPECT_EQ(g.channels(), 8u);
    EXPECT_EQ(g.chipsPerChannel(), 8u);
    EXPECT_EQ(g.diesPerChip(), 4u);
    EXPECT_EQ(g.planesPerDie(), 2u);
    EXPECT_EQ(g.blocksPerPlane(), 64u);
    EXPECT_EQ(g.pagesPerBlock(), 256u);
    EXPECT_EQ(g.totalChips(), 64u);
    EXPECT_EQ(g.totalDies(), 256u);
    EXPECT_EQ(g.totalPlanes(), 512u);
    EXPECT_EQ(g.totalBlocks(), 512u * 64);
    EXPECT_EQ(g.totalPages(), 512ull * 64 * 256);
    EXPECT_EQ(g.capacityBytes(), g.totalPages() * kPageSize);
}

TEST(Geometry, EncodeDecodeRoundTripExhaustiveSmall)
{
    const Geometry g(2, 3, 2, 2, 4, 8);
    for (Ppn ppn = 0; ppn < g.totalPages(); ++ppn) {
        const PageAddress addr = g.decode(ppn);
        EXPECT_EQ(g.encode(addr), ppn);
    }
}

TEST(Geometry, DecodeFieldsStayInBounds)
{
    const Geometry g(2, 3, 2, 2, 4, 8);
    for (Ppn ppn = 0; ppn < g.totalPages(); ++ppn) {
        const PageAddress a = g.decode(ppn);
        EXPECT_LT(a.channel, g.channels());
        EXPECT_LT(a.chip, g.chipsPerChannel());
        EXPECT_LT(a.die, g.diesPerChip());
        EXPECT_LT(a.plane, g.planesPerDie());
        EXPECT_LT(a.block, g.blocksPerPlane());
        EXPECT_LT(a.page, g.pagesPerBlock());
    }
}

TEST(Geometry, ConsecutivePpnsShareABlock)
{
    const Geometry g(2, 2, 1, 1, 4, 8);
    EXPECT_EQ(g.blockOfPpn(0), g.blockOfPpn(7));
    EXPECT_NE(g.blockOfPpn(7), g.blockOfPpn(8));
}

TEST(Geometry, BlockPlaneDieChannelConsistency)
{
    const Geometry g(2, 2, 2, 2, 4, 8);
    for (Ppn ppn = 0; ppn < g.totalPages(); ppn += 3) {
        const PageAddress a = g.decode(ppn);
        EXPECT_EQ(g.blockOfPpn(ppn), g.blockIndex(a));
        EXPECT_EQ(g.planeOfPpn(ppn), g.planeIndex(a));
        EXPECT_EQ(g.planeOfBlock(g.blockOfPpn(ppn)), g.planeOfPpn(ppn));
        EXPECT_EQ(g.channelOfPpn(ppn), a.channel);
        // Die index decomposes as channel-major.
        const std::uint64_t die = g.dieOfPpn(ppn);
        EXPECT_EQ(die / (g.chipsPerChannel() * g.diesPerChip()),
                  a.channel);
    }
}

TEST(Geometry, FirstPpnOfBlockInvertsBlockOf)
{
    const Geometry g(2, 2, 2, 2, 4, 8);
    for (std::uint64_t b = 0; b < g.totalBlocks(); ++b) {
        const Ppn first = g.firstPpnOfBlock(b);
        EXPECT_EQ(g.blockOfPpn(first), b);
        EXPECT_EQ(g.decode(first).page, 0u);
    }
}

TEST(Geometry, PagesOfOneBlockAreContiguous)
{
    const Geometry g = Geometry::tableI(16);
    const std::uint64_t block = 37;
    const Ppn first = g.firstPpnOfBlock(block);
    for (std::uint32_t i = 0; i < g.pagesPerBlock(); ++i)
        EXPECT_EQ(g.blockOfPpn(first + i), block);
}

TEST(GeometryDeath, ZeroDimensionIsFatal)
{
    EXPECT_EXIT({ Geometry g(0, 1, 1, 1, 1, 1); },
                testing::ExitedWithCode(1), "dimension");
    EXPECT_EXIT({ Geometry g(1, 1, 1, 1, 1, 0); },
                testing::ExitedWithCode(1), "dimension");
}

TEST(GeometryDeath, OutOfRangeDecodePanics)
{
    const Geometry g(1, 1, 1, 1, 1, 8);
    EXPECT_DEATH((void)g.decode(8), "out of bounds");
}

TEST(GeometryDeath, OutOfRangeEncodePanics)
{
    const Geometry g(1, 1, 1, 1, 1, 8);
    EXPECT_DEATH((void)g.encode(PageAddress{0, 0, 0, 0, 0, 8}),
                 "bounds");
}

} // namespace
} // namespace zombie
