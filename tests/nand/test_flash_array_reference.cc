/**
 * @file
 * Differential test pinning the SoA bitmap flash state (DESIGN.md
 * section 7.14) to a straightforward array-of-structs reference
 * model. 100k seeded random operations drive both implementations;
 * every page state, per-block counter, census total and scan cursor
 * must agree at every step — the refactor changed the layout, never
 * the semantics.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nand/flash_array.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

/** One struct per page / block: the obviously-correct layout. */
class ReferenceArray
{
  public:
    explicit ReferenceArray(const Geometry &geom)
        : geom_(geom), pages(geom.totalPages()),
          blocks(geom.totalBlocks())
    {
    }

    struct Page
    {
        PageState state = PageState::Free;
        std::uint8_t popularity = 0;
    };

    Ppn
    programPage(std::uint64_t block)
    {
        BlockInfo &blk = blocks[block];
        const Ppn ppn = block * geom_.pagesPerBlock() + blk.writePtr;
        pages[ppn].state = PageState::Valid;
        ++blk.writePtr;
        ++blk.validCount;
        return ppn;
    }

    void
    invalidatePage(Ppn ppn, std::uint8_t popularity)
    {
        pages[ppn].state = PageState::Invalid;
        pages[ppn].popularity = popularity;
        BlockInfo &blk = blocks[geom_.blockOfPpn(ppn)];
        --blk.validCount;
        ++blk.invalidCount;
        blk.garbagePopularity += popularity;
    }

    void
    revivePage(Ppn ppn)
    {
        BlockInfo &blk = blocks[geom_.blockOfPpn(ppn)];
        blk.garbagePopularity -= pages[ppn].popularity;
        pages[ppn].state = PageState::Valid;
        pages[ppn].popularity = 0;
        ++blk.validCount;
        --blk.invalidCount;
    }

    void
    eraseBlock(std::uint64_t block)
    {
        BlockInfo &blk = blocks[block];
        const Ppn base = block * geom_.pagesPerBlock();
        for (std::uint32_t p = 0; p < geom_.pagesPerBlock(); ++p)
            pages[base + p] = Page{};
        const std::uint32_t erases = blk.eraseCount + 1;
        blk = BlockInfo{};
        blk.eraseCount = erases;
    }

    std::uint32_t
    nextWithState(std::uint64_t block, std::uint32_t from,
                  PageState want) const
    {
        const Ppn base = block * geom_.pagesPerBlock();
        for (std::uint32_t p = from; p < geom_.pagesPerBlock(); ++p) {
            if (pages[base + p].state == want)
                return p;
        }
        return geom_.pagesPerBlock();
    }

    const Page &page(Ppn ppn) const { return pages[ppn]; }
    const BlockInfo &block(std::uint64_t b) const { return blocks[b]; }

    std::uint32_t
    maxEraseCount() const
    {
        std::uint32_t m = 0;
        for (const BlockInfo &blk : blocks)
            m = std::max(m, blk.eraseCount);
        return m;
    }

  private:
    Geometry geom_;
    std::vector<Page> pages;
    std::vector<BlockInfo> blocks;
};

/** Full-state comparison, block counters and both scan cursors. */
void
expectEquivalent(const FlashArray &soa, const ReferenceArray &ref,
                 const Geometry &geom)
{
    std::uint64_t free_pages = 0, valid_pages = 0, invalid_pages = 0;
    for (Ppn ppn = 0; ppn < geom.totalPages(); ++ppn) {
        const PageState state = ref.page(ppn).state;
        ASSERT_EQ(soa.state(ppn), state) << "ppn " << ppn;
        switch (state) {
          case PageState::Free:
            ++free_pages;
            break;
          case PageState::Valid:
            ++valid_pages;
            break;
          case PageState::Invalid:
            ++invalid_pages;
            ASSERT_EQ(soa.garbagePopularity(ppn),
                      ref.page(ppn).popularity)
                << "ppn " << ppn;
            break;
        }
    }
    ASSERT_EQ(soa.totalFreePages(), free_pages);
    ASSERT_EQ(soa.totalValidPages(), valid_pages);
    ASSERT_EQ(soa.totalInvalidPages(), invalid_pages);
    ASSERT_EQ(soa.maxEraseCount(), ref.maxEraseCount());

    for (std::uint64_t b = 0; b < geom.totalBlocks(); ++b) {
        const BlockInfo got = soa.block(b);
        const BlockInfo &want = ref.block(b);
        ASSERT_EQ(got.writePtr, want.writePtr) << "block " << b;
        ASSERT_EQ(got.validCount, want.validCount) << "block " << b;
        ASSERT_EQ(got.invalidCount, want.invalidCount)
            << "block " << b;
        ASSERT_EQ(got.eraseCount, want.eraseCount) << "block " << b;
        ASSERT_EQ(got.garbagePopularity, want.garbagePopularity)
            << "block " << b;
        // Scan cursors from every starting offset: word-boundary
        // masking bugs hide at from % 64 != 0.
        for (std::uint32_t from = 0; from <= geom.pagesPerBlock();
             from += 3) {
            ASSERT_EQ(soa.nextValidPage(b, from),
                      ref.nextWithState(b, from, PageState::Valid))
                << "block " << b << " from " << from;
            ASSERT_EQ(soa.nextInvalidPage(b, from),
                      ref.nextWithState(b, from, PageState::Invalid))
                << "block " << b << " from " << from;
        }
    }
}

TEST(FlashArrayReference, RandomOpsMatchReferenceModel)
{
    // 2 channels, small blocks of 96 pages: page indices straddle a
    // word boundary, exercising the masked first/last-word paths.
    const Geometry geom(2, 1, 1, 2, 4, 96);
    FlashArray soa(geom);
    ReferenceArray ref(geom);
    Xoshiro256 rng(20260808);

    constexpr std::uint64_t kOps = 100'000;
    for (std::uint64_t op = 0; op < kOps; ++op) {
        const std::uint64_t block =
            rng.nextBounded(geom.totalBlocks());
        switch (rng.nextBounded(4)) {
          case 0: // program the block's next page if it has room
            if (soa.blockHasRoom(block)) {
                const Ppn got = soa.programPage(block);
                ASSERT_EQ(got, ref.programPage(block));
            }
            break;
          case 1: { // invalidate a random valid page of the block
            const std::uint32_t page = ref.nextWithState(
                block,
                static_cast<std::uint32_t>(
                    rng.nextBounded(geom.pagesPerBlock())),
                PageState::Valid);
            if (page < geom.pagesPerBlock()) {
                const Ppn ppn =
                    block * geom.pagesPerBlock() + page;
                const auto pop =
                    static_cast<std::uint8_t>(rng.nextBounded(8));
                soa.invalidatePage(ppn, pop);
                ref.invalidatePage(ppn, pop);
            }
            break;
          }
          case 2: { // revive a random garbage page of the block
            const std::uint32_t page = ref.nextWithState(
                block,
                static_cast<std::uint32_t>(
                    rng.nextBounded(geom.pagesPerBlock())),
                PageState::Invalid);
            if (page < geom.pagesPerBlock()) {
                const Ppn ppn =
                    block * geom.pagesPerBlock() + page;
                soa.revivePage(ppn);
                ref.revivePage(ppn);
            }
            break;
          }
          case 3: // erase once no valid page remains
            if (ref.block(block).validCount == 0 &&
                ref.block(block).writePtr > 0) {
                soa.eraseBlock(block);
                ref.eraseBlock(block);
            }
            break;
        }
        // Full sweeps are O(array); sample them.
        if (op % 5000 == 0)
            expectEquivalent(soa, ref, geom);
    }
    expectEquivalent(soa, ref, geom);
}

TEST(FlashArrayReference, ScanCursorsOnWordBoundaryBlock)
{
    // 256 pages per block: exactly four bitmap words per block.
    const Geometry geom(1, 1, 1, 1, 2, 256);
    FlashArray soa(geom);
    ReferenceArray ref(geom);
    Xoshiro256 rng(99);

    for (std::uint32_t p = 0; p < 256; ++p) {
        soa.programPage(0);
        ref.programPage(0);
        if (rng.nextBounded(2) == 0) {
            soa.invalidatePage(p, 1);
            ref.invalidatePage(p, 1);
        }
    }
    for (std::uint32_t from = 0; from <= 256; ++from) {
        ASSERT_EQ(soa.nextValidPage(0, from),
                  ref.nextWithState(0, from, PageState::Valid))
            << "from " << from;
        ASSERT_EQ(soa.nextInvalidPage(0, from),
                  ref.nextWithState(0, from, PageState::Invalid))
            << "from " << from;
    }
}

} // namespace
} // namespace zombie
