/**
 * @file
 * Tests for the channel/die contention model.
 */

#include <gtest/gtest.h>

#include "nand/resource_model.hh"

namespace zombie
{
namespace
{

/** Two channels, two chips each, one die/plane, for addressable dies. */
Geometry
smallGeom()
{
    return Geometry(2, 2, 1, 1, 4, 8);
}

TimingModel
timing()
{
    return TimingModel{};
}

TEST(ResourceModel, ReadLatencyComposition)
{
    ResourceModel rm(smallGeom(), timing());
    const TimingModel t = timing();
    const Tick done = rm.scheduleOp(FlashOp::Read, 0, 0);
    EXPECT_EQ(done, t.commandOverhead + t.readLatency + t.pageTransfer);
}

TEST(ResourceModel, ProgramLatencyComposition)
{
    ResourceModel rm(smallGeom(), timing());
    const TimingModel t = timing();
    const Tick done = rm.scheduleOp(FlashOp::Program, 0, 1000);
    EXPECT_EQ(done, 1000 + t.commandOverhead + t.pageTransfer +
                        t.programLatency);
}

TEST(ResourceModel, EraseLatencyComposition)
{
    ResourceModel rm(smallGeom(), timing());
    const TimingModel t = timing();
    const Tick done = rm.scheduleOp(FlashOp::Erase, 0, 0);
    EXPECT_EQ(done, t.commandOverhead + t.eraseLatency);
}

TEST(ResourceModel, SameDieOperationsSerialize)
{
    ResourceModel rm(smallGeom(), timing());
    const Tick first = rm.scheduleOp(FlashOp::Program, 0, 0);
    const Tick second = rm.scheduleOp(FlashOp::Program, 1, 0);
    EXPECT_GT(second, first);
}

TEST(ResourceModel, DifferentDiesRunInParallel)
{
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    // PPN 0 is on die 0; a PPN in another chip is on another die.
    const Ppn other_die =
        g.encode(PageAddress{0, 1, 0, 0, 0, 0});
    const Tick a = rm.scheduleOp(FlashOp::Program, 0, 0);
    const Tick b = rm.scheduleOp(FlashOp::Program, other_die, 0);
    // Dies overlap; only the shared channel transfer (plus command
    // cycles) serializes.
    EXPECT_EQ(b, a + timing().pageTransfer + timing().commandOverhead);
}

TEST(ResourceModel, DifferentChannelsFullyParallel)
{
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    const Ppn other_channel = g.encode(PageAddress{1, 0, 0, 0, 0, 0});
    const Tick a = rm.scheduleOp(FlashOp::Read, 0, 0);
    const Tick b = rm.scheduleOp(FlashOp::Read, other_channel, 0);
    EXPECT_EQ(a, b);
}

TEST(ResourceModel, EraseDoesNotHoldChannel)
{
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    const Ppn sibling = g.encode(PageAddress{0, 1, 0, 0, 0, 0});
    rm.scheduleOp(FlashOp::Erase, 0, 0);
    // A read on another die of the same channel is unaffected by the
    // 3.8ms erase.
    const Tick done = rm.scheduleOp(FlashOp::Read, sibling, 0);
    EXPECT_EQ(done, timing().commandOverhead + timing().readLatency +
                        timing().pageTransfer);
}

TEST(ResourceModel, BackloggedDieDoesNotStallItsChannel)
{
    // Horizon-ratchet regression test: pile work on die 0 far into
    // the future, then check a program to die 1 (same channel) still
    // starts promptly.
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    for (int i = 0; i < 50; ++i)
        rm.scheduleOp(FlashOp::Program, 0, 0);
    ASSERT_GT(rm.dieFreeAt(0), ticksFromMs(10));

    const Ppn sibling = g.encode(PageAddress{0, 1, 0, 0, 0, 0});
    const Tick done = rm.scheduleOp(FlashOp::Program, sibling, 0);
    EXPECT_LT(done, ticksFromMs(1));
}

TEST(ResourceModel, FutureReadTransferLeavesChannelOpen)
{
    // A read whose data-out lands far in the future must not reserve
    // the (currently idle) channel for the interim.
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    for (int i = 0; i < 50; ++i)
        rm.scheduleOp(FlashOp::Read, 0, 0);
    const Ppn sibling = g.encode(PageAddress{0, 1, 0, 0, 0, 0});
    const Tick done = rm.scheduleOp(FlashOp::Read, sibling, 0);
    EXPECT_EQ(done, timing().commandOverhead + timing().readLatency +
                        timing().pageTransfer);
}

TEST(ResourceModel, EarliestLowerBoundsStart)
{
    ResourceModel rm(smallGeom(), timing());
    const Tick done = rm.scheduleOp(FlashOp::Read, 0, ticksFromUs(500));
    EXPECT_GE(done, ticksFromUs(500) + timing().readLatency);
}

TEST(ResourceModel, FreeAtAccessorsTrackScheduling)
{
    ResourceModel rm(smallGeom(), timing());
    EXPECT_EQ(rm.dieFreeAt(0), 0u);
    EXPECT_EQ(rm.channelFreeAt(0), 0u);
    EXPECT_EQ(rm.dieFreeAtIndex(0), 0u);
    const Tick done = rm.scheduleOp(FlashOp::Program, 0, 0);
    EXPECT_EQ(rm.dieFreeAt(0), done);
    EXPECT_EQ(rm.dieFreeAtIndex(0), done);
    EXPECT_GT(rm.channelFreeAt(0), 0u);
}

TEST(ResourceModel, PendingAccountingTracksBacklog)
{
    const Geometry g = smallGeom();
    ResourceModel rm(g, timing());
    EXPECT_EQ(rm.dieBacklog(0), 0u);
    EXPECT_EQ(rm.maxDieBacklog(), 0u);

    // Three back-to-back programs on die 0: each later issue finds
    // every earlier op still incomplete.
    Tick last = 0;
    for (int i = 0; i < 3; ++i)
        last = rm.scheduleOp(FlashOp::Program, 0, 0);
    EXPECT_EQ(rm.dieBacklog(0), 3u);
    EXPECT_EQ(rm.maxDieBacklog(), 3u);
    EXPECT_EQ(rm.dieBacklog(1), 0u);

    // At the final completion nothing is pending; one tick earlier
    // the last op still is.
    EXPECT_EQ(rm.pendingAt(0, last), 0u);
    EXPECT_EQ(rm.pendingAt(0, last - 1), 1u);
}

TEST(ResourceModel, PendingAccountingIsObservationOnly)
{
    // The horizon-ratchet rule: backlog bookkeeping must not move
    // any busy-until state. Two identical schedules, one interleaved
    // with accounting queries, end in identical resource states.
    const Geometry g = smallGeom();
    ResourceModel probed(g, timing());
    ResourceModel plain(g, timing());
    const Ppn sibling = g.encode(PageAddress{0, 1, 0, 0, 0, 0});
    for (int i = 0; i < 4; ++i) {
        plain.scheduleOp(FlashOp::Program, 0, 0);
        probed.scheduleOp(FlashOp::Program, 0, 0);
        (void)probed.dieBacklog(0);
        (void)probed.pendingAt(0, ticksFromUs(1));
    }
    EXPECT_EQ(probed.dieFreeAt(0), plain.dieFreeAt(0));
    EXPECT_EQ(probed.channelFreeAt(0), plain.channelFreeAt(0));
    EXPECT_EQ(probed.scheduleOp(FlashOp::Program, sibling, 0),
              plain.scheduleOp(FlashOp::Program, sibling, 0));
}

TEST(ResourceModel, BacklogWindowPrunesCompletedOps)
{
    // An op issued long after the die went idle sees an empty
    // backlog: completed work retires from the window.
    ResourceModel rm(smallGeom(), timing());
    const Tick first = rm.scheduleOp(FlashOp::Program, 0, 0);
    EXPECT_EQ(rm.dieBacklog(0), 1u);
    rm.scheduleOp(FlashOp::Program, 0, first + ticksFromMs(1));
    EXPECT_EQ(rm.dieBacklog(0), 1u);
    EXPECT_EQ(rm.maxDieBacklog(), 1u);
}

TEST(ResourceModel, UtilizationFractionsAreSane)
{
    ResourceModel rm(smallGeom(), timing());
    const Tick done = rm.scheduleOp(FlashOp::Program, 0, 0);
    const double die_util = rm.dieUtilization(done);
    const double chan_util = rm.channelUtilization(done);
    EXPECT_GT(die_util, 0.0);
    EXPECT_LE(die_util, 1.0);
    EXPECT_GT(chan_util, 0.0);
    EXPECT_LT(chan_util, die_util);
    EXPECT_DOUBLE_EQ(rm.dieUtilization(0), 0.0);
}

} // namespace
} // namespace zombie
