/**
 * @file
 * Tests for flash page/block state bookkeeping, including the zombie
 * revival transition the dead-value pool relies on.
 */

#include <gtest/gtest.h>

#include "nand/flash_array.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

Geometry
tinyGeom()
{
    // 1 channel, 1 chip, 1 die, 1 plane, 4 blocks of 8 pages.
    return Geometry(1, 1, 1, 1, 4, 8);
}

TEST(FlashArray, StartsAllFree)
{
    FlashArray flash(tinyGeom());
    EXPECT_EQ(flash.totalFreePages(), 32u);
    EXPECT_EQ(flash.totalValidPages(), 0u);
    EXPECT_EQ(flash.totalInvalidPages(), 0u);
    for (Ppn p = 0; p < 32; ++p)
        EXPECT_EQ(flash.state(p), PageState::Free);
}

TEST(FlashArray, ProgramAdvancesSequentially)
{
    FlashArray flash(tinyGeom());
    EXPECT_EQ(flash.programPage(0), 0u);
    EXPECT_EQ(flash.programPage(0), 1u);
    EXPECT_EQ(flash.programPage(1), 8u);
    EXPECT_EQ(flash.state(0), PageState::Valid);
    EXPECT_EQ(flash.state(1), PageState::Valid);
    EXPECT_EQ(flash.block(0).writePtr, 2u);
    EXPECT_EQ(flash.block(0).validCount, 2u);
    EXPECT_EQ(flash.counters().programs, 3u);
}

TEST(FlashArray, BlockRoomAccounting)
{
    FlashArray flash(tinyGeom());
    EXPECT_TRUE(flash.blockHasRoom(0));
    EXPECT_EQ(flash.freePagesInBlock(0), 8u);
    for (int i = 0; i < 8; ++i)
        flash.programPage(0);
    EXPECT_FALSE(flash.blockHasRoom(0));
    EXPECT_EQ(flash.freePagesInBlock(0), 0u);
}

TEST(FlashArray, InvalidateTracksPopularity)
{
    FlashArray flash(tinyGeom());
    const Ppn a = flash.programPage(0);
    const Ppn b = flash.programPage(0);
    flash.invalidatePage(a, 5);
    flash.invalidatePage(b, 7);
    EXPECT_EQ(flash.state(a), PageState::Invalid);
    EXPECT_EQ(flash.garbagePopularity(a), 5);
    EXPECT_EQ(flash.garbagePopularity(b), 7);
    EXPECT_EQ(flash.block(0).invalidCount, 2u);
    EXPECT_EQ(flash.block(0).garbagePopularity, 12u);
    EXPECT_EQ(flash.counters().invalidations, 2u);
}

TEST(FlashArray, ReviveRestoresValidAndPopularitySum)
{
    // The paper's core state transition: Invalid -> Valid with no
    // program operation.
    FlashArray flash(tinyGeom());
    const Ppn a = flash.programPage(0);
    flash.invalidatePage(a, 9);
    flash.revivePage(a);
    EXPECT_EQ(flash.state(a), PageState::Valid);
    EXPECT_EQ(flash.block(0).validCount, 1u);
    EXPECT_EQ(flash.block(0).invalidCount, 0u);
    EXPECT_EQ(flash.block(0).garbagePopularity, 0u);
    EXPECT_EQ(flash.counters().revivals, 1u);
    // No extra program was counted.
    EXPECT_EQ(flash.counters().programs, 1u);
}

TEST(FlashArray, EraseResetsBlock)
{
    FlashArray flash(tinyGeom());
    for (int i = 0; i < 8; ++i)
        flash.invalidatePage(flash.programPage(0), 1);
    flash.eraseBlock(0);
    EXPECT_EQ(flash.block(0).writePtr, 0u);
    EXPECT_EQ(flash.block(0).invalidCount, 0u);
    EXPECT_EQ(flash.block(0).eraseCount, 1u);
    EXPECT_EQ(flash.totalFreePages(), 32u);
    for (Ppn p = 0; p < 8; ++p)
        EXPECT_EQ(flash.state(p), PageState::Free);
    EXPECT_EQ(flash.counters().erases, 1u);
}

TEST(FlashArray, ErasePartiallyWrittenBlock)
{
    FlashArray flash(tinyGeom());
    flash.invalidatePage(flash.programPage(2), 3);
    flash.eraseBlock(2);
    EXPECT_EQ(flash.block(2).writePtr, 0u);
    EXPECT_EQ(flash.totalFreePages(), 32u);
}

TEST(FlashArray, ReadCountsButDoesNotMutate)
{
    FlashArray flash(tinyGeom());
    const Ppn a = flash.programPage(0);
    flash.readPage(a);
    flash.readPage(a);
    EXPECT_EQ(flash.counters().reads, 2u);
    EXPECT_EQ(flash.state(a), PageState::Valid);
}

TEST(FlashArray, MaxEraseCountTracksWear)
{
    FlashArray flash(tinyGeom());
    EXPECT_EQ(flash.maxEraseCount(), 0u);
    flash.eraseBlock(1);
    flash.eraseBlock(1);
    flash.eraseBlock(3);
    EXPECT_EQ(flash.maxEraseCount(), 2u);
}

TEST(FlashArray, CensusInvariantUnderRandomWorkload)
{
    // Property: free + valid + invalid == total pages, and block
    // counters agree with the page states, across random operations.
    FlashArray flash(tinyGeom());
    Xoshiro256 rng(77);
    std::vector<Ppn> valid, invalid;
    for (int step = 0; step < 2000; ++step) {
        const int op = static_cast<int>(rng.nextBounded(4));
        if (op == 0) { // program somewhere with room
            const std::uint64_t blk = rng.nextBounded(4);
            if (flash.blockHasRoom(blk))
                valid.push_back(flash.programPage(blk));
        } else if (op == 1 && !valid.empty()) { // invalidate
            const std::size_t i = rng.nextBounded(valid.size());
            flash.invalidatePage(valid[i],
                                 static_cast<std::uint8_t>(
                                     rng.nextBounded(256)));
            invalid.push_back(valid[i]);
            valid.erase(valid.begin() + static_cast<long>(i));
        } else if (op == 2 && !invalid.empty()) { // revive
            const std::size_t i = rng.nextBounded(invalid.size());
            flash.revivePage(invalid[i]);
            valid.push_back(invalid[i]);
            invalid.erase(invalid.begin() + static_cast<long>(i));
        } else if (op == 3) { // erase a block with no valid pages
            for (std::uint64_t blk = 0; blk < 4; ++blk) {
                if (flash.block(blk).validCount == 0 &&
                    flash.block(blk).writePtr > 0) {
                    flash.eraseBlock(blk);
                    std::erase_if(invalid, [&](Ppn p) {
                        return flash.geometry().blockOfPpn(p) == blk;
                    });
                    break;
                }
            }
        }
        ASSERT_EQ(flash.totalFreePages() + flash.totalValidPages() +
                      flash.totalInvalidPages(),
                  flash.geometry().totalPages());
        ASSERT_EQ(flash.totalValidPages(), valid.size());
        ASSERT_EQ(flash.totalInvalidPages(), invalid.size());
    }
}

TEST(FlashArrayDeath, ProgramFullBlockPanics)
{
    FlashArray flash(tinyGeom());
    for (int i = 0; i < 8; ++i)
        flash.programPage(0);
    EXPECT_DEATH((void)flash.programPage(0), "full block");
}

TEST(FlashArrayDeath, InvalidateNonValidPanics)
{
    FlashArray flash(tinyGeom());
    EXPECT_DEATH(flash.invalidatePage(0, 1), "non-valid");
}

TEST(FlashArrayDeath, ReviveNonGarbagePanics)
{
    FlashArray flash(tinyGeom());
    const Ppn a = flash.programPage(0);
    EXPECT_DEATH(flash.revivePage(a), "non-garbage");
}

TEST(FlashArrayDeath, EraseWithValidPagesPanics)
{
    FlashArray flash(tinyGeom());
    flash.programPage(0);
    EXPECT_DEATH(flash.eraseBlock(0), "valid pages");
}

TEST(FlashArrayDeath, ReadNonValidPanics)
{
    FlashArray flash(tinyGeom());
    EXPECT_DEATH(flash.readPage(0), "non-valid");
}

} // namespace
} // namespace zombie
