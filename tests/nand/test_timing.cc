/**
 * @file
 * Tests pinning the Table I timing constants and tick helpers.
 */

#include <gtest/gtest.h>

#include "nand/timing.hh"

namespace zombie
{
namespace
{

TEST(Ticks, ConversionHelpers)
{
    EXPECT_EQ(ticksFromUs(1), 1'000u);
    EXPECT_EQ(ticksFromUs(75), 75'000u);
    EXPECT_EQ(ticksFromMs(3.8), 3'800'000u);
    EXPECT_DOUBLE_EQ(usFromTicks(75'000), 75.0);
    EXPECT_EQ(ticksFromUs(0.2), 200u);
}

TEST(Timing, TableIDefaults)
{
    const TimingModel t;
    EXPECT_EQ(t.readLatency, ticksFromUs(75));    // Table I
    EXPECT_EQ(t.programLatency, ticksFromUs(400)); // Table I
    EXPECT_EQ(t.eraseLatency, ticksFromMs(3.8));   // Table I
    EXPECT_EQ(t.hashLatency, ticksFromUs(12));     // Table I, [35]
}

TEST(Timing, LatencyAsymmetryMatchesThePaper)
{
    // Section I: writes are ~10-20x slower than reads; erase slower
    // than both.
    const TimingModel t;
    const double ratio = static_cast<double>(t.programLatency) /
                         static_cast<double>(t.readLatency);
    EXPECT_GE(ratio, 4.0);
    EXPECT_LE(ratio, 20.0);
    EXPECT_GT(t.eraseLatency, t.programLatency);
    EXPECT_GT(t.programLatency, t.readLatency);
}

TEST(Timing, BusTransferIsMinorAgainstArrayOps)
{
    const TimingModel t;
    EXPECT_LT(t.pageTransfer, t.readLatency);
    EXPECT_LT(t.commandOverhead, t.pageTransfer);
    EXPECT_LT(t.cacheHit, t.readLatency);
}

TEST(Timing, ArrayLatencyDispatch)
{
    const TimingModel t;
    EXPECT_EQ(t.arrayLatency(FlashOp::Read), t.readLatency);
    EXPECT_EQ(t.arrayLatency(FlashOp::Program), t.programLatency);
    EXPECT_EQ(t.arrayLatency(FlashOp::Erase), t.eraseLatency);
}

} // namespace
} // namespace zombie
