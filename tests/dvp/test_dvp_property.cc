/**
 * @file
 * Property tests run against every DeadValuePool implementation via a
 * parameterized fixture, plus a randomized differential test against
 * a reference model of pool semantics.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "dvp/lru_dvp.hh"
#include "dvp/lx_dvp.hh"
#include "dvp/mq_dvp.hh"
#include "util/random.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

using PoolFactory = std::function<std::unique_ptr<DeadValuePool>()>;

struct PoolCase
{
    std::string label;
    PoolFactory make;
    bool bounded;
    bool content_keyed;
};

std::vector<PoolCase>
allPools()
{
    return {
        {"mq",
         [] {
             MqDvpConfig cfg;
             cfg.capacity = 64;
             cfg.numQueues = 4;
             return std::make_unique<MqDvp>(cfg);
         },
         true, true},
        {"lru", [] { return std::make_unique<LruDvp>(64); }, true,
         true},
        {"lx", [] { return std::make_unique<LxDvp>(64); }, true,
         false},
        {"infinite", [] { return std::make_unique<InfiniteDvp>(); },
         false, true},
    };
}

class DvpProperty : public testing::TestWithParam<PoolCase>
{
};

TEST_P(DvpProperty, SizeNeverExceedsCapacity)
{
    auto pool = GetParam().make();
    for (std::uint64_t v = 0; v < 500; ++v) {
        pool->insertGarbage(fp(v), v, v, 1);
        if (GetParam().bounded)
            ASSERT_LE(pool->size(), pool->capacity());
    }
}

TEST_P(DvpProperty, HitReturnsAPreviouslyInsertedPpn)
{
    auto pool = GetParam().make();
    std::set<Ppn> inserted;
    Xoshiro256 rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.nextBounded(40);
        const Ppn ppn = static_cast<Ppn>(i);
        pool->insertGarbage(fp(v), v, ppn, 1);
        inserted.insert(ppn);
        const std::uint64_t probe = rng.nextBounded(40);
        const auto r = pool->lookupForWrite(fp(probe), probe);
        if (r.hit) {
            ASSERT_TRUE(inserted.count(r.ppn));
            inserted.erase(r.ppn); // a PPN revives at most once
        }
    }
}

TEST_P(DvpProperty, ErasedPpnIsNeverRevived)
{
    auto pool = GetParam().make();
    pool->insertGarbage(fp(1), 1, 100, 1);
    pool->onErase(100);
    const auto r = pool->lookupForWrite(fp(1), 1);
    EXPECT_FALSE(r.hit && r.ppn == 100);
}

TEST_P(DvpProperty, StatsCountLookupsAndInsertions)
{
    auto pool = GetParam().make();
    pool->insertGarbage(fp(1), 1, 1, 1);
    pool->lookupForWrite(fp(1), 1);
    pool->lookupForWrite(fp(2), 2);
    EXPECT_EQ(pool->stats().insertions, 1u);
    EXPECT_EQ(pool->stats().lookups, 2u);
    EXPECT_LE(pool->stats().hits, pool->stats().lookups);
}

TEST_P(DvpProperty, DrainToEmpty)
{
    auto pool = GetParam().make();
    for (std::uint64_t v = 0; v < 32; ++v)
        pool->insertGarbage(fp(v), v, v, 1);
    // Lookup every value (content-keyed pools hit; LX hits because
    // lpn == value id here), then erase everything that remains.
    for (std::uint64_t v = 0; v < 32; ++v)
        pool->lookupForWrite(fp(v), v);
    for (Ppn p = 0; p < 32; ++p)
        pool->onErase(p);
    EXPECT_EQ(pool->size(), 0u);
}

TEST_P(DvpProperty, RandomizedAgainstReferenceModel)
{
    // Reference semantics: the pool tracks a subset of the dead
    // copies; a hit must be consistent with the full dead-copy
    // multimap (fingerprint -> live dead PPNs).
    auto pool = GetParam().make();
    std::map<std::uint64_t, std::set<Ppn>> dead; // value -> ppns
    std::map<Ppn, std::uint64_t> owner;
    std::map<Ppn, Lpn> lpn_of;
    Xoshiro256 rng(99);
    Ppn next_ppn = 0;

    for (int step = 0; step < 5000; ++step) {
        const int op = static_cast<int>(rng.nextBounded(3));
        const std::uint64_t v = rng.nextBounded(30);
        if (op == 0) { // a copy of v dies at a random lpn
            const Ppn ppn = next_ppn++;
            const Lpn lpn = rng.nextBounded(100);
            pool->insertGarbage(fp(v), lpn, ppn,
                                static_cast<std::uint8_t>(v));
            dead[v].insert(ppn);
            owner[ppn] = v;
            lpn_of[ppn] = lpn;
        } else if (op == 1) { // a write of v arrives
            const Lpn lpn = rng.nextBounded(100);
            const auto r = pool->lookupForWrite(fp(v), lpn);
            if (r.hit) {
                ASSERT_TRUE(owner.count(r.ppn));
                if (GetParam().content_keyed) {
                    ASSERT_EQ(owner[r.ppn], v);
                } else {
                    // LBA-keyed pools still must only revive dead
                    // pages whose content matches the write.
                    ASSERT_EQ(owner[r.ppn], v);
                    ASSERT_EQ(lpn_of[r.ppn], lpn);
                }
                dead[owner[r.ppn]].erase(r.ppn);
                owner.erase(r.ppn);
            }
        } else if (!owner.empty()) { // GC erases a random dead ppn
            auto it = owner.begin();
            std::advance(it, rng.nextBounded(owner.size()));
            pool->onErase(it->first);
            dead[it->second].erase(it->first);
            owner.erase(it);
        }
        if (GetParam().bounded)
            ASSERT_LE(pool->size(), pool->capacity());
    }
}

TEST_P(DvpProperty, InfinitePoolHitsWheneverDeadCopyExists)
{
    if (GetParam().bounded)
        GTEST_SKIP() << "completeness only holds for the ideal pool";
    auto pool = GetParam().make();
    Xoshiro256 rng(5);
    std::map<std::uint64_t, int> dead;
    Ppn next_ppn = 0;
    for (int step = 0; step < 3000; ++step) {
        const std::uint64_t v = rng.nextBounded(20);
        if (rng.nextBool(0.5)) {
            pool->insertGarbage(fp(v), v, next_ppn++, 1);
            ++dead[v];
        } else {
            const bool expect_hit = dead[v] > 0;
            const auto r = pool->lookupForWrite(fp(v), v);
            ASSERT_EQ(r.hit, expect_hit);
            if (r.hit)
                --dead[v];
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPools, DvpProperty,
                         testing::ValuesIn(allPools()),
                         [](const auto &info) {
                             return info.param.label;
                         });

} // namespace
} // namespace zombie
