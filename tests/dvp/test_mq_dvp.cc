/**
 * @file
 * Tests for the MQ dead-value pool — the paper's core mechanism
 * (sections III-IV, Figure 7 semantics).
 */

#include <gtest/gtest.h>

#include "dvp/mq_dvp.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

MqDvpConfig
smallConfig(std::uint64_t capacity = 8, std::uint32_t queues = 4)
{
    MqDvpConfig cfg;
    cfg.capacity = capacity;
    cfg.numQueues = queues;
    cfg.defaultExpiryInterval = 1000;
    return cfg;
}

TEST(MqDvp, MissOnEmptyPool)
{
    MqDvp pool(smallConfig());
    const auto r = pool.lookupForWrite(fp(1), 0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(pool.stats().lookups, 1u);
    EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(MqDvp, InsertThenHitRevivesThatPpn)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(1), 10, 555, 1);
    const auto r = pool.lookupForWrite(fp(1), 11);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.ppn, 555u);
    EXPECT_EQ(r.popularity, 2); // 1 at death + 1 for this write
    // Single-PPN entry is removed on hit (section IV-C, Writes).
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 11).hit);
}

TEST(MqDvp, MultipleDeadCopiesServeMultipleWrites)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(7), 0, 100, 1);
    pool.insertGarbage(fp(7), 1, 101, 1);
    pool.insertGarbage(fp(7), 2, 102, 1);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.ppnCount(fp(7)), 3u);
    EXPECT_EQ(pool.stats().mergedInsertions, 2u);

    // Most recently deceased copy is revived first.
    EXPECT_EQ(pool.lookupForWrite(fp(7), 5).ppn, 102u);
    EXPECT_EQ(pool.lookupForWrite(fp(7), 5).ppn, 101u);
    EXPECT_EQ(pool.lookupForWrite(fp(7), 5).ppn, 100u);
    EXPECT_FALSE(pool.lookupForWrite(fp(7), 5).hit);
    EXPECT_EQ(pool.size(), 0u);
}

TEST(MqDvp, NewEntriesStartInQueueZero)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(1), 0, 1, 0);
    EXPECT_EQ(pool.queueOf(fp(1)), 0);
}

TEST(MqDvp, TargetQueueIsLogarithmic)
{
    MqDvp pool(smallConfig(100, 8));
    // log2(pop+1): pop 0 -> q0, 1 -> q1, 3 -> q2, 7 -> q3, 255 -> q7.
    EXPECT_EQ(pool.targetQueue(0), 0u);
    EXPECT_EQ(pool.targetQueue(1), 1u);
    EXPECT_EQ(pool.targetQueue(2), 1u);
    EXPECT_EQ(pool.targetQueue(3), 2u);
    EXPECT_EQ(pool.targetQueue(7), 3u);
    EXPECT_EQ(pool.targetQueue(15), 4u);
    EXPECT_EQ(pool.targetQueue(255), 7u);
}

TEST(MqDvp, TargetQueueClampsToHighestQueue)
{
    MqDvp pool(smallConfig(100, 3));
    EXPECT_EQ(pool.targetQueue(255), 2u);
}

TEST(MqDvp, PopularEntriesPromoteOneQueueAtATime)
{
    MqDvp pool(smallConfig(100, 8));
    // A popular value (pop 7 would target q3) still climbs one queue
    // per access, per the paper's promotion rule.
    pool.insertGarbage(fp(5), 0, 1, 7);
    EXPECT_EQ(pool.queueOf(fp(5)), 0);
    pool.insertGarbage(fp(5), 1, 2, 7);
    EXPECT_EQ(pool.queueOf(fp(5)), 1);
    pool.insertGarbage(fp(5), 2, 3, 7);
    EXPECT_EQ(pool.queueOf(fp(5)), 2);
    pool.insertGarbage(fp(5), 3, 4, 7);
    EXPECT_EQ(pool.queueOf(fp(5)), 3);
    // Target reached: further accesses stay at q3.
    pool.insertGarbage(fp(5), 4, 5, 7);
    EXPECT_EQ(pool.queueOf(fp(5)), 3);
    EXPECT_GE(pool.stats().promotions, 3u);
}

TEST(MqDvp, DirectPromotionJumpsToTarget)
{
    MqDvpConfig cfg = smallConfig(100, 8);
    cfg.directPromotion = true;
    MqDvp pool(cfg);
    pool.insertGarbage(fp(5), 0, 1, 7);
    pool.insertGarbage(fp(5), 1, 2, 7); // access -> jump to q3
    EXPECT_EQ(pool.queueOf(fp(5)), 3);
}

TEST(MqDvp, UnpopularEntriesDoNotPromote)
{
    MqDvp pool(smallConfig(100, 8));
    pool.insertGarbage(fp(6), 0, 1, 0);
    pool.insertGarbage(fp(6), 1, 2, 0);
    pool.insertGarbage(fp(6), 2, 3, 0);
    EXPECT_EQ(pool.queueOf(fp(6)), 0);
    EXPECT_EQ(pool.stats().promotions, 0u);
}

TEST(MqDvp, CapacityEvictionRemovesLowestQueueLruEntry)
{
    MqDvp pool(smallConfig(2, 4));
    pool.insertGarbage(fp(1), 0, 1, 0); // oldest, q0
    pool.insertGarbage(fp(2), 0, 2, 0);
    pool.insertGarbage(fp(3), 0, 3, 0); // evicts fp(1)
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().capacityEvictions, 1u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(2), 0).hit);
}

TEST(MqDvp, PromotedEntriesSurviveEvictionOverQ0Entries)
{
    // The MQ advantage over plain LRU: a popular (promoted) entry
    // outlives newer but unpopular entries under capacity pressure.
    MqDvp pool(smallConfig(3, 4));
    pool.insertGarbage(fp(1), 0, 1, 7);
    pool.insertGarbage(fp(1), 1, 2, 7); // promoted to q1
    ASSERT_EQ(pool.queueOf(fp(1)), 1);

    pool.insertGarbage(fp(2), 0, 10, 0); // q0
    pool.insertGarbage(fp(3), 0, 11, 0); // q0, pool full (3 entries)
    pool.insertGarbage(fp(4), 0, 12, 0); // evicts q0 LRU = fp(2)

    EXPECT_EQ(pool.stats().capacityEvictions, 1u);
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 0).hit) << "popular entry "
                                                      "was evicted";
    EXPECT_FALSE(pool.lookupForWrite(fp(2), 0).hit);
}

TEST(MqDvp, OnEraseDropsPpnAndEmptyEntries)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(1), 0, 100, 1);
    pool.insertGarbage(fp(1), 1, 101, 1);
    pool.onErase(100);
    EXPECT_EQ(pool.ppnCount(fp(1)), 1u);
    EXPECT_EQ(pool.stats().gcEvictions, 1u);
    pool.onErase(101);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(MqDvp, OnEraseOfUntrackedPpnIsNoOp)
{
    MqDvp pool(smallConfig());
    pool.onErase(999);
    EXPECT_EQ(pool.stats().gcEvictions, 0u);
}

TEST(MqDvp, ExpiredHeadsDemoteOnInsert)
{
    MqDvpConfig cfg = smallConfig(100, 4);
    cfg.defaultExpiryInterval = 5;
    cfg.expiryFloorOfCapacity = 0.0; // literal hottest-interval rule
    MqDvp pool(cfg);
    // Promote an entry to q1.
    pool.insertGarbage(fp(1), 0, 1, 3);
    pool.insertGarbage(fp(1), 1, 2, 3);
    ASSERT_EQ(pool.queueOf(fp(1)), 1);

    // Advance the write clock beyond the expiry interval.
    for (int i = 0; i < 10; ++i)
        pool.lookupForWrite(fp(99), 0);

    // The demotion module runs on the next insert.
    pool.insertGarbage(fp(2), 0, 3, 0);
    EXPECT_EQ(pool.queueOf(fp(1)), 0);
    EXPECT_GE(pool.stats().demotions, 1u);
}

TEST(MqDvp, FreshEntriesDoNotDemote)
{
    MqDvpConfig cfg = smallConfig(100, 4);
    cfg.defaultExpiryInterval = 1'000'000;
    MqDvp pool(cfg);
    pool.insertGarbage(fp(1), 0, 1, 3);
    pool.insertGarbage(fp(1), 1, 2, 3);
    ASSERT_EQ(pool.queueOf(fp(1)), 1);
    pool.insertGarbage(fp(2), 0, 3, 0);
    EXPECT_EQ(pool.queueOf(fp(1)), 1);
    EXPECT_EQ(pool.stats().demotions, 0u);
}

TEST(MqDvp, HottestIntervalLearnedFromAccessGap)
{
    MqDvpConfig cfg = smallConfig(100, 4);
    cfg.defaultExpiryInterval = 12345;
    cfg.expiryFloorOfCapacity = 0.0; // literal hottest-interval rule
    MqDvp pool(cfg);
    EXPECT_EQ(pool.hotInterval(), 12345u);

    pool.insertGarbage(fp(1), 0, 1, 5); // hottest (pop 5)
    // Advance the clock by 7 writes.
    for (int i = 0; i < 7; ++i)
        pool.lookupForWrite(fp(99), 0);
    pool.insertGarbage(fp(1), 1, 2, 5); // second access of hottest
    EXPECT_EQ(pool.hotInterval(), 7u);
}

TEST(MqDvp, WriteClockAdvancesOnLookups)
{
    MqDvp pool(smallConfig());
    EXPECT_EQ(pool.writeClock(), 0u);
    pool.lookupForWrite(fp(1), 0);
    pool.lookupForWrite(fp(2), 0);
    EXPECT_EQ(pool.writeClock(), 2u);
}

TEST(MqDvp, PopularityMergesByMaxAcrossCopies)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(1), 0, 1, 9);
    pool.insertGarbage(fp(1), 1, 2, 3); // lower-pop copy
    const auto r = pool.lookupForWrite(fp(1), 0);
    EXPECT_EQ(r.popularity, 10); // max(9,3) + 1
}

TEST(MqDvp, PopularitySaturatesAt255)
{
    MqDvp pool(smallConfig());
    pool.insertGarbage(fp(1), 0, 1, 255);
    EXPECT_EQ(pool.lookupForWrite(fp(1), 0).popularity, 255);
}

TEST(MqDvp, QueueLengthsTrackMembership)
{
    MqDvp pool(smallConfig(100, 4));
    pool.insertGarbage(fp(1), 0, 1, 0);
    pool.insertGarbage(fp(2), 0, 2, 0);
    EXPECT_EQ(pool.queueLength(0), 2u);
    EXPECT_EQ(pool.queueLength(1), 0u);
}

TEST(MqDvp, NameAndCapacityAccessors)
{
    MqDvp pool(smallConfig(42));
    EXPECT_EQ(pool.name(), "mq");
    EXPECT_EQ(pool.capacity(), 42u);
}

TEST(MqDvpDeath, ZeroQueuesIsFatal)
{
    MqDvpConfig cfg;
    cfg.numQueues = 0;
    EXPECT_EXIT({ MqDvp pool(cfg); }, testing::ExitedWithCode(1),
                "at least one queue");
}

TEST(MqDvpDeath, ZeroCapacityIsFatal)
{
    MqDvpConfig cfg;
    cfg.capacity = 0;
    EXPECT_EXIT({ MqDvp pool(cfg); }, testing::ExitedWithCode(1),
                "capacity");
}

TEST(MqDvp, StressManyValuesManyCopies)
{
    MqDvp pool(smallConfig(1000, 8));
    // Insert 2000 distinct values (forcing 1000 evictions), some with
    // several dead copies, and make sure internal structures agree.
    Ppn next_ppn = 0;
    for (std::uint64_t v = 0; v < 2000; ++v) {
        const int copies = 1 + static_cast<int>(v % 3);
        for (int c = 0; c < copies; ++c) {
            pool.insertGarbage(fp(v), v,
                               next_ppn++,
                               static_cast<std::uint8_t>(v % 16));
        }
    }
    EXPECT_EQ(pool.size(), 1000u);
    EXPECT_EQ(pool.stats().capacityEvictions, 1000u);
    std::uint64_t total = 0;
    for (std::uint32_t q = 0; q < 8; ++q)
        total += pool.queueLength(q);
    EXPECT_EQ(total, pool.size());
    // Recently inserted values must still be present.
    EXPECT_GT(pool.ppnCount(fp(1999)), 0u);
}

} // namespace
} // namespace zombie
