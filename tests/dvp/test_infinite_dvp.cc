/**
 * @file
 * Tests for the unbounded "Ideal" dead-value pool.
 */

#include <gtest/gtest.h>

#include "dvp/lru_dvp.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

TEST(InfiniteDvp, NeverEvicts)
{
    InfiniteDvp pool;
    for (std::uint64_t v = 0; v < 50000; ++v)
        pool.insertGarbage(fp(v), v, v, 1);
    EXPECT_EQ(pool.size(), 50000u);
    EXPECT_EQ(pool.stats().capacityEvictions, 0u);
    EXPECT_TRUE(pool.lookupForWrite(fp(0), 0).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(49999), 0).hit);
}

TEST(InfiniteDvp, CapacityReportsUnbounded)
{
    InfiniteDvp pool;
    EXPECT_EQ(pool.capacity(), 0u);
    EXPECT_EQ(pool.name(), "infinite");
}

TEST(InfiniteDvp, HitConsumesOneCopy)
{
    InfiniteDvp pool;
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.insertGarbage(fp(1), 1, 11, 1);
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 0).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 0).hit);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(InfiniteDvp, OnEraseRemovesSpecificCopy)
{
    InfiniteDvp pool;
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.insertGarbage(fp(1), 1, 11, 1);
    pool.onErase(10);
    const auto r = pool.lookupForWrite(fp(1), 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.ppn, 11u);
    EXPECT_EQ(pool.size(), 0u);
}

TEST(InfiniteDvp, OnEraseLastCopyDropsEntry)
{
    InfiniteDvp pool;
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.onErase(10);
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(InfiniteDvp, PopularityAccumulates)
{
    InfiniteDvp pool;
    pool.insertGarbage(fp(1), 0, 10, 4);
    pool.insertGarbage(fp(1), 1, 11, 6);
    EXPECT_EQ(pool.lookupForWrite(fp(1), 0).popularity, 7);
}

} // namespace
} // namespace zombie
