/**
 * @file
 * Tests for the LX-SSD prior-work baseline. The decisive behavioural
 * difference to the paper's MQ-DVP: entries are keyed by logical page
 * address, so rebirths of a value at a different LPN are misses.
 */

#include <gtest/gtest.h>

#include "dvp/lx_dvp.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

TEST(LxDvp, SameContentSameLbaHits)
{
    LxDvp pool(4);
    pool.insertGarbage(fp(1), /*lpn=*/5, 100, 1);
    const auto r = pool.lookupForWrite(fp(1), 5);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.ppn, 100u);
    EXPECT_EQ(pool.size(), 0u);
}

TEST(LxDvp, SameContentDifferentLbaMisses)
{
    // The inefficiency the paper exploits: content-level rebirth at a
    // new address cannot be recycled by an LBA-keyed pool.
    LxDvp pool(4);
    pool.insertGarbage(fp(1), 5, 100, 1);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 6).hit);
    // The entry remains for its own LBA.
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 5).hit);
}

TEST(LxDvp, DifferentContentSameLbaMisses)
{
    LxDvp pool(4);
    pool.insertGarbage(fp(1), 5, 100, 1);
    EXPECT_FALSE(pool.lookupForWrite(fp(2), 5).hit);
    // Entry survives a content mismatch (recency refreshed instead).
    EXPECT_EQ(pool.size(), 1u);
}

TEST(LxDvp, SingleSlotPerLba)
{
    LxDvp pool(4);
    pool.insertGarbage(fp(1), 5, 100, 1);
    pool.insertGarbage(fp(2), 5, 101, 1); // replaces the old content
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 5).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(2), 5).hit);
}

TEST(LxDvp, LruEvictionByLbaRecency)
{
    LxDvp pool(2);
    pool.insertGarbage(fp(1), 1, 100, 1);
    pool.insertGarbage(fp(2), 2, 101, 1);
    pool.insertGarbage(fp(3), 3, 102, 1); // evicts LBA 1
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 1).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(2), 2).hit);
}

TEST(LxDvp, ReadsRefreshRecency)
{
    // Inefficiency (i): read popularity keeps an address resident
    // even though reads can never be recycled.
    LxDvp pool(2);
    pool.insertGarbage(fp(1), 1, 100, 1);
    pool.insertGarbage(fp(2), 2, 101, 1);
    pool.onHostRead(1); // LBA 1 now most recent
    pool.insertGarbage(fp(3), 3, 102, 1); // evicts LBA 2
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 1).hit);
    EXPECT_FALSE(pool.lookupForWrite(fp(2), 2).hit);
}

TEST(LxDvp, ContentMismatchRefreshesRecency)
{
    LxDvp pool(2);
    pool.insertGarbage(fp(1), 1, 100, 1);
    pool.insertGarbage(fp(2), 2, 101, 1);
    // Miss on LBA 1 (different content) still refreshes it.
    EXPECT_FALSE(pool.lookupForWrite(fp(9), 1).hit);
    pool.insertGarbage(fp(3), 3, 102, 1); // evicts LBA 2
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 1).hit);
}

TEST(LxDvp, OnEraseRemovesEntry)
{
    LxDvp pool(4);
    pool.insertGarbage(fp(1), 1, 100, 1);
    pool.onErase(100);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 1).hit);
    EXPECT_EQ(pool.stats().gcEvictions, 1u);
}

TEST(LxDvp, ReplacementUpdatesPpnIndex)
{
    LxDvp pool(4);
    pool.insertGarbage(fp(1), 1, 100, 1);
    pool.insertGarbage(fp(2), 1, 101, 1); // LBA slot reused
    pool.onErase(100);                    // stale PPN: no-op
    EXPECT_EQ(pool.stats().gcEvictions, 0u);
    pool.onErase(101);
    EXPECT_EQ(pool.stats().gcEvictions, 1u);
}

TEST(LxDvp, NameAndCapacity)
{
    LxDvp pool(3);
    EXPECT_EQ(pool.name(), "lx");
    EXPECT_EQ(pool.capacity(), 3u);
}

TEST(LxDvpDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT({ LxDvp pool(0); }, testing::ExitedWithCode(1),
                "capacity");
}

} // namespace
} // namespace zombie
