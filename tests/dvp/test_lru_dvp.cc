/**
 * @file
 * Tests for the single-queue LRU dead-value pool (Figures 5/6).
 */

#include <gtest/gtest.h>

#include "dvp/lru_dvp.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

TEST(LruDvp, MissOnEmpty)
{
    LruDvp pool(4);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(LruDvp, InsertHitRemove)
{
    LruDvp pool(4);
    pool.insertGarbage(fp(1), 0, 42, 1);
    const auto r = pool.lookupForWrite(fp(1), 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.ppn, 42u);
    EXPECT_EQ(pool.size(), 0u);
}

TEST(LruDvp, EvictsLeastRecentlyUsed)
{
    LruDvp pool(2);
    pool.insertGarbage(fp(1), 0, 1, 1);
    pool.insertGarbage(fp(2), 0, 2, 1);
    pool.insertGarbage(fp(3), 0, 3, 1); // evicts fp(1)
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
    EXPECT_TRUE(pool.lookupForWrite(fp(2), 0).hit);
    EXPECT_EQ(pool.stats().capacityEvictions, 1u);
}

TEST(LruDvp, ReinsertionRefreshesRecency)
{
    LruDvp pool(2);
    pool.insertGarbage(fp(1), 0, 1, 1);
    pool.insertGarbage(fp(2), 0, 2, 1);
    pool.insertGarbage(fp(1), 1, 3, 1); // fp(1) now MRU (2 PPNs)
    pool.insertGarbage(fp(3), 0, 4, 1); // evicts fp(2)
    EXPECT_TRUE(pool.lookupForWrite(fp(1), 0).hit);
    EXPECT_FALSE(pool.lookupForWrite(fp(2), 0).hit);
}

TEST(LruDvp, PopularityIsIgnoredForReplacement)
{
    // The Figure 6 pathology: a popular value still evicts first if
    // it is least recent.
    LruDvp pool(2);
    pool.insertGarbage(fp(1), 0, 1, 200); // very popular, oldest
    pool.insertGarbage(fp(2), 0, 2, 1);
    pool.insertGarbage(fp(3), 0, 3, 1); // evicts popular fp(1)
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(LruDvp, MultiplePpnsPerValue)
{
    LruDvp pool(4);
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.insertGarbage(fp(1), 1, 11, 1);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.lookupForWrite(fp(1), 0).ppn, 11u);
    EXPECT_EQ(pool.lookupForWrite(fp(1), 0).ppn, 10u);
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
}

TEST(LruDvp, OnEraseRemovesPpn)
{
    LruDvp pool(4);
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.insertGarbage(fp(1), 1, 11, 1);
    pool.onErase(11);
    EXPECT_EQ(pool.lookupForWrite(fp(1), 0).ppn, 10u);
    pool.onErase(12345); // unknown: no-op
    EXPECT_EQ(pool.stats().gcEvictions, 1u);
}

TEST(LruDvp, EvictionDropsAllPpnsOfEntry)
{
    LruDvp pool(1);
    pool.insertGarbage(fp(1), 0, 10, 1);
    pool.insertGarbage(fp(1), 1, 11, 1);
    pool.insertGarbage(fp(2), 0, 20, 1); // evicts fp(1) entirely
    EXPECT_FALSE(pool.lookupForWrite(fp(1), 0).hit);
    // The erased PPNs must no longer be indexed.
    pool.onErase(10);
    pool.onErase(11);
    EXPECT_EQ(pool.stats().gcEvictions, 0u);
}

TEST(LruDvp, NameAndCapacity)
{
    LruDvp pool(7);
    EXPECT_EQ(pool.name(), "lru");
    EXPECT_EQ(pool.capacity(), 7u);
}

TEST(LruDvpDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT({ LruDvp pool(0); }, testing::ExitedWithCode(1),
                "capacity");
}

} // namespace
} // namespace zombie
