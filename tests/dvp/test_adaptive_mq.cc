/**
 * @file
 * Tests for the adaptive-capacity MQ pool — the paper's footnote 5
 * future work ("dynamically tuning the total capacity for MQ").
 */

#include <gtest/gtest.h>

#include "dvp/mq_dvp.hh"

namespace zombie
{
namespace
{

Fingerprint
fp(std::uint64_t id)
{
    return Fingerprint::fromValueId(id);
}

MqDvpConfig
adaptiveConfig()
{
    MqDvpConfig cfg;
    cfg.capacity = 64;
    cfg.numQueues = 4;
    cfg.adaptive = true;
    cfg.adaptiveMin = 16;
    cfg.adaptiveMax = 1024;
    cfg.adaptiveWindow = 100;
    cfg.adaptiveRegretThreshold = 10;
    return cfg;
}

/** Cycle of inserts+lookups over a working set larger than the pool:
 *  every miss of an evicted value is a regret. */
void
thrash(MqDvp &pool, std::uint64_t working_set, int rounds,
       Ppn &next_ppn)
{
    for (int r = 0; r < rounds; ++r) {
        for (std::uint64_t v = 0; v < working_set; ++v) {
            pool.insertGarbage(fp(v), v, next_ppn++, 1);
            pool.lookupForWrite(fp((v * 7 + 1) % working_set), v);
        }
    }
}

TEST(AdaptiveMq, GrowsUnderRegret)
{
    MqDvp pool(adaptiveConfig());
    Ppn next_ppn = 0;
    thrash(pool, 400, 10, next_ppn); // working set >> capacity 64
    EXPECT_GT(pool.ghostHits(), 0u);
    EXPECT_GT(pool.adaptiveGrows(), 0u);
    EXPECT_GT(pool.capacity(), 64u);
    EXPECT_LE(pool.capacity(), 1024u);
}

TEST(AdaptiveMq, GrowthImprovesHitRate)
{
    MqDvpConfig fixed = adaptiveConfig();
    fixed.adaptive = false;
    MqDvp adaptive(adaptiveConfig()), frozen(fixed);
    Ppn a = 0, b = 0;
    thrash(adaptive, 400, 20, a);
    thrash(frozen, 400, 20, b);
    EXPECT_GT(adaptive.stats().hits, frozen.stats().hits);
}

TEST(AdaptiveMq, ShrinksWhenIdle)
{
    MqDvpConfig cfg = adaptiveConfig();
    cfg.capacity = 512;
    MqDvp pool(cfg);
    // A tiny working set: no evictions, pool mostly empty.
    Ppn next_ppn = 0;
    for (int i = 0; i < 2000; ++i) {
        pool.insertGarbage(fp(i % 8), 0, next_ppn++, 1);
        pool.lookupForWrite(fp(i % 8), 0);
    }
    EXPECT_GT(pool.adaptiveShrinks(), 0u);
    EXPECT_LT(pool.capacity(), 512u);
    EXPECT_GE(pool.capacity(), cfg.adaptiveMin);
}

TEST(AdaptiveMq, ShrinkEvictsDownToCapacity)
{
    MqDvpConfig cfg = adaptiveConfig();
    cfg.capacity = 128;
    cfg.adaptiveMin = 16;
    MqDvp pool(cfg);
    Ppn next_ppn = 0;
    // Fill to 60 entries (under half of 128) then go idle-ish with
    // repeated lookups of resident values.
    for (std::uint64_t v = 0; v < 60; ++v)
        pool.insertGarbage(fp(v), v, next_ppn++, 1);
    for (int i = 0; i < 1000; ++i)
        pool.lookupForWrite(fp(5000), 0); // misses, no ghost
    EXPECT_LE(pool.size(), pool.capacity());
}

TEST(AdaptiveMq, StaysWithinBounds)
{
    MqDvpConfig cfg = adaptiveConfig();
    cfg.adaptiveMax = 96;
    MqDvp pool(cfg);
    Ppn next_ppn = 0;
    thrash(pool, 500, 20, next_ppn);
    EXPECT_LE(pool.capacity(), 96u);
    EXPECT_GE(pool.capacity(), cfg.adaptiveMin);
}

TEST(AdaptiveMq, DisabledBehavesExactlyAsFixed)
{
    MqDvpConfig cfg = adaptiveConfig();
    cfg.adaptive = false;
    MqDvp pool(cfg);
    Ppn next_ppn = 0;
    thrash(pool, 400, 5, next_ppn);
    EXPECT_EQ(pool.capacity(), 64u);
    EXPECT_EQ(pool.adaptiveGrows(), 0u);
    EXPECT_EQ(pool.ghostHits(), 0u);
}

TEST(AdaptiveMqDeath, BadBoundsAreFatal)
{
    MqDvpConfig cfg = adaptiveConfig();
    cfg.adaptiveMin = 100;
    cfg.adaptiveMax = 50;
    EXPECT_EXIT({ MqDvp pool(cfg); }, testing::ExitedWithCode(1),
                "adaptiveMin");

    MqDvpConfig cfg2 = adaptiveConfig();
    cfg2.adaptiveWindow = 0;
    EXPECT_EXIT({ MqDvp pool(cfg2); }, testing::ExitedWithCode(1),
                "window");
}

} // namespace
} // namespace zombie
